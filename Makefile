# Development targets for the DEMON reproduction.

GO ?= go

.PHONY: all build bin test race race-differential cover bench perf perf-gate check backends faultsweep chaos serve-smoke lint-metrics experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

# Every CLI binary — the miners and generators, demon-bench, demon-perf,
# the chaos proxy and feeder, and the resident server demon-serve — into bin/.
bin:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The cross-strategy differential harness and the concurrent-reader hammers
# under the race detector (see differential_test.go, concurrency_test.go),
# plus a fuzz smoke of the sharded counters.
race-differential:
	$(GO) test -race -run 'TestDifferential|TestConcurrentReaders' -count=1 .
	$(GO) test -run '^$$' -fuzz FuzzDifferentialCount -fuzztime 30s .

cover:
	$(GO) test -cover ./...

# The CI gate: static analysis plus the full suite under the race detector.
check: lint-metrics
	$(GO) vet ./...
	$(GO) test -race ./...

# Validate every registry instrument name against the naming conventions the
# Prometheus exposition relies on (see scripts/lint-metrics.sh).
lint-metrics:
	./scripts/lint-metrics.sh

# The storage-backend gate: the Store conformance suite against every
# backend and decorator stack (see internal/diskio/conformance), the kvfile
# engine's own tests plus a fuzz smoke of its crash-recovery oracle, the
# cache differential/coherence suite, and the backend-parameterized fault
# sweep — all under the race detector.
backends:
	$(GO) test -race -count=1 ./internal/diskio/...
	$(GO) test -run '^$$' -fuzz FuzzKVFileReopen -fuzztime 30s ./internal/diskio/kvfile/
	$(GO) test -race -short -count=1 -run 'TestFaultSweepBackends|TestScalingBackends' . ./internal/bench/

# Exhaustive crash-at-every-operation sweep with torn-write injection (see
# faultsweep_test.go): every run is killed at one store-operation index,
# restarted, resumed from its last checkpoint, and must end byte-identical
# to a fault-free run. FAULTSWEEP_FLAGS=-short samples ~40 indices per miner
# instead of all of them.
FAULTSWEEP_FLAGS ?=
faultsweep:
	$(GO) test -race $(FAULTSWEEP_FLAGS) -run 'FaultSweep|CrashSweep' ./...

# The exactly-once resilience gate (see chaos_e2e_test.go): the fault
# injection proxy's own suite, the resilient client against scripted fault
# servers, and the headline e2e — demon-feed's client driven through resets,
# torn writes, stalls, latency and a mid-retry server restart, with the
# recovered store digest-compared against a fault-free run — all under the
# race detector. Short mode keeps the crash sweeps sampled.
chaos:
	$(GO) test -race -short -count=1 ./internal/chaos/ ./internal/client/
	$(GO) test -race -short -count=1 -run 'Chaos|CrashSweep|TestIngest|TestHTTP|TestSeq|TestRecoverSeq' ./internal/serve/

# Smoke-test the resident server: first the kill-during-ingest e2e —
# stream into two namespaces, SIGTERM mid-stream, restart, digest-compare
# against an uninterrupted run — under the race detector, then the real
# binary answering /healthz, /readyz, /tracez (an end-to-end traced ingest)
# and /metricsz in both JSON and Prometheus exposition, and drain-exiting
# on SIGTERM (see scripts/serve-smoke.sh).
serve-smoke: bin
	$(GO) test -race -count=1 -run TestE2EDrainRestartDigest ./internal/serve/
	./scripts/serve-smoke.sh

# One testing.B benchmark per paper table/figure (see bench_test.go).
# Filterable: `make bench PKG=./internal/borders/ BENCH=ECUT` runs only the
# ECUT benchmarks of that package.
PKG ?= ./...
BENCH ?= .
bench:
	$(GO) test -bench='$(BENCH)' -benchmem -run '^$$' $(PKG)

# The performance-trajectory harness (see internal/perf): produce a
# committable baseline — the short-mode pinned suite with profiling.
# `make perf NUMBER=10` writes BENCH_10.json; committed baselines are
# short-mode because the CI gate compares like against like. PERF_FLAGS
# adds e.g. -suite miner/ecut or -iterations 7.
NUMBER ?= 0
PERF_FLAGS ?=
perf:
	$(GO) run ./cmd/demon-perf run -short -number $(NUMBER) -out BENCH_$(NUMBER).json -profile-dir perf-profiles $(PERF_FLAGS)

# The CI regression gate: short-mode run compared against the committed
# baseline artifact; exits nonzero on regression.
PERF_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
perf-gate:
	$(GO) run ./cmd/demon-perf run -short -quiet -out perf-new.json
	$(GO) run ./cmd/demon-perf compare -time-threshold 0.6 $(PERF_BASELINE) perf-new.json

# Regenerate every table and figure of the paper's evaluation at laptop
# scale; use SCALE=1.0 for paper-sized runs.
SCALE ?= 0.1
experiments:
	$(GO) run ./cmd/demon-bench -exp all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/docclusters
	$(GO) run ./examples/webproxy
	$(GO) run ./examples/conceptdrift

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf bin
