# Development targets for the DEMON reproduction.

GO ?= go

.PHONY: all build bin test race race-differential cover bench check faultsweep chaos serve-smoke lint-metrics experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

# All six CLI binaries — demon-miner, demon-cluster, demon-patterns,
# demon-datagen, demon-bench and the resident server demon-serve — into bin/.
bin:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The cross-strategy differential harness and the concurrent-reader hammers
# under the race detector (see differential_test.go, concurrency_test.go),
# plus a fuzz smoke of the sharded counters.
race-differential:
	$(GO) test -race -run 'TestDifferential|TestConcurrentReaders' -count=1 .
	$(GO) test -run '^$$' -fuzz FuzzDifferentialCount -fuzztime 30s .

cover:
	$(GO) test -cover ./...

# The CI gate: static analysis plus the full suite under the race detector.
check: lint-metrics
	$(GO) vet ./...
	$(GO) test -race ./...

# Validate every registry instrument name against the naming conventions the
# Prometheus exposition relies on (see scripts/lint-metrics.sh).
lint-metrics:
	./scripts/lint-metrics.sh

# Exhaustive crash-at-every-operation sweep with torn-write injection (see
# faultsweep_test.go): every run is killed at one store-operation index,
# restarted, resumed from its last checkpoint, and must end byte-identical
# to a fault-free run. FAULTSWEEP_FLAGS=-short samples ~40 indices per miner
# instead of all of them.
FAULTSWEEP_FLAGS ?=
faultsweep:
	$(GO) test -race $(FAULTSWEEP_FLAGS) -run 'FaultSweep|CrashSweep' ./...

# The exactly-once resilience gate (see chaos_e2e_test.go): the fault
# injection proxy's own suite, the resilient client against scripted fault
# servers, and the headline e2e — demon-feed's client driven through resets,
# torn writes, stalls, latency and a mid-retry server restart, with the
# recovered store digest-compared against a fault-free run — all under the
# race detector. Short mode keeps the crash sweeps sampled.
chaos:
	$(GO) test -race -short -count=1 ./internal/chaos/ ./internal/client/
	$(GO) test -race -short -count=1 -run 'Chaos|CrashSweep|TestIngest|TestHTTP|TestSeq|TestRecoverSeq' ./internal/serve/

# Smoke-test the resident server: first the kill-during-ingest e2e —
# stream into two namespaces, SIGTERM mid-stream, restart, digest-compare
# against an uninterrupted run — under the race detector, then the real
# binary answering /healthz, /readyz, /tracez (an end-to-end traced ingest)
# and /metricsz in both JSON and Prometheus exposition, and drain-exiting
# on SIGTERM (see scripts/serve-smoke.sh).
serve-smoke: bin
	$(GO) test -race -count=1 -run TestE2EDrainRestartDigest ./internal/serve/
	./scripts/serve-smoke.sh

# One testing.B benchmark per paper table/figure (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Regenerate every table and figure of the paper's evaluation at laptop
# scale; use SCALE=1.0 for paper-sized runs.
SCALE ?= 0.1
experiments:
	$(GO) run ./cmd/demon-bench -exp all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/docclusters
	$(GO) run ./examples/webproxy
	$(GO) run ./examples/conceptdrift

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf bin
