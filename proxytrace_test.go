package demon

import "testing"

func TestSimulatedProxyTrace(t *testing.T) {
	blocks, err := SimulatedProxyTrace(24, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 21 {
		t.Fatalf("blocks = %d, want 21 days", len(blocks))
	}
	var weekend, anomalous int
	for _, b := range blocks {
		if len(b.Transactions) == 0 {
			t.Fatalf("block %q empty", b.Label)
		}
		if b.Label == "" {
			t.Fatal("unlabelled block")
		}
		if b.Weekend {
			weekend++
		}
		if b.Anomalous {
			anomalous++
		}
	}
	if anomalous != 1 {
		t.Fatalf("anomalous blocks = %d, want 1", anomalous)
	}
	// Labor Day + 3 weekends × 2 days = 7 weekend-kind day starts.
	if weekend != 7 {
		t.Fatalf("weekend blocks = %d, want 7", weekend)
	}
	// The blocks drive a Monitor through the public API end to end.
	m, err := NewMonitor(MonitorConfig{MinSupport: 0.01, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[:6] {
		if _, err := m.AddBlock(b.Transactions); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Patterns()) == 0 {
		t.Fatal("no patterns over the first week")
	}

	if _, err := SimulatedProxyTrace(0, 50, 1); err == nil {
		t.Fatal("accepted zero granularity")
	}
}
