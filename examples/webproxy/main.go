// Webproxy: the pattern-detection experiment of Section 5.3, end to end.
//
// A simulated 21-day web proxy trace (standing in for the DEC traces) is
// segmented into 24-hour blocks; each request becomes the transaction
// {object type, size bucket}. The monitor compares every new block against
// history through the FOCUS deviation and maintains compact sequences of
// similar blocks — surfacing "working days look alike", "weekends look
// alike", and the anomalous Monday 9-9-1996 that matches nothing.
//
// Run with: go run ./examples/webproxy
package main

import (
	"fmt"
	"log"

	demon "github.com/demon-mining/demon"
)

func main() {
	blocks, err := demon.SimulatedProxyTrace(24, 300, 1)
	if err != nil {
		log.Fatal(err)
	}

	monitor, err := demon.NewMonitor(demon.MonitorConfig{MinSupport: 0.01, Alpha: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	labels := make(map[demon.BlockID]string, len(blocks))
	for _, b := range blocks {
		rep, err := monitor.AddBlock(b.Transactions)
		if err != nil {
			log.Fatal(err)
		}
		labels[rep.Block] = b.Label
		fmt.Printf("%-24s %d deviations, similar to %2d earlier blocks\n",
			b.Label, rep.Deviations, rep.SimilarTo)
	}

	fmt.Println("\ncompact sequences (patterns of similar days):")
	for _, seq := range monitor.Patterns() {
		if len(seq) < 2 {
			continue
		}
		fmt.Printf("  %d blocks: ", len(seq))
		for i, id := range seq {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(labels[id])
		}
		fmt.Println()
	}

	// The anomalous Monday: similar to nothing else.
	for _, seq := range monitor.AllSequences() {
		if len(seq) == 1 && len(labels[seq[0]]) >= 9 && labels[seq[0]][:9] == "Mon 09-09" {
			fmt.Printf("\nanomaly: %s joined no pattern\n", labels[seq[0]])
		}
	}
}
