// Docclusters: the document-clustering scenario from Section 2.2 of the
// paper.
//
// A document database receives occasional new blocks; each document is
// embedded as a low-dimensional point (here: fabricated topic mixtures) and
// the application wants the clustering of the ENTIRE collection kept up to
// date — the unrestricted window option. BIRCH+ keeps the sub-cluster
// summary resident, so each new block costs a single scan of that block
// only, and new documents can be routed to their concept immediately.
//
// Run with: go run ./examples/docclusters
package main

import (
	"fmt"
	"log"
	"math/rand"

	demon "github.com/demon-mining/demon"
)

// Three latent "concepts" with characteristic topic mixtures.
var concepts = []demon.Point{
	{0.9, 0.1, 0.0}, // sports
	{0.1, 0.8, 0.1}, // finance
	{0.0, 0.2, 0.8}, // science
}

func main() {
	miner, err := demon.NewClusterMiner(demon.ClusterMinerConfig{K: len(concepts)})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for batch := 1; batch <= 4; batch++ {
		block := documents(rng, 500)
		d, err := miner.AddBlock(block)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: absorbed 500 documents in %v (%d sub-clusters resident)\n",
			batch, d.Round(1000), miner.NumSubClusters())
	}

	clusters, err := miner.Clusters()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndocument clusters over the whole collection:")
	for i, c := range clusters {
		fmt.Printf("  cluster %d: %d documents, centroid %.2v\n", i, c.N, c.Centroid)
	}

	// Route new, unclassified documents to their concepts.
	fresh := []demon.Point{
		{0.85, 0.12, 0.03},
		{0.05, 0.15, 0.80},
	}
	labels, err := miner.Assign(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrouting new documents:")
	for i, p := range fresh {
		fmt.Printf("  %v -> cluster %d\n", p, labels[i])
	}
}

// documents draws topic mixtures around the concepts.
func documents(rng *rand.Rand, n int) []demon.Point {
	pts := make([]demon.Point, n)
	for i := range pts {
		c := concepts[rng.Intn(len(concepts))]
		p := make(demon.Point, len(c))
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*0.05
		}
		pts[i] = p
	}
	return pts
}
