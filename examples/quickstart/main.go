// Quickstart: maintain frequent itemsets over an evolving database.
//
// A small store receives a new block of sales transactions every night.
// DEMON keeps the set of frequent itemsets (and its negative border) up to
// date after every block, touching only the new data unless the model
// actually changed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	demon "github.com/demon-mining/demon"
)

func main() {
	// Mine everything collected so far (the unrestricted window) at 10%
	// minimum support, counting new candidates through TID-lists (ECUT).
	miner, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{
		MinSupport: 0.10,
		Strategy:   demon.ECUT,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for night := 1; night <= 5; night++ {
		rep, err := miner.AddBlock(salesBlock(rng, 400))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night %d: detection %v, update %v, %d candidates counted, |L| = %d\n",
			rep.Block, rep.Detection.Round(1000), rep.Update.Round(1000),
			rep.CandidatesCounted, len(miner.Lattice().Frequent))
	}

	fmt.Println("\nfrequent itemsets after 5 nights:")
	for _, fi := range miner.FrequentItemsets() {
		if fi.Itemset.Len() >= 2 {
			fmt.Printf("  %v  support %.3f\n", fi.Itemset, fi.Support)
		}
	}

	// Business changed its mind: lower the threshold. Raising is free;
	// lowering reuses the BORDERS update phase.
	if _, err := miner.ChangeMinSupport(0.05); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter lowering κ to 0.05: %d frequent itemsets\n", len(miner.Lattice().Frequent))
}

// salesBlock fabricates one night of purchases: items 0-9 are staples, and
// the pairs {1,2} and {3,4} are bought together often.
func salesBlock(rng *rand.Rand, n int) [][]demon.Item {
	rows := make([][]demon.Item, n)
	for i := range rows {
		var row []demon.Item
		if rng.Float64() < 0.4 {
			row = append(row, 1, 2)
		}
		if rng.Float64() < 0.3 {
			row = append(row, 3, 4)
		}
		for len(row) < 3 {
			row = append(row, demon.Item(rng.Intn(10)))
		}
		rows[i] = row
	}
	return rows
}
