// Conceptdrift: monitoring a classification stream for concept drift.
//
// A credit-scoring model receives a daily block of labelled applications.
// The FOCUS deviation framework instantiated with decision-tree models (the
// third model class of the paper's Section 4) compares every new block's
// induced classifier against history; compact sequences group the days the
// concept was stable, and the day the acceptance policy changed stands
// alone — the classifier-model analogue of the proxy-trace anomaly.
//
// Run with: go run ./examples/conceptdrift
package main

import (
	"fmt"
	"log"
	"math/rand"

	demon "github.com/demon-mining/demon"
)

func main() {
	monitor, err := demon.NewClassifierMonitor(demon.ClassifierMonitorConfig{
		NumClasses: 2,
		Alpha:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	// Days 1-4: the old policy (approve when income − debt > 0).
	// Days 5-7: the new, stricter policy (approve when income − 2·debt > 0).
	for day := 1; day <= 7; day++ {
		strict := day >= 5
		rep, err := monitor.AddBlock(applications(rng, strict, 600))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: similar to %d earlier days\n", rep.Block, rep.SimilarTo)
	}

	fmt.Println("\nstable concept periods:")
	for _, p := range monitor.Patterns() {
		fmt.Printf("  days %v\n", p)
	}
}

// applications draws labelled credit applications under one of the two
// policies.
func applications(rng *rand.Rand, strict bool, n int) []demon.LabeledRecord {
	recs := make([]demon.LabeledRecord, n)
	for i := range recs {
		income := rng.Float64() * 10
		debt := rng.Float64() * 6
		score := income - debt
		if strict {
			score = income - 2*debt
		}
		y := 0
		if score > 0 {
			y = 1
		}
		recs[i] = demon.LabeledRecord{X: []float64{income, debt}, Y: y}
	}
	return recs
}
