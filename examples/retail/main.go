// Retail: the "Demons'R Us" scenario from the paper's introduction.
//
// A toy store's warehouse is loaded with one block per day. Toy popularity
// is short-lived, so the analyst mines only the most recent window of 14
// days — and, to study the weekend effect, only the Saturday and Sunday
// blocks within that window, via a window-relative block selection sequence.
// GEMM keeps the window model exact as the window slides.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	demon "github.com/demon-mining/demon"
)

func main() {
	// Window of 14 daily blocks; day 1 is a Monday, so positions 6, 7, 13
	// and 14 of the window are the weekend days... as long as the window
	// start stays aligned to weeks — which it does when it slides by 7.
	// Here we slide daily, so instead we use a window-independent BSS that
	// marks absolute weekend days, plus the 14-day window.
	weekend := demon.BSSFunc(func(id demon.BlockID) bool {
		day := (int(id)-1)%7 + 1 // 1 = Monday ... 7 = Sunday
		return day == 6 || day == 7
	})
	weekendMiner, err := demon.NewItemsetWindowMiner(demon.ItemsetWindowMinerConfig{
		MinSupport: 0.05,
		Strategy:   demon.ECUT,
		WindowSize: 14,
		BSS:        weekend,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A second analyst tracks "same weekday as today over the last 4
	// weeks": a window-relative sequence ⟨1000000 1000000 1000000 1000000⟩
	// of length 28 that moves with the window.
	bits := make([]byte, 28)
	for i := range bits {
		if i%7 == 0 {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	sameDay, err := demon.ParseWindowRelBSS(string(bits))
	if err != nil {
		log.Fatal(err)
	}
	sameDayMiner, err := demon.NewItemsetWindowMiner(demon.ItemsetWindowMinerConfig{
		MinSupport:   0.05,
		Strategy:     demon.ECUT,
		WindowRelBSS: sameDay,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	for day := 1; day <= 35; day++ {
		block := dailySales(rng, day, 300)
		if _, err := weekendMiner.AddBlock(block); err != nil {
			log.Fatal(err)
		}
		if _, err := sameDayMiner.AddBlock(block); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("weekend patterns in the last 14 days (window", weekendMiner.Window(), "):")
	printTop(weekendMiner.FrequentItemsets(), 5)

	fmt.Println("\nsame-weekday patterns over the last 4 weeks (window", sameDayMiner.Window(), "):")
	printTop(sameDayMiner.FrequentItemsets(), 5)
	fmt.Printf("(GEMM maintains %d distinct models for the same-weekday analyst)\n",
		sameDayMiner.DistinctModels())
}

func printTop(fi []demon.ItemsetSupport, n int) {
	for i := 0; i < len(fi) && i < n; i++ {
		best := i
		for j := i + 1; j < len(fi); j++ {
			if fi[j].Support > fi[best].Support {
				best = j
			}
		}
		fi[i], fi[best] = fi[best], fi[i]
		fmt.Printf("  %-16v support %.3f\n", fi[i].Itemset, fi[i].Support)
	}
}

// dailySales fabricates one day of transactions. Weekends see board games
// (items 20, 21) bought together; weekdays see school supplies (10, 11).
func dailySales(rng *rand.Rand, day, n int) [][]demon.Item {
	weekday := (day-1)%7 + 1
	isWeekend := weekday == 6 || weekday == 7
	rows := make([][]demon.Item, n)
	for i := range rows {
		var row []demon.Item
		if isWeekend && rng.Float64() < 0.5 {
			row = append(row, 20, 21)
		}
		if !isWeekend && rng.Float64() < 0.5 {
			row = append(row, 10, 11)
		}
		for len(row) < 3 {
			row = append(row, demon.Item(rng.Intn(30)))
		}
		rows[i] = row
	}
	return rows
}
