package demon

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/dtree"
	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pattern"
)

// Rule is an association rule X ⇒ Y with support, confidence and lift.
type Rule = itemset.Rule

// Rules derives the association rules meeting the confidence threshold from
// the miner's current frequent itemsets; no data access is needed.
// Safe to call concurrently with AddBlock.
func (m *ItemsetMiner) Rules(minConf float64) ([]Rule, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return itemset.Rules(m.model.Lattice, minConf)
}

// Rules derives the association rules of the current window's model.
// Safe to call concurrently with AddBlock.
func (m *ItemsetWindowMiner) Rules(minConf float64) ([]Rule, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return itemset.Rules(m.g.Current().Lattice, minConf)
}

// BlockComparison is the result of comparing two blocks through the FOCUS
// deviation framework.
type BlockComparison struct {
	// Score is the deviation δ (0 = identical models).
	Score float64
	// PValue is the probability both blocks come from the same process.
	PValue float64
	// Regions is the size of the common structural component.
	Regions int
	// TopDifferences lists the itemsets with the largest support gap,
	// largest first — the interpretable explanation of the deviation.
	TopDifferences []SupportDifference
}

// SupportDifference is one region of the common structural component with
// its measure in each block.
type SupportDifference struct {
	Itemset  Itemset
	SupportA float64
	SupportB float64
}

// CompareTransactionBlocks computes the FOCUS frequent-itemset deviation
// between two blocks of transactions at the given mining threshold, with up
// to topN explaining itemsets (pass 0 for none).
func CompareTransactionBlocks(a, b [][]Item, minsup float64, topN int) (*BlockComparison, error) {
	blkA := itemset.NewTxBlock(1, 0, a)
	blkB := itemset.NewTxBlock(2, len(a), b)
	d := focus.ItemsetDiffer{MinSupport: minsup}
	dev, err := d.Deviation(blkA, blkB)
	if err != nil {
		return nil, err
	}
	cmp := &BlockComparison{Score: dev.Score, PValue: dev.PValue, Regions: dev.Regions}
	if topN > 0 {
		diffs, err := d.TopDifferences(blkA, blkB, topN)
		if err != nil {
			return nil, err
		}
		for _, sd := range diffs {
			cmp.TopDifferences = append(cmp.TopDifferences, SupportDifference{
				Itemset:  sd.Itemset,
				SupportA: sd.SupportA,
				SupportB: sd.SupportB,
			})
		}
	}
	return cmp, nil
}

// LabeledRecord is one classified example for the classifier monitor.
type LabeledRecord struct {
	// X holds the numeric attribute values.
	X []float64
	// Y is the class label in [0, NumClasses).
	Y int
}

// ClassifierMonitorConfig configures a ClassifierMonitor.
type ClassifierMonitorConfig struct {
	// NumClasses is the label arity of the blocks.
	NumClasses int
	// Alpha is the similarity significance level.
	Alpha float64
	// Window optionally restricts detection to the most recent blocks.
	Window int
	// MaxDepth / MinLeaf tune the per-block decision trees (zero = library
	// defaults).
	MaxDepth, MinLeaf int
}

// ClassifierMonitor discovers compact sequences of blocks whose induced
// decision-tree classifiers agree — the FOCUS deviation instantiated with
// the third model class of Section 4 (decision trees): two blocks are
// similar when the class distributions over the overlay of their trees' leaf
// partitions cannot be told apart.
type ClassifierMonitor struct {
	det        *pattern.Detector[*dtree.LabeledBlock]
	numClasses int
	snap       blockseq.Snapshot
}

// NewClassifierMonitor creates a monitor over an empty database.
func NewClassifierMonitor(cfg ClassifierMonitorConfig) (*ClassifierMonitor, error) {
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("demon: classifier monitor needs at least 2 classes, got %d", cfg.NumClasses)
	}
	differ := dtree.Differ{Tree: dtree.Config{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf}}
	var opts []pattern.Option[*dtree.LabeledBlock]
	if cfg.Window > 0 {
		opts = append(opts, pattern.WithWindow[*dtree.LabeledBlock](cfg.Window))
	}
	det, err := pattern.New[*dtree.LabeledBlock](differ, cfg.Alpha, opts...)
	if err != nil {
		return nil, err
	}
	return &ClassifierMonitor{det: det, numClasses: cfg.NumClasses}, nil
}

// AddBlock ingests the next block of labelled records.
func (m *ClassifierMonitor) AddBlock(records []LabeledRecord) (*MonitorReport, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("demon: classifier monitor block must contain records")
	}
	snap, id := m.snap.Append()
	blk := &dtree.LabeledBlock{ID: id, NumClasses: m.numClasses}
	blk.Records = make([]dtree.Record, len(records))
	for i, r := range records {
		blk.Records[i] = dtree.Record{X: r.X, Y: r.Y}
	}
	st, err := m.det.AddBlock(id, blk)
	if err != nil {
		return nil, err
	}
	m.snap = snap
	return &MonitorReport{
		Block:      id,
		Deviations: st.Deviations,
		Elapsed:    st.DeviationTime,
		SimilarTo:  st.SimilarTo,
		Extended:   st.Extended,
	}, nil
}

// Patterns returns the maximal compact sequences discovered so far.
func (m *ClassifierMonitor) Patterns() [][]BlockID { return m.det.Maximal() }

// T returns the identifier of the latest ingested block.
func (m *ClassifierMonitor) T() BlockID { return m.snap.T }
