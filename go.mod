module github.com/demon-mining/demon

go 1.22
