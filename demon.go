// Package demon is a from-scratch Go implementation of DEMON — Data
// Evolution and MONitoring (Ganti, Gehrke, Ramakrishnan, ICDE 2000) — a
// framework for mining systematically evolving data: databases that grow by
// whole blocks at a time (a data warehouse loaded nightly, a log rotated
// hourly) rather than by arbitrary record updates.
//
// The package offers the paper's complete problem space:
//
//   - Data span dimension. Mine all data collected so far (the unrestricted
//     window) with ItemsetMiner and ClusterMiner, or only the w most recent
//     blocks (the most recent window) with ItemsetWindowMiner and
//     ClusterWindowMiner, which are instances of the generic GEMM algorithm.
//
//   - Block selection sequences. Restrict either window to a sub-sequence of
//     blocks — "every Monday", "alternate days in the last four weeks" —
//     with window-independent or window-relative bit sequences.
//
//   - Model maintenance. Frequent itemsets are maintained by the BORDERS
//     algorithm with a pluggable update-phase counting strategy: PTScan (the
//     baseline full scan), ECUT (item TID-lists) or ECUTPlus (materialized
//     2-itemset TID-lists). Clusters are maintained by BIRCH+, the
//     incremental extension of BIRCH.
//
//   - Pattern detection. Monitor discovers compact sequences of pairwise
//     similar blocks using the FOCUS deviation framework, e.g. "weekday
//     traffic looks alike, except Labor Day and one anomalous Monday";
//     ClusterMonitor and ClassifierMonitor do the same through cluster and
//     decision-tree models, and CompareTransactionBlocks explains how two
//     blocks differ.
//
//   - Derived results and operations. Rules turns a maintained model into
//     association rules; Checkpoint/Restore persist miner state through the
//     Store; ClassifierWindowMiner trains decision trees over sliding
//     windows.
//
// All state lives behind a Store (in-memory or file-backed); every
// maintainer is deterministic given its inputs — including the parallel
// ingestion paths, whose results are identical for every Workers setting.
// Miners and monitors allow any number of concurrent readers (for example
// FrequentItemsets or Patterns) alongside one mutator (AddBlock and
// friends); mutators must not race with each other.
package demon

import (
	"fmt"
	"strings"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/diskio"
	_ "github.com/demon-mining/demon/internal/diskio/kvfile" // register the kvfile: store scheme
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/version"
)

// VersionInfo is the build identity of the running binary: module version,
// VCS revision, and toolchain. Every CLI prints it under -version and
// demon-serve exposes it at /versionz.
type VersionInfo = version.Info

// Version reports the build identity of the running binary, read from the
// Go toolchain's embedded build info.
func Version() VersionInfo { return version.Get() }

// Item is a literal from the item universe of a transactional database.
type Item = itemset.Item

// Itemset is a canonical (sorted, duplicate-free) set of items. Build one
// with NewItemset.
type Itemset = itemset.Itemset

// NewItemset builds a canonical itemset from items in any order.
func NewItemset(items ...Item) Itemset { return itemset.NewItemset(items...) }

// Lattice is a frequent-itemset model: the frequent itemsets and the
// negative border, with support counts.
type Lattice = itemset.Lattice

// BlockID identifies a block; identifiers increase in arrival order.
type BlockID = blockseq.ID

// Window is an inclusive range of block identifiers D[Lo, Hi].
type Window = blockseq.Window

// BSS is a window-independent block selection sequence: one bit per absolute
// block identifier.
type BSS = blockseq.BSS

// WindowRelBSS is a window-relative block selection sequence: one bit per
// window position, moving with the window.
type WindowRelBSS = blockseq.WindowRelBSS

// AllBlocks returns the BSS selecting every block (the classic maintenance
// setting).
func AllBlocks() BSS { return blockseq.All{} }

// EveryNth returns the BSS selecting blocks with id ≡ offset (mod period) —
// "every Monday" when blocks are daily and block `offset` is a Monday.
func EveryNth(period, offset int) BSS { return blockseq.Periodic{Period: period, Offset: offset} }

// BSSFunc adapts a predicate over block identifiers to a BSS.
func BSSFunc(f func(BlockID) bool) BSS { return blockseq.Func(f) }

// ParseWindowRelBSS parses a window-relative sequence from a "10110"-style
// bit string; bit 1 is the oldest position of the window.
func ParseWindowRelBSS(s string) (WindowRelBSS, error) { return blockseq.ParseWindowRel(s) }

// Point is an n-dimensional point for the clustering miners.
type Point = cf.Point

// TreeConfig parameterizes the CF-tree of the clustering miners; see
// ClusterMinerConfig.Tree.
type TreeConfig = cf.TreeConfig

// DefaultTreeConfig returns the CF-tree defaults the clustering miners use
// when ClusterMinerConfig.Tree is left zero.
func DefaultTreeConfig() TreeConfig { return cf.DefaultTreeConfig() }

// Store is the persistence interface blocks and TID-lists are stored
// through; see NewMemStore and NewFileStore.
type Store = diskio.Store

// NewMemStore returns an in-memory Store with I/O accounting — the right
// choice for tests and experiments.
func NewMemStore() Store { return diskio.NewMemStore() }

// NewFileStore returns a Store writing one file per object under dir.
func NewFileStore(dir string) (Store, error) { return diskio.NewFileStore(dir) }

// NewDurableFileStore returns the crash-safe production stack over dir: a
// file store (atomic temp-file+rename+fsync writes) wrapped with retrying on
// transient errors and CRC-checksummed record framing. Use it wherever a
// miner's state must survive crashes and bit rot.
func NewDurableFileStore(dir string) (Store, error) {
	fs, err := diskio.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	return diskio.NewChecksumStore(diskio.NewRetryStore(fs)), nil
}

// OpenStore builds a store stack from a store URL: "mem:" (in-memory),
// "file:DIR" (one file per key) or "kvfile:PATH" (single-file KV engine),
// optionally with "?cache=SIZE" for an LRU read cache — see the diskio
// package for the full syntax. The durable schemes come back wrapped in the
// same retry+checksum stack as NewDurableFileStore. Pair with CloseStore.
func OpenStore(url string) (Store, error) { return diskio.Open(url) }

// CloseStore releases a store opened with OpenStore. Backends without OS
// resources make it a no-op, so callers can close unconditionally.
func CloseStore(s Store) error { return diskio.CloseStore(s) }

// DirStoreURL resolves the CLI convention for -store flags: a value with a
// URL scheme is passed through verbatim (the backend argument is ignored —
// the URL already names one), a bare path becomes the given scheme over
// that path ("file" wants a directory, "kvfile" a file path placed inside
// the directory).
func DirStoreURL(backend, path string) (string, error) {
	if hasStoreScheme(path) {
		return path, nil
	}
	switch backend {
	case "", "file":
		return "file:" + path, nil
	case "kvfile":
		return "kvfile:" + path + "/store.kv", nil
	default:
		return "", fmt.Errorf("demon: unknown store backend %q (want file or kvfile)", backend)
	}
}

// hasStoreScheme reports whether s starts with a URL scheme ("mem:",
// "kvfile:", ...). A single letter before the colon is treated as a path
// (Windows drive letters), matching the common URL-vs-path heuristic.
func hasStoreScheme(s string) bool {
	i := strings.IndexByte(s, ':')
	if i < 2 {
		return false
	}
	for _, r := range s[:i] {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '+', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// ErrCorrupt tags errors caused by damaged on-disk data — a failed checksum,
// truncated framing, or malformed checkpoint metadata. Test with errors.Is.
var ErrCorrupt = diskio.ErrCorrupt

// RecoveryReport summarizes what RecoverStore did.
type RecoveryReport = diskio.RecoveryReport

// ScrubReport summarizes what ScrubStore did.
type ScrubReport = diskio.ScrubReport

// RecoverStore completes or rolls back transactions a crash left staged in
// the store. The miners run it automatically on construction and resume;
// call it directly only for offline inspection of a store.
func RecoverStore(s Store) (*RecoveryReport, error) { return diskio.Recover(s) }

// ScrubStore verifies the checksum of every record under prefix (all records
// when prefix is empty), quarantining corrupt ones. The store must carry
// checksummed framing somewhere in its stack, e.g. one from
// NewDurableFileStore or OpenStore — decorators like the read cache are
// walked through.
func ScrubStore(s Store, prefix string) (*ScrubReport, error) {
	return diskio.ScrubChain(s, prefix)
}

// StoreStats is the I/O counter snapshot of a Store.
type StoreStats = diskio.Stats

// ItemsetSupport pairs an itemset with its fractional support.
type ItemsetSupport struct {
	Itemset Itemset
	Support float64
	Count   int
}

// CountingStrategy selects the BORDERS update-phase counting procedure.
type CountingStrategy int

const (
	// PTScan organizes candidates in a prefix tree and scans every
	// transaction of the selected blocks — the BORDERS baseline.
	PTScan CountingStrategy = iota
	// HashTree is PTScan with the hash-tree structure of Agrawal et al.
	HashTree
	// ECUT intersects per-block item TID-lists, fetching only the data
	// relevant to the counted itemsets.
	ECUT
	// ECUTPlus additionally materializes TID-lists of frequent 2-itemsets
	// per block and counts through them.
	ECUTPlus
)

// String names the strategy as the paper does.
func (s CountingStrategy) String() string {
	switch s {
	case PTScan:
		return "PT-Scan"
	case HashTree:
		return "HT-Scan"
	case ECUT:
		return "ECUT"
	case ECUTPlus:
		return "ECUT+"
	default:
		return "unknown"
	}
}
