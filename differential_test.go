package demon

// The cross-strategy differential harness: the same Quest-generated block
// stream goes through every counting strategy at several worker counts, and
// every miner must report exactly the lattice an independent from-scratch
// Apriori run computes — frequent itemsets, negative border, and supports,
// at every block. Strategies differ in what they read (full scans, hash
// trees, TID-lists) and workers differ in how counting shards, so agreement
// here pins both the additivity-based parallelism and the BORDERS
// maintenance itself.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
)

// questBlockRows draws numBlocks deterministic Quest blocks of blockSize
// transactions each, as AddBlock row slices.
func questBlockRows(t *testing.T, seed int64, numBlocks, blockSize int) [][][]Item {
	t.Helper()
	gen, err := quest.New(quest.Config{
		NumTx:         numBlocks * blockSize,
		AvgTxLen:      6,
		NumItems:      40,
		NumPatterns:   20,
		AvgPatternLen: 3,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([][][]Item, numBlocks)
	for b := range blocks {
		blk := gen.Block(BlockID(b+1), blockSize)
		rows := make([][]Item, len(blk.Txs))
		for i, tx := range blk.Txs {
			rows[i] = append([]Item(nil), tx.Items...)
		}
		blocks[b] = rows
	}
	return blocks
}

// assertLatticeIdentical requires exact agreement on N, the frequent set,
// the negative border, and every support count.
func assertLatticeIdentical(t *testing.T, label string, got, want *Lattice) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if len(got.Frequent) != len(want.Frequent) {
		t.Fatalf("%s: |L| = %d, want %d", label, len(got.Frequent), len(want.Frequent))
	}
	for k, c := range want.Frequent {
		if gc, ok := got.Frequent[k]; !ok || gc != c {
			t.Fatalf("%s: frequent count(%v) = %d (present %v), want %d", label, k.Itemset(), gc, ok, c)
		}
	}
	if len(got.Border) != len(want.Border) {
		t.Fatalf("%s: |NB⁻| = %d, want %d", label, len(got.Border), len(want.Border))
	}
	for k, c := range want.Border {
		if gc, ok := got.Border[k]; !ok || gc != c {
			t.Fatalf("%s: border count(%v) = %d (present %v), want %d", label, k.Itemset(), gc, ok, c)
		}
	}
}

// TestDifferentialStrategiesAndWorkers runs the full cross product: four
// counting strategies × worker counts {1, 3, GOMAXPROCS}, against the
// Apriori oracle after every block.
func TestDifferentialStrategiesAndWorkers(t *testing.T) {
	const (
		minsup    = 0.03
		numBlocks = 4
		blockSize = 250
	)
	blocks := questBlockRows(t, 7, numBlocks, blockSize)
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	strategies := []CountingStrategy{PTScan, HashTree, ECUT, ECUTPlus}

	type entry struct {
		label string
		miner *ItemsetMiner
	}
	var miners []entry
	for _, s := range strategies {
		for _, w := range workerCounts {
			m, err := NewItemsetMiner(ItemsetMinerConfig{
				MinSupport: minsup,
				Strategy:   s,
				Workers:    w,
			})
			if err != nil {
				t.Fatal(err)
			}
			miners = append(miners, entry{fmt.Sprintf("%s/workers=%d", s, w), m})
		}
	}

	for b, rows := range blocks {
		oracle := aprioriRef(t, blocks[:b+1], minsup)
		for _, e := range miners {
			if _, err := e.miner.AddBlock(rows); err != nil {
				t.Fatalf("%s: block %d: %v", e.label, b+1, err)
			}
			assertLatticeIdentical(t, fmt.Sprintf("%s after block %d", e.label, b+1),
				e.miner.Lattice(), oracle)
		}
	}
}

// TestDifferentialDeleteAndRetarget extends the harness past pure ingestion:
// after the stream, every miner deletes its oldest block and lowers the
// threshold, and must still agree with the oracle over the remaining
// blocks.
func TestDifferentialDeleteAndRetarget(t *testing.T) {
	const (
		minsup    = 0.05
		numBlocks = 3
		blockSize = 200
	)
	blocks := questBlockRows(t, 11, numBlocks, blockSize)
	for _, s := range []CountingStrategy{PTScan, HashTree, ECUT, ECUTPlus} {
		for _, w := range []int{1, 3} {
			label := fmt.Sprintf("%s/workers=%d", s, w)
			m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: minsup, Strategy: s, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for _, rows := range blocks {
				if _, err := m.AddBlock(rows); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			if _, err := m.DeleteOldestBlock(); err != nil {
				t.Fatalf("%s: delete: %v", label, err)
			}
			assertLatticeIdentical(t, label+" after delete",
				m.Lattice(), aprioriRef(t, blocks[1:], minsup))
			if _, err := m.ChangeMinSupport(minsup / 2); err != nil {
				t.Fatalf("%s: retarget: %v", label, err)
			}
			assertLatticeIdentical(t, label+" after retarget",
				m.Lattice(), aprioriRef(t, blocks[1:], minsup/2))
		}
	}
}

// fuzzTxs decodes fuzz bytes into transactions: each byte contributes an
// item in a 16-item universe, zero bytes end a transaction.
func fuzzTxs(data []byte) []itemset.Transaction {
	var txs []itemset.Transaction
	var cur []Item
	flush := func() {
		if len(cur) > 0 {
			txs = append(txs, itemset.Transaction{TID: len(txs), Items: itemset.NewItemset(cur...)})
			cur = nil
		}
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		cur = append(cur, Item(b%16))
	}
	flush()
	return txs
}

// FuzzDifferentialCount feeds arbitrary transaction encodings through the
// prefix-tree and hash-tree counters, serially and sharded across several
// worker counts, and requires identical counts from all six paths.
func FuzzDifferentialCount(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 2, 3, 4, 0, 1, 3, 0, 5}, uint8(3))
	f.Add([]byte{7, 7, 7, 0, 0, 1}, uint8(200))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, workersByte uint8) {
		txs := fuzzTxs(data)
		// Candidates: every 1-itemset of the universe plus every pair and
		// triple of the first transaction's items.
		var cands []itemset.Itemset
		for i := 0; i < 16; i++ {
			cands = append(cands, itemset.NewItemset(Item(i)))
		}
		if len(txs) > 0 {
			first := txs[0].Items
			for i := 0; i < len(first); i++ {
				for j := i + 1; j < len(first); j++ {
					cands = append(cands, itemset.NewItemset(first[i], first[j]))
					for k := j + 1; k < len(first); k++ {
						cands = append(cands, itemset.NewItemset(first[i], first[j], first[k]))
					}
				}
			}
		}
		itemset.SortItemsets(cands)

		serial := itemset.NewPrefixTree(cands)
		for _, tx := range txs {
			serial.CountTx(tx)
		}
		want := serial.Counts()

		workers := int(workersByte%7) + 2
		for name, got := range map[string]map[itemset.Key]int{
			"prefix-parallel": itemset.ParallelCount(txs, workers, func() itemset.TxCounter {
				return itemset.NewPrefixTree(cands)
			}),
			"hash-serial": itemset.ParallelCount(txs, 1, func() itemset.TxCounter {
				return itemset.NewHashTree(cands, 4, 4)
			}),
			"hash-parallel": itemset.ParallelCount(txs, workers, func() itemset.TxCounter {
				return itemset.NewHashTree(cands, 4, 4)
			}),
		} {
			if len(got) != len(want) {
				t.Fatalf("%s (workers %d): %d counts, want %d", name, workers, len(got), len(want))
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("%s (workers %d): count(%v) = %d, want %d", name, workers, k.Itemset(), got[k], c)
				}
			}
		}
	})
}
