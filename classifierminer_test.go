package demon

import (
	"math/rand"
	"testing"
)

// driftRecords draws linearly separable records; flip inverts the concept.
func driftRecords(rng *rand.Rand, flip bool, n int) []LabeledRecord {
	recs := make([]LabeledRecord, n)
	for i := range recs {
		x := rng.NormFloat64()*0.4 + float64(i%2)*4 - 2
		y := 0
		if (x > 0) != flip {
			y = 1
		}
		recs[i] = LabeledRecord{X: []float64{x}, Y: y}
	}
	return recs
}

// TestClassifierWindowMinerForgetsOldConcept: after the window slides past
// the concept change, the classifier reflects only the new concept.
func TestClassifierWindowMinerForgetsOldConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	m, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{
		NumClasses: 2,
		WindowSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two blocks of the old concept, then two of the flipped one.
	for i := 0; i < 2; i++ {
		if err := m.AddBlock(driftRecords(rng, false, 300)); err != nil {
			t.Fatal(err)
		}
	}
	oldTest := driftRecords(rng, false, 200)
	c, err := m.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(oldTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("old-concept accuracy %v before drift", acc)
	}

	for i := 0; i < 2; i++ {
		if err := m.AddBlock(driftRecords(rng, true, 300)); err != nil {
			t.Fatal(err)
		}
	}
	newTest := driftRecords(rng, true, 200)
	c, err = m.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	// The window now covers only flipped-concept blocks.
	accNew, err := c.Accuracy(newTest)
	if err != nil {
		t.Fatal(err)
	}
	if accNew < 0.95 {
		t.Fatalf("new-concept accuracy %v after window slid", accNew)
	}
	accOld, err := c.Accuracy(oldTest)
	if err != nil {
		t.Fatal(err)
	}
	if accOld > 0.2 {
		t.Fatalf("classifier still fits the old concept: accuracy %v", accOld)
	}
	if m.Window() != (Window{Lo: 3, Hi: 4}) || m.T() != 4 {
		t.Fatalf("window state %v T=%d", m.Window(), m.T())
	}
	if c.NumLeaves() < 2 {
		t.Fatalf("leaves = %d", c.NumLeaves())
	}
	if _, err := c.Predict([]float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierWindowMinerBSS(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	rel, err := ParseWindowRelBSS("10")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{
		NumClasses:   2,
		WindowRelBSS: rel,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With ⟨10⟩ only the older block of the 2-window is selected.
	if err := m.AddBlock(driftRecords(rng, false, 300)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddBlock(driftRecords(rng, true, 300)); err != nil {
		t.Fatal(err)
	}
	c, err := m.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	// The model comes from block 1 (old concept), not block 2.
	acc, err := c.Accuracy(driftRecords(rng, false, 200))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("BSS-selected block accuracy %v", acc)
	}
}

func TestClassifierWindowMinerValidation(t *testing.T) {
	if _, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{NumClasses: 1, WindowSize: 2}); err == nil {
		t.Error("accepted single class")
	}
	if _, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{NumClasses: 2}); err == nil {
		t.Error("accepted missing window size")
	}
	rel, _ := ParseWindowRelBSS("11")
	if _, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{
		NumClasses: 2, WindowRelBSS: rel, WindowSize: 3,
	}); err == nil {
		t.Error("accepted conflicting window size")
	}
	m, err := NewClassifierWindowMiner(ClassifierWindowMinerConfig{NumClasses: 2, WindowSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddBlock([]LabeledRecord{{X: []float64{1}, Y: 7}}); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := m.Classifier(); err == nil {
		t.Error("trained classifier over empty selection")
	}
}
