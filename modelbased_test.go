package demon

import (
	"math/rand"
	"testing"
)

// TestItemsetMinerRandomOperations is a model-based test: a long random
// sequence of block additions, oldest-block deletions and threshold changes
// is applied to the miner, and after every operation the maintained lattice
// is cross-checked against a from-scratch Apriori run over the blocks the
// model should currently cover. This exercises the interactions between the
// BORDERS phases (demotion, promotion, expansion) that no single-operation
// test reaches.
func TestItemsetMinerRandomOperations(t *testing.T) {
	for _, strategy := range []CountingStrategy{PTScan, ECUT} {
		t.Run(strategy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(70 + strategy)))
			minsup := 0.15
			m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: minsup, Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			// covered mirrors the blocks the model should span.
			var covered [][][]Item
			for op := 0; op < 25; op++ {
				switch {
				case len(covered) > 1 && rng.Float64() < 0.25:
					// Delete the oldest block.
					if _, err := m.DeleteOldestBlock(); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					covered = covered[1:]
				case rng.Float64() < 0.2:
					// Change the threshold up or down.
					minsup = []float64{0.08, 0.15, 0.25, 0.35}[rng.Intn(4)]
					if _, err := m.ChangeMinSupport(minsup); err != nil {
						t.Fatalf("op %d retarget: %v", op, err)
					}
				default:
					rows := randomTxRows(rng, 30+rng.Intn(40), 10, 4)
					if _, err := m.AddBlock(rows); err != nil {
						t.Fatalf("op %d add: %v", op, err)
					}
					covered = append(covered, rows)
				}
				if len(covered) == 0 {
					continue
				}
				want := aprioriRef(t, covered, minsup)
				got := m.Lattice()
				if got.N != want.N {
					t.Fatalf("op %d: N = %d, want %d", op, got.N, want.N)
				}
				if len(got.Frequent) != len(want.Frequent) {
					t.Fatalf("op %d: |L| = %d, want %d", op, len(got.Frequent), len(want.Frequent))
				}
				for k, c := range want.Frequent {
					if got.Frequent[k] != c {
						t.Fatalf("op %d: count(%v) = %d, want %d", op, k.Itemset(), got.Frequent[k], c)
					}
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		})
	}
}

// TestWindowMinerRandomBSS drives window miners with random window-relative
// sequences and random block streams, cross-checking the current model
// against Apriori over exactly the blocks the BSS selects.
func TestWindowMinerRandomBSS(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		w := 2 + rng.Intn(3)
		bits := make([]byte, w)
		ones := 0
		for i := range bits {
			if rng.Intn(2) == 1 {
				bits[i] = '1'
				ones++
			} else {
				bits[i] = '0'
			}
		}
		if ones == 0 {
			bits[rng.Intn(w)] = '1'
		}
		rel, err := ParseWindowRelBSS(string(bits))
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{
			MinSupport:   0.15,
			Strategy:     ECUT,
			WindowRelBSS: rel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var blocks [][][]Item
		steps := w + 2 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			rows := randomTxRows(rng, 30+rng.Intn(30), 8, 3)
			blocks = append(blocks, rows)
			if _, err := m.AddBlock(rows); err != nil {
				t.Fatal(err)
			}

			// Expected selection: position w right-aligns with the latest
			// block.
			t1 := len(blocks)
			var want [][][]Item
			for idx := 1; idx <= t1; idx++ {
				pos := idx + w - t1
				if pos >= 1 && rel.BitAt(pos) {
					want = append(want, blocks[idx-1])
				}
			}
			got := m.Current()
			if len(want) == 0 {
				if got.N != 0 {
					t.Fatalf("trial %d step %d: model over %d tx, want empty", trial, step, got.N)
				}
				continue
			}
			ref := aprioriRef(t, want, 0.15)
			if got.N != ref.N || len(got.Frequent) != len(ref.Frequent) {
				t.Fatalf("trial %d step %d (bss %s): N %d/%d, |L| %d/%d",
					trial, step, string(bits), got.N, ref.N, len(got.Frequent), len(ref.Frequent))
			}
			for k, c := range ref.Frequent {
				if got.Frequent[k] != c {
					t.Fatalf("trial %d step %d: count(%v) = %d, want %d",
						trial, step, k.Itemset(), got.Frequent[k], c)
				}
			}
		}
	}
}

// TestWindowMinerRandomIndependentBSS drives window miners with random
// window-independent sequences, cross-checking the current model against
// Apriori over the window's selected blocks.
func TestWindowMinerRandomIndependentBSS(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 5; trial++ {
		w := 2 + rng.Intn(3)
		bits := make([]bool, 12)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		bss := BSSFunc(func(id BlockID) bool {
			if int(id) <= len(bits) {
				return bits[id-1]
			}
			return false
		})
		m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{
			MinSupport: 0.15,
			WindowSize: w,
			BSS:        bss,
		})
		if err != nil {
			t.Fatal(err)
		}
		var blocks [][][]Item
		steps := w + 2 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			rows := randomTxRows(rng, 30+rng.Intn(30), 8, 3)
			blocks = append(blocks, rows)
			if _, err := m.AddBlock(rows); err != nil {
				t.Fatal(err)
			}

			lo := len(blocks) - w
			if lo < 0 {
				lo = 0
			}
			var want [][][]Item
			for idx := lo; idx < len(blocks); idx++ {
				if bits[idx] {
					want = append(want, blocks[idx])
				}
			}
			got := m.Current()
			if len(want) == 0 {
				if got.N != 0 {
					t.Fatalf("trial %d step %d: model over %d tx, want empty", trial, step, got.N)
				}
				continue
			}
			ref := aprioriRef(t, want, 0.15)
			if got.N != ref.N || len(got.Frequent) != len(ref.Frequent) {
				t.Fatalf("trial %d step %d: N %d/%d, |L| %d/%d",
					trial, step, got.N, ref.N, len(got.Frequent), len(ref.Frequent))
			}
			for k, c := range ref.Frequent {
				if got.Frequent[k] != c {
					t.Fatalf("trial %d step %d: count(%v) = %d, want %d",
						trial, step, k.Itemset(), got.Frequent[k], c)
				}
			}
		}
	}
}
