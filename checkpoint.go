package demon

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/obs"
)

// Checkpointing persists miner state through the miner's Store, following
// the paper's Section 3.2.3 observation that models are negligibly small
// next to the data: a restarted process restores the model(s) and resumes
// block ingestion where it left off. Blocks and TID-lists already live in
// the Store, so a checkpoint adds only the model collection and the
// snapshot position.
//
// Every checkpoint is written inside a transaction (see diskio.TxnStore):
// the model slots and the position meta become visible together or not at
// all, so a crash mid-checkpoint can never leave a meta record pointing at
// half-written models.

const (
	minerCheckpointPrefix   = "checkpoint/itemset-miner"
	windowCheckpointPrefix  = "checkpoint/itemset-window-miner"
	clusterCheckpointPrefix = "checkpoint/cluster-miner"

	// checkpointMetaVersion is the format version of the meta record. Bump
	// it when the layout changes; restore rejects versions it does not know
	// instead of misreading them.
	checkpointMetaVersion = 0x01
)

// checkpointMeta is the position record of a checkpoint.
type checkpointMeta struct {
	t       BlockID
	totalTx int
	// slots is the window size the checkpoint was taken under; 0 for the
	// unrestricted-window miners.
	slots int
	// bss is the window-relative BSS bit string ("10110"-style) the
	// checkpoint was taken under; empty when none was configured.
	bss string
}

func putCheckpointMeta(store Store, prefix string, m checkpointMeta) error {
	buf := []byte{checkpointMetaVersion}
	buf = diskio.AppendUvarint(buf, uint64(m.t))
	buf = diskio.AppendUvarint(buf, uint64(m.totalTx))
	buf = diskio.AppendUvarint(buf, uint64(m.slots))
	buf = diskio.AppendUvarint(buf, uint64(len(m.bss)))
	buf = append(buf, m.bss...)
	return store.Put(prefix+"/meta", buf)
}

func getCheckpointMeta(store Store, prefix string) (checkpointMeta, error) {
	var m checkpointMeta
	data, err := store.Get(prefix + "/meta")
	if err != nil {
		return m, err
	}
	if len(data) == 0 {
		return m, fmt.Errorf("demon: %w: empty checkpoint meta", diskio.ErrCorrupt)
	}
	if data[0] != checkpointMetaVersion {
		return m, fmt.Errorf("demon: %w: checkpoint meta version %d, this build reads version %d",
			diskio.ErrCorrupt, data[0], checkpointMetaVersion)
	}
	data = data[1:]
	t, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return m, fmt.Errorf("demon: decoding checkpoint position: %w", err)
	}
	total, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return m, fmt.Errorf("demon: decoding checkpoint transaction count: %w", err)
	}
	slots, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return m, fmt.Errorf("demon: decoding checkpoint slot count: %w", err)
	}
	bssLen, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return m, fmt.Errorf("demon: decoding checkpoint BSS length: %w", err)
	}
	if bssLen > uint64(len(data)) {
		return m, fmt.Errorf("demon: %w: truncated checkpoint BSS", diskio.ErrCorrupt)
	}
	m.t = BlockID(t)
	m.totalTx = int(total)
	m.slots = int(slots)
	m.bss = string(data[:bssLen])
	if rest := data[bssLen:]; len(rest) != 0 {
		return m, fmt.Errorf("demon: %w: %d trailing bytes after checkpoint meta",
			diskio.ErrCorrupt, len(rest))
	}
	return m, nil
}

// recoverStore rolls the store's transaction log to a consistent state; every
// open-or-restore path runs it before touching data.
func recoverStore(store Store) error {
	if _, err := diskio.Recover(store); err != nil {
		return fmt.Errorf("demon: recovering store: %w", err)
	}
	return nil
}

// Checkpoint persists the miner's model and position into its Store,
// atomically.
func (m *ItemsetMiner) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.unusable()
	}
	return m.writeCheckpoint(context.Background(), m.snap.T, m.totalTx)
}

// writeCheckpoint stages the model and meta in a transaction of their own,
// or joins the caller's (AddBlock auto-checkpoints inside its block
// transaction, making block and checkpoint one atomic unit). The span for
// the checkpoint work records into ctx's trace when one is attached.
func (m *ItemsetMiner) writeCheckpoint(ctx context.Context, t BlockID, totalTx int) error {
	span := obs.Default().Timer("miner.checkpoint.ns").StartCtx(ctx)
	defer span.End()
	m.io.BeginCtx(span.Ctx(ctx))
	ms := borders.NewModelStore(m.io, minerCheckpointPrefix)
	if err := ms.Save(0, m.model); err != nil {
		m.io.Rollback()
		return err
	}
	if err := putCheckpointMeta(m.io, minerCheckpointPrefix, checkpointMeta{t: t, totalTx: totalTx}); err != nil {
		m.io.Rollback()
		return err
	}
	return m.io.Commit()
}

// RestoreItemsetMiner rebuilds a miner from a checkpoint previously written
// to cfg.Store by Checkpoint. The configuration must match the one the
// checkpoint was taken under (same store contents; the threshold is restored
// from the model). Incomplete transactions left by a crash are rolled back
// or forward first.
func RestoreItemsetMiner(cfg ItemsetMinerConfig) (*ItemsetMiner, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("demon: restoring requires the original Store")
	}
	if err := recoverStore(cfg.Store); err != nil {
		return nil, err
	}
	meta, err := getCheckpointMeta(cfg.Store, minerCheckpointPrefix)
	if err != nil {
		return nil, fmt.Errorf("demon: itemset-miner checkpoint: %w", err)
	}
	ms := borders.NewModelStore(cfg.Store, minerCheckpointPrefix)
	model, err := ms.Load(0)
	if err != nil {
		return nil, err
	}
	cfg.MinSupport = model.Lattice.MinSupport
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		return nil, err
	}
	m.model = model
	m.mt.MinSupport = model.Lattice.MinSupport
	m.snap = blockseq.Snapshot{T: meta.t}
	m.totalTx = meta.totalTx
	return m, nil
}

// ResumeItemsetMiner opens a miner over cfg.Store: when the store holds a
// checkpoint the miner restores from it, otherwise it starts fresh. A
// corrupt checkpoint is an error, never a silent fresh start — resuming past
// damaged state would quietly diverge from the fault-free history.
func ResumeItemsetMiner(cfg ItemsetMinerConfig) (*ItemsetMiner, error) {
	if cfg.Store == nil {
		return NewItemsetMiner(cfg)
	}
	_, err := getCheckpointMeta(cfg.Store, minerCheckpointPrefix)
	switch {
	case errors.Is(err, diskio.ErrNotFound):
		return NewItemsetMiner(cfg)
	case err != nil && !errors.Is(err, diskio.ErrCorrupt):
		return nil, fmt.Errorf("demon: itemset-miner checkpoint: %w", err)
	}
	// A corrupt meta may be a record the transaction log can repair; let
	// Restore recover first and re-read.
	return RestoreItemsetMiner(cfg)
}

// Checkpoint persists the window miner's whole model collection (all w GEMM
// slots) and position into its Store, atomically.
func (m *ItemsetWindowMiner) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.unusable()
	}
	return m.writeCheckpoint(context.Background(), m.snap.T, m.nextTx)
}

func (m *ItemsetWindowMiner) writeCheckpoint(ctx context.Context, t BlockID, nextTx int) error {
	span := obs.Default().Timer("miner.checkpoint.ns").StartCtx(ctx)
	defer span.End()
	m.io.BeginCtx(span.Ctx(ctx))
	ms := borders.NewModelStore(m.io, windowCheckpointPrefix)
	for i, slot := range m.g.Slots() {
		if err := ms.Save(i, slot); err != nil {
			m.io.Rollback()
			return err
		}
	}
	meta := checkpointMeta{t: t, totalTx: nextTx, slots: m.g.WindowSize(), bss: m.cfg.WindowRelBSS.String()}
	if err := putCheckpointMeta(m.io, windowCheckpointPrefix, meta); err != nil {
		m.io.Rollback()
		return err
	}
	return m.io.Commit()
}

// RestoreItemsetWindowMiner rebuilds a window miner from a checkpoint. The
// window configuration (size, BSS, strategy) must match the original; a
// mismatched window size or window-relative BSS is rejected with a
// descriptive error rather than mis-restoring the model collection.
func RestoreItemsetWindowMiner(cfg ItemsetWindowMinerConfig) (*ItemsetWindowMiner, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("demon: restoring requires the original Store")
	}
	if err := recoverStore(cfg.Store); err != nil {
		return nil, err
	}
	meta, err := getCheckpointMeta(cfg.Store, windowCheckpointPrefix)
	if err != nil {
		return nil, fmt.Errorf("demon: window-miner checkpoint: %w", err)
	}
	m, err := NewItemsetWindowMiner(cfg)
	if err != nil {
		return nil, err
	}
	if w := m.g.WindowSize(); meta.slots != w {
		return nil, fmt.Errorf("demon: checkpoint was taken with window size %d, configuration has %d",
			meta.slots, w)
	}
	if rel := cfg.WindowRelBSS.String(); meta.bss != rel {
		return nil, fmt.Errorf("demon: checkpoint was taken with window-relative BSS %q, configuration has %q",
			meta.bss, rel)
	}
	ms := borders.NewModelStore(cfg.Store, windowCheckpointPrefix)
	stored, err := ms.Slots()
	if err != nil {
		return nil, err
	}
	present := make(map[int]bool, len(stored))
	for _, s := range stored {
		present[s] = true
	}
	slots := make([]*borders.Model, m.g.WindowSize())
	for i := range slots {
		if !present[i] {
			return nil, fmt.Errorf("demon: checkpoint is missing model slot %d of %d", i, len(slots))
		}
		if slots[i], err = ms.Load(i); err != nil {
			return nil, err
		}
	}
	if err := m.g.RestoreState(slots, meta.t); err != nil {
		return nil, err
	}
	m.snap = blockseq.Snapshot{T: meta.t}
	m.nextTx = meta.totalTx
	return m, nil
}

// ResumeItemsetWindowMiner opens a window miner over cfg.Store, restoring
// from a checkpoint when one exists and starting fresh otherwise. A corrupt
// checkpoint is an error, never a silent fresh start.
func ResumeItemsetWindowMiner(cfg ItemsetWindowMinerConfig) (*ItemsetWindowMiner, error) {
	if cfg.Store == nil {
		return NewItemsetWindowMiner(cfg)
	}
	_, err := getCheckpointMeta(cfg.Store, windowCheckpointPrefix)
	switch {
	case errors.Is(err, diskio.ErrNotFound):
		return NewItemsetWindowMiner(cfg)
	case err != nil && !errors.Is(err, diskio.ErrCorrupt):
		return nil, fmt.Errorf("demon: window-miner checkpoint: %w", err)
	}
	return RestoreItemsetWindowMiner(cfg)
}

// clusterConfigFingerprint encodes the parameters a cluster checkpoint
// depends on, so restore can reject a mismatched configuration instead of
// decoding the tree under the wrong invariants.
func clusterConfigFingerprint(k int, tree cf.TreeConfig) []byte {
	buf := diskio.AppendUvarint(nil, uint64(k))
	buf = diskio.AppendInts(buf, []int{
		tree.Branching, tree.LeafEntries, tree.MaxLeafEntriesTotal,
		boolInt(tree.OutlierBuffering), tree.OutlierMaxN, int(tree.Metric),
	})
	return diskio.AppendUvarint(buf, math.Float64bits(tree.Threshold))
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Checkpoint persists the cluster miner's resident CF-tree and position into
// its Store, atomically. It requires a configured Store.
func (m *ClusterMiner) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.unusable()
	}
	if m.io == nil {
		return fmt.Errorf("demon: cluster-miner checkpointing requires a Store")
	}
	return m.writeCheckpoint(context.Background(), m.snap.T)
}

func (m *ClusterMiner) writeCheckpoint(ctx context.Context, t BlockID) error {
	span := obs.Default().Timer("miner.checkpoint.ns").StartCtx(ctx)
	defer span.End()
	m.io.BeginCtx(span.Ctx(ctx))
	rollback := func(err error) error { m.io.Rollback(); return err }
	if err := m.io.Put(clusterCheckpointPrefix+"/tree", m.plus.EncodeState()); err != nil {
		return rollback(fmt.Errorf("demon: saving cluster checkpoint: %w", err))
	}
	fp := clusterConfigFingerprint(m.cfg.K, m.cfg.treeConfig())
	if err := m.io.Put(clusterCheckpointPrefix+"/config", fp); err != nil {
		return rollback(fmt.Errorf("demon: saving cluster checkpoint: %w", err))
	}
	meta := checkpointMeta{t: t, totalTx: m.plus.NumPoints()}
	if err := putCheckpointMeta(m.io, clusterCheckpointPrefix, meta); err != nil {
		return rollback(err)
	}
	return m.io.Commit()
}

// RestoreClusterMiner rebuilds a cluster miner from a checkpoint previously
// written to cfg.Store by Checkpoint. K and the CF-tree parameters must
// match the original configuration; a mismatch is rejected.
func RestoreClusterMiner(cfg ClusterMinerConfig) (*ClusterMiner, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("demon: restoring requires the original Store")
	}
	if err := recoverStore(cfg.Store); err != nil {
		return nil, err
	}
	meta, err := getCheckpointMeta(cfg.Store, clusterCheckpointPrefix)
	if err != nil {
		return nil, fmt.Errorf("demon: cluster-miner checkpoint: %w", err)
	}
	fp, err := cfg.Store.Get(clusterCheckpointPrefix + "/config")
	if err != nil {
		return nil, fmt.Errorf("demon: cluster-miner checkpoint config: %w", err)
	}
	if want := clusterConfigFingerprint(cfg.K, cfg.treeConfig()); string(fp) != string(want) {
		return nil, fmt.Errorf("demon: checkpoint was taken under a different cluster configuration "+
			"(K or CF-tree parameters changed); restore with the original K=%d/tree settings", cfg.K)
	}
	state, err := cfg.Store.Get(clusterCheckpointPrefix + "/tree")
	if err != nil {
		return nil, fmt.Errorf("demon: cluster-miner checkpoint tree: %w", err)
	}
	m, err := NewClusterMiner(cfg)
	if err != nil {
		return nil, err
	}
	if m.plus, err = birch.RestorePlus(birch.Config{Tree: cfg.treeConfig(), K: cfg.K, Workers: cfg.Workers}, state); err != nil {
		return nil, err
	}
	m.snap = blockseq.Snapshot{T: meta.t}
	return m, nil
}

// ResumeClusterMiner opens a cluster miner over cfg.Store, restoring from a
// checkpoint when one exists and starting fresh otherwise. A corrupt
// checkpoint is an error, never a silent fresh start.
func ResumeClusterMiner(cfg ClusterMinerConfig) (*ClusterMiner, error) {
	if cfg.Store == nil {
		return NewClusterMiner(cfg)
	}
	_, err := getCheckpointMeta(cfg.Store, clusterCheckpointPrefix)
	switch {
	case errors.Is(err, diskio.ErrNotFound):
		return NewClusterMiner(cfg)
	case err != nil && !errors.Is(err, diskio.ErrCorrupt):
		return nil, fmt.Errorf("demon: cluster-miner checkpoint: %w", err)
	}
	return RestoreClusterMiner(cfg)
}
