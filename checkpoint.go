package demon

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
)

// Checkpointing persists miner state through the miner's Store, following
// the paper's Section 3.2.3 observation that models are negligibly small
// next to the data: a restarted process restores the model(s) and resumes
// block ingestion where it left off. Blocks and TID-lists already live in
// the Store, so a checkpoint adds only the model collection and the
// snapshot position.

const (
	minerCheckpointPrefix  = "checkpoint/itemset-miner"
	windowCheckpointPrefix = "checkpoint/itemset-window-miner"
)

func putCheckpointMeta(store Store, prefix string, t BlockID, totalTx int) error {
	buf := diskio.AppendUvarint(nil, uint64(t))
	buf = diskio.AppendUvarint(buf, uint64(totalTx))
	return store.Put(prefix+"/meta", buf)
}

func getCheckpointMeta(store Store, prefix string) (BlockID, int, error) {
	data, err := store.Get(prefix + "/meta")
	if err != nil {
		return 0, 0, err
	}
	t, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("demon: decoding checkpoint meta: %w", err)
	}
	total, _, err := diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("demon: decoding checkpoint meta: %w", err)
	}
	return BlockID(t), int(total), nil
}

// Checkpoint persists the miner's model and position into its Store.
func (m *ItemsetMiner) Checkpoint() error {
	ms := borders.NewModelStore(m.cfg.Store, minerCheckpointPrefix)
	if err := ms.Save(0, m.model); err != nil {
		return err
	}
	return putCheckpointMeta(m.cfg.Store, minerCheckpointPrefix, m.snap.T, m.totalTx)
}

// RestoreItemsetMiner rebuilds a miner from a checkpoint previously written
// to cfg.Store by Checkpoint. The configuration must match the one the
// checkpoint was taken under (same store contents; the threshold is restored
// from the model).
func RestoreItemsetMiner(cfg ItemsetMinerConfig) (*ItemsetMiner, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("demon: restoring requires the original Store")
	}
	t, totalTx, err := getCheckpointMeta(cfg.Store, minerCheckpointPrefix)
	if err != nil {
		return nil, fmt.Errorf("demon: no itemset-miner checkpoint: %w", err)
	}
	ms := borders.NewModelStore(cfg.Store, minerCheckpointPrefix)
	model, err := ms.Load(0)
	if err != nil {
		return nil, err
	}
	cfg.MinSupport = model.Lattice.MinSupport
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		return nil, err
	}
	m.model = model
	m.mt.MinSupport = model.Lattice.MinSupport
	m.snap = blockseq.Snapshot{T: t}
	m.totalTx = totalTx
	return m, nil
}

// Checkpoint persists the window miner's whole model collection (all w GEMM
// slots) and position into its Store.
func (m *ItemsetWindowMiner) Checkpoint() error {
	ms := borders.NewModelStore(m.cfg.Store, windowCheckpointPrefix)
	for i, slot := range m.g.Slots() {
		if err := ms.Save(i, slot); err != nil {
			return err
		}
	}
	return putCheckpointMeta(m.cfg.Store, windowCheckpointPrefix, m.snap.T, m.nextTx)
}

// RestoreItemsetWindowMiner rebuilds a window miner from a checkpoint. The
// window configuration (size, BSS, strategy) must match the original; only
// the store contents carry state.
func RestoreItemsetWindowMiner(cfg ItemsetWindowMinerConfig) (*ItemsetWindowMiner, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("demon: restoring requires the original Store")
	}
	t, nextTx, err := getCheckpointMeta(cfg.Store, windowCheckpointPrefix)
	if err != nil {
		return nil, fmt.Errorf("demon: no window-miner checkpoint: %w", err)
	}
	m, err := NewItemsetWindowMiner(cfg)
	if err != nil {
		return nil, err
	}
	ms := borders.NewModelStore(cfg.Store, windowCheckpointPrefix)
	slots := make([]*borders.Model, m.g.WindowSize())
	for i := range slots {
		if slots[i], err = ms.Load(i); err != nil {
			return nil, err
		}
	}
	if err := m.g.RestoreState(slots, t); err != nil {
		return nil, err
	}
	m.snap = blockseq.Snapshot{T: t}
	m.nextTx = nextTx
	return m, nil
}
