package demon

// The fault-sweep harness — the repository's strongest durability evidence.
// For every operation index k of a fault-free golden run, a fresh run is
// crashed at exactly op k (with torn-write injection, so the dying Put leaves
// a detectable half-record), restarted over the surviving bytes, resumed from
// its last checkpoint, and driven to completion. The recovered store must be
// byte-identical to the golden store: no lost blocks, no duplicated counts,
// no staging debris, no quarantined keys, no silently ingested torn values.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
)

// sweepTxBlocks builds a deterministic transactional workload: nBlocks blocks
// of nTxs transactions, three distinct items each, with enough repetition
// across blocks that minsup 0.3 yields a non-trivial lattice.
func sweepTxBlocks(nBlocks, nTxs int) [][][]Item {
	out := make([][][]Item, nBlocks)
	for b := range out {
		txs := make([][]Item, nTxs)
		for i := range txs {
			base := Item((b + i) % 4)
			txs[i] = []Item{base, base + 10, Item(20 + i%3)}
		}
		out[b] = txs
	}
	return out
}

// sweepPointBlocks builds a deterministic clustering workload: two well
// separated centers visited alternately.
func sweepPointBlocks(nBlocks, perBlock int) [][]Point {
	out := make([][]Point, nBlocks)
	for b := range out {
		pts := make([]Point, perBlock)
		for i := range pts {
			c := float64(((b + i) % 2) * 8)
			pts[i] = Point{c + float64(i%4)*0.25, c - float64(i%3)*0.5}
		}
		out[b] = pts
	}
	return out
}

// dumpStoreBytes snapshots every key/value of a store.
func dumpStoreBytes(t *testing.T, s Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("dumping store: %v", err)
	}
	dump := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("dumping store key %s: %v", k, err)
		}
		dump[k] = string(v)
	}
	return dump
}

// diffDumps describes how two store dumps differ, for failure messages.
func diffDumps(got, want map[string]string) string {
	var lines []string
	for k := range want {
		if _, ok := got[k]; !ok {
			lines = append(lines, "missing key "+k)
		}
	}
	for k, v := range got {
		w, ok := want[k]
		switch {
		case !ok:
			lines = append(lines, "extra key "+k)
		case v != w:
			lines = append(lines, fmt.Sprintf("key %s differs (%d vs %d bytes)", k, len(v), len(w)))
		}
	}
	sort.Strings(lines)
	if len(lines) > 12 {
		lines = append(lines[:12], fmt.Sprintf("... and %d more", len(lines)-12))
	}
	return strings.Join(lines, "\n")
}

// runFaultSweep drives the crash-at-every-op sweep. fresh feeds the whole
// workload (plus a final checkpoint) into the given store; resume reopens a
// miner over the surviving store, re-feeds what is missing, and checkpoints.
// Both receive an already checksum-framed store.
func runFaultSweep(t *testing.T, fresh, resume func(Store) error) {
	t.Helper()

	// Golden run: no faults. The dump of the base (raw, framed) bytes is the
	// reference every recovered run must reproduce exactly.
	goldenBase := diskio.NewMemStore()
	if err := fresh(diskio.NewChecksumStore(goldenBase)); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	golden := dumpStoreBytes(t, goldenBase)

	// Counting run: same workload through a disarmed FaultStore to learn the
	// operation count — the coordinate system of the sweep.
	countFS := diskio.NewFaultStore(diskio.NewMemStore())
	if err := fresh(diskio.NewChecksumStore(countFS)); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := int(countFS.Ops())
	if total == 0 {
		t.Fatal("workload performed no store operations")
	}

	stride := 1
	if testing.Short() {
		stride = total/40 + 1
	}
	t.Logf("sweeping %d operation indices (stride %d)", total, stride)

	for k := 0; k < total; k += stride {
		base := diskio.NewMemStore()
		fs := diskio.NewFaultStore(base)
		fs.TornWrite = true
		fs.CrashAfter(k)
		if err := fresh(diskio.NewChecksumStore(fs)); err == nil {
			t.Fatalf("k=%d: workload succeeded despite crash injection", k)
		}
		if !fs.Dead() {
			t.Fatalf("k=%d: workload failed before the crash fired", k)
		}

		// Restart over the surviving bytes, fault-free.
		clean := diskio.NewChecksumStore(base)
		if err := resume(clean); err != nil {
			t.Fatalf("k=%d: recovery run: %v", k, err)
		}
		got := dumpStoreBytes(t, base)
		if d := diffDumps(got, golden); d != "" {
			t.Fatalf("k=%d: recovered store diverges from golden run:\n%s", k, d)
		}
		// A torn write must never survive as live data: a full scrub after
		// recovery finds nothing to quarantine.
		rep, err := clean.Scrub("")
		if err != nil {
			t.Fatalf("k=%d: scrub: %v", k, err)
		}
		if len(rep.Quarantined) != 0 {
			t.Fatalf("k=%d: scrub quarantined %v after recovery", k, rep.Quarantined)
		}
	}
}

func TestFaultSweepItemsetMinerECUT(t *testing.T) {
	workload := sweepTxBlocks(6, 8)
	cfg := func(s Store) ItemsetMinerConfig {
		return ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT, Store: s, AutoCheckpointEvery: 2}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepItemsetMinerECUTPlus(t *testing.T) {
	if testing.Short() {
		t.Skip("covered densely by the ECUT sweep; run without -short for the ECUT+ sweep")
	}
	workload := sweepTxBlocks(5, 8)
	cfg := func(s Store) ItemsetMinerConfig {
		return ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUTPlus, ECUTPlusBudget: 64,
			Store: s, AutoCheckpointEvery: 1}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepItemsetWindowMiner(t *testing.T) {
	workload := sweepTxBlocks(5, 6)
	cfg := func(s Store) ItemsetWindowMinerConfig {
		return ItemsetWindowMinerConfig{MinSupport: 0.3, Strategy: PTScan, WindowSize: 3,
			Store: s, AutoCheckpointEvery: 1}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetWindowMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetWindowMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepClusterMiner(t *testing.T) {
	workload := sweepPointBlocks(6, 12)
	cfg := func(s Store) ClusterMinerConfig {
		return ClusterMinerConfig{K: 2, Store: s, AutoCheckpointEvery: 1,
			Tree: TreeConfig{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 32}}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewClusterMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, pts := range workload {
				if _, err := m.AddBlock(pts); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeClusterMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, pts := range workload[int(m.T()):] {
				if _, err := m.AddBlock(pts); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

// Resuming over a damaged checkpoint must fail loudly — a silent fresh start
// would quietly diverge from the fault-free history.
func TestFaultSweepResumeRejectsCorruptCheckpoint(t *testing.T) {
	base := diskio.NewMemStore()
	store := diskio.NewChecksumStore(base)
	cfg := ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT, Store: store}
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range sweepTxBlocks(2, 6) {
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit of the framed meta record underneath the checksum layer.
	key := minerCheckpointPrefix + "/meta"
	raw, err := base.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw = append([]byte(nil), raw...)
	raw[len(raw)/2] ^= 0x40
	if err := base.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeItemsetMiner(cfg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("resume over corrupt checkpoint: got %v, want ErrCorrupt", err)
	}
}

// A sticky miner stays unusable after a failed block until resumed.
func TestFaultSweepMinerUnusableAfterFailure(t *testing.T) {
	base := diskio.NewMemStore()
	fs := diskio.NewFaultStore(base)
	cfg := ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT,
		Store: diskio.NewChecksumStore(fs), AutoCheckpointEvery: 1}
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	workload := sweepTxBlocks(2, 6)
	if _, err := m.AddBlock(workload[0]); err != nil {
		t.Fatal(err)
	}
	fs.FailAfter(0)
	if _, err := m.AddBlock(workload[1]); err == nil {
		t.Fatal("AddBlock succeeded under an armed fault")
	}
	if _, err := m.AddBlock(workload[1]); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("failed miner accepted another block: %v", err)
	}
	if err := m.Checkpoint(); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("failed miner accepted a checkpoint: %v", err)
	}

	// Resume brings a fresh miner back over the same store, able to finish.
	r, err := ResumeItemsetMiner(ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT,
		Store: diskio.NewChecksumStore(base), AutoCheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range workload[int(r.T()):] {
		if _, err := r.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if r.T() != 2 {
		t.Fatalf("resumed miner at T=%d, want 2", r.T())
	}
}
