package demon

// The fault-sweep harness — the repository's strongest durability evidence.
// For every operation index k of a fault-free golden run, a fresh run is
// crashed at exactly op k (with torn-write injection, so the dying Put leaves
// a detectable half-record), restarted over the surviving bytes, resumed from
// its last checkpoint, and driven to completion. The recovered store must be
// byte-identical to the golden store: no lost blocks, no duplicated counts,
// no staging debris, no quarantined keys, no silently ingested torn values.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/diskio/kvfile"
)

// sweepTxBlocks builds a deterministic transactional workload: nBlocks blocks
// of nTxs transactions, three distinct items each, with enough repetition
// across blocks that minsup 0.3 yields a non-trivial lattice.
func sweepTxBlocks(nBlocks, nTxs int) [][][]Item {
	out := make([][][]Item, nBlocks)
	for b := range out {
		txs := make([][]Item, nTxs)
		for i := range txs {
			base := Item((b + i) % 4)
			txs[i] = []Item{base, base + 10, Item(20 + i%3)}
		}
		out[b] = txs
	}
	return out
}

// sweepPointBlocks builds a deterministic clustering workload: two well
// separated centers visited alternately.
func sweepPointBlocks(nBlocks, perBlock int) [][]Point {
	out := make([][]Point, nBlocks)
	for b := range out {
		pts := make([]Point, perBlock)
		for i := range pts {
			c := float64(((b + i) % 2) * 8)
			pts[i] = Point{c + float64(i%4)*0.25, c - float64(i%3)*0.5}
		}
		out[b] = pts
	}
	return out
}

// dumpStoreBytes snapshots every key/value of a store.
func dumpStoreBytes(t *testing.T, s Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("dumping store: %v", err)
	}
	dump := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("dumping store key %s: %v", k, err)
		}
		dump[k] = string(v)
	}
	return dump
}

// diffDumps describes how two store dumps differ, for failure messages.
func diffDumps(got, want map[string]string) string {
	var lines []string
	for k := range want {
		if _, ok := got[k]; !ok {
			lines = append(lines, "missing key "+k)
		}
	}
	for k, v := range got {
		w, ok := want[k]
		switch {
		case !ok:
			lines = append(lines, "extra key "+k)
		case v != w:
			lines = append(lines, fmt.Sprintf("key %s differs (%d vs %d bytes)", k, len(v), len(w)))
		}
	}
	sort.Strings(lines)
	if len(lines) > 12 {
		lines = append(lines[:12], fmt.Sprintf("... and %d more", len(lines)-12))
	}
	return strings.Join(lines, "\n")
}

// sweepBackend parameterizes the sweep over a storage backend. newBase
// returns a fresh raw store plus a reopen func that simulates the crash
// restart over the surviving bytes (for kvfile: Close + Open, exercising the
// index rebuild; for MemStore the same object survives). wrap builds the
// production stack the workload actually runs through.
type sweepBackend struct {
	name    string
	newBase func(t *testing.T) (Store, func(t *testing.T) Store)
	wrap    func(Store) Store
}

// sweepBackends is the matrix every miner sweep can run over. The mem
// backend is the dense default; file-layout backends prove the same
// crash-at-every-op contract over their own on-disk formats.
func sweepBackends() []sweepBackend {
	checksum := func(s Store) Store { return diskio.NewChecksumStore(s) }
	return []sweepBackend{
		{
			name: "mem",
			newBase: func(t *testing.T) (Store, func(t *testing.T) Store) {
				base := diskio.NewMemStore()
				return base, func(*testing.T) Store { return base }
			},
			wrap: checksum,
		},
		{
			name:    "file",
			newBase: fileSweepBase,
			wrap:    checksum,
		},
		{
			name:    "kvfile",
			newBase: kvfileSweepBase,
			wrap:    checksum,
		},
		{
			name:    "kvfile+cache",
			newBase: kvfileSweepBase,
			wrap: func(s Store) Store {
				return diskio.NewCacheStore(diskio.NewChecksumStore(s), 64<<10)
			},
		},
	}
}

func fileSweepBase(t *testing.T) (Store, func(t *testing.T) Store) {
	dir := t.TempDir()
	open := func(t *testing.T) Store {
		fs, err := diskio.NewFileStore(dir)
		if err != nil {
			t.Fatalf("NewFileStore: %v", err)
		}
		return fs
	}
	return open(t), open
}

func kvfileSweepBase(t *testing.T) (Store, func(t *testing.T) Store) {
	path := t.TempDir() + "/store.kv"
	open := func(t *testing.T) *kvfile.Store {
		s, err := kvfile.Open(path, kvfile.Options{})
		if err != nil {
			t.Fatalf("kvfile.Open: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	s := open(t)
	reopen := func(t *testing.T) Store {
		if err := s.Close(); err != nil {
			t.Fatalf("kvfile.Close before reopen: %v", err)
		}
		s = open(t)
		return s
	}
	return s, reopen
}

// runFaultSweep drives the crash-at-every-op sweep on the in-memory backend
// (the dense default — see runFaultSweepBackend for the disk formats). fresh
// feeds the whole workload (plus a final checkpoint) into the given store;
// resume reopens a miner over the surviving store, re-feeds what is missing,
// and checkpoints. Both receive an already checksum-framed store.
func runFaultSweep(t *testing.T, fresh, resume func(Store) error) {
	t.Helper()
	runFaultSweepBackend(t, sweepBackends()[0], 0, fresh, resume)
}

// runFaultSweepBackend drives the sweep over one backend. maxIndices caps
// how many crash indices are visited (0 = dense, subject to -short); disk
// backends pass a cap because every op costs real fsyncs.
func runFaultSweepBackend(t *testing.T, be sweepBackend, maxIndices int, fresh, resume func(Store) error) {
	t.Helper()

	// Golden run: no faults. The dump of the base (raw, framed) bytes is the
	// reference every recovered run must reproduce exactly.
	goldenBase, _ := be.newBase(t)
	if err := fresh(be.wrap(goldenBase)); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	golden := dumpStoreBytes(t, goldenBase)

	// Counting run: same workload through a disarmed FaultStore to learn the
	// operation count — the coordinate system of the sweep.
	countBase, _ := be.newBase(t)
	countFS := diskio.NewFaultStore(countBase)
	if err := fresh(be.wrap(countFS)); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := int(countFS.Ops())
	if total == 0 {
		t.Fatal("workload performed no store operations")
	}

	stride := 1
	if testing.Short() {
		stride = total/40 + 1
	}
	if maxIndices > 0 && total/stride > maxIndices {
		stride = total/maxIndices + 1
	}
	t.Logf("sweeping %d operation indices (stride %d)", total, stride)

	for k := 0; k < total; k += stride {
		base, reopen := be.newBase(t)
		fs := diskio.NewFaultStore(base)
		fs.TornWrite = true
		fs.CrashAfter(k)
		if err := fresh(be.wrap(fs)); err == nil {
			t.Fatalf("k=%d: workload succeeded despite crash injection", k)
		}
		if !fs.Dead() {
			t.Fatalf("k=%d: workload failed before the crash fired", k)
		}

		// Restart over the surviving bytes, fault-free.
		survivor := reopen(t)
		clean := be.wrap(survivor)
		if err := resume(clean); err != nil {
			t.Fatalf("k=%d: recovery run: %v", k, err)
		}
		got := dumpStoreBytes(t, survivor)
		if d := diffDumps(got, golden); d != "" {
			t.Fatalf("k=%d: recovered store diverges from golden run:\n%s", k, d)
		}
		// A torn write must never survive as live data: a full scrub after
		// recovery finds nothing to quarantine.
		rep, err := diskio.ScrubChain(clean, "")
		if err != nil {
			t.Fatalf("k=%d: scrub: %v", k, err)
		}
		if len(rep.Quarantined) != 0 {
			t.Fatalf("k=%d: scrub quarantined %v after recovery", k, rep.Quarantined)
		}
	}
}

func TestFaultSweepItemsetMinerECUT(t *testing.T) {
	workload := sweepTxBlocks(6, 8)
	cfg := func(s Store) ItemsetMinerConfig {
		return ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT, Store: s, AutoCheckpointEvery: 2}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepItemsetMinerECUTPlus(t *testing.T) {
	if testing.Short() {
		t.Skip("covered densely by the ECUT sweep; run without -short for the ECUT+ sweep")
	}
	workload := sweepTxBlocks(5, 8)
	cfg := func(s Store) ItemsetMinerConfig {
		return ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUTPlus, ECUTPlusBudget: 64,
			Store: s, AutoCheckpointEvery: 1}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepItemsetWindowMiner(t *testing.T) {
	workload := sweepTxBlocks(5, 6)
	cfg := func(s Store) ItemsetWindowMinerConfig {
		return ItemsetWindowMinerConfig{MinSupport: 0.3, Strategy: PTScan, WindowSize: 3,
			Store: s, AutoCheckpointEvery: 1}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewItemsetWindowMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeItemsetWindowMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, rows := range workload[int(m.T()):] {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

func TestFaultSweepClusterMiner(t *testing.T) {
	workload := sweepPointBlocks(6, 12)
	cfg := func(s Store) ClusterMinerConfig {
		return ClusterMinerConfig{K: 2, Store: s, AutoCheckpointEvery: 1,
			Tree: TreeConfig{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 32}}
	}
	runFaultSweep(t,
		func(s Store) error {
			m, err := NewClusterMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, pts := range workload {
				if _, err := m.AddBlock(pts); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		},
		func(s Store) error {
			m, err := ResumeClusterMiner(cfg(s))
			if err != nil {
				return err
			}
			for _, pts := range workload[int(m.T()):] {
				if _, err := m.AddBlock(pts); err != nil {
					return err
				}
			}
			return m.Checkpoint()
		})
}

// TestFaultSweepBackends proves the crash-at-every-op contract holds per
// storage backend: the same ECUT workload swept over the one-file-per-key
// store, the single-file KV engine (whose restart path rebuilds the index
// from the log), and the KV engine under a read cache. Disk backends pay
// real fsyncs per op, so their sweeps visit a capped set of crash indices
// (still spanning the whole op range); the dense sweep runs on mem above.
func TestFaultSweepBackends(t *testing.T) {
	workload := sweepTxBlocks(4, 6)
	cfg := func(s Store) ItemsetMinerConfig {
		return ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT, Store: s, AutoCheckpointEvery: 2}
	}
	fresh := func(s Store) error {
		m, err := NewItemsetMiner(cfg(s))
		if err != nil {
			return err
		}
		for _, rows := range workload {
			if _, err := m.AddBlock(rows); err != nil {
				return err
			}
		}
		return m.Checkpoint()
	}
	resume := func(s Store) error {
		m, err := ResumeItemsetMiner(cfg(s))
		if err != nil {
			return err
		}
		for _, rows := range workload[int(m.T()):] {
			if _, err := m.AddBlock(rows); err != nil {
				return err
			}
		}
		return m.Checkpoint()
	}
	maxIndices := 40
	if testing.Short() {
		maxIndices = 8
	}
	for _, be := range sweepBackends() {
		if be.name == "mem" {
			continue // densely covered by TestFaultSweepItemsetMinerECUT
		}
		be := be
		t.Run(be.name, func(t *testing.T) {
			runFaultSweepBackend(t, be, maxIndices, fresh, resume)
		})
	}
}

// Resuming over a damaged checkpoint must fail loudly — a silent fresh start
// would quietly diverge from the fault-free history.
func TestFaultSweepResumeRejectsCorruptCheckpoint(t *testing.T) {
	base := diskio.NewMemStore()
	store := diskio.NewChecksumStore(base)
	cfg := ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT, Store: store}
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range sweepTxBlocks(2, 6) {
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit of the framed meta record underneath the checksum layer.
	key := minerCheckpointPrefix + "/meta"
	raw, err := base.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw = append([]byte(nil), raw...)
	raw[len(raw)/2] ^= 0x40
	if err := base.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeItemsetMiner(cfg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("resume over corrupt checkpoint: got %v, want ErrCorrupt", err)
	}
}

// A sticky miner stays unusable after a failed block until resumed.
func TestFaultSweepMinerUnusableAfterFailure(t *testing.T) {
	base := diskio.NewMemStore()
	fs := diskio.NewFaultStore(base)
	cfg := ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT,
		Store: diskio.NewChecksumStore(fs), AutoCheckpointEvery: 1}
	m, err := NewItemsetMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	workload := sweepTxBlocks(2, 6)
	if _, err := m.AddBlock(workload[0]); err != nil {
		t.Fatal(err)
	}
	fs.FailAfter(0)
	if _, err := m.AddBlock(workload[1]); err == nil {
		t.Fatal("AddBlock succeeded under an armed fault")
	}
	if _, err := m.AddBlock(workload[1]); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("failed miner accepted another block: %v", err)
	}
	if err := m.Checkpoint(); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("failed miner accepted a checkpoint: %v", err)
	}

	// Resume brings a fresh miner back over the same store, able to finish.
	r, err := ResumeItemsetMiner(ItemsetMinerConfig{MinSupport: 0.3, Strategy: ECUT,
		Store: diskio.NewChecksumStore(base), AutoCheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range workload[int(r.T()):] {
		if _, err := r.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if r.T() != 2 {
		t.Fatalf("resumed miner at T=%d, want 2", r.T())
	}
}
