package demon_test

import (
	"fmt"
	"log"

	demon "github.com/demon-mining/demon"
)

// ExampleItemsetMiner maintains frequent itemsets over the unrestricted
// window as blocks arrive.
func ExampleItemsetMiner() {
	miner, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{
		MinSupport: 0.5,
		Strategy:   demon.ECUT,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Night one: bread+butter dominates.
	if _, err := miner.AddBlock([][]demon.Item{
		{1, 2}, {1, 2}, {1, 2, 3}, {3},
	}); err != nil {
		log.Fatal(err)
	}
	// Night two: still strong.
	if _, err := miner.AddBlock([][]demon.Item{
		{1, 2}, {1, 2, 4}, {4},
	}); err != nil {
		log.Fatal(err)
	}

	for _, fi := range miner.FrequentItemsets() {
		fmt.Printf("%v %.2f\n", fi.Itemset, fi.Support)
	}
	// Output:
	// {1} 0.71
	// {1, 2} 0.71
	// {2} 0.71
}

// ExampleItemsetWindowMiner mines only the two most recent blocks: old
// fashions drop out of the model as the window slides.
func ExampleItemsetWindowMiner() {
	miner, err := demon.NewItemsetWindowMiner(demon.ItemsetWindowMinerConfig{
		MinSupport: 0.5,
		WindowSize: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fad := [][]demon.Item{{7, 8}, {7, 8}, {7, 8}}
	staple := [][]demon.Item{{1, 2}, {1, 2}, {1, 2}}
	for _, block := range [][][]demon.Item{fad, staple, staple} {
		if _, err := miner.AddBlock(block); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("window:", miner.Window())
	for _, fi := range miner.FrequentItemsets() {
		fmt.Printf("%v %.2f\n", fi.Itemset, fi.Support)
	}
	// Output:
	// window: D[2, 3]
	// {1} 1.00
	// {1, 2} 1.00
	// {2} 1.00
}

// ExampleMonitor detects which blocks look alike: the third block follows a
// different regime and forms its own pattern.
func ExampleMonitor() {
	monitor, err := demon.NewMonitor(demon.MonitorConfig{MinSupport: 0.1, Alpha: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	regimeA := make([][]demon.Item, 200)
	regimeB := make([][]demon.Item, 200)
	for i := range regimeA {
		regimeA[i] = []demon.Item{1, 2}
		regimeB[i] = []demon.Item{8, 9}
	}
	for _, block := range [][][]demon.Item{regimeA, regimeA, regimeB} {
		if _, err := monitor.AddBlock(block); err != nil {
			log.Fatal(err)
		}
	}

	for _, pattern := range monitor.Patterns() {
		fmt.Println(pattern)
	}
	// Output:
	// [1 2]
	// [3]
}

// ExampleEveryNth restricts mining to a periodic selection of blocks — here
// "every second block".
func ExampleEveryNth() {
	miner, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{
		MinSupport: 0.5,
		BSS:        demon.EveryNth(2, 1), // blocks 1, 3, 5, ...
	})
	if err != nil {
		log.Fatal(err)
	}
	odd := [][]demon.Item{{1}, {1}}
	even := [][]demon.Item{{2}, {2}}
	for _, block := range [][][]demon.Item{odd, even, odd} {
		if _, err := miner.AddBlock(block); err != nil {
			log.Fatal(err)
		}
	}
	// Item 2 was only in the skipped block 2.
	for _, fi := range miner.FrequentItemsets() {
		fmt.Printf("%v %.2f\n", fi.Itemset, fi.Support)
	}
	// Output:
	// {1} 1.00
}

// ExampleCompareTransactionBlocks quantifies how different two blocks are
// and which itemsets explain the gap.
func ExampleCompareTransactionBlocks() {
	a := make([][]demon.Item, 100)
	b := make([][]demon.Item, 100)
	for i := range a {
		a[i] = []demon.Item{1, 2}
		b[i] = []demon.Item{1, 9}
	}
	cmp, err := demon.CompareTransactionBlocks(a, b, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same process plausible: %v\n", cmp.PValue >= 0.01)
	d := cmp.TopDifferences[0]
	fmt.Printf("biggest gap: %v (%.2f vs %.2f)\n", d.Itemset, d.SupportA, d.SupportB)
	// Output:
	// same process plausible: false
	// biggest gap: {1, 2} (1.00 vs 0.00)
}

// ExampleItemsetMiner_rules derives association rules from the maintained
// model.
func ExampleItemsetMiner_rules() {
	miner, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{MinSupport: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	block := [][]demon.Item{
		{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1},
		{3}, {3}, {3}, {3}, {3},
	}
	if _, err := miner.AddBlock(block); err != nil {
		log.Fatal(err)
	}
	rules, err := miner.Rules(0.75)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// {2} => {1} (sup 0.400, conf 1.000, lift 2.00)
	// {1} => {2} (sup 0.400, conf 0.800, lift 2.00)
}
