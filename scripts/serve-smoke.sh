#!/usr/bin/env bash
# Live smoke test of the demon-serve binary: start it on a temp root with the
# hardening flags, create a namespace, stream NDJSON blocks from demon-datagen
# through demon-feed (sequenced, exactly-once), re-feed the same stream to see
# duplicates acknowledged, bounce an oversized body off the 413 cap, query the
# model, SIGTERM it mid-life, and verify the restart resumes the namespace at
# the drained block with the feed still idempotent. Run via `make serve-smoke`
# so bin/ is fresh.
set -euo pipefail

cd "$(dirname "$0")/.."
for b in bin/demon-serve bin/demon-feed bin/demon-datagen; do
    [ -x "$b" ] || { echo "serve-smoke: $b missing (run make bin)" >&2; exit 1; }
done
BIN=bin/demon-serve

ROOT=$(mktemp -d)
PORT=$(( (RANDOM % 1000) + 18000 ))
ADDR="localhost:$PORT"
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$ROOT"
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "serve-smoke: server never became healthy on $ADDR" >&2
    exit 1
}

start_server() {
    "$BIN" -root "$ROOT" -addr "$ADDR" \
        -max-ingest-bytes $((256 * 1024)) \
        -http-read-header-timeout 5s &
    SRV_PID=$!
    wait_healthy
}

echo "serve-smoke: starting $BIN on $ADDR (root $ROOT)"
start_server

echo "serve-smoke: /versionz and /metricsz answer"
curl -fsS "http://$ADDR/versionz" | grep -q '"go"'
curl -fsS "http://$ADDR/metricsz" >/dev/null

echo "serve-smoke: /readyz reports ready"
READY=$(curl -fsS "http://$ADDR/readyz")
echo "$READY" | grep -q '"ready": *true' || { echo "serve-smoke: /readyz not ready: $READY" >&2; exit 1; }

echo "serve-smoke: creating namespace and feeding blocks through demon-feed"
curl -fsS -X POST "http://$ADDR/v1/namespaces" \
    -d '{"name":"smoke","kind":"itemset","min_support":0.05,"strategy":"ecut"}' >/dev/null
bin/demon-datagen -kind tx -format ndjson -blocks 4 -blocksize 200 -dir - 2>/dev/null \
    > "$ROOT/blocks.ndjson"
FEED=$(bin/demon-feed -url "http://$ADDR" -ns smoke < "$ROOT/blocks.ndjson" 2>/dev/null)
echo "$FEED" | grep -q '"read":4' && echo "$FEED" | grep -q '"sent":4' ||
    { echo "serve-smoke: first feed did not send all blocks: $FEED" >&2; exit 1; }
curl -fsS "http://$ADDR/v1/namespaces/smoke/itemsets?top=3" | grep -q '"support"'

echo "serve-smoke: re-feeding the same stream is acknowledged as duplicates"
REFEED=$(bin/demon-feed -url "http://$ADDR" -ns smoke -no-sync < "$ROOT/blocks.ndjson" 2>/dev/null)
echo "$REFEED" | grep -q '"duplicates":4' ||
    { echo "serve-smoke: duplicate re-send not acknowledged: $REFEED" >&2; exit 1; }
curl -fsS "http://$ADDR/v1/namespaces/smoke" | grep -q '"seq": *4'

echo "serve-smoke: an oversized ingest body is refused with 413"
CODE=$(head -c 300000 /dev/zero | tr '\0' ' ' |
    curl -s -o /dev/null -w '%{http_code}' --data-binary @- \
        "http://$ADDR/v1/namespaces/smoke/blocks")
[ "$CODE" = 413 ] || { echo "serve-smoke: oversized body got $CODE, want 413" >&2; exit 1; }
curl -fsS "http://$ADDR/metricsz" | grep -q 'serve.ingest.rejected|reason=body' ||
    { echo "serve-smoke: 413 did not bump the rejected counter" >&2; exit 1; }

echo "serve-smoke: traced curl ingest retains the trace end to end"
curl -fsS -X POST "http://$ADDR/v1/namespaces" \
    -d '{"name":"traced","kind":"itemset","min_support":0.05,"strategy":"ecut"}' >/dev/null
head -1 "$ROOT/blocks.ndjson" |
    curl -fsS -X POST -H 'X-Demon-Trace-Id: smoke-trace' --data-binary @- \
        "http://$ADDR/v1/namespaces/traced/blocks" >/dev/null
curl -fsS -X POST "http://$ADDR/v1/namespaces/traced/flush" >/dev/null
TRACE=$(curl -fsS "http://$ADDR/tracez?id=smoke-trace")
for span in serve.http.request.ns serve.queue.wait.ns miner.itemset.addblock.ns diskio.txn.commit.ns; do
    echo "$TRACE" | grep -q "\"$span\"" ||
        { echo "serve-smoke: trace is missing span $span:" >&2; echo "$TRACE" >&2; exit 1; }
done

echo "serve-smoke: /metricsz?format=prometheus parses as exposition text"
PROM=$(curl -fsS "http://$ADDR/metricsz?format=prometheus")
echo "$PROM" | grep -q '^# TYPE demon_' ||
    { echo "serve-smoke: no # TYPE demon_* families in exposition" >&2; exit 1; }
echo "$PROM" | tail -1 | grep -q '^# EOF$' ||
    { echo "serve-smoke: exposition does not end with # EOF" >&2; exit 1; }
echo "$PROM" | grep -q '_seconds_bucket{.*le="+Inf"} ' ||
    { echo "serve-smoke: no timer histogram buckets in exposition" >&2; exit 1; }
echo "$PROM" | grep -q 'demon_serve_queue_depth{ns="smoke"} ' ||
    { echo "serve-smoke: per-namespace labelled gauge missing" >&2; exit 1; }
echo "$PROM" | grep -q '^demon_runtime_goroutines ' ||
    { echo "serve-smoke: runtime collector gauges missing" >&2; exit 1; }
# Every sample line must be NAME{labels} VALUE — no malformed stragglers.
BAD=$(echo "$PROM" | grep -v '^#' | grep -Ev '^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9+.eInf-]+$' || true)
if [ -n "$BAD" ]; then
    echo "serve-smoke: malformed exposition line(s):" >&2
    echo "$BAD" >&2
    exit 1
fi

echo "serve-smoke: SIGTERM drains and exits cleanly"
kill -TERM "$SRV_PID"
wait "$SRV_PID"

echo "serve-smoke: restart resumes the namespace and the feed stays idempotent"
start_server
curl -fsS "http://$ADDR/namespacesz" | grep -q '"t": 4'
RESUME=$(bin/demon-feed -url "http://$ADDR" -ns smoke < "$ROOT/blocks.ndjson" 2>/dev/null)
echo "$RESUME" | grep -q '"read":4' && echo "$RESUME" | grep -q '"sent":0' ||
    { echo "serve-smoke: post-restart feed re-sent durable blocks: $RESUME" >&2; exit 1; }

kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=

echo "serve-smoke: OK"
