#!/usr/bin/env bash
# Lint the registry instrument names used across the repo (run via `make
# lint-metrics`). The conventions the Prometheus writer and dashboards rely
# on:
#
#   - names are lowercase dotted paths: subsystem.operation[.unit]
#     ([a-z0-9_] segments joined by '.');
#   - names are rooted in a known subsystem (see KNOWN_SUBSYSTEMS below) so
#     a typo'd prefix cannot silently fork a metric family;
#   - Timer names end in ".ns" (the writer maps them to *_seconds);
#   - an optional label suffix "|k=v[,k2=v2]" with the same alphabet in
#     keys and values.
#
# Test files may mint throwaway names; only non-test sources are linted.
# Literals ending in '.' are prefixes completed at runtime and are checked
# against the prefix rules only.
set -euo pipefail

cd "$(dirname "$0")/.."

# The subsystems with a registered owner. Adding a metric under a new
# subsystem means adding it here (and to the dashboards that consume it).
KNOWN_SUBSYSTEMS="birch borders diskio focus gemm miner monitor pattern perf runtime serve"

fail=0

# instrument<TAB>name<TAB>file:line for every non-test instrument literal.
extract() {
    grep -rnoE '\.(Timer|Counter|Gauge|Histogram)\("[^"]*"' . \
        --include='*.go' --exclude='*_test.go' --exclude-dir=bin |
    sed -E 's/^(.*):\.(Timer|Counter|Gauge|Histogram)\("([^"]*)"/\2\t\3\t\1/'
}

while IFS=$'\t' read -r kind name loc; do
    base=${name%%|*}
    labels=""
    [ "$base" != "$name" ] && labels=${name#*|}

    if ! printf '%s' "$base" | grep -qE '^[a-z0-9_]+(\.[a-z0-9_]+)*\.?$'; then
        echo "lint-metrics: $loc: $kind name \"$name\" is not a lowercase dotted path"
        fail=1
        continue
    fi
    case $base in
    *.) continue ;; # runtime-completed prefix: no suffix/segment checks
    esac
    if ! printf '%s' "$base" | grep -q '\.'; then
        echo "lint-metrics: $loc: $kind name \"$name\" lacks a subsystem prefix (want subsystem.operation)"
        fail=1
    else
        subsystem=${base%%.*}
        case " $KNOWN_SUBSYSTEMS " in
        *" $subsystem "*) ;;
        *)
            echo "lint-metrics: $loc: $kind name \"$name\" uses unknown subsystem \"$subsystem\" (add it to KNOWN_SUBSYSTEMS if intended)"
            fail=1
            ;;
        esac
    fi
    if [ "$kind" = Timer ] && [ "${base%.ns}" = "$base" ]; then
        echo "lint-metrics: $loc: Timer name \"$name\" must end in .ns"
        fail=1
    fi
    if [ "$kind" != Timer ] && [ "${base%.ns}" != "$base" ] && [ "$kind" != Gauge ]; then
        echo "lint-metrics: $loc: $kind name \"$name\" ends in .ns but is not a Timer"
        fail=1
    fi
    if [ -n "$labels" ] &&
        ! printf '%s' "$labels" | grep -qE '^[a-z0-9_]+=[a-z0-9_.-]+(,[a-z0-9_]+=[a-z0-9_.-]+)*$'; then
        echo "lint-metrics: $loc: $kind label suffix \"|$labels\" is malformed (want |k=v[,k2=v2])"
        fail=1
    fi
done < <(extract)

if [ "$fail" -ne 0 ]; then
    echo "lint-metrics: FAILED" >&2
    exit 1
fi
echo "lint-metrics: OK"
