package demon

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/gemm"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/tidlist"
)

// bordersAdapter lets GEMM drive the BORDERS maintainer.
type bordersAdapter struct {
	mt *borders.Maintainer
}

func (a bordersAdapter) Empty() *borders.Model { return a.mt.Empty() }

func (a bordersAdapter) Add(m *borders.Model, blk *itemset.TxBlock) (*borders.Model, error) {
	if _, err := a.mt.AddBlock(m, blk); err != nil {
		return nil, err
	}
	return m, nil
}

// ItemsetWindowMinerConfig configures an ItemsetWindowMiner. Exactly one of
// BSS (with WindowSize) or WindowRelBSS must be set; a nil BSS with a zero
// WindowRelBSS defaults to all blocks selected.
type ItemsetWindowMinerConfig struct {
	// MinSupport is the fractional minimum support κ ∈ (0, 1).
	MinSupport float64
	// Strategy selects the update-phase counting procedure (default PTScan).
	Strategy CountingStrategy
	// Store persists blocks and TID-lists; defaults to an in-memory store.
	Store Store
	// WindowSize is the number w of most recent blocks mined. Required when
	// using a window-independent BSS; inferred from WindowRelBSS otherwise.
	WindowSize int
	// BSS optionally restricts the window-independent selection.
	BSS BSS
	// WindowRelBSS optionally gives a window-relative selection; its length
	// fixes the window size.
	WindowRelBSS WindowRelBSS
	// ECUTPlusBudget caps per-block pair materialization (see
	// ItemsetMinerConfig).
	ECUTPlusBudget int64
	// Workers is the parallel-ingestion knob: AddBlock fans the w GEMM slot
	// updates across this many worker goroutines (each slot running a serial
	// BORDERS maintenance step) and TID-list materialization shards the same
	// way. Zero or negative selects GOMAXPROCS; 1 keeps ingestion serial.
	// The model collection and the stored bytes are identical for every
	// worker count.
	Workers int
	// AutoCheckpointEvery checkpoints the model collection automatically
	// after every N-th block, inside the same atomic transaction as the
	// block itself. Zero or negative disables automatic checkpoints.
	AutoCheckpointEvery int
	// TxnHook, when non-nil, runs inside every AddBlock transaction before
	// commit; see ItemsetMinerConfig.TxnHook.
	TxnHook func(store Store, id BlockID) error
}

// WindowReport describes one AddBlock step of a window miner.
type WindowReport struct {
	// Block is the identifier assigned to the new block.
	Block BlockID
	// Response is the time until the new current model was available — the
	// time-critical single A_M invocation of Section 3.2.3.
	Response time.Duration
	// Offline is the time spent updating the remaining future-window
	// models, which the paper performs off-line.
	Offline time.Duration
	// Ingest is the time spent storing the block and materializing
	// TID-lists.
	Ingest time.Duration
}

// ItemsetWindowMiner maintains the set of frequent itemsets over the most
// recent window of w blocks with respect to a BSS — GEMM instantiated with
// the BORDERS maintainer.
type ItemsetWindowMiner struct {
	// mu makes readers (Current, FrequentItemsets, Window, T,
	// DistinctModels) safe concurrently with AddBlock and Checkpoint.
	mu     sync.RWMutex
	cfg    ItemsetWindowMinerConfig
	io     *diskio.TxnStore // cfg.Store wrapped with atomic transactions
	blocks *itemset.BlockStore
	tids   *tidlist.Store
	g      *gemm.GEMM[*itemset.TxBlock, *borders.Model]
	snap   blockseq.Snapshot
	nextTx int
	err    error
}

// NewItemsetWindowMiner creates a window miner over an empty database.
// Incomplete transactions left in the store by a crash are recovered before
// the miner starts.
func NewItemsetWindowMiner(cfg ItemsetWindowMinerConfig) (*ItemsetWindowMiner, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport >= 1 {
		return nil, fmt.Errorf("demon: minimum support %v outside (0, 1)", cfg.MinSupport)
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if err := recoverStore(cfg.Store); err != nil {
		return nil, err
	}
	m := &ItemsetWindowMiner{
		cfg: cfg,
		io:  diskio.NewTxnStore(cfg.Store),
	}
	m.blocks = itemset.NewBlockStore(m.io)
	m.tids = tidlist.NewStore(m.io)
	m.tids.SetWorkers(cfg.Workers)
	// The window miner parallelizes ACROSS the w GEMM slots, so each slot's
	// maintainer runs serially (workers = 1) — nesting both would
	// oversubscribe without speeding anything up.
	counter, err := newCounter(cfg.Strategy, m.blocks, m.tids, 1)
	if err != nil {
		return nil, err
	}
	ad := bordersAdapter{mt: &borders.Maintainer{Store: m.blocks, Counter: counter, MinSupport: cfg.MinSupport, IO: m.io, Workers: 1}}

	switch {
	case cfg.WindowRelBSS.Len() > 0:
		if cfg.WindowSize != 0 && cfg.WindowSize != cfg.WindowRelBSS.Len() {
			return nil, fmt.Errorf("demon: window size %d conflicts with window-relative BSS of length %d",
				cfg.WindowSize, cfg.WindowRelBSS.Len())
		}
		m.g, err = gemm.NewWindowRelative[*itemset.TxBlock, *borders.Model](ad, cfg.WindowRelBSS)
	default:
		if cfg.WindowSize < 1 {
			return nil, fmt.Errorf("demon: window size %d < 1", cfg.WindowSize)
		}
		b := cfg.BSS
		if b == nil {
			b = AllBlocks()
		}
		m.g, err = gemm.NewWindowIndependent[*itemset.TxBlock, *borders.Model](ad, cfg.WindowSize, b)
	}
	if err != nil {
		return nil, err
	}
	m.g.SetWorkers(cfg.Workers)
	return m, nil
}

// unusable reports the sticky failure; see ItemsetMiner.unusable.
func (m *ItemsetWindowMiner) unusable() error {
	return fmt.Errorf("demon: miner unusable after failed block (resume from the last checkpoint): %w", m.err)
}

// AddBlock appends the next block, updates the w maintained models per
// Algorithm 3.1, and reports the response time.
//
// The block's writes commit as one atomic transaction (see
// ItemsetMiner.AddBlock); on error the miner becomes unusable and must be
// reopened with ResumeItemsetWindowMiner.
func (m *ItemsetWindowMiner) AddBlock(transactions [][]Item) (*WindowReport, error) {
	return m.AddBlockCtx(context.Background(), transactions)
}

// AddBlockCtx is AddBlock carrying a request context: when ctx belongs to a
// sampled trace, the block's ingest span, the GEMM slot maintenance, and the
// storage transaction commit record into that trace.
func (m *ItemsetWindowMiner) AddBlockCtx(ctx context.Context, transactions [][]Item) (rep *WindowReport, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.unusable()
	}
	span := obs.Default().Timer("miner.window.addblock.ns").StartCtx(ctx)
	defer span.End()
	ctx = span.Ctx(ctx)

	snap, id := m.snap.Append()
	blk := itemset.NewTxBlock(id, m.nextTx, transactions)

	m.io.BeginCtx(ctx)
	defer func() {
		if err != nil {
			m.io.Rollback()
			m.err = err
		}
	}()

	rep = &WindowReport{Block: id}
	start := time.Now()
	// Pair materialization uses the current window model's frequent
	// 2-itemsets.
	if err := ingestTxBlock(m.blocks, m.tids, m.cfg.Strategy, m.cfg.ECUTPlusBudget,
		m.g.Current().Lattice, blk); err != nil {
		return nil, fmt.Errorf("demon: ingesting block %d: %w", id, err)
	}
	rep.Ingest = time.Since(start)

	start = time.Now()
	if err := m.g.AddBlockCtx(ctx, blk, id); err != nil {
		return nil, err
	}
	total := time.Since(start)
	// GEMM updates all slots together; the response-critical share is the
	// single update of the slot that became current. Approximate the split
	// by the slot count (the per-slot work is one A_M invocation each).
	rep.Response = total / time.Duration(m.g.WindowSize())
	rep.Offline = total - rep.Response

	nextTx := m.nextTx + len(blk.Txs)
	if n := m.cfg.AutoCheckpointEvery; n > 0 && int(id)%n == 0 {
		if err := m.writeCheckpoint(ctx, id, nextTx); err != nil {
			return nil, err
		}
	}
	if h := m.cfg.TxnHook; h != nil {
		if err := h(m.io, id); err != nil {
			return nil, fmt.Errorf("demon: block %d transaction hook: %w", id, err)
		}
	}
	if err := m.io.Commit(); err != nil {
		return nil, err
	}
	m.snap = snap
	m.nextTx = nextTx
	return rep, nil
}

// Current returns a snapshot of the model on the current most recent window
// with respect to the BSS. The snapshot is the caller's to mutate; it does
// not track later maintenance.
func (m *ItemsetWindowMiner) Current() *Lattice {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.current().Clone()
}

// current returns the live current-window lattice; callers hold mu.
func (m *ItemsetWindowMiner) current() *Lattice { return m.g.Current().Lattice }

// FrequentItemsets lists the current window's frequent itemsets.
func (m *ItemsetWindowMiner) FrequentItemsets() []ItemsetSupport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l := m.current()
	sets := l.FrequentSets()
	out := make([]ItemsetSupport, len(sets))
	for i, x := range sets {
		c := l.Frequent[x.Key()]
		out[i] = ItemsetSupport{Itemset: x, Count: c, Support: float64(c) / float64(max(l.N, 1))}
	}
	return out
}

// Window returns the current most recent window.
func (m *ItemsetWindowMiner) Window() Window {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g.Window()
}

// T returns the identifier of the latest ingested block.
func (m *ItemsetWindowMiner) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}

// DistinctModels reports how many of the w maintained models are distinct
// under the configured BSS.
func (m *ItemsetWindowMiner) DistinctModels() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g.DistinctModels()
}
