package demon

import (
	"github.com/demon-mining/demon/internal/proxysim"
)

// ProxyTraceBlock is one segmented block of the simulated web proxy trace:
// transaction rows ready for a Monitor or ItemsetMiner, plus a label and day
// classification for interpreting discovered patterns.
type ProxyTraceBlock struct {
	// Transactions holds one {object type, size bucket} pair per request.
	Transactions [][]Item
	// Label names the period, e.g. "Mon 09-09 12:00-18:00".
	Label string
	// Weekend marks weekend and holiday blocks; Anomalous marks the
	// anomalous Monday 9-9-1996.
	Weekend, Anomalous bool
}

// SimulatedProxyTrace generates the repository's stand-in for the DEC web
// proxy traces of the paper's Section 5.3 (see DESIGN.md for the
// substitution rationale) and segments it into blocks of the given
// granularity in hours (the paper uses 4, 6, 8, 12 or 24). requestsPerHour
// scales the volume (the experiments use 400); the trace is deterministic in
// the seed.
func SimulatedProxyTrace(granularityHours, requestsPerHour int, seed int64) ([]ProxyTraceBlock, error) {
	trace := proxysim.Generate(proxysim.Config{Seed: seed, RequestsPerHour: requestsPerHour})
	blocks, infos, err := trace.Segment(granularityHours)
	if err != nil {
		return nil, err
	}
	out := make([]ProxyTraceBlock, 0, len(blocks))
	for i, blk := range blocks {
		b := ProxyTraceBlock{
			Label:     infos[i].Label(),
			Weekend:   infos[i].Kind == proxysim.Weekend,
			Anomalous: infos[i].Kind == proxysim.Anomalous,
		}
		b.Transactions = make([][]Item, blk.Len())
		for j, tx := range blk.Txs {
			b.Transactions[j] = tx.Items
		}
		out = append(out, b)
	}
	return out, nil
}
