package demon

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/dtree"
	"github.com/demon-mining/demon/internal/gemm"
)

// recordsModel is the GEMM model for decision-tree classifiers: the labelled
// records of the blocks the (projected or right-shifted) BSS selected. A
// tree is induced on demand. Decision trees are not incrementally
// maintainable under deletions either, so — like BIRCH sub-clusters — they
// are a natural fit for GEMM's insert-only model collection.
type recordsModel struct {
	records []dtree.Record
}

type recordsMaintainer struct{}

func (recordsMaintainer) Empty() *recordsModel { return &recordsModel{} }

func (recordsMaintainer) Add(m *recordsModel, blk []dtree.Record) (*recordsModel, error) {
	m.records = append(m.records, blk...)
	return m, nil
}

// ClassifierWindowMinerConfig configures a ClassifierWindowMiner.
type ClassifierWindowMinerConfig struct {
	// NumClasses is the label arity.
	NumClasses int
	// WindowSize is the number of most recent blocks the classifier is
	// trained over (required unless WindowRelBSS is set).
	WindowSize int
	// BSS optionally restricts the window-independent selection.
	BSS BSS
	// WindowRelBSS optionally gives a window-relative selection.
	WindowRelBSS WindowRelBSS
	// MaxDepth / MinLeaf tune tree induction (zero = defaults).
	MaxDepth, MinLeaf int
}

// ClassifierWindowMiner maintains a decision-tree classifier over the most
// recent window of labelled blocks with respect to a BSS — GEMM instantiated
// with the decision-tree model class, completing the paper's Figure 11
// problem space for the third model family.
type ClassifierWindowMiner struct {
	cfg  ClassifierWindowMinerConfig
	g    *gemm.GEMM[[]dtree.Record, *recordsModel]
	snap blockseq.Snapshot
}

// NewClassifierWindowMiner creates a window miner over an empty database.
func NewClassifierWindowMiner(cfg ClassifierWindowMinerConfig) (*ClassifierWindowMiner, error) {
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("demon: classifier window miner needs at least 2 classes, got %d", cfg.NumClasses)
	}
	var g *gemm.GEMM[[]dtree.Record, *recordsModel]
	var err error
	switch {
	case cfg.WindowRelBSS.Len() > 0:
		if cfg.WindowSize != 0 && cfg.WindowSize != cfg.WindowRelBSS.Len() {
			return nil, fmt.Errorf("demon: window size %d conflicts with window-relative BSS of length %d",
				cfg.WindowSize, cfg.WindowRelBSS.Len())
		}
		g, err = gemm.NewWindowRelative[[]dtree.Record, *recordsModel](recordsMaintainer{}, cfg.WindowRelBSS)
	default:
		if cfg.WindowSize < 1 {
			return nil, fmt.Errorf("demon: window size %d < 1", cfg.WindowSize)
		}
		b := cfg.BSS
		if b == nil {
			b = AllBlocks()
		}
		g, err = gemm.NewWindowIndependent[[]dtree.Record, *recordsModel](recordsMaintainer{}, cfg.WindowSize, b)
	}
	if err != nil {
		return nil, err
	}
	return &ClassifierWindowMiner{cfg: cfg, g: g}, nil
}

// AddBlock appends the next block of labelled records.
func (m *ClassifierWindowMiner) AddBlock(records []LabeledRecord) error {
	blk := make([]dtree.Record, len(records))
	for i, r := range records {
		if r.Y < 0 || r.Y >= m.cfg.NumClasses {
			return fmt.Errorf("demon: record %d has label %d outside [0, %d)", i, r.Y, m.cfg.NumClasses)
		}
		x := make([]float64, len(r.X))
		copy(x, r.X)
		blk[i] = dtree.Record{X: x, Y: r.Y}
	}
	snap, id := m.snap.Append()
	if err := m.g.AddBlock(blk, id); err != nil {
		return err
	}
	m.snap = snap
	return nil
}

// Classifier trains and returns the decision tree over the current window's
// selected blocks. It errors when the selection is empty.
func (m *ClassifierWindowMiner) Classifier() (*Classifier, error) {
	cur := m.g.Current()
	if len(cur.records) == 0 {
		return nil, fmt.Errorf("demon: current window selects no records")
	}
	tree, err := dtree.Build(cur.records, m.cfg.NumClasses, dtree.Config{
		MaxDepth: m.cfg.MaxDepth,
		MinLeaf:  m.cfg.MinLeaf,
	})
	if err != nil {
		return nil, err
	}
	return &Classifier{tree: tree}, nil
}

// Window returns the current most recent window.
func (m *ClassifierWindowMiner) Window() Window { return m.g.Window() }

// T returns the identifier of the latest ingested block.
func (m *ClassifierWindowMiner) T() BlockID { return m.snap.T }

// Classifier is a trained decision tree.
type Classifier struct {
	tree *dtree.Tree
}

// Predict returns the predicted class of a point.
func (c *Classifier) Predict(x []float64) (int, error) { return c.tree.Predict(x) }

// Accuracy returns the fraction of records classified correctly.
func (c *Classifier) Accuracy(records []LabeledRecord) (float64, error) {
	rs := make([]dtree.Record, len(records))
	for i, r := range records {
		rs[i] = dtree.Record{X: r.X, Y: r.Y}
	}
	return c.tree.Accuracy(rs)
}

// NumLeaves returns the number of leaf regions of the tree.
func (c *Classifier) NumLeaves() int { return c.tree.NumLeaves() }
