package demon

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/itemset"
)

// randomTxRows draws random transaction rows.
func randomTxRows(rng *rand.Rand, n, universe, avgLen int) [][]Item {
	rows := make([][]Item, n)
	for i := range rows {
		m := 1 + rng.Intn(2*avgLen)
		rows[i] = make([]Item, m)
		for j := range rows[i] {
			rows[i][j] = Item(rng.Intn(universe))
		}
	}
	return rows
}

// aprioriRef computes the reference lattice over the concatenation of rows.
func aprioriRef(t *testing.T, blocks [][][]Item, minsup float64) *Lattice {
	t.Helper()
	var txs []itemset.Transaction
	tid := 0
	for _, rows := range blocks {
		for _, row := range rows {
			txs = append(txs, itemset.Transaction{TID: tid, Items: NewItemset(row...)})
			tid++
		}
	}
	l, err := itemset.Apriori(itemset.SliceSource(txs), nil, minsup)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func assertLatticeEqual(t *testing.T, got, want *Lattice) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N = %d, want %d", got.N, want.N)
	}
	if len(got.Frequent) != len(want.Frequent) {
		t.Fatalf("|L| = %d, want %d", len(got.Frequent), len(want.Frequent))
	}
	for k, c := range want.Frequent {
		if got.Frequent[k] != c {
			t.Fatalf("count(%v) = %d, want %d", k.Itemset(), got.Frequent[k], c)
		}
	}
}

func TestItemsetMinerAllStrategies(t *testing.T) {
	for _, strategy := range []CountingStrategy{PTScan, HashTree, ECUT, ECUTPlus} {
		t.Run(strategy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			var all [][][]Item
			for step := 0; step < 3; step++ {
				rows := randomTxRows(rng, 60, 12, 4)
				all = append(all, rows)
				rep, err := m.AddBlock(rows)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Block != BlockID(step+1) || !rep.Selected {
					t.Fatalf("report %+v", rep)
				}
				assertLatticeEqual(t, m.Lattice(), aprioriRef(t, all, 0.1))
			}
			if m.T() != 3 {
				t.Fatalf("T = %d", m.T())
			}
			fi := m.FrequentItemsets()
			if len(fi) == 0 {
				t.Fatal("no frequent itemsets")
			}
			for _, s := range fi {
				if s.Support <= 0 || s.Support > 1 || s.Count <= 0 {
					t.Fatalf("bad support entry %+v", s)
				}
			}
		})
	}
}

func TestItemsetMinerBSSSkipsBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Select odd blocks only.
	m, err := NewItemsetMiner(ItemsetMinerConfig{
		MinSupport: 0.1,
		BSS:        BSSFunc(func(id BlockID) bool { return id%2 == 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var selected [][][]Item
	for step := 1; step <= 4; step++ {
		rows := randomTxRows(rng, 50, 10, 4)
		rep, err := m.AddBlock(rows)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Selected != (step%2 == 1) {
			t.Fatalf("block %d Selected = %v", step, rep.Selected)
		}
		if step%2 == 1 {
			selected = append(selected, rows)
		}
	}
	assertLatticeEqual(t, m.Lattice(), aprioriRef(t, selected, 0.1))
	if got := m.ModelBlocks(); !reflect.DeepEqual(got, []BlockID{1, 3}) {
		t.Fatalf("ModelBlocks = %v", got)
	}
}

func TestItemsetMinerDeleteOldest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var all [][][]Item
	for step := 0; step < 3; step++ {
		rows := randomTxRows(rng, 50, 10, 4)
		all = append(all, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.DeleteOldestBlock(); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, m.Lattice(), aprioriRef(t, all[1:], 0.1))

	// Deleting everything then once more errors.
	if _, err := m.DeleteOldestBlock(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteOldestBlock(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteOldestBlock(); err == nil {
		t.Fatal("DeleteOldestBlock on empty model succeeded")
	}
}

func TestItemsetMinerChangeMinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rows := randomTxRows(rng, 100, 10, 4)
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ChangeMinSupport(0.1); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, m.Lattice(), aprioriRef(t, [][][]Item{rows}, 0.1))
}

func TestItemsetMinerConfigValidation(t *testing.T) {
	if _, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0}); err == nil {
		t.Error("accepted κ = 0")
	}
	if _, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: CountingStrategy(99)}); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestItemsetWindowMinerSlides(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{
		MinSupport: 0.1, WindowSize: 2, Strategy: ECUT,
	})
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for step := 0; step < 4; step++ {
		rows := randomTxRows(rng, 50, 10, 4)
		blocks = append(blocks, rows)
		rep, err := m.AddBlock(rows)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Response <= 0 && step > 0 {
			t.Fatalf("step %d response time %v", step, rep.Response)
		}
		// Current model must equal Apriori over the last min(w, t) blocks.
		lo := len(blocks) - 2
		if lo < 0 {
			lo = 0
		}
		assertLatticeEqual(t, m.Current(), aprioriRef(t, blocks[lo:], 0.1))
	}
	if m.Window() != (Window{Lo: 3, Hi: 4}) {
		t.Fatalf("Window = %v", m.Window())
	}
	if len(m.FrequentItemsets()) == 0 {
		t.Fatal("no frequent itemsets in window")
	}
}

func TestItemsetWindowMinerWindowRelative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rel, err := ParseWindowRelBSS("101")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1, WindowRelBSS: rel})
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for step := 0; step < 4; step++ {
		rows := randomTxRows(rng, 40, 10, 4)
		blocks = append(blocks, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	// At t = 4 with ⟨101⟩ the window is D[2,4] and positions 1,3 are
	// selected: blocks 2 and 4.
	assertLatticeEqual(t, m.Current(), aprioriRef(t, [][][]Item{blocks[1], blocks[3]}, 0.1))
	if m.DistinctModels() != 3 {
		t.Fatalf("DistinctModels = %d", m.DistinctModels())
	}
}

func TestItemsetWindowMinerValidation(t *testing.T) {
	if _, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1}); err == nil {
		t.Error("accepted missing window size")
	}
	rel, _ := ParseWindowRelBSS("11")
	if _, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{
		MinSupport: 0.1, WindowRelBSS: rel, WindowSize: 3,
	}); err == nil {
		t.Error("accepted conflicting window size")
	}
	if _, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 2, WindowSize: 2}); err == nil {
		t.Error("accepted κ = 2")
	}
}

func clusterRows(rng *rand.Rand, centers []Point, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make(Point, len(c))
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func TestClusterMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	centers := []Point{{0, 0}, {40, 40}}
	m, err := NewClusterMiner(ClusterMinerConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if _, err := m.AddBlock(clusterRows(rng, centers, 400)); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := m.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("clusters = %d", len(cs))
	}
	totalN := 0
	for _, c := range cs {
		totalN += c.N
		best := math.Inf(1)
		for _, truth := range centers {
			d := 0.0
			for i := range truth {
				d += (c.Centroid[i] - truth[i]) * (c.Centroid[i] - truth[i])
			}
			if d = math.Sqrt(d); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("centroid %v off by %v", c.Centroid, best)
		}
		if c.Radius <= 0 || c.Radius > 3 {
			t.Fatalf("radius %v implausible", c.Radius)
		}
	}
	if totalN != 1200 {
		t.Fatalf("clusters cover %d points, want 1200", totalN)
	}
	labels, err := m.Assign([]Point{{1, 1}, {39, 39}})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] == labels[1] {
		t.Fatal("distant points assigned to the same cluster")
	}
	if m.NumSubClusters() == 0 || m.T() != 3 {
		t.Fatalf("state: subclusters=%d T=%d", m.NumSubClusters(), m.T())
	}
}

func TestClusterMinerBSS(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := NewClusterMiner(ClusterMinerConfig{
		K:   1,
		BSS: BSSFunc(func(id BlockID) bool { return id == 2 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Block 1 (skipped) far from block 2 (selected).
	if _, err := m.AddBlock(clusterRows(rng, []Point{{1000, 1000}}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBlock(clusterRows(rng, []Point{{0, 0}}, 100)); err != nil {
		t.Fatal(err)
	}
	cs, err := m.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].N != 100 {
		t.Fatalf("clusters = %+v", cs)
	}
	if math.Abs(cs[0].Centroid[0]) > 2 {
		t.Fatalf("skipped block leaked into the model: centroid %v", cs[0].Centroid)
	}
}

func TestClusterWindowMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewClusterWindowMiner(ClusterWindowMinerConfig{K: 1, WindowSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three blocks at distinct locations; the window keeps the last two.
	locs := []Point{{0, 0}, {100, 0}, {200, 0}}
	for _, loc := range locs {
		if err := m.AddBlock(clusterRows(rng, []Point{loc}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := m.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("clusters = %d", len(cs))
	}
	// Mean of blocks 2 and 3 is x = 150.
	if math.Abs(cs[0].Centroid[0]-150) > 2 {
		t.Fatalf("window model centroid %v, want x ≈ 150", cs[0].Centroid)
	}
	if cs[0].N != 400 {
		t.Fatalf("window model N = %d, want 400", cs[0].N)
	}
	if m.Window() != (Window{Lo: 2, Hi: 3}) || m.T() != 3 {
		t.Fatalf("window state %v T=%d", m.Window(), m.T())
	}
}

func TestClusterWindowMinerValidation(t *testing.T) {
	if _, err := NewClusterWindowMiner(ClusterWindowMinerConfig{K: 1}); err == nil {
		t.Error("accepted missing window size")
	}
	if _, err := NewClusterWindowMiner(ClusterWindowMinerConfig{K: 0, WindowSize: 2}); err == nil {
		t.Error("accepted K = 0")
	}
}

func TestMonitorFindsRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, err := NewMonitor(MonitorConfig{MinSupport: 0.05, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Regime A on blocks 1-3, regime B (disjoint items) on blocks 4-5.
	regime := func(base Item, n int) [][]Item {
		rows := make([][]Item, n)
		for i := range rows {
			rows[i] = []Item{base, base + 1, base + Item(rng.Intn(3))}
		}
		return rows
	}
	for i := 0; i < 3; i++ {
		if _, err := m.AddBlock(regime(0, 300)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := m.AddBlock(regime(100, 300)); err != nil {
			t.Fatal(err)
		}
	}
	pats := m.Patterns()
	want := [][]BlockID{{1, 2, 3}, {4, 5}}
	if !reflect.DeepEqual(pats, want) {
		t.Fatalf("Patterns = %v, want %v", pats, want)
	}
	score, p, ok := m.Similarity(1, 4)
	if !ok || p > 0.01 || score <= 0 {
		t.Fatalf("Similarity(1,4) = %v, %v, %v", score, p, ok)
	}
	if m.T() != 5 {
		t.Fatalf("T = %d", m.T())
	}
}

func TestCyclicPatternFacade(t *testing.T) {
	got := CyclicPattern([]BlockID{1, 3, 4, 5, 7}, 2)
	if !reflect.DeepEqual(got, []BlockID{1, 3, 5, 7}) {
		t.Fatalf("CyclicPattern = %v", got)
	}
}

func TestClusterMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := NewClusterMonitor(ClusterMonitorConfig{K: 2, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	regimeA := []Point{{0, 0}, {50, 50}}
	regimeB := []Point{{25, 0}, {0, 25}}
	for i := 0; i < 2; i++ {
		if _, err := m.AddBlock(clusterRows(rng, regimeA, 400)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AddBlock(clusterRows(rng, regimeB, 400)); err != nil {
		t.Fatal(err)
	}
	pats := m.Patterns()
	want := [][]BlockID{{1, 2}, {3}}
	if !reflect.DeepEqual(pats, want) {
		t.Fatalf("Patterns = %v, want %v", pats, want)
	}
}

func TestCountingStrategyString(t *testing.T) {
	if PTScan.String() != "PT-Scan" || ECUT.String() != "ECUT" ||
		ECUTPlus.String() != "ECUT+" || HashTree.String() != "HT-Scan" {
		t.Fatal("strategy names wrong")
	}
	if CountingStrategy(42).String() != "unknown" {
		t.Fatal("unknown strategy name")
	}
}

func TestStoreAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	store := NewMemStore()
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Store: store, Strategy: ECUT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBlock(randomTxRows(rng, 50, 10, 4)); err != nil {
		t.Fatal(err)
	}
	st := m.Store().Stats()
	if st.BytesWritten == 0 {
		t.Fatal("no bytes written during ingest")
	}
}

// TestItemsetMinerParallelWorkers: a miner with sharded counting must match
// the serial miner exactly.
func TestItemsetMinerParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	serial, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		rows := randomTxRows(rng, 60, 10, 4)
		if _, err := serial.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
		assertLatticeEqual(t, parallel.Lattice(), serial.Lattice())
	}
}

func TestFileStoreBackedMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	store, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUTPlus, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var all [][][]Item
	for i := 0; i < 2; i++ {
		rows := randomTxRows(rng, 50, 10, 4)
		all = append(all, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	assertLatticeEqual(t, m.Lattice(), aprioriRef(t, all, 0.1))
	if store.Stats().BytesWritten == 0 {
		t.Fatal("file store saw no writes")
	}
}

func TestMonitorBootstrapAndWindow(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{MinSupport: 0.1, Alpha: 0.01, Window: 2, Bootstrap: true, Resamples: 20})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Item, 100)
	for i := range rows {
		rows[i] = []Item{1, 2}
	}
	for i := 0; i < 3; i++ {
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if m.T() != 3 {
		t.Fatalf("T = %d", m.T())
	}
	// Window 2: block 1 expired from every sequence.
	for _, seq := range m.AllSequences() {
		for _, id := range seq {
			if id < 2 {
				t.Fatalf("expired block %d still in %v", id, seq)
			}
		}
	}
	if _, err := NewMonitor(MonitorConfig{MinSupport: 0, Alpha: 0.01}); err == nil {
		t.Error("accepted κ = 0")
	}
	if _, err := NewMonitor(MonitorConfig{MinSupport: 0.1, Alpha: 0}); err == nil {
		t.Error("accepted α = 0")
	}
}
