package tidlist

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/par"
)

// Store materializes and serves per-block TID-lists. For every ingested
// block it holds one list per item (the ECUT organization) and, optionally,
// lists for a chosen set of 2-itemsets (the ECUT+ materialization). Lists
// are written once when the block arrives and never modified, per the
// additivity and 0/1 properties.
type Store struct {
	store diskio.Store
	// pairMu guards pairIndex; the parallel counters read through one Store
	// concurrently.
	pairMu sync.Mutex
	// pairIndex caches, per block, the set of materialized 2-itemset keys.
	pairIndex map[blockseq.ID]map[itemset.Key]bool
	// entriesRead counts TIDs decoded from storage, the paper's "amount of
	// data fetched" cost metric.
	entriesRead atomic.Int64
	// workers is the materialization worker knob; see SetWorkers.
	workers int
}

// NewStore wraps a diskio.Store.
func NewStore(store diskio.Store) *Store {
	return &Store{store: store, pairIndex: make(map[blockseq.ID]map[itemset.Key]bool)}
}

func itemKey(id blockseq.ID, it itemset.Item) string {
	return fmt.Sprintf("tid/%08d/i%d", id, it)
}

func pairKey(id blockseq.ID, pair itemset.Itemset) string {
	return fmt.Sprintf("tid2/%08d/p%d-%d", id, pair[0], pair[1])
}

func pairIdxKey(id blockseq.ID) string {
	return fmt.Sprintf("tid2idx/%08d", id)
}

// SetWorkers sets the worker count Materialize and MaterializePairs shard
// their scan and encode work across: non-positive selects GOMAXPROCS, 1
// keeps materialization serial. Writes stay serial and ordered regardless,
// so the stored bytes are identical to the serial path for every worker
// count. SetWorkers must not be called concurrently with materialization.
func (s *Store) SetWorkers(n int) { s.workers = n }

// EntriesRead returns the total number of TIDs decoded from storage since
// the store was created or ResetEntriesRead was called.
func (s *Store) EntriesRead() int64 { return s.entriesRead.Load() }

// ResetEntriesRead zeroes the entry counter.
func (s *Store) ResetEntriesRead() { s.entriesRead.Store(0) }

// Materialize builds and persists the TID-list θ_Di(x) of every item
// occurring in the block. It performs the single scan described in the
// paper: each transaction's TID is appended to the buffer of each of its
// items, and buffers are flushed at the end.
// The scan and the per-item encoding are sharded across the configured
// workers; TIDs increase with transaction index, so concatenating per-shard
// buffers in shard order preserves sorted order and the flushed bytes are
// identical to a serial pass.
func (s *Store) Materialize(b *itemset.TxBlock) error {
	var buffers map[itemset.Item]List
	shards := par.Shards(len(b.Txs), s.workers)
	if shards <= 1 {
		buffers = scanItemLists(b.Txs)
	} else {
		part := make([]map[itemset.Item]List, shards)
		par.Do(len(b.Txs), s.workers, func(sh, lo, hi int) {
			part[sh] = scanItemLists(b.Txs[lo:hi])
		})
		buffers = part[0]
		for _, p := range part[1:] {
			for it, l := range p {
				buffers[it] = append(buffers[it], l...)
			}
		}
	}
	// Deterministic write order.
	items := make([]itemset.Item, 0, len(buffers))
	for it := range buffers {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	enc := make([][]byte, len(items))
	par.Do(len(items), s.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			enc[i] = diskio.AppendSortedInts(nil, buffers[items[i]])
		}
	})
	for i, it := range items {
		if err := s.store.Put(itemKey(b.ID, it), enc[i]); err != nil {
			return fmt.Errorf("tidlist: materializing block %d item %d: %w", b.ID, it, err)
		}
	}
	return nil
}

// scanItemLists appends each transaction's TID to the buffer of each of its
// items — the single materialization scan, over one shard of the block.
func scanItemLists(txs []itemset.Transaction) map[itemset.Item]List {
	buffers := make(map[itemset.Item]List)
	for _, tx := range txs {
		for _, it := range tx.Items {
			buffers[it] = append(buffers[it], tx.TID)
		}
	}
	return buffers
}

// MaterializePairs persists TID-lists for 2-itemsets of the block following
// the ECUT+ heuristic: pairs must be supplied in decreasing overall-support
// order (the caller ranks the frequent 2-itemsets of the current lattice by
// σ_D), and materialization stops when the entry budget M (total TIDs
// stored) would be exceeded. It returns the pairs actually materialized and
// the number of entries used. A negative budget means unlimited.
// The per-pair block scans and list encodes are sharded across the
// configured workers; the budget decisions and writes run serially in pair
// order afterwards, so the chosen set and stored bytes are identical to the
// serial path for every worker count.
func (s *Store) MaterializePairs(b *itemset.TxBlock, pairs []itemset.Itemset, budget int64) ([]itemset.Itemset, int64, error) {
	for _, p := range pairs {
		if len(p) != 2 {
			return nil, 0, fmt.Errorf("tidlist: MaterializePairs got %d-itemset %v", len(p), p)
		}
	}
	lengths := make([]int, len(pairs))
	encoded := make([][]byte, len(pairs))
	par.Do(len(pairs), s.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var list List
			for _, tx := range b.Txs {
				if tx.Contains(pairs[i]) {
					list = append(list, tx.TID)
				}
			}
			lengths[i] = len(list)
			encoded[i] = diskio.AppendSortedInts(nil, list)
		}
	})
	idx := make(map[itemset.Key]bool)
	var used int64
	var chosen []itemset.Itemset
	for i, p := range pairs {
		if budget >= 0 && used+int64(lengths[i]) > budget {
			continue // paper: choose as many as possible, in support order
		}
		if err := s.store.Put(pairKey(b.ID, p), encoded[i]); err != nil {
			return nil, 0, fmt.Errorf("tidlist: materializing pair %v: %w", p, err)
		}
		used += int64(lengths[i])
		idx[p.Key()] = true
		chosen = append(chosen, p)
	}
	// Persist the pair index so a fresh Store over the same diskio.Store can
	// discover what is materialized.
	var enc []byte
	enc = diskio.AppendUvarint(enc, uint64(len(chosen)))
	for _, p := range chosen {
		enc = diskio.AppendUvarint(enc, uint64(p[0]))
		enc = diskio.AppendUvarint(enc, uint64(p[1]))
	}
	if err := s.store.Put(pairIdxKey(b.ID), enc); err != nil {
		return nil, 0, fmt.Errorf("tidlist: writing pair index: %w", err)
	}
	s.pairMu.Lock()
	s.pairIndex[b.ID] = idx
	s.pairMu.Unlock()
	return chosen, used, nil
}

// loadPairIndex fetches (and caches) the pair index of a block; a missing
// index means no pairs were materialized.
func (s *Store) loadPairIndex(id blockseq.ID) (map[itemset.Key]bool, error) {
	s.pairMu.Lock()
	defer s.pairMu.Unlock()
	if idx, ok := s.pairIndex[id]; ok {
		return idx, nil
	}
	idx := make(map[itemset.Key]bool)
	data, err := s.store.Get(pairIdxKey(id))
	if err != nil && !errors.Is(err, diskio.ErrNotFound) {
		return nil, fmt.Errorf("tidlist: pair index of block %d: %w", id, err)
	}
	if err == nil {
		n, rest, derr := diskio.ReadUvarint(data)
		if derr != nil {
			return nil, fmt.Errorf("tidlist: pair index of block %d: %w", id, derr)
		}
		data = rest
		for i := uint64(0); i < n; i++ {
			a, rest, derr := diskio.ReadUvarint(data)
			if derr != nil {
				return nil, fmt.Errorf("tidlist: pair index of block %d: %w", id, derr)
			}
			b, rest2, derr := diskio.ReadUvarint(rest)
			if derr != nil {
				return nil, fmt.Errorf("tidlist: pair index of block %d: %w", id, derr)
			}
			data = rest2
			idx[itemset.NewItemset(itemset.Item(a), itemset.Item(b)).Key()] = true
		}
	}
	s.pairIndex[id] = idx
	return idx, nil
}

// ItemList reads θ_Di(x). A list that was never materialized (the item does
// not occur in the block) is empty, not an error; any other storage failure
// propagates — silently treating a read fault as an absent item would
// corrupt counts.
func (s *Store) ItemList(id blockseq.ID, it itemset.Item) (List, error) {
	data, err := s.store.Get(itemKey(id, it))
	if errors.Is(err, diskio.ErrNotFound) {
		return nil, nil // absent item: empty list
	}
	if err != nil {
		return nil, fmt.Errorf("tidlist: block %d item %d: %w", id, it, err)
	}
	ints, rest, err := diskio.ReadSortedInts(data)
	if err != nil {
		return nil, fmt.Errorf("tidlist: block %d item %d: %w", id, it, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("tidlist: block %d item %d: %w: %d trailing bytes",
			id, it, diskio.ErrCorrupt, len(rest))
	}
	s.entriesRead.Add(int64(len(ints)))
	return List(ints), nil
}

// PairList reads the materialized list of a 2-itemset, reporting ok=false
// when that pair was not materialized for the block.
func (s *Store) PairList(id blockseq.ID, pair itemset.Itemset) (List, bool, error) {
	idx, err := s.loadPairIndex(id)
	if err != nil {
		return nil, false, err
	}
	if !idx[pair.Key()] {
		return nil, false, nil
	}
	data, err := s.store.Get(pairKey(id, pair))
	if err != nil {
		return nil, false, fmt.Errorf("tidlist: pair %v of block %d: %w", pair, id, err)
	}
	ints, rest, err := diskio.ReadSortedInts(data)
	if err != nil {
		return nil, false, fmt.Errorf("tidlist: pair %v of block %d: %w", pair, id, err)
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("tidlist: pair %v of block %d: %w: %d trailing bytes",
			pair, id, diskio.ErrCorrupt, len(rest))
	}
	s.entriesRead.Add(int64(len(ints)))
	return List(ints), true, nil
}

// PairEntries returns the total number of TIDs stored in materialized pair
// lists for the given blocks — the numerator of the Figure 3 space-overhead
// table.
func (s *Store) PairEntries(ids []blockseq.ID) (int64, error) {
	var total int64
	for _, id := range ids {
		idx, err := s.loadPairIndex(id)
		if err != nil {
			return 0, err
		}
		for k := range idx {
			data, err := s.store.Get(pairKey(id, k.Itemset()))
			if err != nil {
				return 0, err
			}
			n, _, err := diskio.ReadUvarint(data)
			if err != nil {
				return 0, fmt.Errorf("tidlist: pair index entry of block %d: %w", id, err)
			}
			total += int64(n)
		}
	}
	return total, nil
}
