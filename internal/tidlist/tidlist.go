// Package tidlist implements the TID-list substrate of Section 3.1.1 of the
// DEMON paper: the TID-list θ_D(X) of an itemset X is the sorted list of
// identifiers of transactions containing X. Two properties of systematic
// block evolution let the lists be partitioned per block and frozen at block
// ingestion time — additivity (the support over a window is the sum of
// per-block supports) and the 0/1 property (a BSS selects whole blocks, never
// fractions) — and that is exactly what the ECUT and ECUT+ counting
// strategies exploit.
package tidlist

import "sort"

// List is a TID-list: transaction identifiers sorted in increasing order.
type List []int

// Intersect merges two sorted lists, returning their intersection — the
// merge phase of a sort-merge join, as the paper describes.
func Intersect(a, b List) List {
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectCount returns |a ∩ b| without materializing the intersection.
func IntersectCount(a, b List) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IntersectMany intersects k sorted lists. Lists are processed smallest
// first so intermediate results shrink as fast as possible. An empty input
// returns nil (the intersection of zero lists is undefined; callers guard
// against it). Any empty list short-circuits to nil.
func IntersectMany(lists []List) List {
	if len(lists) == 0 {
		return nil
	}
	ordered := make([]List, len(lists))
	copy(ordered, lists)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })
	acc := ordered[0]
	if len(acc) == 0 {
		return nil
	}
	for _, l := range ordered[1:] {
		acc = Intersect(acc, l)
		if len(acc) == 0 {
			return nil
		}
	}
	// Copy so callers never alias the first input.
	out := make(List, len(acc))
	copy(out, acc)
	return out
}

// Union merges two sorted lists into their sorted union (used by tests and
// by model-diff tooling; not on the counting hot path).
func Union(a, b List) List {
	out := make(List, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
