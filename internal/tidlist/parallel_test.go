package tidlist

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

func randomRows(rng *rand.Rand, n, universe, avgLen int) [][]itemset.Item {
	rows := make([][]itemset.Item, n)
	for i := range rows {
		m := 1 + rng.Intn(2*avgLen)
		rows[i] = make([]itemset.Item, m)
		for j := range rows[i] {
			rows[i][j] = itemset.Item(rng.Intn(universe))
		}
	}
	return rows
}

// storeBytes snapshots every key/value of a diskio store.
func storeBytes(t *testing.T, s diskio.Store) map[string][]byte {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = v
	}
	return out
}

func sameStoreBytes(t *testing.T, label string, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: key %q missing", label, k)
		}
		if !bytes.Equal(g, v) {
			t.Fatalf("%s: key %q bytes differ", label, k)
		}
	}
}

// TestMaterializeParallelByteIdentical: the stored TID-list bytes must be
// identical to the serial path for every worker count, for both item lists
// and budgeted pair materialization.
func TestMaterializeParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := randomRows(rng, 300, 25, 6)
	blk := makeBlock(1, 100, rows)

	// Pairs ranked by support over the block, as the ECUT+ heuristic feeds
	// them; include enough that the budget skips some.
	var pairs []itemset.Itemset
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			pairs = append(pairs, itemset.NewItemset(itemset.Item(a), itemset.Item(b)))
		}
	}

	run := func(workers int) (map[string][]byte, []itemset.Itemset, int64) {
		mem := diskio.NewMemStore()
		s := NewStore(mem)
		s.SetWorkers(workers)
		if err := s.Materialize(blk); err != nil {
			t.Fatal(err)
		}
		chosen, used, err := s.MaterializePairs(blk, pairs, 400)
		if err != nil {
			t.Fatal(err)
		}
		return storeBytes(t, mem), chosen, used
	}

	wantBytes, wantChosen, wantUsed := run(1)
	if len(wantBytes) == 0 {
		t.Fatal("serial run stored nothing")
	}
	for _, workers := range []int{0, 2, 3, 8, 100} {
		got, chosen, used := run(workers)
		if used != wantUsed {
			t.Fatalf("workers=%d: used %d entries, want %d", workers, used, wantUsed)
		}
		if len(chosen) != len(wantChosen) {
			t.Fatalf("workers=%d: chose %d pairs, want %d", workers, len(chosen), len(wantChosen))
		}
		for i := range chosen {
			if chosen[i].Key() != wantChosen[i].Key() {
				t.Fatalf("workers=%d: chosen[%d] = %v, want %v", workers, i, chosen[i], wantChosen[i])
			}
		}
		sameStoreBytes(t, "workers", got, wantBytes)
	}
}
