package tidlist

import (
	"errors"
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// ErrEmptyItemset is returned when a counting request contains the empty
// itemset, whose support is trivially |D| and never needs counting.
var ErrEmptyItemset = errors.New("tidlist: cannot count empty itemset")

// CountECUT implements the ECUT support-counting algorithm of Section 3.1.1:
// the support of X = {i1, ..., ik} over the selected blocks is the summed
// cardinality of the per-block intersections of the items' TID-lists. Only
// the TID-lists of the items in X are fetched, which is what makes ECUT fast
// when the candidate set is small.
func (s *Store) CountECUT(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	counts := make(map[itemset.Key]int, len(sets))
	for _, x := range sets {
		if len(x) == 0 {
			return nil, ErrEmptyItemset
		}
		counts[x.Key()] = 0
	}
	// Per block, fetch each needed item list once and count every itemset;
	// the additivity property makes per-block counting exact.
	for _, id := range blocks {
		cache := make(map[itemset.Item]List)
		get := func(it itemset.Item) (List, error) {
			if l, ok := cache[it]; ok {
				return l, nil
			}
			l, err := s.ItemList(id, it)
			if err != nil {
				return nil, err
			}
			cache[it] = l
			return l, nil
		}
		for _, x := range sets {
			lists := make([]List, len(x))
			empty := false
			for i, it := range x {
				l, err := get(it)
				if err != nil {
					return nil, fmt.Errorf("tidlist: ECUT block %d: %w", id, err)
				}
				if len(l) == 0 {
					empty = true
					break
				}
				lists[i] = l
			}
			if empty {
				continue
			}
			counts[x.Key()] += len(IntersectMany(lists))
		}
	}
	return counts, nil
}

// CountECUTPlus implements ECUT+: like ECUT, but per block the itemset is
// covered with materialized 2-itemset TID-lists where available, so fewer
// and shorter lists are intersected. Items not covered by any materialized
// pair fall back to their single-item lists; correctness follows from
// X1 ∪ ... ∪ Xk = X (Section 3.1.1).
func (s *Store) CountECUTPlus(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	counts := make(map[itemset.Key]int, len(sets))
	for _, x := range sets {
		if len(x) == 0 {
			return nil, ErrEmptyItemset
		}
		counts[x.Key()] = 0
	}
	for _, id := range blocks {
		idx, err := s.loadPairIndex(id)
		if err != nil {
			return nil, err
		}
		itemCache := make(map[itemset.Item]List)
		pairCache := make(map[itemset.Key]List)
		for _, x := range sets {
			lists, err := s.coverLists(id, x, idx, itemCache, pairCache)
			if err != nil {
				return nil, fmt.Errorf("tidlist: ECUT+ block %d: %w", id, err)
			}
			if lists == nil {
				continue // some component list empty: zero in this block
			}
			counts[x.Key()] += len(IntersectMany(lists))
		}
	}
	return counts, nil
}

// coverLists assembles the TID-lists covering x in block id: a greedy pair
// matching over the materialized 2-itemsets, single-item lists for the rest.
// It returns nil (no error) if any component list is empty.
func (s *Store) coverLists(id blockseq.ID, x itemset.Itemset, idx map[itemset.Key]bool,
	itemCache map[itemset.Item]List, pairCache map[itemset.Key]List) ([]List, error) {

	covered := make([]bool, len(x))
	var lists []List
	appendList := func(l List) bool {
		if len(l) == 0 {
			return false
		}
		lists = append(lists, l)
		return true
	}

	for i := range x {
		if covered[i] {
			continue
		}
		matched := false
		if len(idx) > 0 {
			for j := i + 1; j < len(x); j++ {
				if covered[j] {
					continue
				}
				pair := itemset.Itemset{x[i], x[j]}
				pk := pair.Key()
				if !idx[pk] {
					continue
				}
				l, ok := pairCache[pk]
				if !ok {
					var err error
					l, _, err = s.PairList(id, pair)
					if err != nil {
						return nil, err
					}
					pairCache[pk] = l
				}
				covered[i], covered[j] = true, true
				matched = true
				if !appendList(l) {
					return nil, nil
				}
				break
			}
		}
		if matched {
			continue
		}
		l, ok := itemCache[x[i]]
		if !ok {
			var err error
			l, err = s.ItemList(id, x[i])
			if err != nil {
				return nil, err
			}
			itemCache[x[i]] = l
		}
		covered[i] = true
		if !appendList(l) {
			return nil, nil
		}
	}
	return lists, nil
}
