package tidlist

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

// makeBlock builds a transaction block with the given rows.
func makeBlock(id blockseq.ID, firstTID int, rows [][]itemset.Item) *itemset.TxBlock {
	return itemset.NewTxBlock(id, firstTID, rows)
}

func TestMaterializeAndItemList(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	b := makeBlock(1, 10, [][]itemset.Item{
		{1, 2},
		{2},
		{1, 3},
	})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		item itemset.Item
		want List
	}{
		{1, List{10, 12}},
		{2, List{10, 11}},
		{3, List{12}},
		{9, nil}, // absent item: empty list
	}
	for _, tc := range tests {
		got, err := s.ItemList(1, tc.item)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ItemList(1, %d) = %v, want %v", tc.item, got, tc.want)
		}
	}
}

func TestMaterializePairsBudget(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	b := makeBlock(1, 0, [][]itemset.Item{
		{1, 2, 3},
		{1, 2},
		{1, 3},
		{2, 3},
	})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	// Pair supports in this block: {1,2}=2, {1,3}=2, {2,3}=2. With budget 4
	// only the first two supplied pairs fit.
	pairs := []itemset.Itemset{
		itemset.NewItemset(1, 2),
		itemset.NewItemset(1, 3),
		itemset.NewItemset(2, 3),
	}
	chosen, used, err := s.MaterializePairs(b, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 || used != 4 {
		t.Fatalf("chosen %v used %d, want 2 pairs / 4 entries", chosen, used)
	}
	if l, ok, _ := s.PairList(1, itemset.NewItemset(1, 2)); !ok || !reflect.DeepEqual(l, List{0, 1}) {
		t.Fatalf("PairList({1,2}) = %v ok=%v", l, ok)
	}
	if _, ok, _ := s.PairList(1, itemset.NewItemset(2, 3)); ok {
		t.Fatal("pair {2,3} should not be materialized under budget")
	}
	n, err := s.PairEntries([]blockseq.ID{1})
	if err != nil || n != 4 {
		t.Fatalf("PairEntries = %d, %v; want 4", n, err)
	}
}

func TestMaterializePairsUnlimitedBudget(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	b := makeBlock(1, 0, [][]itemset.Item{{1, 2}, {1, 2}})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	chosen, used, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1)
	if err != nil || len(chosen) != 1 || used != 2 {
		t.Fatalf("chosen=%v used=%d err=%v", chosen, used, err)
	}
}

func TestMaterializePairsRejectsNonPairs(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	b := makeBlock(1, 0, [][]itemset.Item{{1}})
	if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2, 3)}, -1); err == nil {
		t.Fatal("MaterializePairs accepted a 3-itemset")
	}
}

func TestPairIndexSurvivesStoreRestart(t *testing.T) {
	underlying := diskio.NewMemStore()
	s := NewStore(underlying)
	b := makeBlock(1, 0, [][]itemset.Item{{1, 2}})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1); err != nil {
		t.Fatal(err)
	}
	// A fresh Store over the same diskio.Store must see the pair.
	s2 := NewStore(underlying)
	l, ok, err := s2.PairList(1, itemset.NewItemset(1, 2))
	if err != nil || !ok || !reflect.DeepEqual(l, List{0}) {
		t.Fatalf("restarted PairList = %v ok=%v err=%v", l, ok, err)
	}
}

// naiveCountBlocks counts supports by scanning transactions.
func naiveCountBlocks(sets []itemset.Itemset, blocks []*itemset.TxBlock) map[itemset.Key]int {
	out := make(map[itemset.Key]int)
	for _, x := range sets {
		out[x.Key()] = 0
	}
	for _, b := range blocks {
		for _, tx := range b.Txs {
			for _, x := range sets {
				if tx.Contains(x) {
					out[x.Key()]++
				}
			}
		}
	}
	return out
}

func randomBlocks(rng *rand.Rand, nBlocks, txPerBlock, universe, avgLen int) []*itemset.TxBlock {
	blocks := make([]*itemset.TxBlock, nBlocks)
	tid := 0
	for i := range blocks {
		rows := make([][]itemset.Item, txPerBlock)
		for j := range rows {
			m := 1 + rng.Intn(2*avgLen)
			rows[j] = make([]itemset.Item, m)
			for k := range rows[j] {
				rows[j][k] = itemset.Item(rng.Intn(universe))
			}
		}
		blocks[i] = makeBlock(blockseq.ID(i+1), tid, rows)
		tid += txPerBlock
	}
	return blocks
}

func randomSets(rng *rand.Rand, n, universe, maxSize int) []itemset.Itemset {
	var out []itemset.Itemset
	seen := make(map[itemset.Key]bool)
	for len(out) < n {
		size := 1 + rng.Intn(maxSize)
		items := make([]itemset.Item, size)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(universe))
		}
		c := itemset.NewItemset(items...)
		if seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		out = append(out, c)
	}
	return out
}

func TestCountECUTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		blocks := randomBlocks(rng, 3, 40, 15, 5)
		s := NewStore(diskio.NewMemStore())
		var ids []blockseq.ID
		for _, b := range blocks {
			if err := s.Materialize(b); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, b.ID)
		}
		sets := randomSets(rng, 12, 15, 4)
		got, err := s.CountECUT(sets, ids)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveCountBlocks(sets, blocks)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ECUT diverges from naive", trial)
		}
	}
}

func TestCountECUTSubsetOfBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	blocks := randomBlocks(rng, 4, 30, 10, 4)
	s := NewStore(diskio.NewMemStore())
	for _, b := range blocks {
		if err := s.Materialize(b); err != nil {
			t.Fatal(err)
		}
	}
	sets := randomSets(rng, 8, 10, 3)
	// Count only blocks 2 and 4, as a BSS would select.
	got, err := s.CountECUT(sets, []blockseq.ID{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveCountBlocks(sets, []*itemset.TxBlock{blocks[1], blocks[3]})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ECUT over a block subset diverges from naive")
	}
}

func TestCountECUTPlusMatchesECUT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		blocks := randomBlocks(rng, 3, 40, 12, 5)
		s := NewStore(diskio.NewMemStore())
		var ids []blockseq.ID
		for _, b := range blocks {
			if err := s.Materialize(b); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, b.ID)
		}
		// Materialize a random subset of pairs per block (different subsets
		// per block to exercise the availability checks).
		allPairs := randomSets(rng, 6, 12, 1) // seeds; build pairs below
		_ = allPairs
		for _, b := range blocks {
			var pairs []itemset.Itemset
			seen := make(map[itemset.Key]bool)
			for len(pairs) < 4 {
				p := itemset.NewItemset(itemset.Item(rng.Intn(12)), itemset.Item(rng.Intn(12)))
				if len(p) != 2 || seen[p.Key()] {
					continue
				}
				seen[p.Key()] = true
				pairs = append(pairs, p)
			}
			if _, _, err := s.MaterializePairs(b, pairs, -1); err != nil {
				t.Fatal(err)
			}
		}
		sets := randomSets(rng, 10, 12, 4)
		ecut, err := s.CountECUT(sets, ids)
		if err != nil {
			t.Fatal(err)
		}
		plus, err := s.CountECUTPlus(sets, ids)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ecut, plus) {
			t.Fatalf("trial %d: ECUT+ diverges from ECUT", trial)
		}
	}
}

func TestCountECUTPlusReadsFewerEntries(t *testing.T) {
	// With the pair {1,2} materialized and much rarer than items 1 and 2,
	// ECUT+ must fetch fewer TID entries than ECUT.
	rows := make([][]itemset.Item, 100)
	for i := range rows {
		switch {
		case i < 5:
			rows[i] = []itemset.Item{1, 2, 3}
		case i%2 == 0:
			rows[i] = []itemset.Item{1}
		default:
			rows[i] = []itemset.Item{2}
		}
	}
	b := makeBlock(1, 0, rows)
	s := NewStore(diskio.NewMemStore())
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1); err != nil {
		t.Fatal(err)
	}
	sets := []itemset.Itemset{itemset.NewItemset(1, 2, 3)}

	s.ResetEntriesRead()
	ecut, err := s.CountECUT(sets, []blockseq.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	ecutEntries := s.EntriesRead()

	s.ResetEntriesRead()
	plus, err := s.CountECUTPlus(sets, []blockseq.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	plusEntries := s.EntriesRead()

	if !reflect.DeepEqual(ecut, plus) {
		t.Fatalf("counts diverge: %v vs %v", ecut, plus)
	}
	if ecut[sets[0].Key()] != 5 {
		t.Fatalf("count = %d, want 5", ecut[sets[0].Key()])
	}
	if plusEntries >= ecutEntries {
		t.Fatalf("ECUT+ read %d entries, ECUT read %d; want fewer", plusEntries, ecutEntries)
	}
}

func TestCountEmptyItemsetRejected(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	if _, err := s.CountECUT([]itemset.Itemset{nil}, nil); err == nil {
		t.Fatal("CountECUT accepted empty itemset")
	}
	if _, err := s.CountECUTPlus([]itemset.Itemset{nil}, nil); err == nil {
		t.Fatal("CountECUTPlus accepted empty itemset")
	}
}

func TestPairListCorruptData(t *testing.T) {
	underlying := diskio.NewMemStore()
	s := NewStore(underlying)
	b := makeBlock(1, 0, [][]itemset.Item{{1, 2}})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored pair list; reads must surface the corruption.
	if err := underlying.Put("tid2/00000001/p1-2", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(underlying)
	if _, _, err := s2.PairList(1, itemset.NewItemset(1, 2)); err == nil {
		t.Fatal("PairList accepted corrupt data")
	}
	// Corrupt the pair index itself.
	if err := underlying.Put("tid2idx/00000001", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(underlying)
	if _, _, err := s3.PairList(1, itemset.NewItemset(1, 2)); err == nil {
		t.Fatal("PairList accepted corrupt pair index")
	}
}

func TestPairEntriesAcrossBlocks(t *testing.T) {
	s := NewStore(diskio.NewMemStore())
	for id := blockseq.ID(1); id <= 2; id++ {
		b := makeBlock(id, int(id-1)*3, [][]itemset.Item{{1, 2}, {1, 2}, {3}})
		if err := s.Materialize(b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.PairEntries([]blockseq.ID{1, 2})
	if err != nil || n != 4 {
		t.Fatalf("PairEntries = %d, %v; want 4", n, err)
	}
	// A block with no pairs contributes zero.
	n, err = s.PairEntries([]blockseq.ID{1, 2, 99})
	if err != nil || n != 4 {
		t.Fatalf("PairEntries with absent block = %d, %v", n, err)
	}
}

func TestListsRejectTrailingBytes(t *testing.T) {
	underlying := diskio.NewMemStore()
	s := NewStore(underlying)
	b := makeBlock(1, 0, [][]itemset.Item{{1, 2}, {1}})
	if err := s.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MaterializePairs(b, []itemset.Itemset{itemset.NewItemset(1, 2)}, -1); err != nil {
		t.Fatal(err)
	}
	// Append garbage after a well-formed list: a decoder that stops at the
	// declared count would silently accept a truncated-then-overwritten
	// record, so trailing bytes must surface as corruption.
	for _, key := range []string{"tid/00000001/i1", "tid2/00000001/p1-2"} {
		data, err := underlying.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := underlying.Put(key, append(data, 0x00)); err != nil {
			t.Fatal(err)
		}
	}
	s2 := NewStore(underlying)
	if _, err := s2.ItemList(1, 1); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("ItemList with trailing bytes: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := s2.PairList(1, itemset.NewItemset(1, 2)); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("PairList with trailing bytes: err = %v, want ErrCorrupt", err)
	}
}
