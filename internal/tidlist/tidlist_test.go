package tidlist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sortedUnique(rng *rand.Rand, n, max int) List {
	set := make(map[int]bool)
	for len(set) < n {
		set[rng.Intn(max)] = true
	}
	out := make(List, 0, n)
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func naiveIntersect(a, b List) List {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out List
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestIntersectBasic(t *testing.T) {
	a := List{1, 3, 5, 7}
	b := List{3, 4, 5, 8}
	got := Intersect(a, b)
	want := List{3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if got := Intersect(a, nil); got != nil {
		t.Fatalf("Intersect with empty = %v", got)
	}
	if got := IntersectCount(a, b); got != 2 {
		t.Fatalf("IntersectCount = %d, want 2", got)
	}
}

func TestIntersectProperty(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sortedUnique(rng, int(na%50), 100)
		b := sortedUnique(rng, int(nb%50), 100)
		got := Intersect(a, b)
		want := naiveIntersect(a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return IntersectCount(a, b) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectMany(t *testing.T) {
	lists := []List{
		{1, 2, 3, 4, 5, 6},
		{2, 4, 6, 8},
		{4, 6, 10},
	}
	got := IntersectMany(lists)
	want := List{4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IntersectMany = %v, want %v", got, want)
	}
	if IntersectMany(nil) != nil {
		t.Fatal("IntersectMany(nil) should be nil")
	}
	if got := IntersectMany([]List{{1, 2}}); !reflect.DeepEqual(got, List{1, 2}) {
		t.Fatalf("IntersectMany single = %v", got)
	}
	if got := IntersectMany([]List{{1}, nil, {1}}); got != nil {
		t.Fatalf("IntersectMany with empty list = %v", got)
	}
}

func TestIntersectManyDoesNotAliasInput(t *testing.T) {
	a := List{1, 2, 3}
	got := IntersectMany([]List{a})
	got[0] = 99
	if a[0] != 1 {
		t.Fatal("IntersectMany result aliases input")
	}
}

// Property: IntersectMany equals folding naive pairwise intersection in any
// order (intersection is commutative and associative).
func TestIntersectManyProperty(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(k%4) + 1
		lists := make([]List, n)
		for i := range lists {
			lists[i] = sortedUnique(rng, rng.Intn(30), 60)
		}
		want := lists[0]
		for _, l := range lists[1:] {
			want = naiveIntersect(want, l)
		}
		got := IntersectMany(lists)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	got := Union(List{1, 3, 5}, List{2, 3, 6})
	want := List{1, 2, 3, 5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
}
