// Package par is the worker-pool substrate of DEMON's parallel ingestion
// layer. Every parallel path in the repository — candidate counting sharded
// over transaction ranges, TID-list materialization, GEMM slot maintenance,
// BIRCH+ phase 2, FOCUS deviations — resolves its worker count and fans out
// through this package, so the "Workers" knob means the same thing
// everywhere: 0 (or any non-positive value) selects GOMAXPROCS, 1 keeps the
// path serial, and n > 1 uses n workers.
//
// All helpers here are deterministic by construction: work is split into
// contiguous index ranges, each shard writes only to its own slot, and
// callers merge shard results in shard order. Because every merged quantity
// in DEMON is either additive (support counts, histograms — the Section
// 3.1.1 additivity property) or order-insensitive, results are identical to
// the serial computation for every worker count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: non-positive selects GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Shards returns the number of contiguous shards [0, n) is split into under
// the resolved worker count: min(Workers(workers), n), and 0 when n == 0.
func Shards(n, workers int) int {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Bounds returns the half-open range [lo, hi) of shard s out of shards over
// [0, n). Shards are contiguous and their sizes differ by at most one.
func Bounds(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// Do splits [0, n) into contiguous shards under the given worker knob and
// runs fn(shard, lo, hi) concurrently, one goroutine per shard. With one
// shard (or fewer than two items) fn runs on the calling goroutine — no
// goroutine is spawned for serial work. Do returns when every shard is done.
//
// fn must confine its writes to per-shard state (e.g. slot `shard` of a
// results slice); Do itself performs no merging.
func Do(n, workers int, fn func(shard, lo, hi int)) {
	shards := Shards(n, workers)
	if shards <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			lo, hi := Bounds(n, shards, s)
			fn(s, lo, hi)
		}(s)
	}
	lo, hi := Bounds(n, shards, 0)
	fn(0, lo, hi)
	wg.Wait()
}

// FirstError returns the error of the lowest-index shard that failed, or nil
// when no shard failed. Using the lowest index (rather than whichever shard
// happened to finish first) keeps error reporting deterministic across
// schedules and worker counts.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
