package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestShardsAndBounds(t *testing.T) {
	if got := Shards(0, 8); got != 0 {
		t.Fatalf("Shards(0, 8) = %d, want 0", got)
	}
	if got := Shards(3, 8); got != 3 {
		t.Fatalf("Shards(3, 8) = %d, want 3", got)
	}
	// Shards cover [0, n) exactly, contiguously, sizes within one of each
	// other.
	for _, n := range []int{1, 2, 5, 17, 100} {
		for _, w := range []int{1, 2, 3, 8} {
			shards := Shards(n, w)
			next := 0
			minSz, maxSz := n+1, -1
			for s := 0; s < shards; s++ {
				lo, hi := Bounds(n, shards, s)
				if lo != next {
					t.Fatalf("n=%d w=%d shard %d: lo=%d, want %d", n, w, s, lo, next)
				}
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d w=%d: shards end at %d", n, w, next)
			}
			if maxSz >= 0 && maxSz-minSz > 1 {
				t.Fatalf("n=%d w=%d: shard sizes spread %d..%d", n, w, minSz, maxSz)
			}
		}
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, w := range []int{0, 1, 2, 3, 16} {
			hits := make([]atomic.Int32, n)
			Do(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, got)
				}
			}
		}
	}
}

// TestDoSerialSpawnsNoGoroutine: with one shard, fn runs on the calling
// goroutine (checked by spawning nothing: fn observes the same goroutine via
// a captured stack-local write with no synchronization — the race detector
// would flag a cross-goroutine unsynchronized write).
func TestDoSerialSpawnsNoGoroutine(t *testing.T) {
	x := 0
	Do(10, 1, func(_, lo, hi int) { x += hi - lo })
	if x != 10 {
		t.Fatalf("x = %d", x)
	}
	Do(0, 8, func(_, _, _ int) { t.Fatal("fn called for n=0") })
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Fatalf("FirstError = %v", err)
	}
	if err := FirstError([]error{nil, e1, e2}); err != e1 {
		t.Fatalf("FirstError = %v, want e1", err)
	}
	if err := FirstError(nil); err != nil {
		t.Fatalf("FirstError(nil) = %v", err)
	}
}
