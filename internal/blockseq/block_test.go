package blockseq

import (
	"testing"
	"testing/quick"
)

func TestSnapshotAppend(t *testing.T) {
	var s Snapshot
	if s.T != 0 {
		t.Fatalf("zero snapshot T = %d, want 0", s.T)
	}
	for want := ID(1); want <= 5; want++ {
		var id ID
		s, id = s.Append()
		if id != want {
			t.Fatalf("Append assigned id %d, want %d", id, want)
		}
		if s.T != want {
			t.Fatalf("after Append, T = %d, want %d", s.T, want)
		}
	}
}

func TestUnrestrictedWindow(t *testing.T) {
	s := Snapshot{T: 7}
	w := s.Unrestricted()
	if w.Lo != 1 || w.Hi != 7 {
		t.Fatalf("Unrestricted = %v, want D[1, 7]", w)
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
}

func TestMostRecentWindow(t *testing.T) {
	tests := []struct {
		t      ID
		w      int
		lo, hi ID
	}{
		{t: 10, w: 3, lo: 8, hi: 10},
		{t: 3, w: 3, lo: 1, hi: 3},
		{t: 2, w: 5, lo: 1, hi: 2}, // t < w degenerates to D[1, t]
		{t: 1, w: 1, lo: 1, hi: 1},
	}
	for _, tc := range tests {
		got := Snapshot{T: tc.t}.MostRecent(tc.w)
		if got.Lo != tc.lo || got.Hi != tc.hi {
			t.Errorf("Snapshot{T:%d}.MostRecent(%d) = %v, want D[%d, %d]",
				tc.t, tc.w, got, tc.lo, tc.hi)
		}
	}
}

func TestMostRecentPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MostRecent(0) did not panic")
		}
	}()
	Snapshot{T: 3}.MostRecent(0)
}

func TestWindowShiftAndContains(t *testing.T) {
	w := Window{3, 5}
	if !w.Contains(3) || !w.Contains(5) || w.Contains(2) || w.Contains(6) {
		t.Fatalf("Contains misbehaves for %v", w)
	}
	sh := w.Shift()
	if sh.Lo != 4 || sh.Hi != 6 {
		t.Fatalf("Shift = %v, want D[4, 6]", sh)
	}
	if got := w.String(); got != "D[3, 5]" {
		t.Fatalf("String = %q", got)
	}
}

func TestWindowLenEmpty(t *testing.T) {
	if got := (Window{5, 4}).Len(); got != 0 {
		t.Fatalf("inverted window Len = %d, want 0", got)
	}
}

// Property: the most recent window always ends at t, has length min(w, t),
// and is contained in the unrestricted window.
func TestMostRecentProperties(t *testing.T) {
	f := func(tRaw uint8, wRaw uint8) bool {
		tt := ID(tRaw%100) + 1
		w := int(wRaw%100) + 1
		s := Snapshot{T: tt}
		mrw := s.MostRecent(w)
		if mrw.Hi != tt {
			return false
		}
		wantLen := w
		if int(tt) < w {
			wantLen = int(tt)
		}
		if mrw.Len() != wantLen {
			return false
		}
		uw := s.Unrestricted()
		return mrw.Lo >= uw.Lo && mrw.Hi <= uw.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
