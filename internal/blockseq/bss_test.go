package blockseq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAllSelectsEverything(t *testing.T) {
	got := Selected(All{}, Window{1, 5})
	want := []ID{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(All) = %v, want %v", got, want)
	}
}

func TestPeriodic(t *testing.T) {
	// "Every Monday" with daily blocks where block 1 is a Monday: period 7,
	// offset 1.
	b := Periodic{Period: 7, Offset: 1}
	got := Selected(b, Window{1, 21})
	want := []ID{1, 8, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(Periodic 7/1) = %v, want %v", got, want)
	}
	// Offset equal to the period selects multiples of the period.
	b = Periodic{Period: 3, Offset: 3}
	got = Selected(b, Window{1, 9})
	want = []ID{3, 6, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(Periodic 3/3) = %v, want %v", got, want)
	}
}

func TestPeriodicPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Periodic{Period: 0}.Bit did not panic")
		}
	}()
	Periodic{}.Bit(1)
}

func TestExplicit(t *testing.T) {
	b := Explicit{Bits: []bool{true, false, true}, Default: false}
	got := Selected(b, Window{1, 5})
	want := []ID{1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(Explicit) = %v, want %v", got, want)
	}
	b.Default = true
	got = Selected(b, Window{1, 5})
	want = []ID{1, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(Explicit default-true) = %v, want %v", got, want)
	}
}

func TestFunc(t *testing.T) {
	even := Func(func(id ID) bool { return id%2 == 0 })
	got := Selected(even, Window{1, 6})
	want := []ID{2, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Selected(Func even) = %v, want %v", got, want)
	}
}

func TestParseWindowRel(t *testing.T) {
	b, err := ParseWindowRel("10110")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	if b.String() != "10110" {
		t.Fatalf("String = %q, want 10110", b.String())
	}
	wantBits := []bool{true, false, true, true, false}
	for i, want := range wantBits {
		if got := b.BitAt(i + 1); got != want {
			t.Errorf("BitAt(%d) = %v, want %v", i+1, got, want)
		}
	}
	if b.BitAt(0) || b.BitAt(6) {
		t.Error("out-of-range BitAt should report false")
	}
	if _, err := ParseWindowRel("10x"); err == nil {
		t.Fatal("ParseWindowRel accepted invalid character")
	}
}

// TestProjectPaperExample reproduces the Section 3.2.1 worked example: with
// window-independent BSS ⟨10110...⟩ and w = 3, the collection of models on
// D[1,3] uses the sequences 101 (k=0), 001 (k=1), 001 (k=2).
func TestProjectPaperExample(t *testing.T) {
	b := Explicit{Bits: []bool{true, false, true, true, false}}
	want := []string{"101", "001", "001"}
	for k := 0; k < 3; k++ {
		got := Project(b, 1, 3, k)
		if got.String() != want[k] {
			t.Errorf("Project(k=%d) = %s, want %s", k, got, want[k])
		}
	}
	// The second and third models are identical, as the paper notes.
	if !Project(b, 1, 3, 1).Equal(Project(b, 1, 3, 2)) {
		t.Error("projected sequences k=1 and k=2 should be equal")
	}
}

// TestRightShiftPaperExample reproduces the Section 3.2.2 worked example:
// right-shifting ⟨101⟩ once yields ⟨010⟩.
func TestRightShiftPaperExample(t *testing.T) {
	b := NewWindowRel(true, false, true)
	got := b.RightShift(1)
	if got.String() != "010" {
		t.Fatalf("RightShift(1) of 101 = %s, want 010", got)
	}
	if got2 := b.RightShift(2); got2.String() != "001" {
		t.Fatalf("RightShift(2) of 101 = %s, want 001", got2)
	}
	if got0 := b.RightShift(0); !got0.Equal(b) {
		t.Fatalf("RightShift(0) changed the sequence: %s", got0)
	}
}

func TestRightShiftPanicsOutOfRange(t *testing.T) {
	b := NewWindowRel(true, true)
	for _, k := range []int{-1, 2, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RightShift(%d) did not panic", k)
				}
			}()
			b.RightShift(k)
		}()
	}
}

func TestSelectedIn(t *testing.T) {
	b := NewWindowRel(true, false, true)
	got := b.SelectedIn(Window{4, 6})
	want := []ID{4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectedIn = %v, want %v", got, want)
	}
	// A window longer than the sequence only selects within the sequence.
	got = b.SelectedIn(Window{4, 10})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectedIn long window = %v, want %v", got, want)
	}
	// A window shorter than the sequence truncates.
	got = b.SelectedIn(Window{4, 4})
	if !reflect.DeepEqual(got, []ID{4}) {
		t.Fatalf("SelectedIn short window = %v, want [4]", got)
	}
}

// Property: projecting then reading bits matches the source BSS outside the
// zeroed prefix and is all-zero inside it.
func TestProjectProperties(t *testing.T) {
	f := func(seed int64, wRaw, kRaw uint8) bool {
		w := int(wRaw%10) + 1
		k := int(kRaw) % w
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, w+5)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		src := Explicit{Bits: bits}
		base := ID(1)
		p := Project(src, base, w, k)
		for pos := 1; pos <= w; pos++ {
			want := false
			if pos > k {
				want = src.Bit(base + ID(pos-1))
			}
			if p.BitAt(pos) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: right-shifting by j then by k equals right-shifting by j+k (when
// j+k < w): the shift operation composes additively.
func TestRightShiftComposes(t *testing.T) {
	f := func(seed int64, wRaw, jRaw, kRaw uint8) bool {
		w := int(wRaw%8) + 2
		j := int(jRaw) % w
		k := int(kRaw) % w
		if j+k >= w {
			return true // vacuous
		}
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, w)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		b := NewWindowRel(bits...)
		return b.RightShift(j).RightShift(k).Equal(b.RightShift(j + k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of selected blocks after a k-right-shift never exceeds
// the original selection count (bits can only fall off the end).
func TestRightShiftMonotone(t *testing.T) {
	f := func(seed int64, wRaw, kRaw uint8) bool {
		w := int(wRaw%10) + 1
		k := int(kRaw) % w
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, w)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		b := NewWindowRel(bits...)
		win := Window{1, ID(w)}
		return len(b.RightShift(k).SelectedIn(win)) <= len(b.SelectedIn(win))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
