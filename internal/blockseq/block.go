// Package blockseq models systematic block evolution as defined in Section 2
// of the DEMON paper (Ganti, Gehrke, Ramakrishnan, ICDE 2000): a database is a
// conceptually infinite sequence of blocks D1, D2, ... whose identifiers
// increase in arrival order, together with the data span dimension
// (unrestricted window and most recent window) and block selection sequences
// (window-independent and window-relative) with their projection and
// right-shift operations.
package blockseq

import "fmt"

// ID identifies a block. IDs are natural numbers starting at 1 and increase
// in the order of block arrival; the ordering is total, which is the defining
// difference between systematic and arbitrary evolution.
type ID int

// Window is a contiguous, inclusive range of block identifiers [Lo, Hi].
// The paper writes it D[Lo, Hi].
type Window struct {
	Lo, Hi ID
}

// Len returns the number of blocks spanned by the window.
func (w Window) Len() int {
	if w.Hi < w.Lo {
		return 0
	}
	return int(w.Hi - w.Lo + 1)
}

// Contains reports whether block id lies inside the window.
func (w Window) Contains(id ID) bool { return id >= w.Lo && id <= w.Hi }

// Shift returns the window moved right by one block, D[Lo+1, Hi+1]. It is the
// window transition that occurs when a new block is appended under the most
// recent window option.
func (w Window) Shift() Window { return Window{w.Lo + 1, w.Hi + 1} }

// String renders the window in the paper's D[lo, hi] notation.
func (w Window) String() string { return fmt.Sprintf("D[%d, %d]", w.Lo, w.Hi) }

// Snapshot is the current database snapshot: the sequence of all blocks
// D1, ..., Dt currently in the database. Only the latest identifier needs to
// be carried; block payloads live in a store (see internal/diskio).
type Snapshot struct {
	// T is the identifier of the latest block; zero means the database is
	// empty.
	T ID
}

// Append returns the snapshot after one more block arrives and the identifier
// assigned to that block.
func (s Snapshot) Append() (Snapshot, ID) {
	id := s.T + 1
	return Snapshot{T: id}, id
}

// Unrestricted returns the unrestricted window D[1, t], i.e. all data
// collected so far.
func (s Snapshot) Unrestricted() Window { return Window{1, s.T} }

// MostRecent returns the most recent window of size w, D[t-w+1, t]. When
// fewer than w blocks exist it degenerates to D[1, t], matching the t < w
// special case in Section 2.2 of the paper. w must be positive.
func (s Snapshot) MostRecent(w int) Window {
	if w <= 0 {
		panic("blockseq: window size must be positive")
	}
	lo := s.T - ID(w) + 1
	if lo < 1 {
		lo = 1
	}
	return Window{lo, s.T}
}
