package blockseq

import (
	"fmt"
	"strings"
)

// BSS is a window-independent block selection sequence: a conceptually
// infinite sequence of 0/1 bits ⟨b1, b2, ...⟩, one per block identifier
// (Definition 2.1). A bit of 1 selects the block for mining; 0 leaves it out.
//
// Implementations must be deterministic: Bit(i) must always return the same
// value for the same i.
type BSS interface {
	// Bit reports whether block id is selected. id starts at 1.
	Bit(id ID) bool
}

// All is the BSS ⟨1 1 1 ...⟩ that selects every block. It is the implicit
// selection of classic incremental maintenance algorithms.
type All struct{}

// Bit always reports true.
func (All) Bit(ID) bool { return true }

// Periodic selects every Period-th block starting at Offset: blocks with
// id ≡ Offset (mod Period) are selected. It expresses calendar-style
// selections such as "every Monday" when blocks are daily (Period 7).
type Periodic struct {
	// Period is the cycle length; must be positive.
	Period int
	// Offset in [1, Period] names the selected position within each cycle.
	Offset int
}

// Bit reports whether id falls on the selected position of the cycle.
func (p Periodic) Bit(id ID) bool {
	if p.Period <= 0 {
		panic("blockseq: Periodic.Period must be positive")
	}
	off := p.Offset % p.Period
	return int(id)%p.Period == off%p.Period
}

// Explicit is a BSS given by an explicit bit prefix; blocks beyond the prefix
// take the Default value. Bits[0] corresponds to block 1.
type Explicit struct {
	Bits    []bool
	Default bool
}

// Bit returns the explicit bit for id if present and Default otherwise.
func (e Explicit) Bit(id ID) bool {
	i := int(id) - 1
	if i >= 0 && i < len(e.Bits) {
		return e.Bits[i]
	}
	return e.Default
}

// Func adapts a plain predicate to a BSS.
type Func func(id ID) bool

// Bit invokes the predicate.
func (f Func) Bit(id ID) bool { return f(id) }

// Selected lists, in increasing order, the identifiers within win that the
// sequence selects.
func Selected(b BSS, win Window) []ID {
	var ids []ID
	for id := win.Lo; id <= win.Hi; id++ {
		if b.Bit(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// Project computes the k-projected sequence b^w_k of Section 3.2.1: a
// window-relative sequence of length w whose first k bits are zero and whose
// remaining bits are the window-independent bits of the blocks they align
// with. base is the identifier of the first block of the current window, so
// position i (1-based) aligns with block base+i-1.
//
// GEMM maintains, for each future window overlapping the current one, a model
// extracted with respect to the projected sequence of its overlap prefix.
func Project(b BSS, base ID, w, k int) WindowRelBSS {
	if k < 0 || k >= w {
		panic(fmt.Sprintf("blockseq: Project k=%d out of range [0,%d)", k, w))
	}
	bits := make([]bool, w)
	for i := k; i < w; i++ {
		bits[i] = b.Bit(base + ID(i))
	}
	return WindowRelBSS{bits: bits}
}

// WindowRelBSS is a window-relative block selection sequence ⟨b1, ..., bw⟩:
// one bit per position of the most recent window, moving with the window
// (Definition 2.1). The zero value is the empty sequence.
type WindowRelBSS struct {
	bits []bool
}

// NewWindowRel builds a window-relative sequence from explicit bits;
// bits[0] is the bit of the oldest block in the window.
func NewWindowRel(bits ...bool) WindowRelBSS {
	c := make([]bool, len(bits))
	copy(c, bits)
	return WindowRelBSS{bits: c}
}

// ParseWindowRel builds a window-relative sequence from a string of '0' and
// '1' characters, e.g. "10110". Any other character is an error.
func ParseWindowRel(s string) (WindowRelBSS, error) {
	bits := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
			// already false
		case '1':
			bits[i] = true
		default:
			return WindowRelBSS{}, fmt.Errorf("blockseq: invalid BSS character %q in %q", c, s)
		}
	}
	return WindowRelBSS{bits: bits}, nil
}

// Len returns the window size w the sequence is defined for.
func (b WindowRelBSS) Len() int { return len(b.bits) }

// BitAt reports the bit at 1-based position pos within the window. Positions
// outside [1, w] report false.
func (b WindowRelBSS) BitAt(pos int) bool {
	if pos < 1 || pos > len(b.bits) {
		return false
	}
	return b.bits[pos-1]
}

// RightShift computes the k-right-shifted sequence of Section 3.2.2: the bits
// slide forward by k positions, the leftmost k bits become zero, and bits
// sliding beyond position w are truncated. k must be in [0, w).
func (b WindowRelBSS) RightShift(k int) WindowRelBSS {
	w := len(b.bits)
	if k < 0 || k >= w {
		panic(fmt.Sprintf("blockseq: RightShift k=%d out of range [0,%d)", k, w))
	}
	bits := make([]bool, w)
	for i := k; i < w; i++ {
		bits[i] = b.bits[i-k]
	}
	return WindowRelBSS{bits: bits}
}

// SelectedIn lists the identifiers selected when the sequence is aligned with
// win; position 1 aligns with win.Lo. win.Len() may differ from Len(): excess
// positions on either side select nothing.
func (b WindowRelBSS) SelectedIn(win Window) []ID {
	var ids []ID
	for pos := 1; pos <= win.Len() && pos <= len(b.bits); pos++ {
		if b.bits[pos-1] {
			ids = append(ids, win.Lo+ID(pos-1))
		}
	}
	return ids
}

// Equal reports whether two window-relative sequences have identical bits.
func (b WindowRelBSS) Equal(o WindowRelBSS) bool {
	if len(b.bits) != len(o.bits) {
		return false
	}
	for i := range b.bits {
		if b.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// String renders the sequence in the paper's ⟨0110...⟩ style without the
// angle brackets, e.g. "10110".
func (b WindowRelBSS) String() string {
	var sb strings.Builder
	for _, bit := range b.bits {
		if bit {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
