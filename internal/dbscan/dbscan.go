// Package dbscan implements DBSCAN (Ester, Kriegel, Xu 1995) and its
// incremental variant (Ester et al., VLDB 1998), the incremental clustering
// algorithm the DEMON paper cites when motivating GEMM: insertions are cheap
// and local, while a deletion can split a cluster and forces the affected
// component to be re-examined — "the cost incurred by incremental DBScan to
// maintain the set of clusters when a tuple is deleted is higher than that
// when a tuple is inserted" (Section 3.2.4).
//
// A point is a core point when its ε-neighbourhood (including itself) holds
// at least MinPts points; clusters are the connected components of core
// points under the "within ε" relation, with non-core points attached to a
// neighbouring core's cluster (border points) or left as noise.
package dbscan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/demon-mining/demon/internal/cf"
)

// Config parameterizes the clustering.
type Config struct {
	// Eps is the neighbourhood radius ε.
	Eps float64
	// MinPts is the core-point density threshold, counting the point
	// itself.
	MinPts int
}

func (c Config) validate() error {
	if c.Eps <= 0 {
		return fmt.Errorf("dbscan: eps %v <= 0", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("dbscan: minPts %d < 1", c.MinPts)
	}
	return nil
}

// Incremental maintains a DBSCAN clustering under point insertions and
// deletions. Neighbour queries run against a grid index with ε-sized cells.
type Incremental struct {
	cfg   Config
	dim   int
	pts   []cf.Point
	alive []bool
	// nbrCount[i] = |N_ε(i)| among alive points, including i itself.
	nbrCount []int
	// parent is a union-find forest over core-core ε-edges.
	parent []int
	size   []int
	grid   map[string][]int
	// Stats
	nbrQueries int
	inserts    int
	deletes    int
}

// NewIncremental creates an empty clustering.
func NewIncremental(cfg Config) (*Incremental, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Incremental{cfg: cfg, grid: make(map[string][]int)}, nil
}

// NeighbourQueries returns how many ε-neighbourhood queries were executed —
// the cost metric the insertion-vs-deletion ablation reports.
func (c *Incremental) NeighbourQueries() int { return c.nbrQueries }

func (c *Incremental) cellOf(p cf.Point) string {
	var sb strings.Builder
	for _, x := range p {
		fmt.Fprintf(&sb, "%d,", int(math.Floor(x/c.cfg.Eps)))
	}
	return sb.String()
}

// neighbours returns the ids of alive points within ε of p (possibly
// including an id the caller wants to exclude; the caller filters).
func (c *Incremental) neighbours(p cf.Point) []int {
	c.nbrQueries++
	coords := make([]int, len(p))
	for i, x := range p {
		coords[i] = int(math.Floor(x / c.cfg.Eps))
	}
	var out []int
	// Enumerate the 3^d neighbouring cells.
	offsets := make([]int, len(p))
	for i := range offsets {
		offsets[i] = -1
	}
	for {
		var sb strings.Builder
		for i := range coords {
			fmt.Fprintf(&sb, "%d,", coords[i]+offsets[i])
		}
		for _, id := range c.grid[sb.String()] {
			if c.alive[id] && cf.Distance(c.pts[id], p) <= c.cfg.Eps {
				out = append(out, id)
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(offsets); i++ {
			offsets[i]++
			if offsets[i] <= 1 {
				break
			}
			offsets[i] = -1
		}
		if i == len(offsets) {
			break
		}
	}
	return out
}

func (c *Incremental) find(i int) int {
	for c.parent[i] != i {
		c.parent[i] = c.parent[c.parent[i]]
		i = c.parent[i]
	}
	return i
}

func (c *Incremental) union(a, b int) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if c.size[ra] < c.size[rb] {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	c.size[ra] += c.size[rb]
}

// isCore reports whether an alive point currently meets the density
// threshold.
func (c *Incremental) isCore(id int) bool {
	return c.alive[id] && c.nbrCount[id] >= c.cfg.MinPts
}

// Insert adds a point and repairs the clustering locally: neighbour counts
// in N_ε(p) are incremented, and every point that thereby becomes core (p
// itself included) is connected to the cores in its neighbourhood. Insertion
// can only merge clusters, so union-find absorbs all structural change.
func (c *Incremental) Insert(p cf.Point) (int, error) {
	if c.dim == 0 {
		c.dim = len(p)
	} else if len(p) != c.dim {
		return 0, fmt.Errorf("dbscan: point dimension %d, clustering dimension %d", len(p), c.dim)
	}
	id := len(c.pts)
	cp := make(cf.Point, len(p))
	copy(cp, p)
	nbrs := c.neighbours(cp)

	c.pts = append(c.pts, cp)
	c.alive = append(c.alive, true)
	c.nbrCount = append(c.nbrCount, len(nbrs)+1) // + itself
	c.parent = append(c.parent, id)
	c.size = append(c.size, 1)
	cell := c.cellOf(cp)
	c.grid[cell] = append(c.grid[cell], id)
	c.inserts++

	// Count updates; collect upgrades.
	var newlyCore []int
	if c.isCore(id) {
		newlyCore = append(newlyCore, id)
	}
	for _, q := range nbrs {
		c.nbrCount[q]++
		if c.nbrCount[q] == c.cfg.MinPts {
			newlyCore = append(newlyCore, q)
		}
	}
	// Connect each newly-core point to the cores around it.
	for _, q := range newlyCore {
		for _, r := range c.neighbours(c.pts[q]) {
			if r != q && c.isCore(r) {
				c.union(q, r)
			}
		}
	}
	return id, nil
}

// Delete removes a point. Neighbour counts are decremented; if the deleted
// point or any demoted neighbour was core, the connected component(s) they
// belonged to may split, so those components' cores are re-linked from
// scratch — the locally bounded but strictly costlier repair the paper
// alludes to.
func (c *Incremental) Delete(id int) error {
	if id < 0 || id >= len(c.pts) || !c.alive[id] {
		return fmt.Errorf("dbscan: point %d does not exist", id)
	}
	wasCore := c.isCore(id)
	nbrs := c.neighbours(c.pts[id])

	// Roots whose components may split.
	affected := make(map[int]bool)
	if wasCore {
		affected[c.find(id)] = true
	}

	c.alive[id] = false
	c.deletes++
	for _, q := range nbrs {
		if q == id {
			continue
		}
		demotedFromCore := c.nbrCount[q] == c.cfg.MinPts
		c.nbrCount[q]--
		if demotedFromCore {
			affected[c.find(q)] = true
		}
	}
	if len(affected) == 0 {
		return nil
	}

	// Gather the alive members of the affected components and rebuild their
	// core connectivity. Components are closed under core ε-edges, so
	// resetting and re-linking only their members is sound.
	var members []int
	for i := range c.pts {
		if c.alive[i] && affected[c.find(i)] {
			members = append(members, i)
		}
	}
	for _, m := range members {
		c.parent[m] = m
		c.size[m] = 1
	}
	for _, m := range members {
		if !c.isCore(m) {
			continue
		}
		for _, r := range c.neighbours(c.pts[m]) {
			if r != m && c.isCore(r) {
				c.union(m, r)
			}
		}
	}
	return nil
}

// Point returns the coordinates of a live point.
func (c *Incremental) Point(id int) (cf.Point, error) {
	if id < 0 || id >= len(c.pts) || !c.alive[id] {
		return nil, fmt.Errorf("dbscan: point %d does not exist", id)
	}
	return c.pts[id], nil
}

// Noise is the label of points belonging to no cluster.
const Noise = -1

// Labels returns the cluster label of every inserted point id (deleted
// points and noise get Noise). Labels are dense, deterministic and ordered
// by the smallest point id in each cluster. Border points attach to the
// cluster of their smallest-rooted core neighbour.
func (c *Incremental) Labels() []int {
	labels := make([]int, len(c.pts))
	rootLabel := make(map[int]int)
	var roots []int
	for i := range c.pts {
		labels[i] = Noise
		if c.isCore(i) {
			r := c.find(i)
			if _, ok := rootLabel[r]; !ok {
				rootLabel[r] = 0
				roots = append(roots, r)
			}
		}
	}
	// Deterministic labels: order roots by their smallest core member.
	smallest := make(map[int]int, len(rootLabel))
	for i := range c.pts {
		if c.isCore(i) {
			r := c.find(i)
			if s, ok := smallest[r]; !ok || i < s {
				smallest[r] = i
			}
		}
	}
	sort.Slice(roots, func(a, b int) bool { return smallest[roots[a]] < smallest[roots[b]] })
	for lbl, r := range roots {
		rootLabel[r] = lbl
	}
	for i := range c.pts {
		if c.isCore(i) {
			labels[i] = rootLabel[c.find(i)]
		}
	}
	// Border points.
	for i := range c.pts {
		if !c.alive[i] || c.isCore(i) {
			continue
		}
		best := -1
		for _, q := range c.neighbours(c.pts[i]) {
			if q != i && c.isCore(q) {
				if lbl := rootLabel[c.find(q)]; best == -1 || lbl < best {
					best = lbl
				}
			}
		}
		if best >= 0 {
			labels[i] = best
		}
	}
	return labels
}

// NumClusters returns the current number of clusters.
func (c *Incremental) NumClusters() int {
	roots := make(map[int]bool)
	for i := range c.pts {
		if c.isCore(i) {
			roots[c.find(i)] = true
		}
	}
	return len(roots)
}

// Cluster runs classic non-incremental DBSCAN over a point set and returns
// labels parallel to the input (Noise for noise points). It is the
// from-scratch reference the incremental variant is checked against.
func Cluster(cfg Config, pts []cf.Point) ([]int, error) {
	inc, err := NewIncremental(cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if _, err := inc.Insert(p); err != nil {
			return nil, err
		}
	}
	return inc.Labels(), nil
}
