package dbscan

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/cf"
)

// naiveLabels is an independent from-scratch DBSCAN: brute-force
// neighbourhoods, BFS over cores, border points attached to the
// smallest-labelled core neighbour (the same deterministic rule the
// incremental implementation uses).
func naiveLabels(cfg Config, pts []cf.Point) []int {
	n := len(pts)
	within := func(a, b int) bool { return cf.Distance(pts[a], pts[b]) <= cfg.Eps }
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if within(i, j) {
				count++
			}
		}
		core[i] = count >= cfg.MinPts
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	next := 0
	for i := 0; i < n; i++ {
		if !core[i] || labels[i] != Noise {
			continue
		}
		// BFS over cores.
		queue := []int{i}
		labels[i] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if v != u && core[v] && labels[v] == Noise && within(u, v) {
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	for i := 0; i < n; i++ {
		if core[i] {
			continue
		}
		best := Noise
		for j := 0; j < n; j++ {
			if j != i && core[j] && within(i, j) {
				if best == Noise || labels[j] < best {
					best = labels[j]
				}
			}
		}
		labels[i] = best
	}
	return labels
}

func randomPoints(rng *rand.Rand, n int) []cf.Point {
	pts := make([]cf.Point, n)
	for i := range pts {
		pts[i] = cf.Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	return pts
}

func TestInsertOnlyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Eps: 1.0, MinPts: 4}
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(rng, 40+rng.Intn(60))
		got, err := Cluster(cfg, pts)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveLabels(cfg, pts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: labels diverge\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestInsertDeleteMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{Eps: 1.2, MinPts: 3}
	for trial := 0; trial < 15; trial++ {
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int
		alive := make(map[int]bool)
		for step := 0; step < 120; step++ {
			if len(ids) > 0 && rng.Float64() < 0.35 {
				// Delete a random alive point.
				var aliveIDs []int
				for id := range alive {
					aliveIDs = append(aliveIDs, id)
				}
				if len(aliveIDs) > 0 {
					id := aliveIDs[rng.Intn(len(aliveIDs))]
					if err := inc.Delete(id); err != nil {
						t.Fatal(err)
					}
					delete(alive, id)
					continue
				}
			}
			p := cf.Point{rng.Float64() * 8, rng.Float64() * 8}
			id, err := inc.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			alive[id] = true
		}
		// Compare against naive DBSCAN over the alive points in id order.
		var pts []cf.Point
		var aliveOrder []int
		for _, id := range ids {
			if alive[id] {
				p, err := inc.Point(id)
				if err != nil {
					t.Fatal(err)
				}
				pts = append(pts, p)
				aliveOrder = append(aliveOrder, id)
			}
		}
		want := naiveLabels(cfg, pts)
		labels := inc.Labels()
		got := make([]int, len(aliveOrder))
		for i, id := range aliveOrder {
			got[i] = labels[id]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: labels diverge after deletions\n got %v\nwant %v", trial, got, want)
		}
	}
}

// barbell builds two dense blobs joined by a single bridge point, and
// returns the incremental clustering plus the bridge id.
func barbell(t *testing.T) (*Incremental, int) {
	t.Helper()
	inc, err := NewIncremental(Config{Eps: 1.1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob := func(cx float64) {
		for _, d := range []cf.Point{{0, 0}, {0.3, 0}, {0, 0.3}, {0.3, 0.3}, {0.15, 0.15}} {
			if _, err := inc.Insert(cf.Point{cx + d[0], d[1]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	blob(0)
	blob(2.0)
	// Bridge at x=1.0 connects cores of both blobs (within 1.1 of each).
	bridge, err := inc.Insert(cf.Point{1.0, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	return inc, bridge
}

func TestBridgeMergesAndDeleteSplits(t *testing.T) {
	inc, bridge := barbell(t)
	if got := inc.NumClusters(); got != 1 {
		t.Fatalf("with bridge: %d clusters, want 1", got)
	}
	if err := inc.Delete(bridge); err != nil {
		t.Fatal(err)
	}
	if got := inc.NumClusters(); got != 2 {
		t.Fatalf("after deleting bridge: %d clusters, want 2", got)
	}
}

// TestDeletionCostsMoreThanInsertion pins the Section 3.2.4 claim the
// package exists to demonstrate: the bridge deletion (a cluster split)
// issues more neighbourhood queries than the bridge insertion (a merge).
func TestDeletionCostsMoreThanInsertion(t *testing.T) {
	inc, _ := barbell(t)
	before := inc.NeighbourQueries()
	id, err := inc.Insert(cf.Point{1.0, 0.45}) // second bridge point
	if err != nil {
		t.Fatal(err)
	}
	insertCost := inc.NeighbourQueries() - before

	before = inc.NeighbourQueries()
	if err := inc.Delete(id); err != nil {
		t.Fatal(err)
	}
	deleteCost := inc.NeighbourQueries() - before

	if deleteCost <= insertCost {
		t.Fatalf("delete cost %d not greater than insert cost %d", deleteCost, insertCost)
	}
}

func TestNoiseAndBorder(t *testing.T) {
	inc, err := NewIncremental(Config{Eps: 1.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A 3-point core cluster, one border point, one far noise point.
	for _, p := range []cf.Point{{0, 0}, {0.5, 0}, {0, 0.5}} {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	border, _ := inc.Insert(cf.Point{0.9, 0}) // near core 0/1 but sparse around it
	noise, _ := inc.Insert(cf.Point{50, 50})  // far away
	labels := inc.Labels()
	if labels[noise] != Noise {
		t.Fatalf("noise point labelled %d", labels[noise])
	}
	if labels[border] == Noise {
		t.Fatal("border point labelled noise")
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("cluster labels inconsistent: %v", labels[:3])
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewIncremental(Config{Eps: 0, MinPts: 3}); err == nil {
		t.Error("accepted eps = 0")
	}
	if _, err := NewIncremental(Config{Eps: 1, MinPts: 0}); err == nil {
		t.Error("accepted minPts = 0")
	}
	inc, err := NewIncremental(Config{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert(cf.Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert(cf.Point{1, 2, 3}); err == nil {
		t.Error("accepted dimension change")
	}
	if err := inc.Delete(99); err == nil {
		t.Error("accepted unknown id")
	}
	if err := inc.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(0); err == nil {
		t.Error("accepted double delete")
	}
	if _, err := inc.Point(0); err == nil {
		t.Error("Point of deleted id succeeded")
	}
}
