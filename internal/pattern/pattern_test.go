package pattern

import (
	"errors"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/focus"
)

// pairDiffer is a fake deviation function over blocks identified by their
// IDs: listed pairs are similar (p = 1), everything else dissimilar (p = 0).
type pairDiffer struct {
	similar map[[2]blockseq.ID]bool
	failOn  blockseq.ID
	calls   int
}

func newPairDiffer(pairs ...[2]blockseq.ID) *pairDiffer {
	m := make(map[[2]blockseq.ID]bool)
	for _, p := range pairs {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		m[p] = true
	}
	return &pairDiffer{similar: m}
}

func (d *pairDiffer) Deviation(a, b blockseq.ID) (focus.Deviation, error) {
	d.calls++
	if d.failOn != 0 && (a == d.failOn || b == d.failOn) {
		return focus.Deviation{}, errors.New("injected failure")
	}
	if a > b {
		a, b = b, a
	}
	if d.similar[[2]blockseq.ID{a, b}] {
		return focus.Deviation{Score: 0, PValue: 1}, nil
	}
	return focus.Deviation{Score: 1, PValue: 0}, nil
}

func addAll(t *testing.T, d *Detector[blockseq.ID], n int) {
	t.Helper()
	for id := blockseq.ID(1); id <= blockseq.ID(n); id++ {
		if _, err := d.AddBlock(id, id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPaperExample replays the Section 4 example: among D1..D4 the similar
// pairs are (1,2), (1,3), (1,4), (2,4); then {D1, D2, D4} is compact while
// {D1, D2, D3} and {D1, D4} are not.
func TestPaperExample(t *testing.T) {
	pd := newPairDiffer(
		[2]blockseq.ID{1, 2}, [2]blockseq.ID{1, 3},
		[2]blockseq.ID{1, 4}, [2]blockseq.ID{2, 4},
	)
	d, err := New[blockseq.ID](pd, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, 4)

	want := [][]blockseq.ID{{1, 2, 4}, {2, 4}, {3}, {4}}
	if got := d.Sequences(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sequences = %v, want %v", got, want)
	}
	// Maximal drops {2,4} ⊂ {1,2,4} and {4} ⊂ {1,2,4}.
	wantMax := [][]blockseq.ID{{1, 2, 4}, {3}}
	if got := d.Maximal(); !reflect.DeepEqual(got, wantMax) {
		t.Fatalf("Maximal = %v, want %v", got, wantMax)
	}
}

// TestCompactnessInvariant checks Definition 4.1 on random similarity
// structures: every maintained sequence is pairwise similar, and no skipped
// block between a sequence's first and last members is similar to all
// earlier members of the sequence.
func TestCompactnessInvariant(t *testing.T) {
	// A fixed pseudo-random similarity structure over 12 blocks.
	var pairs [][2]blockseq.ID
	for a := blockseq.ID(1); a <= 12; a++ {
		for b := a + 1; b <= 12; b++ {
			if (int(a)*7+int(b)*13)%3 != 0 {
				pairs = append(pairs, [2]blockseq.ID{a, b})
			}
		}
	}
	pd := newPairDiffer(pairs...)
	d, err := New[blockseq.ID](pd, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, 12)

	similar := func(a, b blockseq.ID) bool {
		dev, err := pd.Deviation(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return dev.PValue >= 0.05
	}
	for _, seq := range d.Sequences() {
		// (1) pairwise similar.
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				if !similar(seq[i], seq[j]) {
					t.Fatalf("sequence %v not pairwise similar at (%d, %d)", seq, seq[i], seq[j])
				}
			}
		}
		// (2) no holes.
		member := make(map[blockseq.ID]bool, len(seq))
		for _, id := range seq {
			member[id] = true
		}
		for id := seq[0] + 1; id < seq[len(seq)-1]; id++ {
			if member[id] {
				continue
			}
			simToAllEarlier := true
			for _, m := range seq {
				if m >= id {
					break
				}
				if !similar(m, id) {
					simToAllEarlier = false
					break
				}
			}
			if simToAllEarlier {
				t.Fatalf("sequence %v has a hole at %d", seq, id)
			}
		}
	}
}

func TestDeviationMatrixCached(t *testing.T) {
	pd := newPairDiffer([2]blockseq.ID{1, 2})
	d, err := New[blockseq.ID](pd, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, 5)
	// Exactly C(5,2) = 10 deviations: each pair computed once.
	if pd.calls != 10 {
		t.Fatalf("deviation calls = %d, want 10", pd.calls)
	}
	dev, ok := d.Similarity(1, 2)
	if !ok || dev.PValue != 1 {
		t.Fatalf("Similarity(1,2) = %+v, %v", dev, ok)
	}
	dev, ok = d.Similarity(2, 1) // symmetric lookup
	if !ok || dev.PValue != 1 {
		t.Fatalf("Similarity(2,1) = %+v, %v", dev, ok)
	}
	if _, ok := d.Similarity(1, 99); ok {
		t.Fatal("Similarity of unknown block reported ok")
	}
	if pd.calls != 10 {
		t.Fatal("Similarity lookups recomputed deviations")
	}
}

func TestAddBlockStats(t *testing.T) {
	pd := newPairDiffer([2]blockseq.ID{1, 2}, [2]blockseq.ID{1, 3})
	d, err := New[blockseq.ID](pd, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := d.AddBlock(1, 1)
	if st.Deviations != 0 {
		t.Fatalf("first block deviations = %d", st.Deviations)
	}
	st, _ = d.AddBlock(2, 2)
	if st.Deviations != 1 || st.SimilarTo != 1 || st.Extended != 1 {
		t.Fatalf("second block stats = %+v", st)
	}
	st, _ = d.AddBlock(3, 3)
	if st.Deviations != 2 || st.SimilarTo != 1 {
		t.Fatalf("third block stats = %+v", st)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	d, err := New[blockseq.ID](newPairDiffer(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddBlock(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddBlock(1, 1); err == nil {
		t.Fatal("accepted out-of-order block")
	}
	if _, err := d.AddBlock(2, 2); err == nil {
		t.Fatal("accepted duplicate block")
	}
}

func TestDifferErrorPropagates(t *testing.T) {
	pd := newPairDiffer()
	pd.failOn = 2
	d, err := New[blockseq.ID](pd, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddBlock(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddBlock(2, 2); err == nil {
		t.Fatal("differ failure not propagated")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New[blockseq.ID](nil, 0.05); err == nil {
		t.Error("accepted nil differ")
	}
	if _, err := New[blockseq.ID](newPairDiffer(), 0); err == nil {
		t.Error("accepted α = 0")
	}
	if _, err := New[blockseq.ID](newPairDiffer(), 1); err == nil {
		t.Error("accepted α = 1")
	}
	if _, err := New[blockseq.ID](newPairDiffer(), 0.05, WithWindow[blockseq.ID](-1)); err == nil {
		t.Error("accepted negative window")
	}
}

func TestWindowedDetection(t *testing.T) {
	// All blocks pairwise similar; with window 3 only the last 3 blocks may
	// appear in any sequence.
	var pairs [][2]blockseq.ID
	for a := blockseq.ID(1); a <= 6; a++ {
		for b := a + 1; b <= 6; b++ {
			pairs = append(pairs, [2]blockseq.ID{a, b})
		}
	}
	pd := newPairDiffer(pairs...)
	d, err := New[blockseq.ID](pd, 0.05, WithWindow[blockseq.ID](3))
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, 6)
	for _, seq := range d.Sequences() {
		for _, id := range seq {
			if id < 4 {
				t.Fatalf("sequence %v contains expired block %d", seq, id)
			}
		}
	}
	max := d.Maximal()
	if len(max) != 1 || !reflect.DeepEqual(max[0], []blockseq.ID{4, 5, 6}) {
		t.Fatalf("Maximal = %v, want [[4 5 6]]", max)
	}
	// Windowed detection computes at most window-1 deviations per block:
	// 0+1+2+2+2+2 = 9.
	if pd.calls != 9 {
		t.Fatalf("deviation calls = %d, want 9", pd.calls)
	}
}

func TestT(t *testing.T) {
	d, _ := New[blockseq.ID](newPairDiffer(), 0.05)
	if d.T() != 0 {
		t.Fatalf("empty T = %d", d.T())
	}
	addAll(t, d, 3)
	if d.T() != 3 {
		t.Fatalf("T = %d", d.T())
	}
}

func TestCyclicSubsequence(t *testing.T) {
	// The paper's example: from compact ⟨D1, D3, D4, D5, D7⟩ derive the
	// cyclic ⟨D1, D3, D5, D7⟩.
	seq := []blockseq.ID{1, 3, 4, 5, 7}
	got := CyclicSubsequence(seq, 2)
	want := []blockseq.ID{1, 3, 5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CyclicSubsequence = %v, want %v", got, want)
	}
	if CyclicSubsequence(seq, 10) != nil {
		t.Fatal("period 10 should yield nil")
	}
	if CyclicSubsequence(nil, 2) != nil {
		t.Fatal("empty sequence should yield nil")
	}
	if CyclicSubsequence(seq, 0) != nil {
		t.Fatal("period 0 should yield nil")
	}
}
