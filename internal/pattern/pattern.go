// Package pattern implements the compact-sequence detection algorithm of
// Section 4 of the DEMON paper: given a deviation function (FOCUS) and a
// significance level α, it incrementally maintains all compact sequences of
// pairwise-similar blocks as new blocks arrive. A compact sequence is a
// maximal sequence of pairwise similar blocks with no "holes": any block
// lying between its first and last members that is similar to every earlier
// member also belongs to the sequence.
package pattern

import (
	"fmt"
	"sort"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/obs"
)

// Detector incrementally maintains the compact sequences of a systematically
// evolving database. The pairwise deviation matrix is cached so each
// deviation is computed exactly once (the optimization Section 4 calls out).
type Detector[B any] struct {
	differ focus.Differ[B]
	alpha  float64
	window int // 0 = unrestricted; otherwise only the last `window` blocks participate

	ids    []blockseq.ID
	blocks []B
	// sim[i][j] (j < i) records whether blocks i and j are similar; indices
	// are positions in ids/blocks.
	sim [][]bool
	dev [][]focus.Deviation
	// seqs holds one sequence per block, each started when its block
	// arrived — the G_1, ..., G_t of the inductive algorithm. Entries are
	// positions into ids.
	seqs [][]int
}

// Stats describes one AddBlock step, the quantities plotted in Figure 10.
type Stats struct {
	// Deviations is the number of block pairs whose deviation was computed
	// (always the number of retained earlier blocks).
	Deviations int
	// DeviationTime is the total time spent in the deviation function.
	DeviationTime time.Duration
	// ExtendTime is the time spent extending existing sequences with the new
	// block; DeviationTime + ExtendTime decompose the per-block cost of
	// Figure 10.
	ExtendTime time.Duration
	// Extended is the number of existing sequences the new block joined.
	Extended int
	// SimilarTo is the number of earlier blocks the new block is similar to.
	SimilarTo int
}

// Option configures a Detector.
type Option[B any] func(*Detector[B])

// WithWindow restricts detection to the w most recent blocks (the
// most-recent-window extension of footnote 9): older blocks are pruned from
// all sequences and no longer compared against.
func WithWindow[B any](w int) Option[B] {
	return func(d *Detector[B]) { d.window = w }
}

// New creates a detector over the given deviation function at significance
// level α ∈ (0, 1).
func New[B any](differ focus.Differ[B], alpha float64, opts ...Option[B]) (*Detector[B], error) {
	if differ == nil {
		return nil, fmt.Errorf("pattern: nil differ")
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("pattern: significance level %v outside (0, 1)", alpha)
	}
	d := &Detector[B]{differ: differ, alpha: alpha}
	for _, o := range opts {
		o(d)
	}
	if d.window < 0 {
		return nil, fmt.Errorf("pattern: negative window %d", d.window)
	}
	return d, nil
}

// AddBlock ingests the next block: one deviation computation against every
// retained earlier block, the new singleton sequence G_{t+1}, and the
// extension of every existing sequence whose members are all similar to the
// new block.
func (d *Detector[B]) AddBlock(id blockseq.ID, blk B) (Stats, error) {
	var st Stats
	if n := len(d.ids); n > 0 && id <= d.ids[n-1] {
		return st, fmt.Errorf("pattern: block %d out of order (latest %d)", id, d.ids[n-1])
	}
	reg := obs.Default()
	span := reg.Timer("pattern.addblock.ns").Start()
	defer span.End()

	// Augment the deviation matrix with δ(new, Di) for every retained block.
	// Under a window, blocks that will be outside the window once the new
	// block arrives are skipped (their payloads were released by prune).
	lo := 0
	if d.window > 0 {
		if lo = len(d.ids) - (d.window - 1); lo < 0 {
			lo = 0
		}
	}
	simRow := make([]bool, len(d.ids))
	devRow := make([]focus.Deviation, len(d.ids))
	start := time.Now()
	for i := lo; i < len(d.blocks); i++ {
		dev, err := d.differ.Deviation(d.blocks[i], blk)
		if err != nil {
			return st, fmt.Errorf("pattern: deviation between blocks %d and %d: %w", d.ids[i], id, err)
		}
		devRow[i] = dev
		simRow[i] = dev.PValue >= d.alpha
		if simRow[i] {
			st.SimilarTo++
		}
	}
	st.DeviationTime = time.Since(start)
	st.Deviations = len(d.blocks) - lo

	// Extend each sequence whose every member is similar to the new block.
	extendStart := time.Now()
	newPos := len(d.ids)
	for si := range d.seqs {
		all := true
		for _, pos := range d.seqs[si] {
			if !simRow[pos] {
				all = false
				break
			}
		}
		if all {
			d.seqs[si] = append(d.seqs[si], newPos)
			st.Extended++
		}
	}
	st.ExtendTime = time.Since(extendStart)

	d.ids = append(d.ids, id)
	d.blocks = append(d.blocks, blk)
	d.sim = append(d.sim, simRow)
	d.dev = append(d.dev, devRow)
	d.seqs = append(d.seqs, []int{newPos}) // G_{t+1} = {D_{t+1}}

	if d.window > 0 {
		d.prune()
	}
	if reg.Enabled() {
		reg.Timer("pattern.deviation.ns").Record(st.DeviationTime)
		reg.Timer("pattern.extend.ns").Record(st.ExtendTime)
		reg.Counter("pattern.deviations").Add(int64(st.Deviations))
		reg.Counter("pattern.similar").Add(int64(st.SimilarTo))
		reg.Gauge("pattern.blocks").Set(int64(len(d.ids)))
		reg.Gauge("pattern.sequences").Set(int64(len(d.seqs)))
	}
	return st, nil
}

// prune drops blocks that fell out of the most recent window from every
// sequence; sequences that become empty are removed. Block payloads of
// expired blocks are released.
func (d *Detector[B]) prune() {
	cutoff := len(d.ids) - d.window // positions < cutoff expire
	if cutoff <= 0 {
		return
	}
	kept := d.seqs[:0]
	for _, seq := range d.seqs {
		trimmed := seq[:0]
		for _, pos := range seq {
			if pos >= cutoff {
				trimmed = append(trimmed, pos)
			}
		}
		if len(trimmed) > 0 {
			kept = append(kept, trimmed)
		}
	}
	d.seqs = kept
	// Release expired payloads so the detector's memory tracks the window.
	var zero B
	for i := 0; i < cutoff; i++ {
		d.blocks[i] = zero
	}
}

// T returns the identifier of the latest block seen (0 if none).
func (d *Detector[B]) T() blockseq.ID {
	if len(d.ids) == 0 {
		return 0
	}
	return d.ids[len(d.ids)-1]
}

// Similarity returns the cached deviation between two previously added
// blocks.
func (d *Detector[B]) Similarity(a, b blockseq.ID) (focus.Deviation, bool) {
	ia, ib := d.pos(a), d.pos(b)
	if ia < 0 || ib < 0 || ia == ib {
		return focus.Deviation{}, false
	}
	if ia < ib {
		ia, ib = ib, ia
	}
	return d.dev[ia][ib], true
}

func (d *Detector[B]) pos(id blockseq.ID) int {
	i := sort.Search(len(d.ids), func(i int) bool { return d.ids[i] >= id })
	if i < len(d.ids) && d.ids[i] == id {
		return i
	}
	return -1
}

// Sequences returns every currently maintained compact sequence as block
// identifier lists, in order of their starting block.
func (d *Detector[B]) Sequences() [][]blockseq.ID {
	out := make([][]blockseq.ID, len(d.seqs))
	for i, seq := range d.seqs {
		ids := make([]blockseq.ID, len(seq))
		for j, pos := range seq {
			ids[j] = d.ids[pos]
		}
		out[i] = ids
	}
	return out
}

// Maximal returns the compact sequences that are not subsets of another
// maintained sequence — the deduplicated view an analyst inspects (the
// greedy induction keeps one sequence per starting block, so later
// singletons are often strict subsets of earlier sequences).
func (d *Detector[B]) Maximal() [][]blockseq.ID {
	seqs := d.Sequences()
	var out [][]blockseq.ID
	for i, s := range seqs {
		subset := false
		for j, t := range seqs {
			if i == j {
				continue
			}
			if len(s) < len(t) && isSubset(s, t) {
				subset = true
				break
			}
			if len(s) == len(t) && j < i && equalSeq(s, t) {
				subset = true // duplicate: keep the first occurrence
				break
			}
		}
		if !subset {
			out = append(out, s)
		}
	}
	return out
}

func isSubset(s, t []blockseq.ID) bool {
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j >= len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

func equalSeq(s, t []blockseq.ID) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// CyclicSubsequence post-processes a compact sequence into its longest
// arithmetic (cyclic) subsequence with the given period in block identifiers
// — the D1, D3, D5, D7 example of Section 4. It returns nil when no two
// members are period apart.
func CyclicSubsequence(seq []blockseq.ID, period blockseq.ID) []blockseq.ID {
	if period <= 0 || len(seq) == 0 {
		return nil
	}
	present := make(map[blockseq.ID]bool, len(seq))
	for _, id := range seq {
		present[id] = true
	}
	var best []blockseq.ID
	for _, start := range seq {
		if present[start-period] {
			continue // not a chain start
		}
		var chain []blockseq.ID
		for id := start; present[id]; id += period {
			chain = append(chain, id)
		}
		if len(chain) > len(best) {
			best = chain
		}
	}
	if len(best) < 2 {
		return nil
	}
	return best
}
