package pattern

import (
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
)

func TestScore(t *testing.T) {
	seq := func(ids ...blockseq.ID) []blockseq.ID { return ids }

	tests := []struct {
		name   string
		seqs   [][]blockseq.ID
		blocks int
		want   float64
	}{
		{"empty", nil, 10, 0},
		{"zero blocks", [][]blockseq.ID{seq(1, 2)}, 0, 0},
		{"one pattern covers all", [][]blockseq.ID{seq(1, 2, 3, 4)}, 4, 1},
		{"singletons ignored", [][]blockseq.ID{seq(1), seq(2), seq(3)}, 3, 0},
		{"half coverage", [][]blockseq.ID{seq(1, 2)}, 4, 0.5},
		{"two patterns fragment", [][]blockseq.ID{seq(1, 2), seq(3, 4)}, 4, 1 - 0.25},
		{"overlap counted once", [][]blockseq.ID{seq(1, 2, 3), seq(2, 3)}, 4, 0.75 - 0.25},
	}
	for _, tc := range tests {
		if got := Score(tc.seqs, tc.blocks); got != tc.want {
			t.Errorf("%s: Score = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestScorePrefersFewLongPatterns: the heuristic must rank one pattern
// covering everything above many fragments covering the same blocks.
func TestScorePrefersFewLongPatterns(t *testing.T) {
	one := [][]blockseq.ID{{1, 2, 3, 4, 5, 6}}
	three := [][]blockseq.ID{{1, 2}, {3, 4}, {5, 6}}
	if Score(one, 6) <= Score(three, 6) {
		t.Fatalf("one long pattern %v not preferred over fragments %v",
			Score(one, 6), Score(three, 6))
	}
}
