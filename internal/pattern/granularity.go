package pattern

import "github.com/demon-mining/demon/internal/blockseq"

// Score rates how informative a set of maximal compact sequences is for a
// segmentation into numBlocks blocks — the heuristic behind the automatic
// granularity selection the DEMON paper lists as future work ("develop
// techniques to automatically determine appropriate levels of granularity").
//
// The score is coverage minus fragmentation:
//
//   - coverage is the fraction of blocks belonging to at least one
//     multi-block sequence. A granularity that is too fine produces noisy
//     blocks that match nothing; one that is too coarse mixes regimes inside
//     blocks — both depress coverage.
//   - fragmentation is (#multi-block sequences − 1) / numBlocks: among
//     segmentations with equal coverage, fewer, longer patterns explain the
//     data better.
//
// Scores lie in (−1, 1]; higher is better. Zero blocks score zero.
func Score(seqs [][]blockseq.ID, numBlocks int) float64 {
	if numBlocks <= 0 {
		return 0
	}
	covered := make(map[blockseq.ID]bool)
	multi := 0
	for _, s := range seqs {
		if len(s) < 2 {
			continue
		}
		multi++
		for _, id := range s {
			covered[id] = true
		}
	}
	coverage := float64(len(covered)) / float64(numBlocks)
	fragmentation := 0.0
	if multi > 1 {
		fragmentation = float64(multi-1) / float64(numBlocks)
	}
	return coverage - fragmentation
}
