// Package chaos is a zero-dependency fault-injecting TCP proxy in the shape
// of toxiproxy: it forwards byte streams between clients and one upstream
// while injecting the network faults a resilient client must survive —
// added latency, a bandwidth cap, a mid-stream stall, a TCP reset after N
// bytes, and a graceful close after N bytes (which tears an NDJSON line in
// half from the receiver's point of view).
//
// The byte-triggered faults count bytes in the client→upstream direction,
// because that is the direction ingest payloads travel; latency and the
// bandwidth cap shape both directions. Toxics are swappable at runtime
// (Set), so a test can march one fault class after another through the same
// proxy, and the upstream address is swappable too (SetUpstream), so a
// server restart behind the proxy looks to clients like the same endpoint
// coming back.
//
// Used in-process by the chaos e2e (internal/serve) and standalone as the
// demon-chaos dev binary.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/demon-mining/demon/internal/obs/log"
)

// Toxics describes the faults a Proxy injects. The zero value is a
// transparent proxy. At most one of the byte-triggered faults (StallAfter,
// ResetAfter, CloseAfter) fires per connection: the one with the smallest
// trigger offset wins.
type Toxics struct {
	// Latency is added once per forwarded chunk in both directions,
	// modelling a slow link.
	Latency time.Duration
	// Rate caps the forwarded bandwidth in bytes per second per direction
	// (0 = unlimited).
	Rate int64
	// StallAfter stops forwarding the connection after N client→upstream
	// bytes (0 = disabled): bytes keep being accepted from the client but
	// nothing moves, which is how a half-dead middlebox looks. StallFor
	// bounds the stall; 0 stalls until the connection is torn down.
	StallAfter int64
	StallFor   time.Duration
	// ResetAfter sends the client a TCP RST after N client→upstream bytes
	// (0 = disabled) — the "connection reset by peer" class of ambiguous
	// failure.
	ResetAfter int64
	// CloseAfter closes both sides cleanly after N client→upstream bytes
	// (0 = disabled). Triggered mid-line it delivers a torn NDJSON write to
	// the server.
	CloseAfter int64
}

// enabled reports whether any fault is configured.
func (t Toxics) enabled() bool { return t != (Toxics{}) }

// trigger returns the smallest positive byte-trigger offset and what fires
// there.
func (t Toxics) trigger() (offset int64, kind byteFault) {
	offset, kind = 0, faultNone
	consider := func(o int64, k byteFault) {
		if o > 0 && (offset == 0 || o < offset) {
			offset, kind = o, k
		}
	}
	consider(t.StallAfter, faultStall)
	consider(t.ResetAfter, faultReset)
	consider(t.CloseAfter, faultClose)
	return offset, kind
}

type byteFault int

const (
	faultNone byteFault = iota
	faultStall
	faultReset
	faultClose
)

// Proxy is one listener forwarding to one upstream with faults injected.
type Proxy struct {
	ln       net.Listener
	upstream atomic.Value // string
	toxics   atomic.Value // Toxics
	log      *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Counters for observability and test assertions.
	accepted atomic.Int64
	resets   atomic.Int64
	closes   atomic.Int64
	stalls   atomic.Int64
}

// New starts a proxy listening on listenAddr (use "127.0.0.1:0" for an
// ephemeral port) and forwarding to upstream.
func New(listenAddr, upstream string) (*Proxy, error) {
	if upstream == "" {
		return nil, fmt.Errorf("chaos: proxy needs an upstream address")
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", listenAddr, err)
	}
	p := &Proxy{ln: ln, log: log.Default(), conns: make(map[net.Conn]struct{})}
	p.upstream.Store(upstream)
	p.toxics.Store(Toxics{})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Set swaps the active toxics. Connections accepted after the call observe
// the new configuration; established connections keep the toxics they were
// accepted under, so one connection experiences one coherent fault.
func (p *Proxy) Set(t Toxics) { p.toxics.Store(t) }

// Toxics returns the active toxics.
func (p *Proxy) Toxics() Toxics { return p.toxics.Load().(Toxics) }

// SetUpstream redirects new connections to a different upstream address —
// the restart-behind-a-stable-endpoint move.
func (p *Proxy) SetUpstream(addr string) { p.upstream.Store(addr) }

// Accepted returns the number of client connections accepted so far.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Injected returns how many byte-triggered faults have fired, by kind.
func (p *Proxy) Injected() (resets, closes, stalls int64) {
	return p.resets.Load(), p.closes.Load(), p.stalls.Load()
}

// Close stops the listener and tears down every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = client.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.handle(client)
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// handle forwards one client connection through the toxics snapshot taken
// at accept time.
func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close()

	tox := p.Toxics()
	upstream, err := net.DialTimeout("tcp", p.upstream.Load().(string), 10*time.Second)
	if err != nil {
		p.log.Warn("chaos: upstream dial failed", "err", err)
		return
	}
	defer upstream.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)

	// The byte-triggered fault (if any) fires on the upstream direction at
	// an exact offset; the fire function runs on the up-pump goroutine.
	offset, kind := tox.trigger()
	fire := func() {
		switch kind {
		case faultStall:
			p.stalls.Add(1)
			if tox.StallFor > 0 {
				time.Sleep(tox.StallFor)
				return // resume forwarding after the stall
			}
			// Stall forever: park until either side is torn down. Reads on
			// the client keep succeeding (kernel buffers), but nothing is
			// forwarded; the client's deadline is what ends this.
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		case faultReset:
			p.resets.Add(1)
			reset(client)
			_ = upstream.Close()
		case faultClose:
			p.closes.Add(1)
			_ = client.Close()
			_ = upstream.Close()
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		pump(upstream, client, tox, offset, fire)
		// Client stopped sending: propagate the write-side close so the
		// upstream's request read ends instead of hanging.
		closeWrite(upstream)
	}()
	go func() {
		defer wg.Done()
		pump(client, upstream, tox, 0, nil)
		closeWrite(client)
	}()
	wg.Wait()
}

// pump copies src→dst applying latency and rate shaping. When trigger > 0,
// exactly trigger bytes are forwarded and then fire runs; pump returns after
// firing unless the fault was a bounded stall, in which case forwarding
// resumes transparently.
func pump(dst io.Writer, src io.Reader, tox Toxics, trigger int64, fire func()) {
	buf := make([]byte, 16*1024)
	var copied int64
	for {
		limit := int64(len(buf))
		if trigger > 0 && copied < trigger && trigger-copied < limit {
			limit = trigger - copied // split the chunk exactly at the trigger
		}
		n, rerr := src.Read(buf[:limit])
		if n > 0 {
			if tox.Latency > 0 {
				time.Sleep(tox.Latency)
			}
			if tox.Rate > 0 {
				// Shape by sleeping for the time this chunk "should" take.
				time.Sleep(time.Duration(float64(n) / float64(tox.Rate) * float64(time.Second)))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			copied += int64(n)
			if trigger > 0 && copied >= trigger {
				resumed := false
				if fire != nil {
					stallBounded := tox.StallAfter == trigger && tox.StallFor > 0
					fire()
					resumed = stallBounded
				}
				if !resumed {
					return
				}
				trigger = 0 // bounded stall over; forward the rest plainly
			}
		}
		if rerr != nil {
			return
		}
	}
}

// reset makes closing c send a TCP RST instead of a FIN, so the client sees
// "connection reset by peer" — the ambiguous failure mode.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// closeWrite half-closes the write side when the transport supports it.
func closeWrite(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		_ = cw.CloseWrite()
		return
	}
	_ = c.Close()
}

// ErrClosed reports use of a closed proxy (exported for symmetry with net).
var ErrClosed = errors.New("chaos: proxy closed")
