package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoUpstream accepts connections and echoes everything back, recording the
// bytes it received per connection.
type echoUpstream struct {
	ln net.Listener
	mu sync.Mutex
	rx []*bytes.Buffer
	wg sync.WaitGroup
}

func newEchoUpstream(t *testing.T) *echoUpstream {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	u := &echoUpstream{ln: ln}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			buf := &bytes.Buffer{}
			u.mu.Lock()
			u.rx = append(u.rx, buf)
			u.mu.Unlock()
			u.wg.Add(1)
			go func() {
				defer u.wg.Done()
				defer c.Close()
				chunk := make([]byte, 4096)
				for {
					n, err := c.Read(chunk)
					if n > 0 {
						u.mu.Lock()
						buf.Write(chunk[:n])
						u.mu.Unlock()
						if _, werr := c.Write(chunk[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); u.wg.Wait() })
	return u
}

func (u *echoUpstream) received(i int) []byte {
	u.mu.Lock()
	defer u.mu.Unlock()
	if i >= len(u.rx) {
		return nil
	}
	return append([]byte(nil), u.rx[i].Bytes()...)
}

func mustProxy(t *testing.T, upstream string) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", upstream)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTransparentForwarding(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())

	c := dial(t, p.Addr())
	msg := "hello through the proxy\n"
	if _, err := io.WriteString(c, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(got) != msg {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	if p.Accepted() != 1 {
		t.Fatalf("accepted = %d, want 1", p.Accepted())
	}
}

func TestResetAfterBytes(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	p.Set(Toxics{ResetAfter: 10})

	c := dial(t, p.Addr())
	payload := strings.Repeat("x", 64)
	// The write may succeed locally (kernel buffer); the failure surfaces on
	// read or on a subsequent write.
	io.WriteString(c, payload)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	var err error
	for err == nil {
		_, err = c.Read(buf)
	}
	if errors.Is(err, io.EOF) {
		// Accept EOF too: RST delivery races with the close on some stacks,
		// but the connection must die either way.
		t.Logf("got EOF instead of RST (acceptable race)")
	}
	if got := u.received(0); len(got) > 10 {
		t.Fatalf("upstream saw %d bytes, want ≤ trigger 10", len(got))
	}
	resets, _, _ := p.Injected()
	if resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
}

func TestCloseAfterBytesTearsStream(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	p.Set(Toxics{CloseAfter: 7})

	c := dial(t, p.Addr())
	io.WriteString(c, "0123456789abcdef")
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	io.Copy(io.Discard, c) // drain until the proxy closes us

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := u.received(0); got != nil && len(got) == 7 {
			if string(got) != "0123456" {
				t.Fatalf("upstream saw %q, want the first 7 bytes", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("upstream saw %q, want exactly the first 7 bytes", u.received(0))
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, closes, _ := p.Injected()
	if closes != 1 {
		t.Fatalf("closes = %d, want 1", closes)
	}
}

func TestStallBoundedResumes(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	p.Set(Toxics{StallAfter: 5, StallFor: 150 * time.Millisecond})

	c := dial(t, p.Addr())
	msg := "0123456789"
	start := time.Now()
	io.WriteString(c, msg)
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read after stall: %v", err)
	}
	if string(got) != msg {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("round-trip took %v, want ≥ the 150ms stall", elapsed)
	}
	_, _, stalls := p.Injected()
	if stalls != 1 {
		t.Fatalf("stalls = %d, want 1", stalls)
	}
}

func TestLatencySlowsRoundTrip(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	p.Set(Toxics{Latency: 60 * time.Millisecond})

	c := dial(t, p.Addr())
	start := time.Now()
	io.WriteString(c, "ping")
	got := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	// One latency hit each direction.
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("round-trip took %v, want ≥ 120ms", elapsed)
	}
}

func TestSetSwapsToxicsForNewConnections(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	p.Set(Toxics{ResetAfter: 1})

	c1 := dial(t, p.Addr())
	io.WriteString(c1, "doomed")
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	io.Copy(io.Discard, c1)

	p.Set(Toxics{}) // back to transparent
	c2 := dial(t, p.Addr())
	io.WriteString(c2, "fine\n")
	got := make([]byte, 5)
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatalf("healthy connection after Set: %v", err)
	}
}

func TestSetUpstreamRedirects(t *testing.T) {
	u1 := newEchoUpstream(t)
	u2 := newEchoUpstream(t)
	p := mustProxy(t, u1.ln.Addr().String())

	c1 := dial(t, p.Addr())
	io.WriteString(c1, "one")
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	io.ReadFull(c1, make([]byte, 3))

	p.SetUpstream(u2.ln.Addr().String())
	c2 := dial(t, p.Addr())
	io.WriteString(c2, "two")
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	io.ReadFull(c2, make([]byte, 3))

	if got := u1.received(0); string(got) != "one" {
		t.Fatalf("first upstream saw %q, want %q", got, "one")
	}
	if got := u2.received(0); string(got) != "two" {
		t.Fatalf("second upstream saw %q, want %q", got, "two")
	}
}

func TestCloseTearsDownLiveConnections(t *testing.T) {
	u := newEchoUpstream(t)
	p := mustProxy(t, u.ln.Addr().String())
	c := dial(t, p.Addr())
	io.WriteString(c, "held open")
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			return // connection died with the proxy, as it must
		}
	}
}

func TestTriggerPicksSmallestOffset(t *testing.T) {
	tox := Toxics{StallAfter: 100, ResetAfter: 50, CloseAfter: 200}
	off, kind := tox.trigger()
	if off != 50 || kind != faultReset {
		t.Fatalf("trigger = (%d, %d), want (50, reset)", off, kind)
	}
	if (Toxics{}).enabled() {
		t.Fatalf("zero toxics reported enabled")
	}
	if !tox.enabled() {
		t.Fatalf("non-zero toxics reported disabled")
	}
}
