package birch

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/diskio"
)

// PointBlock is one block of points in a systematically evolving database of
// tuples-as-points.
type PointBlock struct {
	ID     blockseq.ID
	Points []cf.Point
}

// Encode serializes the block: id, dimensionality, count, then coordinates.
func (b *PointBlock) Encode() ([]byte, error) {
	dim := 0
	if len(b.Points) > 0 {
		dim = len(b.Points[0])
	}
	buf := diskio.AppendUvarint(nil, uint64(b.ID))
	buf = diskio.AppendUvarint(buf, uint64(dim))
	buf = diskio.AppendUvarint(buf, uint64(len(b.Points)))
	for i, p := range b.Points {
		if len(p) != dim {
			return nil, fmt.Errorf("birch: point %d has dimension %d, block dimension %d", i, len(p), dim)
		}
		buf = diskio.AppendFloat64s(buf, p)
	}
	return buf, nil
}

// DecodePointBlock reverses Encode.
func DecodePointBlock(data []byte) (*PointBlock, error) {
	id, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("birch: decoding block id: %w", err)
	}
	dim, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("birch: decoding dimension: %w", err)
	}
	n, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("birch: decoding point count: %w", err)
	}
	b := &PointBlock{ID: blockseq.ID(id), Points: make([]cf.Point, n)}
	for i := range b.Points {
		xs, rest, err := diskio.ReadFloat64s(data)
		if err != nil {
			return nil, fmt.Errorf("birch: decoding point %d: %w", i, err)
		}
		if uint64(len(xs)) != dim {
			return nil, fmt.Errorf("birch: point %d has %d coordinates, want %d", i, len(xs), dim)
		}
		data = rest
		b.Points[i] = cf.Point(xs)
	}
	return b, nil
}

// PointStore persists point blocks through a diskio.Store.
type PointStore struct {
	store diskio.Store
}

// NewPointStore wraps store.
func NewPointStore(store diskio.Store) *PointStore {
	return &PointStore{store: store}
}

func pointBlockKey(id blockseq.ID) string { return fmt.Sprintf("ptblock/%08d", id) }

// Put stores the block.
func (s *PointStore) Put(b *PointBlock) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	return s.store.Put(pointBlockKey(b.ID), data)
}

// Get loads the block with the given identifier.
func (s *PointStore) Get(id blockseq.ID) (*PointBlock, error) {
	data, err := s.store.Get(pointBlockKey(id))
	if err != nil {
		return nil, err
	}
	return DecodePointBlock(data)
}
