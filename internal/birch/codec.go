package birch

import (
	"fmt"

	"github.com/demon-mining/demon/internal/cf"
)

// EncodeState serializes the resident CF-tree — the whole incremental state
// of BIRCH+ (phase 2 is recomputed on demand from the sub-clusters, so
// nothing else needs to persist).
func (p *Plus) EncodeState() []byte { return p.tree.Encode() }

// RestorePlus rebuilds a BIRCH+ maintainer from EncodeState output. The
// configuration must be the one the state was produced under; the restored
// maintainer then behaves identically to one that never stopped.
func RestorePlus(cfg Config, data []byte) (*Plus, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("birch: k = %d < 1", cfg.K)
	}
	tree, err := cf.DecodeTree(cfg.Tree, data)
	if err != nil {
		return nil, fmt.Errorf("birch: restoring state: %w", err)
	}
	return &Plus{cfg: cfg, tree: tree}, nil
}
