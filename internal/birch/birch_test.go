package birch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/diskio"
)

// gaussianBlobs generates n points around the given centers with unit noise.
func gaussianBlobs(rng *rand.Rand, centers []cf.Point, n int, sigma float64) []cf.Point {
	pts := make([]cf.Point, n)
	for i := range pts {
		c := centers[i%len(centers)]
		p := make(cf.Point, len(c))
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*sigma
		}
		pts[i] = p
	}
	return pts
}

// matchCenters checks every model centroid sits within tol of a distinct
// true center.
func matchCenters(t *testing.T, m *Model, centers []cf.Point, tol float64) {
	t.Helper()
	if len(m.Clusters) != len(centers) {
		t.Fatalf("found %d clusters, want %d", len(m.Clusters), len(centers))
	}
	used := make([]bool, len(centers))
	for _, c := range m.Clusters {
		cent := c.Centroid()
		best, bestD := -1, math.Inf(1)
		for i, truth := range centers {
			if used[i] {
				continue
			}
			if d := cf.Distance(cent, truth); d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 || bestD > tol {
			t.Fatalf("centroid %v matches no remaining true center (best %v)", cent, bestD)
		}
		used[best] = true
	}
}

func TestRunRecoversWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	centers := []cf.Point{{0, 0}, {50, 0}, {0, 50}, {50, 50}}
	pts := gaussianBlobs(rng, centers, 2000, 1.0)
	m, err := Run(DefaultConfig(4), pts)
	if err != nil {
		t.Fatal(err)
	}
	matchCenters(t, m, centers, 1.0)
	if m.N != 2000 {
		t.Fatalf("model N = %d, want 2000", m.N)
	}
}

// TestPlusMatchesFromScratch is the Section 3.1.2 claim: at any time t the
// BIRCH+ clusters equal a from-scratch BIRCH run over D[1, t] — here checked
// as recovering the same true centers with comparable criterion value.
func TestPlusMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	centers := []cf.Point{{0, 0, 0}, {40, 0, 0}, {0, 40, 0}}
	cfg := DefaultConfig(3)
	plus, err := NewPlus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var all []cf.Point
	for step := 0; step < 4; step++ {
		blk := gaussianBlobs(rng, centers, 600, 1.0)
		all = append(all, blk...)
		if err := plus.AddBlock(blk); err != nil {
			t.Fatal(err)
		}

		inc, err := plus.Clusters()
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := Run(cfg, all)
		if err != nil {
			t.Fatal(err)
		}
		matchCenters(t, inc, centers, 1.0)
		matchCenters(t, scratch, centers, 1.0)
		if inc.N != scratch.N {
			t.Fatalf("step %d: N %d vs %d", step, inc.N, scratch.N)
		}
		// Criterion values must be within a few percent of each other.
		wi, ws := inc.WSS(), scratch.WSS()
		if wi > ws*1.10+1e-9 && wi-ws > 1 {
			t.Fatalf("step %d: incremental WSS %v much worse than scratch %v", step, wi, ws)
		}
	}
	if plus.NumPoints() != len(all) {
		t.Fatalf("NumPoints = %d, want %d", plus.NumPoints(), len(all))
	}
	if plus.NumSubClusters() == 0 {
		t.Fatal("no sub-clusters resident")
	}
}

func TestPhase2FewerSubsThanK(t *testing.T) {
	subs := []cf.CF{cf.NewCF(cf.Point{0, 0}), cf.NewCF(cf.Point{9, 9})}
	m, err := Phase2(subs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(m.Clusters))
	}
}

func TestPhase2Empty(t *testing.T) {
	m, err := Phase2(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Clusters) != 0 || m.N != 0 {
		t.Fatalf("empty Phase2 = %+v", m)
	}
}

func TestPhase2RejectsBadK(t *testing.T) {
	if _, err := Phase2(nil, 0); err == nil {
		t.Fatal("Phase2 accepted k = 0")
	}
	if _, err := NewPlus(DefaultConfig(0)); err == nil {
		t.Fatal("NewPlus accepted k = 0")
	}
}

func TestModelAssign(t *testing.T) {
	m := &Model{Clusters: []Cluster{
		{CF: cf.NewCF(cf.Point{0, 0})},
		{CF: cf.NewCF(cf.Point{10, 10})},
	}}
	if got := m.Assign(cf.Point{1, 1}); got != 0 {
		t.Fatalf("Assign near origin = %d", got)
	}
	if got := m.Assign(cf.Point{9, 9}); got != 1 {
		t.Fatalf("Assign near (10,10) = %d", got)
	}
	empty := &Model{}
	if got := empty.Assign(cf.Point{0, 0}); got != -1 {
		t.Fatalf("Assign on empty model = %d, want -1", got)
	}
}

func TestWSS(t *testing.T) {
	// Two points at distance 2 around centroid: WSS = 1² + 1² = 2.
	c := cf.NewCF(cf.Point{0}).AddPoint(cf.Point{2})
	m := &Model{Clusters: []Cluster{{CF: c}}, N: 2}
	if got := m.WSS(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("WSS = %v, want 2", got)
	}
	// Splitting the points into singleton clusters zeroes the criterion.
	m2 := &Model{Clusters: []Cluster{
		{CF: cf.NewCF(cf.Point{0})},
		{CF: cf.NewCF(cf.Point{2})},
	}, N: 2}
	if got := m2.WSS(); got != 0 {
		t.Fatalf("singleton WSS = %v, want 0", got)
	}
}

func TestPointBlockRoundTrip(t *testing.T) {
	b := &PointBlock{ID: 7, Points: []cf.Point{{1, 2}, {3.5, -4.25}}}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePointBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 7 || len(dec.Points) != 2 || dec.Points[1][1] != -4.25 {
		t.Fatalf("decoded %+v", dec)
	}
	// Mixed dimensions must be rejected.
	bad := &PointBlock{ID: 1, Points: []cf.Point{{1}, {1, 2}}}
	if _, err := bad.Encode(); err == nil {
		t.Fatal("Encode accepted mixed dimensions")
	}
	if _, err := DecodePointBlock(data[:3]); err == nil {
		t.Fatal("DecodePointBlock accepted truncated data")
	}
}

func TestPointStore(t *testing.T) {
	s := NewPointStore(diskio.NewMemStore())
	b := &PointBlock{ID: 2, Points: []cf.Point{{1, 1}}}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 2 || len(got.Points) != 1 {
		t.Fatalf("Get = %+v", got)
	}
	if _, err := s.Get(9); err == nil {
		t.Fatal("Get missing block succeeded")
	}
}

func TestPhase2Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	centers := []cf.Point{{0, 0}, {30, 30}}
	pts := gaussianBlobs(rng, centers, 500, 1.0)
	m1, err := Run(DefaultConfig(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(DefaultConfig(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Clusters) != len(m2.Clusters) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range m1.Clusters {
		a, b := m1.Clusters[i].Centroid(), m2.Clusters[i].Centroid()
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("nondeterministic centroid %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestPhase2KMeansRecoversCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	centers := []cf.Point{{0, 0}, {60, 0}, {0, 60}}
	pts := gaussianBlobs(rng, centers, 1500, 1.0)
	tree, err := cf.NewTree(cf.DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Phase2KMeans(tree.SubClusters(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	matchCenters(t, m, centers, 1.0)
	if m.N != 1500 {
		t.Fatalf("N = %d", m.N)
	}
	// Comparable quality to the agglomerative phase 2.
	agg, err := Phase2(tree.SubClusters(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.WSS() > agg.WSS()*1.2+1e-9 {
		t.Fatalf("k-means WSS %v much worse than agglomerative %v", m.WSS(), agg.WSS())
	}
}

func TestPhase2KMeansDeterministicInSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := gaussianBlobs(rng, []cf.Point{{0, 0}, {30, 30}}, 400, 1.0)
	tree, err := cf.NewTree(cf.DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	subs := tree.SubClusters()
	m1, err := Phase2KMeans(subs, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Phase2KMeans(subs, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Clusters) != len(m2.Clusters) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range m1.Clusters {
		a, b := m1.Clusters[i].Centroid(), m2.Clusters[i].Centroid()
		for d := range a {
			if a[d] != b[d] {
				t.Fatal("nondeterministic centroids for equal seeds")
			}
		}
	}
}

func TestPhase2KMeansEdgeCases(t *testing.T) {
	if _, err := Phase2KMeans(nil, 0, 1); err == nil {
		t.Error("accepted k = 0")
	}
	m, err := Phase2KMeans(nil, 3, 1)
	if err != nil || len(m.Clusters) != 0 {
		t.Errorf("empty input: %v, %v", m, err)
	}
	// More clusters requested than sub-clusters available.
	subs := []cf.CF{cf.NewCF(cf.Point{0}), cf.NewCF(cf.Point{9})}
	m, err = Phase2KMeans(subs, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(m.Clusters))
	}
	// Identical sub-clusters: seeding stops early, one cluster results.
	same := []cf.CF{cf.NewCF(cf.Point{5}), cf.NewCF(cf.Point{5}), cf.NewCF(cf.Point{5})}
	m, err = Phase2KMeans(same, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestPlusEncodeRestoreState(t *testing.T) {
	cfg := Config{Tree: cf.TreeConfig{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 16}, K: 3}
	p, err := NewPlus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	block := func() []cf.Point {
		pts := make([]cf.Point, 40)
		for i := range pts {
			c := float64(i % 3 * 10)
			pts[i] = cf.Point{c + rng.NormFloat64(), c + rng.NormFloat64()}
		}
		return pts
	}
	if err := p.AddBlock(block()); err != nil {
		t.Fatal(err)
	}

	r, err := RestorePlus(cfg, p.EncodeState())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPoints() != p.NumPoints() || r.NumSubClusters() != p.NumSubClusters() {
		t.Fatalf("restored state: %d points %d subclusters, want %d/%d",
			r.NumPoints(), r.NumSubClusters(), p.NumPoints(), p.NumSubClusters())
	}
	// Both absorb the next block identically.
	b := block()
	if err := p.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := r.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	mp, err := p.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	mr, err := r.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mp, mr) {
		t.Fatal("restored BIRCH+ diverges from original")
	}

	if _, err := RestorePlus(cfg, []byte{0xFF}); err == nil {
		t.Fatal("restored from garbage state")
	}
	if _, err := RestorePlus(Config{Tree: cfg.Tree}, p.EncodeState()); err == nil {
		t.Fatal("restored with k = 0")
	}
}
