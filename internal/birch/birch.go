// Package birch implements the BIRCH clustering algorithm (ZRL96) on top of
// the CF-tree of internal/cf, and the DEMON paper's incremental extension
// BIRCH+ (Section 3.1.2): the set of sub-clusters produced by phase 1 is
// kept in memory and insertion simply resumes when a new block arrives, so
// the clusters at any time t equal those of a from-scratch BIRCH run over
// D[1, t], at a fraction of the cost.
package birch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
)

// Cluster is one output cluster: a cluster feature summarizing its points.
type Cluster struct {
	CF cf.CF
}

// Centroid returns the cluster centroid.
func (c Cluster) Centroid() cf.Point { return c.CF.Centroid() }

// Model is a cluster model: the K clusters identified in the data, ordered
// deterministically (by centroid, lexicographically).
type Model struct {
	Clusters []Cluster
	// N is the total number of points the model summarizes.
	N int
}

// WSS returns the within-cluster sum of squared distances to the centroids,
// the distance-based criterion function optimized by the clustering: for one
// CF it is SS - N·‖centroid‖².
func (m *Model) WSS() float64 {
	var total float64
	for _, c := range m.Clusters {
		n := float64(c.CF.N)
		if n == 0 {
			continue
		}
		var norm2 float64
		for _, x := range c.CF.LS {
			mean := x / n
			norm2 += mean * mean
		}
		total += c.CF.SS - n*norm2
	}
	return total
}

// Assign returns the index of the cluster whose centroid is nearest to p —
// the per-point labeling scan described at the end of Section 3.1.2.
func (m *Model) Assign(p cf.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range m.Clusters {
		if d := cf.Distance(c.Centroid(), p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Phase2 merges sub-clusters into k clusters: greedy agglomerative merging
// by centroid distance (the "cluster the tennis balls with your favourite
// algorithm" step), followed by a weighted k-means refinement over the
// sub-cluster centroids. Sub-clusters are never split, matching BIRCH's
// tolerance to slight phase-1 misassignments.
func Phase2(subs []cf.CF, k int) (*Model, error) {
	return Phase2Workers(subs, k, 1)
}

// Phase2Workers is Phase2 with its closest-pair searches and refinement
// assignment scans sharded across worker goroutines: non-positive selects
// GOMAXPROCS, 1 keeps phase 2 serial. Shard results merge in shard order
// with strict comparisons (and the weighted-mean accumulations stay serial
// in index order), so the model is bit-identical to the serial computation
// for every worker count.
func Phase2Workers(subs []cf.CF, k, workers int) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("birch: k = %d < 1", k)
	}
	work := make([]cf.CF, 0, len(subs))
	n := 0
	for _, s := range subs {
		if s.N > 0 {
			work = append(work, s.Clone())
			n += s.N
		}
	}
	if len(work) == 0 {
		return &Model{}, nil
	}
	if k > len(work) {
		k = len(work)
	}

	// Agglomerative phase: repeatedly merge the closest pair of centroids.
	cents := make([]cf.Point, len(work))
	for i := range work {
		cents[i] = work[i].Centroid()
	}
	for len(work) > k {
		bi, bj := closestPair(cents, workers)
		work[bi] = work[bi].Add(work[bj])
		cents[bi] = work[bi].Centroid()
		last := len(work) - 1
		work[bj], cents[bj] = work[last], cents[last]
		work = work[:last]
		cents = cents[:last]
	}

	// Refinement: weighted k-means over the original sub-clusters with the
	// agglomerative centroids as seeds. Sub-clusters move atomically.
	seeds := make([]cf.Point, len(work))
	copy(seeds, cents)
	return refine(subs, seeds, n, workers), nil
}

// closestPair returns the lexicographically first pair of centroids at
// minimum distance — exactly the pair the serial double loop finds. Each
// shard scans a contiguous range of first indices with a strict-< argmin,
// and shard results merge in shard order with strict <, so earlier pairs win
// ties regardless of scheduling.
func closestPair(cents []cf.Point, workers int) (int, int) {
	n := len(cents)
	type best struct {
		i, j int
		d    float64
	}
	find := func(lo, hi int) best {
		b := best{-1, -1, math.Inf(1)}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				if d := cf.Distance(cents[i], cents[j]); d < b.d {
					b = best{i, j, d}
				}
			}
		}
		return b
	}
	var b best
	shards := par.Shards(n, workers)
	if shards <= 1 {
		b = find(0, n)
	} else {
		bests := make([]best, shards)
		par.Do(n, workers, func(s, lo, hi int) {
			bests[s] = find(lo, hi)
		})
		b = bests[0]
		for _, o := range bests[1:] {
			if o.d < b.d {
				b = o
			}
		}
	}
	if b.i < 0 {
		return 0, 1 // all distances infinite: the serial loop's initial pair
	}
	return b.i, b.j
}

// refine runs weighted k-means over the sub-clusters from the given seeds
// and materializes the final model. Sub-clusters move atomically, matching
// BIRCH's tolerance to slight phase-1 misassignments.
// The assignment scan is a pure read of the seeds writing only assign[i], so
// it shards across the workers; the weighted-mean accumulations stay serial
// in index order, keeping the floating-point sums bit-identical to a serial
// run for every worker count.
func refine(subs []cf.CF, seeds []cf.Point, n, workers int) *Model {
	assign := make([]int, len(subs))
	for iter := 0; iter < 10; iter++ {
		shards := par.Shards(len(subs), workers)
		if shards < 1 {
			shards = 1
		}
		changedBy := make([]bool, shards)
		par.Do(len(subs), workers, func(sh, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := subs[i]
				if s.N == 0 {
					assign[i] = -1
					continue
				}
				c := s.Centroid()
				best, bestD := 0, math.Inf(1)
				for j, seed := range seeds {
					if d := cf.Distance(c, seed); d < bestD {
						best, bestD = j, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					changedBy[sh] = true
				}
			}
		})
		changed := false
		for _, c := range changedBy {
			changed = changed || c
		}
		if iter > 0 && !changed {
			break
		}
		// Recompute seeds as weighted means; empty seeds keep their spot.
		sums := make([]cf.CF, len(seeds))
		for i, s := range subs {
			if assign[i] >= 0 {
				sums[assign[i]] = sums[assign[i]].Add(s)
			}
		}
		for j := range seeds {
			if sums[j].N > 0 {
				seeds[j] = sums[j].Centroid()
			}
		}
	}

	// Materialize the final clusters from the assignment.
	sums := make([]cf.CF, len(seeds))
	for i, s := range subs {
		if assign[i] >= 0 {
			sums[assign[i]] = sums[assign[i]].Add(s)
		}
	}
	m := &Model{N: n}
	for _, s := range sums {
		if s.N > 0 {
			m.Clusters = append(m.Clusters, Cluster{CF: s})
		}
	}
	sortClusters(m.Clusters)
	return m
}

// Phase2KMeans is the alternative phase 2 the paper alludes to ("cluster
// these tennis balls using one's own favorite clustering algorithm, e.g.,
// K-Means"): weighted k-means over the sub-clusters with deterministic,
// seeded k-means++ initialization.
func Phase2KMeans(subs []cf.CF, k int, seed int64) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("birch: k = %d < 1", k)
	}
	var nonEmpty []cf.CF
	n := 0
	for _, s := range subs {
		if s.N > 0 {
			nonEmpty = append(nonEmpty, s)
			n += s.N
		}
	}
	if len(nonEmpty) == 0 {
		return &Model{}, nil
	}
	if k > len(nonEmpty) {
		k = len(nonEmpty)
	}

	// k-means++ seeding over sub-cluster centroids, weighted by mass.
	rng := rand.New(rand.NewSource(seed))
	cents := make([]cf.Point, len(nonEmpty))
	for i, s := range nonEmpty {
		cents[i] = s.Centroid()
	}
	seeds := make([]cf.Point, 0, k)
	first := weightedPick(rng, nonEmpty, func(i int) float64 { return float64(nonEmpty[i].N) })
	seeds = append(seeds, cents[first])
	d2 := make([]float64, len(nonEmpty))
	for len(seeds) < k {
		var total float64
		for i, c := range cents {
			best := math.Inf(1)
			for _, s := range seeds {
				if d := cf.Distance(c, s); d < best {
					best = d
				}
			}
			d2[i] = best * best * float64(nonEmpty[i].N)
			total += d2[i]
		}
		if total == 0 {
			break // all centroids coincide with seeds
		}
		next := weightedPick(rng, nonEmpty, func(i int) float64 { return d2[i] })
		seeds = append(seeds, cents[next])
	}
	return refine(subs, seeds, n, 1), nil
}

// weightedPick draws an index proportionally to the given weights.
func weightedPick(rng *rand.Rand, subs []cf.CF, weight func(i int) float64) int {
	var total float64
	for i := range subs {
		total += weight(i)
	}
	u := rng.Float64() * total
	acc := 0.0
	for i := range subs {
		acc += weight(i)
		if u <= acc {
			return i
		}
	}
	return len(subs) - 1
}

func sortClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i].Centroid(), cs[j].Centroid()
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
}

// Config parameterizes a BIRCH run.
type Config struct {
	// Tree is the CF-tree configuration of phase 1.
	Tree cf.TreeConfig
	// K is the user-specified number of clusters for phase 2.
	K int
	// Workers shards phase-2 work (closest-pair searches and refinement
	// assignment scans) across worker goroutines: non-positive selects
	// GOMAXPROCS, 1 keeps phase 2 serial. The resulting model is identical
	// for every worker count.
	Workers int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(k int) Config {
	return Config{Tree: cf.DefaultTreeConfig(), K: k}
}

// Run executes non-incremental BIRCH over the given point sets: phase 1
// builds a fresh CF-tree over all points, phase 2 merges the sub-clusters.
// This is the baseline that re-clusters the entire database whenever a new
// block arrives (Figure 8).
func Run(cfg Config, pointSets ...[]cf.Point) (*Model, error) {
	tree, err := cf.NewTree(cfg.Tree)
	if err != nil {
		return nil, err
	}
	for _, pts := range pointSets {
		for _, p := range pts {
			if err := tree.Insert(p); err != nil {
				return nil, err
			}
		}
	}
	return Phase2Workers(tree.SubClusters(), cfg.K, cfg.Workers)
}

// Plus is BIRCH+: the incrementally maintained clustering model. The CF-tree
// (equivalently, the set of sub-clusters Ct) stays resident; AddBlock
// resumes phase 1 on the new block only, and Clusters invokes the cheap
// phase 2 on demand.
type Plus struct {
	cfg  Config
	tree *cf.Tree
}

// NewPlus creates an empty BIRCH+ maintainer.
func NewPlus(cfg Config) (*Plus, error) {
	tree, err := cf.NewTree(cfg.Tree)
	if err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("birch: k = %d < 1", cfg.K)
	}
	return &Plus{cfg: cfg, tree: tree}, nil
}

// AddBlock scans the new block's points into the resident CF-tree — the
// single scan that gives BIRCH+ its small response time.
func (p *Plus) AddBlock(pts []cf.Point) error {
	reg := obs.Default()
	span := reg.Timer("birch.insert.ns").Start()
	for _, pt := range pts {
		if err := p.tree.Insert(pt); err != nil {
			span.End()
			return err
		}
	}
	span.EndObserving(reg.Counter("birch.insert.points"), int64(len(pts)))
	p.observeTree(reg)
	return nil
}

// observeTree refreshes the CF-tree size gauges.
func (p *Plus) observeTree(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("birch.points").Set(int64(p.tree.NumPoints()))
	reg.Gauge("birch.subclusters").Set(int64(p.tree.NumSubClusters()))
	reg.Gauge("birch.rebuilds").Set(int64(p.tree.Rebuilds()))
}

// Clusters runs phase 2 on the current sub-clusters and returns the model
// on all data added so far.
func (p *Plus) Clusters() (*Model, error) {
	span := obs.Default().Timer("birch.phase2.ns").Start()
	defer span.End()
	return Phase2Workers(p.tree.SubClusters(), p.cfg.K, p.cfg.Workers)
}

// NumPoints returns the number of points absorbed so far.
func (p *Plus) NumPoints() int { return p.tree.NumPoints() }

// NumSubClusters returns the size of the resident sub-cluster set.
func (p *Plus) NumSubClusters() int { return p.tree.NumSubClusters() }
