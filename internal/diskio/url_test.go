package diskio

import (
	"testing"
)

func TestParseStoreURL(t *testing.T) {
	for _, tc := range []struct {
		in           string
		scheme, path string
		opts         map[string]string
		wantErr      bool
	}{
		{in: "mem:", scheme: "mem", path: "", opts: map[string]string{}},
		{in: "file:/tmp/x", scheme: "file", path: "/tmp/x", opts: map[string]string{}},
		{in: "kvfile:rel/store.kv?cache=4mb&sync=8", scheme: "kvfile", path: "rel/store.kv",
			opts: map[string]string{"cache": "4mb", "sync": "8"}},
		{in: "no-scheme-here", wantErr: true},
		{in: ":path-no-scheme", wantErr: true},
		{in: "mem:?=v", wantErr: true},
	} {
		scheme, path, opts, err := ParseStoreURL(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseStoreURL(%q): want error, got scheme %q", tc.in, scheme)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStoreURL(%q): %v", tc.in, err)
			continue
		}
		if scheme != tc.scheme || path != tc.path {
			t.Errorf("ParseStoreURL(%q) = %q, %q; want %q, %q", tc.in, scheme, path, tc.scheme, tc.path)
		}
		if len(opts) != len(tc.opts) {
			t.Errorf("ParseStoreURL(%q) opts = %v, want %v", tc.in, opts, tc.opts)
		}
		for k, v := range tc.opts {
			if opts[k] != v {
				t.Errorf("ParseStoreURL(%q) opts[%q] = %q, want %q", tc.in, k, opts[k], v)
			}
		}
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{in: "0", want: 0},
		{in: "1234", want: 1234},
		{in: "64kb", want: 64 << 10},
		{in: "64KB", want: 64 << 10},
		{in: "4mb", want: 4 << 20},
		{in: "2g", want: 2 << 30},
		{in: "100b", want: 100},
		{in: " 8 mb ", want: 8 << 20},
		{in: "x", wantErr: true},
		{in: "", wantErr: true},
		{in: "mb", wantErr: true},
	} {
		got, err := ParseSize(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSize(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSize(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestOpenRejectsUnknown(t *testing.T) {
	if _, err := Open("bogus:/x"); err == nil {
		t.Error("Open(bogus:) succeeded")
	}
	if _, err := Open("mem:?frobnicate=1"); err == nil {
		t.Error("Open with unknown option succeeded")
	}
	if _, err := Open("mem:/should/not/have/path"); err == nil {
		t.Error("Open(mem:) with path succeeded")
	}
	if _, err := Open("file:"); err == nil {
		t.Error("Open(file:) without directory succeeded")
	}
	if _, err := Open("mem:?cache=banana"); err == nil {
		t.Error("Open with unparseable cache size succeeded")
	}
}

func TestOpenMemWithCache(t *testing.T) {
	s, err := Open("mem:?cache=1kb")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, ok := s.(*CacheStore); !ok {
		t.Fatalf("Open(mem:?cache=1kb) = %T, want *CacheStore", s)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := CloseStore(s); err != nil {
		t.Fatalf("CloseStore: %v", err)
	}
}

func TestFindScrubberThroughChain(t *testing.T) {
	cs := NewChecksumStore(NewMemStore())
	stack := NewCacheStore(NewRetryStore(cs), 1<<10)
	sc, ok := findScrubber(stack.Unwrap())
	if !ok {
		t.Fatal("findScrubber failed to reach the checksum layer")
	}
	if sc.(*ChecksumStore) != cs {
		t.Fatalf("findScrubber = %T (%p), want %p", sc, sc, cs)
	}
	if _, ok := findScrubber(NewMemStore()); ok {
		t.Fatal("findScrubber found a scrubber on a bare MemStore")
	}
}
