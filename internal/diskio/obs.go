package diskio

import "github.com/demon-mining/demon/internal/obs"

// Observe bridges a store's I/O accounting into the instrumentation
// registry: at every registry snapshot the store's cumulative Stats are
// mirrored into the gauges
//
//	diskio.<name>.bytes_read
//	diskio.<name>.bytes_written
//	diskio.<name>.reads
//	diskio.<name>.writes
//
// so byte traffic is visible alongside the compute-phase timers. The bridge
// holds a reference to the store for the registry's lifetime; register
// long-lived stores (CLI and bench stores), not per-test throwaways.
func Observe(r *obs.Registry, name string, s Store) {
	prefix := "diskio." + name + "."
	r.AddCollector(func(r *obs.Registry) {
		st := s.Stats()
		r.Gauge(prefix + "bytes_read").Set(st.BytesRead)
		r.Gauge(prefix + "bytes_written").Set(st.BytesWritten)
		r.Gauge(prefix + "reads").Set(st.Reads)
		r.Gauge(prefix + "writes").Set(st.Writes)
	})
}
