package diskio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"

	"github.com/demon-mining/demon/internal/obs"
)

// Record framing: every value is wrapped in a small header carrying a CRC so
// that torn writes (a persisted prefix of the intended bytes) and bit rot are
// detected on read instead of being decoded into a silently wrong model. The
// frame is
//
//	[magic 0xD7][version 0x01][crc32c little-endian, 4 bytes][payload...]
//
// where the CRC covers the payload only. The header is fixed-size so Size
// arithmetic stays trivial and a torn write of fewer than frameHeaderLen
// bytes is unambiguously corrupt.

const (
	frameMagic     = 0xD7
	frameVersion   = 0x01
	frameHeaderLen = 6
)

// QuarantinePrefix is the key prefix corrupt values are moved under by
// Quarantine and Scrub. Quarantined values keep their frame bytes verbatim
// so the damage can be inspected post mortem.
const QuarantinePrefix = "quarantine/"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame wraps payload in a checksummed record frame.
func Frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	buf[0] = frameMagic
	buf[1] = frameVersion
	binary.LittleEndian.PutUint32(buf[2:6], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// Unframe verifies and strips a record frame, returning the payload. Any
// mismatch — short frame, wrong magic or version, CRC failure — is reported
// as ErrCorrupt.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < frameHeaderLen {
		return nil, fmt.Errorf("%w: frame shorter than header (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != frameMagic {
		return nil, fmt.Errorf("%w: bad frame magic 0x%02x", ErrCorrupt, data[0])
	}
	if data[1] != frameVersion {
		return nil, fmt.Errorf("%w: unsupported frame version %d", ErrCorrupt, data[1])
	}
	payload := data[frameHeaderLen:]
	want := binary.LittleEndian.Uint32(data[2:6])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return payload, nil
}

// ChecksumStore wraps a Store so that every value is stored framed
// (Frame/Unframe): Get fails with ErrCorrupt on torn or bit-rotted data
// instead of handing the damage to a decoder. Corrupt keys can be moved
// aside with Quarantine, and Scrub sweeps a whole prefix.
type ChecksumStore struct {
	Inner Store
}

// Unwrap returns the wrapped store.
func (s *ChecksumStore) Unwrap() Store { return s.Inner }

// NewChecksumStore wraps inner with record framing.
func NewChecksumStore(inner Store) *ChecksumStore {
	return &ChecksumStore{Inner: inner}
}

// Put implements Store.
func (s *ChecksumStore) Put(key string, data []byte) error {
	return s.Inner.Put(key, Frame(data))
}

// Get implements Store. A value that fails frame verification is reported as
// ErrCorrupt (and counted under diskio.corrupt.detected) — never returned.
func (s *ChecksumStore) Get(key string) ([]byte, error) {
	raw, err := s.Inner.Get(key)
	if err != nil {
		return nil, err
	}
	payload, err := Unframe(raw)
	if err != nil {
		obs.Default().Counter("diskio.corrupt.detected").Inc()
		return nil, fmt.Errorf("diskio: get %s: %w", key, err)
	}
	return payload, nil
}

// Size implements Store, reporting the payload size (stored size minus the
// frame header). A stored value shorter than a header is reported at size 0;
// Get will report it corrupt.
func (s *ChecksumStore) Size(key string) (int64, error) {
	n, err := s.Inner.Size(key)
	if err != nil {
		return 0, err
	}
	if n < frameHeaderLen {
		return 0, nil
	}
	return n - frameHeaderLen, nil
}

// Delete implements Store.
func (s *ChecksumStore) Delete(key string) error { return s.Inner.Delete(key) }

// Keys implements Store.
func (s *ChecksumStore) Keys(prefix string) ([]string, error) { return s.Inner.Keys(prefix) }

// Stats implements Store.
func (s *ChecksumStore) Stats() Stats { return s.Inner.Stats() }

// ResetStats implements Store.
func (s *ChecksumStore) ResetStats() { s.Inner.ResetStats() }

// Quarantine moves the raw (framed) bytes of key under QuarantinePrefix so a
// corrupt value is preserved for inspection but can no longer be read as
// data. Counted under diskio.corrupt.quarantined.
func (s *ChecksumStore) Quarantine(key string) error {
	raw, err := s.Inner.Get(key)
	if err != nil {
		return fmt.Errorf("diskio: quarantining %s: %w", key, err)
	}
	if err := s.Inner.Put(QuarantinePrefix+key, raw); err != nil {
		return fmt.Errorf("diskio: quarantining %s: %w", key, err)
	}
	if err := s.Inner.Delete(key); err != nil {
		return fmt.Errorf("diskio: quarantining %s: %w", key, err)
	}
	obs.Default().Counter("diskio.corrupt.quarantined").Inc()
	return nil
}

// ScrubReport summarizes a Scrub pass.
type ScrubReport struct {
	// Checked is the number of keys whose frames were verified.
	Checked int
	// Quarantined lists the keys that failed verification and were moved
	// under QuarantinePrefix.
	Quarantined []string
}

// Scrub verifies the frame of every key under prefix and quarantines the
// corrupt ones, returning what it found. Keys already quarantined are
// skipped. Scrub reads every value under prefix; run it on open or on
// demand, not on the ingest path.
func (s *ChecksumStore) Scrub(prefix string) (*ScrubReport, error) {
	keys, err := s.Inner.Keys(prefix)
	if err != nil {
		return nil, fmt.Errorf("diskio: scrub: %w", err)
	}
	rep := &ScrubReport{}
	for _, key := range keys {
		if strings.HasPrefix(key, QuarantinePrefix) {
			continue
		}
		raw, err := s.Inner.Get(key)
		if err != nil {
			return rep, fmt.Errorf("diskio: scrub %s: %w", key, err)
		}
		rep.Checked++
		if _, err := Unframe(raw); err != nil {
			obs.Default().Counter("diskio.corrupt.detected").Inc()
			if qerr := s.Quarantine(key); qerr != nil {
				return rep, qerr
			}
			rep.Quarantined = append(rep.Quarantined, key)
		}
	}
	return rep, nil
}
