package diskio

import (
	"errors"
	"strings"
	"testing"
)

func TestFaultStoreDisabledPassesThrough(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	if err := f.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n, err := f.Size("k"); err != nil || n != 1 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	keys, err := f.Keys("")
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := f.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Writes != 1 {
		t.Fatalf("Stats = %+v", f.Stats())
	}
	f.ResetStats()
	if f.Stats().Writes != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

func TestFaultStoreCountdown(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailAfter(2)
	if err := f.Put("a", nil); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := f.Put("b", nil); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := f.Put("c", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 err = %v, want injected", err)
	}
	// Countdown disarms after firing.
	if err := f.Put("d", nil); err != nil {
		t.Fatalf("op 4: %v", err)
	}
	f.FailAfter(0)
	if _, err := f.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailAfter(0) err = %v", err)
	}
	f.FailAfter(5)
	f.DisarmCountdown()
	for i := 0; i < 10; i++ {
		if err := f.Put("x", nil); err != nil {
			t.Fatalf("disarmed op %d: %v", i, err)
		}
	}
}

func TestFaultStoreKeyPredicate(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailKey = func(key string) bool { return strings.HasPrefix(key, "tid/") }
	if err := f.Put("txblock/1", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("tid/1/i1", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid put err = %v", err)
	}
	if _, err := f.Get("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid get err = %v", err)
	}
	if _, err := f.Size("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid size err = %v", err)
	}
	if err := f.Delete("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid delete err = %v", err)
	}
	if _, err := f.Keys("tid/"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid keys err = %v", err)
	}
}
