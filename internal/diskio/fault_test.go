package diskio

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFaultStoreDisabledPassesThrough(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	if err := f.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n, err := f.Size("k"); err != nil || n != 1 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	keys, err := f.Keys("")
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := f.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Writes != 1 {
		t.Fatalf("Stats = %+v", f.Stats())
	}
	f.ResetStats()
	if f.Stats().Writes != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

func TestFaultStoreCountdown(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailAfter(2)
	if err := f.Put("a", nil); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := f.Put("b", nil); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := f.Put("c", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 err = %v, want injected", err)
	}
	// Countdown disarms after firing.
	if err := f.Put("d", nil); err != nil {
		t.Fatalf("op 4: %v", err)
	}
	f.FailAfter(0)
	if _, err := f.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailAfter(0) err = %v", err)
	}
	f.FailAfter(5)
	f.DisarmCountdown()
	for i := 0; i < 10; i++ {
		if err := f.Put("x", nil); err != nil {
			t.Fatalf("disarmed op %d: %v", i, err)
		}
	}
}

func TestFaultStoreKeyPredicate(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailKey = func(key string) bool { return strings.HasPrefix(key, "tid/") }
	if err := f.Put("txblock/1", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("tid/1/i1", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid put err = %v", err)
	}
	if _, err := f.Get("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid get err = %v", err)
	}
	if _, err := f.Size("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid size err = %v", err)
	}
	if err := f.Delete("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("tid delete err = %v", err)
	}
	// Keys is a prefix scan, not a key-addressed operation: FailKey must not
	// be conflated with the prefix. Targeting scans is FailOp's job.
	if _, err := f.Keys("tid/"); err != nil {
		t.Fatalf("Keys consulted FailKey with a prefix: %v", err)
	}
}

func TestFaultStoreFailOp(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailOp = func(op Op, key string) bool { return op == OpKeys && strings.HasPrefix("tid/", key) }
	if err := f.Put("tid/1/i1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Keys("tid/"); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted Keys err = %v, want injected", err)
	}
	if _, err := f.Get("tid/1/i1"); err != nil {
		t.Fatalf("untargeted Get failed: %v", err)
	}

	f.FailOp = func(op Op, key string) bool { return op == OpDelete }
	if err := f.Delete("tid/1/i1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted Delete err = %v, want injected", err)
	}
	if _, err := f.Get("tid/1/i1"); err != nil {
		t.Fatalf("untargeted Get failed: %v", err)
	}
}

func TestFaultStoreProbabilistic(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.PFail = 0.5
	f.Rand = rand.New(rand.NewSource(7))
	fired := 0
	for i := 0; i < 200; i++ {
		if err := f.Put("k", nil); errors.Is(err, ErrInjected) {
			fired++
		}
	}
	if fired < 60 || fired > 140 {
		t.Fatalf("PFail=0.5 fired %d/200 times", fired)
	}
	// Reproducible under the same seed.
	f2 := NewFaultStore(NewMemStore())
	f2.PFail = 0.5
	f2.Rand = rand.New(rand.NewSource(7))
	fired2 := 0
	for i := 0; i < 200; i++ {
		if err := f2.Put("k", nil); errors.Is(err, ErrInjected) {
			fired2++
		}
	}
	if fired2 != fired {
		t.Fatalf("same seed fired %d vs %d times", fired2, fired)
	}
}

func TestFaultStoreCrashMode(t *testing.T) {
	inner := NewMemStore()
	f := NewFaultStore(inner)
	f.CrashAfter(2)
	if err := f.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("c", []byte("z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash op err = %v", err)
	}
	if !f.Dead() {
		t.Fatal("store not dead after crash")
	}
	// Everything after the crash fails: the process is gone.
	for i := 0; i < 5; i++ {
		if _, err := f.Get("a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("post-crash Get err = %v", err)
		}
		if err := f.Delete("a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("post-crash Delete err = %v", err)
		}
	}
	f.Revive()
	if _, err := f.Get("a"); err != nil {
		t.Fatalf("post-revive Get err = %v", err)
	}
	if got := f.Ops(); got == 0 {
		t.Fatal("op counter not advancing")
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	inner := NewMemStore()
	f := NewFaultStore(inner)
	f.TornWrite = true
	f.CrashAfter(0)
	data := []byte("0123456789abcdef")
	if err := f.Put("k", data); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn Put err = %v", err)
	}
	got, err := inner.Get("k")
	if err != nil {
		t.Fatalf("torn write persisted nothing: %v", err)
	}
	if len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("torn write persisted %d of %d bytes", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatal("torn write is not a prefix of the data")
	}
	// Post-crash Puts must not touch the device again.
	if err := f.Put("k2", data); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash Put err = %v", err)
	}
	if _, err := inner.Get("k2"); !errors.Is(err, ErrNotFound) {
		t.Fatal("dead store persisted a second torn write")
	}
}

func TestFaultStoreTransientClassification(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.Transient = true
	f.FailAfter(0)
	err := f.Put("k", nil)
	if !errors.Is(err, ErrInjected) || !IsTransient(err) {
		t.Fatalf("transient injected err = %v", err)
	}
	f.Transient = false
	f.FailAfter(0)
	err = f.Put("k", nil)
	if !errors.Is(err, ErrInjected) || IsTransient(err) {
		t.Fatalf("permanent injected err = %v", err)
	}
}

// TestFaultStoreConcurrentCountdownFiresOnce hammers an armed countdown from
// many goroutines: however the decrements interleave, exactly one operation
// must observe the injected fault per armed countdown.
func TestFaultStoreConcurrentCountdownFiresOnce(t *testing.T) {
	const workers = 8
	const opsPerWorker = 200

	for round := 0; round < 20; round++ {
		f := NewFaultStore(NewMemStore())
		f.FailAfter(round * 17 % (workers * opsPerWorker / 2)) // vary the trigger point

		var fired atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := fmt.Sprintf("w%d", w)
				for i := 0; i < opsPerWorker; i++ {
					if err := f.Put(key, nil); errors.Is(err, ErrInjected) {
						fired.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()

		if got := fired.Load(); got != 1 {
			t.Fatalf("round %d: countdown fired %d times, want exactly 1", round, got)
		}
		// The store is quiescent and disarmed; more traffic stays clean.
		for i := 0; i < 10; i++ {
			if err := f.Put("after", nil); err != nil {
				t.Fatalf("post-fire op %d: %v", i, err)
			}
		}
	}
}

// TestFaultStoreConcurrentDisarm races DisarmCountdown against operations:
// the countdown may fire at most once, and never after a disarm completes
// with no further arm.
func TestFaultStoreConcurrentDisarm(t *testing.T) {
	const workers = 8
	for round := 0; round < 50; round++ {
		f := NewFaultStore(NewMemStore())
		f.FailAfter(workers * 2)

		var fired atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					if _, err := f.Get("k"); errors.Is(err, ErrInjected) {
						fired.Add(1)
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			f.DisarmCountdown()
		}()
		close(start)
		wg.Wait()

		if got := fired.Load(); got > 1 {
			t.Fatalf("round %d: countdown fired %d times despite disarm race, want <= 1", round, got)
		}
		for i := 0; i < 10; i++ {
			if _, err := f.Get("k"); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("post-disarm op %d: %v", i, err)
			}
		}
	}
}

// TestFaultStoreRearm: arming again after a firing restores the exactly-once
// guarantee for the new countdown.
func TestFaultStoreRearm(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	for arm := 0; arm < 5; arm++ {
		f.FailAfter(3)
		var fired int
		for i := 0; i < 10; i++ {
			if err := f.Put("k", nil); errors.Is(err, ErrInjected) {
				fired++
			}
		}
		if fired != 1 {
			t.Fatalf("arm %d: fired %d times, want 1", arm, fired)
		}
	}
}
