package diskio

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// storeImpls returns one of each Store implementation for table-driven tests.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"file": fs,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("blocks/b1", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("blocks/b1")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "hello" {
				t.Fatalf("Get = %q, want hello", got)
			}
			// Overwrite.
			if err := s.Put("blocks/b1", []byte("world!")); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get("blocks/b1")
			if string(got) != "world!" {
				t.Fatalf("Get after overwrite = %q", got)
			}
			n, err := s.Size("blocks/b1")
			if err != nil || n != 6 {
				t.Fatalf("Size = %d, %v; want 6, nil", n, err)
			}
		})
	}
}

func TestStoreNotFound(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing err = %v, want ErrNotFound", err)
			}
			if _, err := s.Size("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Size missing err = %v, want ErrNotFound", err)
			}
			if err := s.Delete("missing"); err != nil {
				t.Fatalf("Delete missing err = %v, want nil", err)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after delete err = %v", err)
			}
		})
	}
}

func TestStoreKeys(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"tid/b1/i3", "tid/b1/i1", "tid/b2/i1", "blk/b1"} {
				if err := s.Put(k, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Keys("tid/b1/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"tid/b1/i1", "tid/b1/i3"}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
			all, err := s.Keys("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 4 {
				t.Fatalf("Keys(\"\") returned %d keys, want 4", len(all))
			}
		})
	}
}

func TestStoreStats(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			payload := make([]byte, 100)
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k"); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.BytesWritten != 100 || st.Writes != 1 {
				t.Fatalf("write stats = %+v", st)
			}
			if st.BytesRead != 200 || st.Reads != 2 {
				t.Fatalf("read stats = %+v", st)
			}
			// Size must not count as a read.
			if _, err := s.Size("k"); err != nil {
				t.Fatal(err)
			}
			if got := s.Stats().Reads; got != 2 {
				t.Fatalf("Size counted as read: Reads = %d", got)
			}
			s.ResetStats()
			if st := s.Stats(); st != (Stats{}) {
				t.Fatalf("after ResetStats: %+v", st)
			}
		})
	}
}

func TestStoreEmptyKeyRejected(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("", []byte("x")); err == nil {
				t.Fatal("Put with empty key succeeded")
			}
		})
	}
}

func TestFileStoreRejectsTraversal(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"../evil", "a/../b", "a//b", "sp ace"} {
		if err := fs.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded, want error", k)
		}
	}
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("k")
	got[0] = 'X'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("mutating Get result corrupted stored value")
	}
}

func TestMemStoreTotalSize(t *testing.T) {
	s := NewMemStore()
	s.Put("tid/a", make([]byte, 10))
	s.Put("tid/b", make([]byte, 20))
	s.Put("blk/a", make([]byte, 40))
	if got := s.TotalSize("tid/"); got != 30 {
		t.Fatalf("TotalSize(tid/) = %d, want 30", got)
	}
	if got := s.TotalSize(""); got != 70 {
		t.Fatalf("TotalSize(\"\") = %d, want 70", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := []string{"a", "b", "c", "d"}[g%4]
			for i := 0; i < 200; i++ {
				if err := s.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
