package diskio

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrNotFound, false},
		{ErrCorrupt, false},
		{ErrInjected, false},
		{MarkTransient(ErrInjected), true},
		{MarkTransient(errors.New("disk hiccup")), true},
		{syscall.EAGAIN, true},
		{syscall.EINTR, true},
		{syscall.ENOSPC, false},
		// Corruption stays permanent even when something wrapped it as
		// transient: retrying cannot repair a torn record.
		{MarkTransient(ErrCorrupt), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// flakyStore fails the first n calls of each operation with a transient
// error, then recovers.
func newFlakyStack(failures int) (*FaultStore, *RetryStore) {
	fault := NewFaultStore(NewMemStore())
	fault.Transient = true
	retry := NewRetryStore(fault)
	retry.Sleep = func(time.Duration) {}
	if failures > 0 {
		fault.FailAfter(0)
	}
	return fault, retry
}

func TestRetryStoreRecoversFromTransientFault(t *testing.T) {
	fault, retry := newFlakyStack(1)
	// The first op fires the one-shot fault; the retry succeeds.
	if err := retry.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put with one transient fault: %v", err)
	}
	got, err := retry.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	fault.FailAfter(0)
	if got, err := retry.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get with one transient fault = %q, %v", got, err)
	}
	fault.FailAfter(0)
	if keys, err := retry.Keys(""); err != nil || len(keys) != 1 {
		t.Fatalf("Keys with one transient fault = %v, %v", keys, err)
	}
}

func TestRetryStorePermanentErrorPropagatesImmediately(t *testing.T) {
	fault := NewFaultStore(NewMemStore())
	retry := NewRetryStore(fault)
	retry.Sleep = func(time.Duration) { t.Fatal("slept on a permanent error") }
	fault.FailKey = func(key string) bool { return key == "bad" }
	if err := retry.Put("bad", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := retry.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("not-found err = %v", err)
	}
}

func TestRetryStoreGivesUpAfterMaxAttempts(t *testing.T) {
	fault := NewFaultStore(NewMemStore())
	fault.Transient = true
	fault.FailKey = func(string) bool { return true } // never heals
	retry := NewRetryStore(fault)
	retry.MaxAttempts = 3
	var sleeps []time.Duration
	retry.Sleep = func(d time.Duration) { sleeps = append(sleeps, d) }

	err := retry.Put("k", nil)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTransient) {
		t.Fatalf("give-up err = %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times for 3 attempts", len(sleeps))
	}
	// Backoff grows (jitter keeps each sleep within [d/2, d] of an
	// exponentially growing d, so the second sleep exceeds the first's
	// lower bound scale).
	for _, d := range sleeps {
		if d <= 0 || d > 200*time.Millisecond {
			t.Fatalf("sleep %v out of range", d)
		}
	}
}

func TestRetryStoreBackoffIsCapped(t *testing.T) {
	retry := NewRetryStore(NewMemStore())
	retry.BaseDelay = time.Millisecond
	retry.MaxDelay = 4 * time.Millisecond
	for try := 0; try < 40; try++ {
		if d := retry.backoff(try); d > retry.MaxDelay {
			t.Fatalf("backoff(%d) = %v exceeds cap", try, d)
		}
	}
}
