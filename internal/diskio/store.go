// Package diskio provides the storage substrate for DEMON: a simple
// key-addressed object store with byte-level I/O accounting. The paper's
// experiments hinge on how much data each counting strategy fetches (a
// TID-list of an item is one to two orders of magnitude smaller than the
// whole dataset, Section 3.1.1), so every read and write through a Store is
// counted. Two implementations are provided: an in-memory store for tests and
// benchmarks, and a file-backed store for the CLI tools.
package diskio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrNotFound is returned by Get and Size for keys that were never Put (or
// were deleted).
var ErrNotFound = errors.New("diskio: key not found")

// Stats accumulates I/O counters for a Store. All fields are totals since the
// store was created (or since ResetStats).
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
}

// Store is a flat key-addressed object store. Implementations are safe for
// concurrent use. Keys are non-empty strings; slashes are allowed and map to
// directories in the file-backed implementation.
type Store interface {
	// Put stores data under key, replacing any previous value.
	Put(key string, data []byte) error
	// Get returns the value stored under key.
	Get(key string) ([]byte, error)
	// Size returns the stored size in bytes without counting a read.
	Size(key string) (int64, error)
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key string) error
	// Keys returns all keys with the given prefix, sorted.
	Keys(prefix string) ([]string, error)
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
}

// counters is embedded by both implementations.
type counters struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
}

func (c *counters) countRead(n int)  { c.bytesRead.Add(int64(n)); c.reads.Add(1) }
func (c *counters) countWrite(n int) { c.bytesWritten.Add(int64(n)); c.writes.Add(1) }

func (c *counters) Stats() Stats {
	return Stats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
	}
}

func (c *counters) ResetStats() {
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.reads.Store(0)
	c.writes.Store(0)
}

// MemStore is an in-memory Store. The zero value is not usable; construct
// with NewMemStore.
type MemStore struct {
	counters
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	if key == "" {
		return errors.New("diskio: empty key")
	}
	c := make([]byte, len(data))
	copy(c, data)
	s.mu.Lock()
	s.m[key] = c
	s.mu.Unlock()
	s.countWrite(len(data))
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	c := make([]byte, len(data))
	copy(c, data)
	s.countRead(len(data))
	return c, nil
}

// Size implements Store.
func (s *MemStore) Size(key string) (int64, error) {
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// Keys implements Store.
func (s *MemStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// TotalSize returns the sum of all stored value sizes. Useful for the
// Figure 3 space-overhead experiment.
func (s *MemStore) TotalSize(prefix string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for k, v := range s.m {
		if strings.HasPrefix(k, prefix) {
			total += int64(len(v))
		}
	}
	return total
}

// FileStore is a Store backed by one file per key under a root directory.
// Key slashes become subdirectories; all other key bytes must be safe path
// characters (letters, digits, '.', '-', '_').
type FileStore struct {
	counters
	root string
	mu   sync.Mutex // serializes directory creation
}

// NewFileStore creates (if needed) and opens a file-backed store rooted at
// dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskio: creating store root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

func (s *FileStore) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("diskio: empty key")
	}
	for _, part := range strings.Split(key, "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("diskio: invalid key %q", key)
		}
		for _, r := range part {
			ok := r == '.' || r == '-' || r == '_' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9')
			if !ok {
				return "", fmt.Errorf("diskio: invalid key character %q in %q", r, key)
			}
		}
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements Store. The write is durable and atomic at the file level:
// data goes to a temp file that is fsynced before being renamed over the
// final path, and the parent directory is fsynced so the rename itself
// survives a crash. A reader therefore sees either the old value or the new
// one, never a torn file — the property the commit protocol builds on.
func (s *FileStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	err = os.MkdirAll(filepath.Dir(p), 0o755)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskio: put %s: syncing: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	if err := syncDir(filepath.Dir(p)); err != nil {
		return fmt.Errorf("diskio: put %s: %w", key, err)
	}
	s.countWrite(len(data))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Store.
func (s *FileStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("diskio: get %s: %w", key, err)
	}
	s.countRead(len(data))
	return data, nil
}

// Size implements Store.
func (s *FileStore) Size(key string) (int64, error) {
	p, err := s.path(key)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return 0, fmt.Errorf("diskio: size %s: %w", key, err)
	}
	return fi.Size(), nil
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("diskio: delete %s: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (s *FileStore) Keys(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskio: keys: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}
