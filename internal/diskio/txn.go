package diskio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/demon-mining/demon/internal/obs"
)

// Atomic commit protocol. A transaction stages every Put under the
// StagingPrefix key space, then commits by writing a small checksummed
// manifest (the commit point), promoting the staged values to their final
// keys, and cleaning up:
//
//	staging/<id>/data/<key>   staged value for <key>
//	staging/<id>/manifest     framed list of puts and deletes — the commit point
//
// A crash before the manifest write leaves only staged keys, which Recover
// rolls back; a crash after it leaves the manifest plus complete staged
// data, which Recover rolls forward. Ingestion through a TxnStore is
// therefore all-or-nothing: either every write of an AddBlock (block,
// TID-lists, checkpoint) becomes visible, or none does.

// StagingPrefix is the key prefix all in-flight transaction state lives
// under. Nothing outside the transaction machinery writes here.
const StagingPrefix = "staging/"

// Quarantiner is implemented by stores that can move a corrupt value aside
// instead of deleting it (see ChecksumStore.Quarantine).
type Quarantiner interface {
	Quarantine(key string) error
}

// TxnStore wraps a Store with transactions. Outside a transaction it is a
// transparent proxy. Between Begin and Commit, Puts are staged, Deletes are
// deferred, and reads observe the staged state, so multi-key updates
// commit or roll back as a unit. Begin/Commit/Rollback must come from a
// single goroutine (miners are not concurrent-safe), but reads through an
// active transaction may be issued from many goroutines, as the parallel
// counters do.
type TxnStore struct {
	inner Store

	mu    sync.RWMutex
	depth int             // nesting depth; inner Begins join the outer txn
	seq   int             // id counter
	id    string          // active txn id
	puts  map[string]bool // final keys staged by this txn
	order []string        // staged keys in first-write order (commit order)
	dels  map[string]bool // keys deleted by this txn

	// sc is the request span context captured by BeginCtx, so the outermost
	// Commit's span lands in the trace of the request that opened the txn.
	sc obs.SpanContext
}

// NewTxnStore wraps inner.
func NewTxnStore(inner Store) *TxnStore {
	return &TxnStore{inner: inner}
}

// Unwrap returns the wrapped store.
func (s *TxnStore) Unwrap() Store { return s.inner }

// Inner returns the wrapped store.
func (s *TxnStore) Inner() Store { return s.inner }

func stageDataKey(id, key string) string { return StagingPrefix + id + "/data/" + key }
func stageManifestKey(id string) string  { return StagingPrefix + id + "/manifest" }

// Begin starts a transaction. A Begin inside an active transaction joins
// it: only the outermost Commit applies the writes, so a routine that is
// itself transactional (Checkpoint) can be called both standalone and from
// within a larger transaction (AddBlock).
func (s *TxnStore) Begin() { s.BeginCtx(context.Background()) }

// BeginCtx is Begin carrying a request context: when ctx belongs to a
// sampled trace (obs.SpanContextFrom), the outermost Commit records its span
// into that trace. An inner Begin never re-parents the transaction.
func (s *TxnStore) BeginCtx(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.depth++
	if s.depth > 1 {
		return
	}
	s.seq++
	s.id = fmt.Sprintf("txn-%06d", s.seq)
	s.puts = make(map[string]bool)
	s.order = nil
	s.dels = make(map[string]bool)
	s.sc = obs.SpanContextFrom(ctx)
}

// InTxn reports whether a transaction is active.
func (s *TxnStore) InTxn() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.depth > 0
}

// Rollback aborts the whole active transaction (regardless of nesting
// depth), deleting staged keys best-effort. Calling it with no active
// transaction is a no-op, so it is safe in defer-on-error paths.
func (s *TxnStore) Rollback() {
	s.mu.Lock()
	if s.depth == 0 {
		s.mu.Unlock()
		return
	}
	id, order := s.id, s.order
	s.reset()
	s.mu.Unlock()
	// Best-effort: on a dying store (a crash) these deletes fail and the
	// leftovers are rolled back by Recover on the next open.
	for _, key := range order {
		_ = s.inner.Delete(stageDataKey(id, key))
	}
	obs.Default().Counter("diskio.txn.rollback").Inc()
}

// reset clears transaction state; callers hold s.mu.
func (s *TxnStore) reset() {
	s.depth = 0
	s.id = ""
	s.puts = nil
	s.order = nil
	s.dels = nil
	s.sc = obs.SpanContext{}
}

// Commit applies the transaction: manifest write (the commit point), staged
// value promotion, deferred deletes, cleanup. An inner (nested) Commit just
// decrements the depth. If Commit returns an error after the manifest was
// written, the transaction is durable despite the error — Recover rolls it
// forward on the next open — so callers must not assume a failed Commit
// means a rolled-back transaction; they should discard in-memory state and
// restore.
func (s *TxnStore) Commit() error {
	s.mu.Lock()
	if s.depth == 0 {
		s.mu.Unlock()
		return errors.New("diskio: Commit without Begin")
	}
	if s.depth > 1 {
		s.depth--
		s.mu.Unlock()
		return nil
	}
	id, order, dels, sc := s.id, s.order, s.dels, s.sc
	s.reset()
	s.mu.Unlock()

	span := obs.Default().Timer("diskio.txn.commit.ns").StartSpan(sc)
	defer span.End()

	if len(order) == 0 && len(dels) == 0 {
		return nil
	}

	delKeys := make([]string, 0, len(dels))
	for k := range dels {
		delKeys = append(delKeys, k)
	}
	sort.Strings(delKeys)

	// Commit point: the framed manifest makes a torn manifest write
	// detectable even when the underlying store does not checksum values.
	if err := s.inner.Put(stageManifestKey(id), Frame(encodeManifest(order, delKeys))); err != nil {
		for _, key := range order {
			_ = s.inner.Delete(stageDataKey(id, key))
		}
		return fmt.Errorf("diskio: txn %s: writing manifest: %w", id, err)
	}
	// Promote staged values. On failure the manifest stays; Recover
	// completes the promotion.
	for _, key := range order {
		data, err := s.inner.Get(stageDataKey(id, key))
		if err != nil {
			return fmt.Errorf("diskio: txn %s: reading staged %s: %w", id, key, err)
		}
		if err := s.inner.Put(key, data); err != nil {
			return fmt.Errorf("diskio: txn %s: promoting %s: %w", id, key, err)
		}
	}
	for _, key := range delKeys {
		if err := s.inner.Delete(key); err != nil {
			return fmt.Errorf("diskio: txn %s: deleting %s: %w", id, key, err)
		}
	}
	// Cleanup: manifest first, staged data after, so a crash in between
	// leaves manifest-less staged keys that Recover can discard safely.
	if err := s.inner.Delete(stageManifestKey(id)); err != nil {
		return fmt.Errorf("diskio: txn %s: removing manifest: %w", id, err)
	}
	for _, key := range order {
		if err := s.inner.Delete(stageDataKey(id, key)); err != nil {
			return fmt.Errorf("diskio: txn %s: removing staged %s: %w", id, key, err)
		}
	}
	obs.Default().Counter("diskio.txn.commit").Inc()
	return nil
}

// Put implements Store. Inside a transaction the write is staged.
func (s *TxnStore) Put(key string, data []byte) error {
	s.mu.Lock()
	if s.depth == 0 {
		s.mu.Unlock()
		return s.inner.Put(key, data)
	}
	if key == "" {
		s.mu.Unlock()
		return fmt.Errorf("diskio: empty key")
	}
	if strings.HasPrefix(key, StagingPrefix) {
		s.mu.Unlock()
		return fmt.Errorf("diskio: key %q under reserved prefix %q", key, StagingPrefix)
	}
	id := s.id
	if !s.puts[key] {
		s.puts[key] = true
		s.order = append(s.order, key)
	}
	delete(s.dels, key)
	s.mu.Unlock()
	return s.inner.Put(stageDataKey(id, key), data)
}

// Get implements Store, observing staged writes of the active transaction.
func (s *TxnStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	if s.depth == 0 {
		s.mu.RUnlock()
		return s.inner.Get(key)
	}
	staged, deleted, id := s.puts[key], s.dels[key], s.id
	s.mu.RUnlock()
	if staged {
		return s.inner.Get(stageDataKey(id, key))
	}
	if deleted {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return s.inner.Get(key)
}

// Size implements Store, observing staged writes of the active transaction.
func (s *TxnStore) Size(key string) (int64, error) {
	s.mu.RLock()
	if s.depth == 0 {
		s.mu.RUnlock()
		return s.inner.Size(key)
	}
	staged, deleted, id := s.puts[key], s.dels[key], s.id
	s.mu.RUnlock()
	if staged {
		return s.inner.Size(stageDataKey(id, key))
	}
	if deleted {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return s.inner.Size(key)
}

// Delete implements Store. Inside a transaction the delete is deferred to
// commit time.
func (s *TxnStore) Delete(key string) error {
	s.mu.Lock()
	if s.depth == 0 {
		s.mu.Unlock()
		return s.inner.Delete(key)
	}
	id := s.id
	wasStaged := s.puts[key]
	if wasStaged {
		delete(s.puts, key)
		for i, k := range s.order {
			if k == key {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.dels[key] = true
	s.mu.Unlock()
	if wasStaged {
		return s.inner.Delete(stageDataKey(id, key))
	}
	return nil
}

// Keys implements Store, merging staged writes over the committed state and
// hiding the transaction's own staging keys.
func (s *TxnStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	if s.depth == 0 {
		s.mu.RUnlock()
		return s.inner.Keys(prefix)
	}
	staged := make([]string, 0, len(s.order))
	for _, k := range s.order {
		if strings.HasPrefix(k, prefix) {
			staged = append(staged, k)
		}
	}
	dels := make(map[string]bool, len(s.dels))
	for k := range s.dels {
		dels[k] = true
	}
	s.mu.RUnlock()

	inner, err := s.inner.Keys(prefix)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(inner)+len(staged))
	var out []string
	for _, k := range inner {
		if strings.HasPrefix(k, StagingPrefix) || dels[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	for _, k := range staged {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats implements Store.
func (s *TxnStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *TxnStore) ResetStats() { s.inner.ResetStats() }

// encodeManifest serializes the put and delete key lists.
func encodeManifest(puts, dels []string) []byte {
	buf := AppendUvarint(nil, uint64(len(puts)))
	for _, k := range puts {
		buf = AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = AppendUvarint(buf, uint64(len(dels)))
	for _, k := range dels {
		buf = AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

func decodeManifest(buf []byte) (puts, dels []string, err error) {
	readList := func(buf []byte) ([]string, []byte, error) {
		n, buf, err := ReadUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if n > uint64(len(buf)) {
			return nil, nil, fmt.Errorf("%w: implausible manifest length %d", ErrCorrupt, n)
		}
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			l, rest, err := ReadUvarint(buf)
			if err != nil {
				return nil, nil, err
			}
			if l > uint64(len(rest)) {
				return nil, nil, fmt.Errorf("%w: truncated manifest key", ErrCorrupt)
			}
			out = append(out, string(rest[:l]))
			buf = rest[l:]
		}
		return out, buf, nil
	}
	puts, buf, err = readList(buf)
	if err != nil {
		return nil, nil, err
	}
	dels, buf, err = readList(buf)
	if err != nil {
		return nil, nil, err
	}
	if len(buf) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, len(buf))
	}
	return puts, dels, nil
}

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	// RolledForward lists transaction ids whose manifest was present: their
	// staged writes were (re-)promoted to completion.
	RolledForward []string
	// RolledBack lists transaction ids with staged data but no readable
	// manifest: their staged writes were discarded.
	RolledBack []string
	// Quarantined lists keys whose bytes failed verification during
	// recovery and were preserved under QuarantinePrefix (when the store
	// supports quarantining) before removal from the live key space.
	Quarantined []string
}

// Clean reports whether recovery had nothing to do.
func (r *RecoveryReport) Clean() bool {
	return len(r.RolledForward) == 0 && len(r.RolledBack) == 0 && len(r.Quarantined) == 0
}

// Recover restores the invariants of the atomic commit protocol after a
// crash: transactions whose manifest was durably written are rolled forward
// (their staged values re-promoted — promotion is idempotent), and
// incomplete transactions are rolled back (staged values deleted). Corrupt
// manifests or staged values are quarantined when the store supports it.
// Recover must run before new transactions are started on the store; the
// miners call it when they open or restore.
func Recover(s Store) (*RecoveryReport, error) {
	keys, err := s.Keys(StagingPrefix)
	if err != nil {
		return nil, fmt.Errorf("diskio: recover: %w", err)
	}
	rep := &RecoveryReport{}
	if len(keys) == 0 {
		return rep, nil
	}

	// Group staged keys by transaction id.
	byTxn := make(map[string][]string)
	var ids []string
	for _, k := range keys {
		rest := strings.TrimPrefix(k, StagingPrefix)
		id, _, ok := strings.Cut(rest, "/")
		if !ok {
			// Stray key directly under staging/: remove it.
			if err := s.Delete(k); err != nil {
				return rep, fmt.Errorf("diskio: recover: %w", err)
			}
			continue
		}
		if _, seen := byTxn[id]; !seen {
			ids = append(ids, id)
		}
		byTxn[id] = append(byTxn[id], k)
	}
	sort.Strings(ids)

	quarantineOrDelete := func(key string) error {
		if q, ok := findQuarantiner(s); ok {
			if err := q.Quarantine(key); err == nil {
				rep.Quarantined = append(rep.Quarantined, key)
				return nil
			}
		}
		return s.Delete(key)
	}

	for _, id := range ids {
		manifestKey := stageManifestKey(id)
		var puts []string
		committed := false
		if raw, err := s.Get(manifestKey); err == nil {
			if payload, uerr := Unframe(raw); uerr == nil {
				if p, _, derr := decodeManifest(payload); derr == nil {
					puts, committed = p, true
				}
			}
		} else if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrCorrupt) {
			return rep, fmt.Errorf("diskio: recover txn %s: %w", id, err)
		}

		if committed {
			// Roll forward: re-promote every staged value. A staged value
			// that fails verification is quarantined and reported — it
			// cannot be promoted, and the damage must not be silent.
			for _, key := range puts {
				data, err := s.Get(stageDataKey(id, key))
				switch {
				case err == nil:
					if err := s.Put(key, data); err != nil {
						return rep, fmt.Errorf("diskio: recover txn %s: promoting %s: %w", id, key, err)
					}
				case errors.Is(err, ErrCorrupt):
					obs.Default().Counter("diskio.corrupt.detected").Inc()
					if err := quarantineOrDelete(stageDataKey(id, key)); err != nil {
						return rep, fmt.Errorf("diskio: recover txn %s: %w", id, err)
					}
				case errors.Is(err, ErrNotFound):
					// Already cleaned up by a previous partial recovery.
				default:
					return rep, fmt.Errorf("diskio: recover txn %s: staged %s: %w", id, key, err)
				}
			}
			rep.RolledForward = append(rep.RolledForward, id)
		} else {
			rep.RolledBack = append(rep.RolledBack, id)
		}

		// Clean up all staged keys of the transaction. Leftovers of
		// uncommitted transactions — including a torn manifest — are
		// expected crash debris carrying no committed data, so plain
		// deletion is the complete recovery, not a loss.
		for _, k := range byTxn[id] {
			if err := s.Delete(k); err != nil {
				return rep, fmt.Errorf("diskio: recover txn %s: cleanup %s: %w", id, k, err)
			}
		}
	}
	if !rep.Clean() {
		obs.Default().Counter("diskio.txn.recovered").Add(int64(len(rep.RolledForward) + len(rep.RolledBack)))
	}
	return rep, nil
}
