package diskio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec helpers shared by the on-disk formats of transactions, TID-lists and
// point blocks. All formats are little-endian and varint-based so that the
// byte counts reported by Store.Stats track the information content of the
// data (sorted identifier lists are delta-encoded, which is what makes a
// TID-list an order of magnitude smaller than the transactions it indexes).

// ErrCorrupt is wrapped by all decode errors.
var ErrCorrupt = errors.New("diskio: corrupt encoding")

// AppendUvarint appends x to buf in unsigned varint encoding.
func AppendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// ReadUvarint decodes one uvarint from buf, returning the value and the
// remaining bytes.
func ReadUvarint(buf []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return x, buf[n:], nil
}

// AppendSortedInts delta-encodes a strictly increasing slice of non-negative
// integers: the count, the first value, then successive gaps. It panics if
// the slice is not strictly increasing or contains negatives, because every
// caller constructs these lists in arrival order.
func AppendSortedInts(buf []byte, xs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	prev := -1
	for _, x := range xs {
		if x <= prev {
			panic(fmt.Sprintf("diskio: AppendSortedInts input not strictly increasing at %d after %d", x, prev))
		}
		buf = binary.AppendUvarint(buf, uint64(x-prev))
		prev = x
	}
	return buf
}

// ReadSortedInts decodes a slice written by AppendSortedInts, returning the
// values and the remaining bytes.
func ReadSortedInts(buf []byte) ([]int, []byte, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf))+1 {
		// Each element needs at least one byte; cheap corruption guard
		// before allocating.
		return nil, nil, fmt.Errorf("%w: implausible list length %d", ErrCorrupt, n)
	}
	xs := make([]int, n)
	prev := -1
	for i := range xs {
		gap, rest, err := ReadUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		buf = rest
		prev += int(gap)
		xs[i] = prev
	}
	return xs, buf, nil
}

// AppendInts encodes an arbitrary (not necessarily sorted) slice of
// non-negative integers: count then raw uvarints.
func AppendInts(buf []byte, xs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		if x < 0 {
			panic("diskio: AppendInts negative value")
		}
		buf = binary.AppendUvarint(buf, uint64(x))
	}
	return buf
}

// ReadInts decodes a slice written by AppendInts.
func ReadInts(buf []byte) ([]int, []byte, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf))+1 {
		return nil, nil, fmt.Errorf("%w: implausible list length %d", ErrCorrupt, n)
	}
	xs := make([]int, n)
	for i := range xs {
		x, rest, err := ReadUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		buf = rest
		xs[i] = int(x)
	}
	return xs, buf, nil
}

// AppendFloat64s encodes a float64 slice: count then IEEE-754 bits.
func AppendFloat64s(buf []byte, xs []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// ReadFloat64s decodes a slice written by AppendFloat64s.
func ReadFloat64s(buf []byte) ([]float64, []byte, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(buf)) < n*8 {
		return nil, nil, fmt.Errorf("%w: short float64 list", ErrCorrupt)
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	return xs, buf, nil
}
