package diskio

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"github.com/demon-mining/demon/internal/obs"
)

// ErrTransient marks an error as transient: the operation may succeed if
// simply retried (momentary resource exhaustion, an interrupted syscall, a
// flaky device). Wrap with MarkTransient; classify with IsTransient.
var ErrTransient = errors.New("diskio: transient")

// MarkTransient wraps err so IsTransient reports true for it.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient classifies an error as transient (retryable) or permanent.
// Errors explicitly marked with MarkTransient are transient, as are the
// classic momentary syscall failures. Corruption and not-found are always
// permanent: retrying cannot repair a torn record or invent a missing key.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNotFound) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.EAGAIN, syscall.EINTR, syscall.EBUSY,
		syscall.EMFILE, syscall.ENFILE, syscall.ETIMEDOUT,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// RetryStore wraps a Store and retries transient failures with capped
// exponential backoff plus jitter — the self-healing layer between the
// miners and a flaky device. Permanent errors (not-found, corruption,
// anything IsTransient rejects) propagate immediately. Retry traffic is
// visible under the obs counters
//
//	diskio.retry.attempts   retries performed (beyond the first attempt)
//	diskio.retry.ok         operations that succeeded after retrying
//	diskio.retry.giveup     operations that exhausted MaxAttempts
//
// RetryStore is safe for concurrent use to the extent the wrapped store is.
type RetryStore struct {
	// Inner is the wrapped store.
	Inner Store
	// MaxAttempts bounds the total tries per operation (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 1ms); each retry doubles
	// it up to MaxDelay (default 100ms). The actual sleep is uniformly
	// jittered in [delay/2, delay] so colliding retriers spread out.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Classify overrides the transient test (default IsTransient).
	Classify func(error) bool
	// Sleep overrides the backoff sleep, for tests (default time.Sleep).
	Sleep func(time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRetryStore wraps inner with the default retry policy.
func NewRetryStore(inner Store) *RetryStore {
	return &RetryStore{Inner: inner}
}

// Unwrap returns the wrapped store.
func (s *RetryStore) Unwrap() Store { return s.Inner }

func (s *RetryStore) attempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return 4
}

func (s *RetryStore) classify(err error) bool {
	if s.Classify != nil {
		return s.Classify(err)
	}
	return IsTransient(err)
}

func (s *RetryStore) backoff(try int) time.Duration {
	base := s.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxd := s.MaxDelay
	if maxd <= 0 {
		maxd = 100 * time.Millisecond
	}
	d := base << uint(try)
	if d > maxd || d <= 0 {
		d = maxd
	}
	// Jitter: uniform in [d/2, d].
	s.rngMu.Lock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	j := d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.rngMu.Unlock()
	return j
}

// do runs op with the retry policy.
func (s *RetryStore) do(op func() error) error {
	reg := obs.Default()
	var err error
	for try := 0; try < s.attempts(); try++ {
		if try > 0 {
			reg.Counter("diskio.retry.attempts").Inc()
			sleep := s.Sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(s.backoff(try - 1))
		}
		if err = op(); err == nil {
			if try > 0 {
				reg.Counter("diskio.retry.ok").Inc()
			}
			return nil
		}
		if !s.classify(err) {
			return err
		}
	}
	reg.Counter("diskio.retry.giveup").Inc()
	return fmt.Errorf("diskio: giving up after %d attempts: %w", s.attempts(), err)
}

// Put implements Store.
func (s *RetryStore) Put(key string, data []byte) error {
	return s.do(func() error { return s.Inner.Put(key, data) })
}

// Get implements Store.
func (s *RetryStore) Get(key string) (data []byte, err error) {
	err = s.do(func() error {
		data, err = s.Inner.Get(key)
		return err
	})
	return data, err
}

// Size implements Store.
func (s *RetryStore) Size(key string) (n int64, err error) {
	err = s.do(func() error {
		n, err = s.Inner.Size(key)
		return err
	})
	return n, err
}

// Delete implements Store.
func (s *RetryStore) Delete(key string) error {
	return s.do(func() error { return s.Inner.Delete(key) })
}

// Keys implements Store.
func (s *RetryStore) Keys(prefix string) (keys []string, err error) {
	err = s.do(func() error {
		keys, err = s.Inner.Keys(prefix)
		return err
	})
	return keys, err
}

// Stats implements Store.
func (s *RetryStore) Stats() Stats { return s.Inner.Stats() }

// ResetStats implements Store.
func (s *RetryStore) ResetStats() { s.Inner.ResetStats() }
