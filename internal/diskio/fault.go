package diskio

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error FaultStore returns when a fault fires.
var ErrInjected = errors.New("diskio: injected fault")

// Op names a Store operation for fault targeting.
type Op string

// The operation types FaultStore distinguishes.
const (
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpSize   Op = "size"
	OpDelete Op = "delete"
	OpKeys   Op = "keys"
)

// FaultStore wraps a Store and fails operations on demand — the repository's
// failure-injection harness. Faults fire when:
//
//   - the operation countdown reaches zero (FailAfter, one-shot), or
//   - the countdown reaches zero in crash mode (CrashAfter): the store
//     "dies" and every subsequent operation fails too, modelling a process
//     crash rather than a single flaky call, or
//   - the key matches FailKey (key-addressed operations only), or
//   - the operation matches FailOp — Keys passes its prefix here under
//     OpKeys, so prefix scans can be targeted without conflating the prefix
//     with a key, or
//   - a probabilistic coin flip with PFail comes up faulty.
//
// A firing Put with TornWrite set persists a prefix of the data to the inner
// store before failing — a torn write, exactly what a power cut mid-write
// leaves on disk. With Transient set, injected errors are additionally
// classified transient (IsTransient), so retry policies engage.
//
// All faults default to never firing. FaultStore is safe for concurrent use
// to the extent the wrapped store is.
type FaultStore struct {
	// Inner is the wrapped store.
	Inner Store
	// FailKey, when non-nil, makes any key-addressed operation on a
	// matching key fail. Keys (a prefix scan) does not consult it.
	FailKey func(key string) bool
	// FailOp, when non-nil, makes any matching operation fail. For OpKeys
	// the second argument is the scan prefix, not a key.
	FailOp func(op Op, key string) bool
	// PFail, when positive, is the probability in (0, 1] that any
	// operation fails. Draws come from Rand.
	PFail float64
	// Rand seeds the probabilistic faults; required when PFail > 0 so
	// sweeps stay reproducible.
	Rand *rand.Rand
	// Transient marks injected errors transient (see IsTransient).
	Transient bool
	// TornWrite makes a firing Put persist a prefix of the data before
	// failing, simulating a write torn by a crash.
	TornWrite bool
	// TornFraction is the fraction of the data a torn write persists
	// (default 0.5; clamped so at least one byte is dropped).
	TornFraction float64

	remaining atomic.Int64 // -1 = disabled
	armed     atomic.Bool
	crash     atomic.Bool // countdown firing kills the store permanently
	dead      atomic.Bool
	ops       atomic.Int64
	randMu    sync.Mutex
}

// NewFaultStore wraps inner with faults disabled.
func NewFaultStore(inner Store) *FaultStore {
	f := &FaultStore{Inner: inner}
	f.remaining.Store(-1)
	return f
}

// Unwrap returns the wrapped store.
func (f *FaultStore) Unwrap() Store {
	return f.Inner
}

// FailAfter arms the countdown: the n+1-th subsequent operation fails (n=0
// fails the next one). Each firing disarms the countdown.
func (f *FaultStore) FailAfter(n int) {
	f.crash.Store(false)
	f.remaining.Store(int64(n))
	f.armed.Store(true)
}

// CrashAfter arms the countdown in crash mode: the n+1-th subsequent
// operation fails and the store dies — every operation after it fails too,
// until Revive. Combined with TornWrite, the crashing operation (if a Put)
// leaves a torn value behind, exactly once.
func (f *FaultStore) CrashAfter(n int) {
	f.crash.Store(true)
	f.remaining.Store(int64(n))
	f.armed.Store(true)
}

// DisarmCountdown cancels a pending countdown.
func (f *FaultStore) DisarmCountdown() {
	f.armed.Store(false)
	f.remaining.Store(-1)
	f.crash.Store(false)
}

// Revive brings a crashed store back to life (faults stay configured but
// the dead state is cleared).
func (f *FaultStore) Revive() { f.dead.Store(false) }

// Dead reports whether a crash-mode countdown has fired.
func (f *FaultStore) Dead() bool { return f.dead.Load() }

// Ops returns the total number of operations observed (faulted or not) —
// the coordinate system of a crash-at-every-op sweep.
func (f *FaultStore) Ops() int64 { return f.ops.Load() }

// ResetOps zeroes the operation counter.
func (f *FaultStore) ResetOps() { f.ops.Store(0) }

// err builds the injected error with the configured classification.
func (f *FaultStore) err() error {
	if f.Transient {
		return MarkTransient(ErrInjected)
	}
	return ErrInjected
}

// fault decides whether this operation fires. The second result reports
// whether the firing is "fresh" (the instant of the fault, as opposed to an
// operation on an already-dead store) — only a fresh firing tears a write.
func (f *FaultStore) fault(op Op, key string) (fire, fresh bool) {
	f.ops.Add(1)
	if f.dead.Load() {
		return true, false
	}
	if op != OpKeys && f.FailKey != nil && f.FailKey(key) {
		return true, true
	}
	if f.FailOp != nil && f.FailOp(op, key) {
		return true, true
	}
	if f.PFail > 0 && f.Rand != nil {
		f.randMu.Lock()
		hit := f.Rand.Float64() < f.PFail
		f.randMu.Unlock()
		if hit {
			return true, true
		}
	}
	if f.armed.Load() {
		// Fire for exactly the decrement that crosses zero: under concurrent
		// use several operations may decrement past the trigger, but only one
		// observes -1, so an armed countdown fires exactly once.
		if f.remaining.Add(-1) == -1 {
			f.armed.Store(false)
			if f.crash.Load() {
				f.dead.Store(true)
			}
			return true, true
		}
	}
	return false, false
}

// Put implements Store.
func (f *FaultStore) Put(key string, data []byte) error {
	if fire, fresh := f.fault(OpPut, key); fire {
		if fresh && f.TornWrite && len(data) > 0 {
			frac := f.TornFraction
			if frac <= 0 || frac >= 1 {
				frac = 0.5
			}
			n := int(float64(len(data)) * frac)
			if n >= len(data) {
				n = len(data) - 1
			}
			// The torn prefix reaches the device; the caller sees a failure.
			_ = f.Inner.Put(key, data[:n])
		}
		return f.err()
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if fire, _ := f.fault(OpGet, key); fire {
		return nil, f.err()
	}
	return f.Inner.Get(key)
}

// Size implements Store.
func (f *FaultStore) Size(key string) (int64, error) {
	if fire, _ := f.fault(OpSize, key); fire {
		return 0, f.err()
	}
	return f.Inner.Size(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key string) error {
	if fire, _ := f.fault(OpDelete, key); fire {
		return f.err()
	}
	return f.Inner.Delete(key)
}

// Keys implements Store. The prefix is passed to FailOp under OpKeys; it is
// not matched against FailKey, which takes keys, not prefixes.
func (f *FaultStore) Keys(prefix string) ([]string, error) {
	if fire, _ := f.fault(OpKeys, prefix); fire {
		return nil, f.err()
	}
	return f.Inner.Keys(prefix)
}

// Stats implements Store.
func (f *FaultStore) Stats() Stats { return f.Inner.Stats() }

// ResetStats implements Store.
func (f *FaultStore) ResetStats() { f.Inner.ResetStats() }
