package diskio

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error FaultStore returns when a fault fires.
var ErrInjected = errors.New("diskio: injected fault")

// FaultStore wraps a Store and fails operations on demand — the repository's
// failure-injection harness. Faults fire when the operation countdown
// reaches zero (FailAfter) or when the key matches the predicate (FailKey);
// both default to never firing. FaultStore is safe for concurrent use to the
// extent the wrapped store is.
type FaultStore struct {
	// Inner is the wrapped store.
	Inner Store
	// FailKey, when non-nil, makes any operation on a matching key fail.
	FailKey func(key string) bool

	remaining atomic.Int64 // -1 = disabled
	armed     atomic.Bool
}

// NewFaultStore wraps inner with faults disabled.
func NewFaultStore(inner Store) *FaultStore {
	f := &FaultStore{Inner: inner}
	f.remaining.Store(-1)
	return f
}

// FailAfter arms the countdown: the n+1-th subsequent operation fails (n=0
// fails the next one). Each firing disarms the countdown.
func (f *FaultStore) FailAfter(n int) {
	f.remaining.Store(int64(n))
	f.armed.Store(true)
}

// DisarmCountdown cancels a pending countdown.
func (f *FaultStore) DisarmCountdown() {
	f.armed.Store(false)
	f.remaining.Store(-1)
}

func (f *FaultStore) check(key string) error {
	if f.FailKey != nil && f.FailKey(key) {
		return ErrInjected
	}
	if f.armed.Load() {
		// Fire for exactly the decrement that crosses zero: under concurrent
		// use several operations may decrement past the trigger, but only one
		// observes -1, so an armed countdown fires exactly once.
		if f.remaining.Add(-1) == -1 {
			f.armed.Store(false)
			return ErrInjected
		}
	}
	return nil
}

// Put implements Store.
func (f *FaultStore) Put(key string, data []byte) error {
	if err := f.check(key); err != nil {
		return err
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err := f.check(key); err != nil {
		return nil, err
	}
	return f.Inner.Get(key)
}

// Size implements Store.
func (f *FaultStore) Size(key string) (int64, error) {
	if err := f.check(key); err != nil {
		return 0, err
	}
	return f.Inner.Size(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key string) error {
	if err := f.check(key); err != nil {
		return err
	}
	return f.Inner.Delete(key)
}

// Keys implements Store.
func (f *FaultStore) Keys(prefix string) ([]string, error) {
	if err := f.check(prefix); err != nil {
		return nil, err
	}
	return f.Inner.Keys(prefix)
}

// Stats implements Store.
func (f *FaultStore) Stats() Stats { return f.Inner.Stats() }

// ResetStats implements Store.
func (f *FaultStore) ResetStats() { f.Inner.ResetStats() }
