package conformance_test

import (
	"path/filepath"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/diskio/conformance"
	"github.com/demon-mining/demon/internal/diskio/kvfile"
)

// Every backend and decorator in the repository runs against the one shared
// oracle. A new backend earns its place here before anything else.

func TestMemStore(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewMemStore()
	})
}

func TestFileStore(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		fs, err := diskio.NewFileStore(t.TempDir())
		if err != nil {
			t.Fatalf("NewFileStore: %v", err)
		}
		return fs
	})
}

func TestChecksumStore(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewChecksumStore(diskio.NewMemStore())
	})
}

func TestRetryStore(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewRetryStore(diskio.NewMemStore())
	})
}

func TestTxnStoreIdle(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewTxnStore(diskio.NewMemStore())
	})
}

// TestTxnStoreActive runs the whole suite inside one open transaction: the
// staged view must be observationally indistinguishable from a plain store.
func TestTxnStoreActive(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		ts := diskio.NewTxnStore(diskio.NewMemStore())
		ts.Begin()
		t.Cleanup(func() {
			if err := ts.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
			}
		})
		return ts
	})
}

func TestKVFile(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		s, err := kvfile.Open(filepath.Join(t.TempDir(), "store.kv"), kvfile.Options{})
		if err != nil {
			t.Fatalf("kvfile.Open: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
		return s
	})
}

func TestKVFileBatchedSync(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		s, err := kvfile.Open(filepath.Join(t.TempDir(), "store.kv"), kvfile.Options{SyncEvery: 32})
		if err != nil {
			t.Fatalf("kvfile.Open: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
		return s
	})
}

// TestKVFileReopened runs the suite against a kvfile store that is seeded,
// closed, and reopened per subtest start — exercising the index rebuild path
// as part of the same contract. (Each subtest still starts empty; reopening
// an empty committed store must behave like a fresh one.)
func TestKVFileReopened(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		path := filepath.Join(t.TempDir(), "store.kv")
		s, err := kvfile.Open(path, kvfile.Options{})
		if err != nil {
			t.Fatalf("kvfile.Open: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		s, err = kvfile.Open(path, kvfile.Options{})
		if err != nil {
			t.Fatalf("kvfile reopen: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
		return s
	})
}

func TestCacheStoreTinyBudget(t *testing.T) {
	// A 1 KiB budget forces constant eviction; behavior must not change.
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewCacheStore(diskio.NewMemStore(), 1<<10)
	})
}

func TestCacheStoreLargeBudget(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		return diskio.NewCacheStore(diskio.NewMemStore(), 16<<20)
	})
}

func TestCacheOverKVFile(t *testing.T) {
	conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
		s, err := kvfile.Open(filepath.Join(t.TempDir(), "store.kv"), kvfile.Options{})
		if err != nil {
			t.Fatalf("kvfile.Open: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
		return diskio.NewCacheStore(s, 1<<20)
	})
}

// TestOpenURLStacks runs the suite against the full stacks diskio.Open
// builds from each URL scheme — what the CLIs and demon-serve actually use.
func TestOpenURLStacks(t *testing.T) {
	for _, tc := range []struct {
		name string
		url  func(dir string) string
	}{
		{"mem", func(string) string { return "mem:" }},
		{"file", func(dir string) string { return "file:" + filepath.Join(dir, "store") }},
		{"kvfile", func(dir string) string { return "kvfile:" + filepath.Join(dir, "store.kv") }},
		{"kvfile-cache", func(dir string) string {
			return "kvfile:" + filepath.Join(dir, "store.kv") + "?cache=64kb"
		}},
		{"file-cache", func(dir string) string {
			return "file:" + filepath.Join(dir, "store") + "?cache=64kb"
		}},
		{"kvfile-batched", func(dir string) string {
			return "kvfile:" + filepath.Join(dir, "store.kv") + "?sync=16"
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conformance.RunStoreTests(t, func(t *testing.T) diskio.Store {
				s, err := diskio.Open(tc.url(t.TempDir()))
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				t.Cleanup(func() {
					if err := diskio.CloseStore(s); err != nil {
						t.Errorf("CloseStore: %v", err)
					}
				})
				return s
			})
		})
	}
}
