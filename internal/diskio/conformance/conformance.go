// Package conformance is the shared oracle for diskio.Store backends: one
// table of behavioral tests every implementation — in-memory, one file per
// key, checksummed, transactional, single-file KV, cached — must pass. New
// backends wire a factory into RunStoreTests and inherit the whole contract;
// the faultsweep and digest harnesses then only need to check what is
// backend-specific (crash recovery, byte layout), not basic semantics.
package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
)

// Factory builds a fresh, empty store for one subtest. Cleanup (closing,
// removing temp dirs) belongs on t.Cleanup inside the factory.
type Factory func(t *testing.T) diskio.Store

// RunStoreTests runs the full conformance table against stores built by
// factory. Each subtest gets its own fresh store.
func RunStoreTests(t *testing.T, factory Factory) {
	t.Helper()
	for _, tc := range []struct {
		name string
		run  func(t *testing.T, s diskio.Store)
	}{
		{"PutGetRoundtrip", testPutGetRoundtrip},
		{"EmptyValue", testEmptyValue},
		{"BinaryValue", testBinaryValue},
		{"Overwrite", testOverwrite},
		{"EmptyKeyRejected", testEmptyKeyRejected},
		{"GetMissing", testGetMissing},
		{"SizeMissing", testSizeMissing},
		{"Size", testSize},
		{"DeleteRemoves", testDeleteRemoves},
		{"DeleteAbsent", testDeleteAbsent},
		{"DeleteThenPut", testDeleteThenPut},
		{"KeysSortedByPrefix", testKeysSortedByPrefix},
		{"KeysEmptyStore", testKeysEmptyStore},
		{"LargeValue", testLargeValue},
		{"ValueAliasing", testValueAliasing},
		{"ManyKeys", testManyKeys},
		{"ConcurrentReaders", testConcurrentReaders},
		{"ConcurrentReadWrite", testConcurrentReadWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, factory(t))
		})
	}
}

func mustPut(t *testing.T, s diskio.Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, s diskio.Store, key string) []byte {
	t.Helper()
	data, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return data
}

func testPutGetRoundtrip(t *testing.T, s diskio.Store) {
	mustPut(t, s, "blocks/0001", []byte("hello"))
	if got := mustGet(t, s, "blocks/0001"); string(got) != "hello" {
		t.Fatalf("Get = %q, want %q", got, "hello")
	}
}

func testEmptyValue(t *testing.T, s diskio.Store) {
	mustPut(t, s, "empty", nil)
	got := mustGet(t, s, "empty")
	if len(got) != 0 {
		t.Fatalf("Get = %q, want empty", got)
	}
	n, err := s.Size("empty")
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if n != 0 {
		t.Fatalf("Size = %d, want 0", n)
	}
}

func testBinaryValue(t *testing.T, s diskio.Store) {
	val := make([]byte, 300)
	for i := range val {
		val[i] = byte(i) // covers all byte values incl. 0x00 and 0xff
	}
	mustPut(t, s, "bin", val)
	if got := mustGet(t, s, "bin"); !bytes.Equal(got, val) {
		t.Fatalf("binary value mangled: got %d bytes %x..., want %d bytes", len(got), got[:8], len(val))
	}
}

func testOverwrite(t *testing.T, s diskio.Store) {
	mustPut(t, s, "k", []byte("first version, longer"))
	mustPut(t, s, "k", []byte("second"))
	if got := mustGet(t, s, "k"); string(got) != "second" {
		t.Fatalf("Get after overwrite = %q, want %q", got, "second")
	}
	n, err := s.Size("k")
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if n != int64(len("second")) {
		t.Fatalf("Size after overwrite = %d, want %d", n, len("second"))
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("Keys after overwrite = %v, want [k]", keys)
	}
}

func testEmptyKeyRejected(t *testing.T, s diskio.Store) {
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("Put(\"\") succeeded, want error")
	}
}

func testGetMissing(t *testing.T, s diskio.Store) {
	if _, err := s.Get("absent"); !errors.Is(err, diskio.ErrNotFound) {
		t.Fatalf("Get(absent) err = %v, want ErrNotFound", err)
	}
}

func testSizeMissing(t *testing.T, s diskio.Store) {
	if _, err := s.Size("absent"); !errors.Is(err, diskio.ErrNotFound) {
		t.Fatalf("Size(absent) err = %v, want ErrNotFound", err)
	}
}

func testSize(t *testing.T, s diskio.Store) {
	val := bytes.Repeat([]byte("s"), 1234)
	mustPut(t, s, "sized", val)
	n, err := s.Size("sized")
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if n != int64(len(val)) {
		t.Fatalf("Size = %d, want %d", n, len(val))
	}
}

func testDeleteRemoves(t *testing.T, s diskio.Store) {
	mustPut(t, s, "gone", []byte("x"))
	if err := s.Delete("gone"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("gone"); !errors.Is(err, diskio.ErrNotFound) {
		t.Fatalf("Get after Delete err = %v, want ErrNotFound", err)
	}
	if _, err := s.Size("gone"); !errors.Is(err, diskio.ErrNotFound) {
		t.Fatalf("Size after Delete err = %v, want ErrNotFound", err)
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("Keys after Delete = %v, want none", keys)
	}
}

func testDeleteAbsent(t *testing.T, s diskio.Store) {
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of absent key: %v, want nil", err)
	}
}

func testDeleteThenPut(t *testing.T, s diskio.Store) {
	mustPut(t, s, "phoenix", []byte("v1"))
	if err := s.Delete("phoenix"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	mustPut(t, s, "phoenix", []byte("v2"))
	if got := mustGet(t, s, "phoenix"); string(got) != "v2" {
		t.Fatalf("Get after delete+put = %q, want v2", got)
	}
}

func testKeysSortedByPrefix(t *testing.T, s diskio.Store) {
	// Inserted out of order on purpose; Keys must come back sorted.
	for _, k := range []string{"tid/b", "blocks/2", "tid/a", "blocks/10", "blocks/1", "meta"} {
		mustPut(t, s, k, []byte(k))
	}
	all, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	wantAll := []string{"blocks/1", "blocks/10", "blocks/2", "meta", "tid/a", "tid/b"}
	if fmt.Sprint(all) != fmt.Sprint(wantAll) {
		t.Fatalf("Keys(\"\") = %v, want %v", all, wantAll)
	}
	if !sort.StringsAreSorted(all) {
		t.Fatalf("Keys(\"\") not sorted: %v", all)
	}
	blocks, err := s.Keys("blocks/")
	if err != nil {
		t.Fatalf("Keys(blocks/): %v", err)
	}
	wantBlocks := []string{"blocks/1", "blocks/10", "blocks/2"}
	if fmt.Sprint(blocks) != fmt.Sprint(wantBlocks) {
		t.Fatalf("Keys(blocks/) = %v, want %v", blocks, wantBlocks)
	}
	none, err := s.Keys("nope/")
	if err != nil {
		t.Fatalf("Keys(nope/): %v", err)
	}
	if len(none) != 0 {
		t.Fatalf("Keys(nope/) = %v, want none", none)
	}
}

func testKeysEmptyStore(t *testing.T, s diskio.Store) {
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys on empty store: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("Keys on empty store = %v, want none", keys)
	}
}

func testLargeValue(t *testing.T, s diskio.Store) {
	val := make([]byte, 1<<20) // 1 MiB
	for i := range val {
		val[i] = byte(i * 31)
	}
	mustPut(t, s, "large", val)
	got := mustGet(t, s, "large")
	if !bytes.Equal(got, val) {
		t.Fatalf("large value mangled (%d bytes back, want %d)", len(got), len(val))
	}
	n, err := s.Size("large")
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if n != int64(len(val)) {
		t.Fatalf("Size = %d, want %d", n, len(val))
	}
}

func testValueAliasing(t *testing.T, s diskio.Store) {
	val := []byte("original")
	mustPut(t, s, "alias", val)
	val[0] = 'X' // mutating the caller's slice must not reach the store
	if got := mustGet(t, s, "alias"); string(got) != "original" {
		t.Fatalf("store aliased the Put slice: Get = %q", got)
	}
	got := mustGet(t, s, "alias")
	got[0] = 'Y' // mutating a returned slice must not reach the store
	if again := mustGet(t, s, "alias"); string(again) != "original" {
		t.Fatalf("store aliased the Get slice: Get = %q", again)
	}
}

func testManyKeys(t *testing.T, s diskio.Store) {
	const n = 200
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("many/%04d", i)
		mustPut(t, s, k, []byte(k))
		want = append(want, k)
	}
	keys, err := s.Keys("many/")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("Keys returned %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, k, want[i])
		}
	}
	for _, k := range []string{"many/0000", "many/0123", "many/0199"} {
		if got := mustGet(t, s, k); string(got) != k {
			t.Fatalf("Get(%q) = %q", k, got)
		}
	}
}

func testConcurrentReaders(t *testing.T, s diskio.Store) {
	const keys = 8
	vals := make([][]byte, keys)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('a' + i)}, 512+i)
		mustPut(t, s, fmt.Sprintf("cr/%d", i), vals[i])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % keys
				got, err := s.Get(fmt.Sprintf("cr/%d", k))
				if err != nil {
					errs <- fmt.Errorf("Get cr/%d: %w", k, err)
					return
				}
				if !bytes.Equal(got, vals[k]) {
					errs <- fmt.Errorf("cr/%d: got %d bytes of %q, want %d of %q",
						k, len(got), got[:1], len(vals[k]), vals[k][:1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func testConcurrentReadWrite(t *testing.T, s diskio.Store) {
	// One writer cycles a key through versions; readers must always see a
	// complete version — never a torn mix, never a disappearance.
	versions := make([][]byte, 4)
	for v := range versions {
		versions[v] = bytes.Repeat([]byte{byte('0' + v)}, 256*(v+1))
	}
	mustPut(t, s, "rw", versions[0])
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got, err := s.Get("rw")
				if err != nil {
					errs <- fmt.Errorf("Get rw: %w", err)
					return
				}
				ok := false
				for _, v := range versions {
					if bytes.Equal(got, v) {
						ok = true
						break
					}
				}
				if !ok {
					errs <- fmt.Errorf("rw: read %d bytes that match no written version", len(got))
					return
				}
			}
		}()
	}
	for i := 1; i < 40; i++ {
		mustPut(t, s, "rw", versions[i%len(versions)])
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
