package diskio

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1000)} {
		framed := Frame(payload)
		got, err := Unframe(framed)
		if err != nil {
			t.Fatalf("Unframe(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %v vs %v", got, payload)
		}
	}
}

func TestUnframeDetectsDamage(t *testing.T) {
	framed := Frame([]byte("hello, demon"))

	// Every truncation point, including an empty value, is corrupt.
	for cut := 0; cut < len(framed); cut++ {
		if _, err := Unframe(framed[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// Every single-bit flip is corrupt.
	for i := 0; i < len(framed); i++ {
		bad := bytes.Clone(framed)
		bad[i] ^= 0x40
		if _, err := Unframe(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Trailing garbage changes the CRC input and is corrupt.
	if _, err := Unframe(append(bytes.Clone(framed), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing garbage not detected")
	}
}

func TestChecksumStoreRoundTripAndSize(t *testing.T) {
	s := NewChecksumStore(NewMemStore())
	if err := s.Put("a/b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n, err := s.Size("a/b"); err != nil || n != int64(len("payload")) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestChecksumStoreDetectsTornWrite(t *testing.T) {
	base := NewMemStore()
	fault := NewFaultStore(base)
	fault.TornWrite = true
	s := NewChecksumStore(fault)

	if err := s.Put("good", []byte("intact value")); err != nil {
		t.Fatal(err)
	}
	fault.CrashAfter(0)
	if err := s.Put("torn", []byte("this write is interrupted half way")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn Put err = %v", err)
	}
	fault.Revive()
	fault.DisarmCountdown()

	if _, err := s.Get("good"); err != nil {
		t.Fatalf("intact value unreadable: %v", err)
	}
	if _, err := s.Get("torn"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn value err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumStoreQuarantineAndScrub(t *testing.T) {
	base := NewMemStore()
	s := NewChecksumStore(base)
	if err := s.Put("m/good", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	// Plant bit rot under the frame.
	raw, err := base.Get("m/bad")
	if !errors.Is(err, ErrNotFound) {
		t.Fatal("unexpected key")
	}
	_ = raw
	framed := Frame([]byte("will rot"))
	framed[len(framed)-1] ^= 0xFF
	if err := base.Put("m/bad", framed); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub("m/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || len(rep.Quarantined) != 1 || rep.Quarantined[0] != "m/bad" {
		t.Fatalf("scrub report = %+v", rep)
	}
	// The corrupt value is out of the live key space but preserved.
	if _, err := s.Get("m/bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined key still live: %v", err)
	}
	kept, err := base.Get(QuarantinePrefix + "m/bad")
	if err != nil || !bytes.Equal(kept, framed) {
		t.Fatalf("quarantine did not preserve bytes: %v", err)
	}
	// A second scrub finds nothing (quarantine keys are skipped).
	rep, err = s.Scrub("")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("second scrub quarantined %v", rep.Quarantined)
	}
}
