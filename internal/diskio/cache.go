package diskio

import (
	"container/list"
	"sync"

	"github.com/demon-mining/demon/internal/obs"
)

// CacheStore is a size-bounded read-through LRU cache over another Store,
// meant for hot TID-lists and checkpoint pages: Get serves repeated reads
// from memory, Put writes through to the inner store and refreshes the
// cached copy, and Delete invalidates. The cache is observationally
// identical to the inner store for Get/Size/Keys — only the Stats of the
// inner store change (a cache hit performs no inner read).
//
// Hit, miss and eviction counts are published to the default obs registry
// under diskio.cache.hits / diskio.cache.misses / diskio.cache.evictions,
// and the resident byte count under the gauge diskio.cache.bytes.
type CacheStore struct {
	inner    Store
	maxBytes int64

	mu    sync.Mutex
	bytes int64
	lru   *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
	// gen counts mutations (Put/Delete/invalidate). A read-miss fill is
	// abandoned when gen moved between the miss and the fill, so a racing
	// Delete or Put can never be overwritten by a stale value read before
	// it — the coherence half of "observationally identical".
	gen uint64

	hits, misses, evictions *obs.Counter
	resident                *obs.Gauge
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCacheStore wraps inner with an LRU read cache bounded to maxBytes of
// cached values (keys are not charged). A maxBytes <= 0 disables caching
// entirely (every Get is a miss that is not retained).
func NewCacheStore(inner Store, maxBytes int64) *CacheStore {
	r := obs.Default()
	return &CacheStore{
		inner:     inner,
		maxBytes:  maxBytes,
		lru:       list.New(),
		items:     make(map[string]*list.Element),
		hits:      r.Counter("diskio.cache.hits"),
		misses:    r.Counter("diskio.cache.misses"),
		evictions: r.Counter("diskio.cache.evictions"),
		resident:  r.Gauge("diskio.cache.bytes"),
	}
}

// Unwrap returns the wrapped store.
func (s *CacheStore) Unwrap() Store { return s.inner }

// lookup returns a copy of the cached value, if any, along with the
// mutation generation observed on a miss.
func (s *CacheStore) lookup(key string) ([]byte, bool, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses.Inc()
		return nil, false, s.gen
	}
	s.lru.MoveToFront(el)
	data := el.Value.(*cacheEntry).data
	c := make([]byte, len(data))
	copy(c, data)
	s.hits.Inc()
	return c, true, 0
}

// store caches a copy of data under key, evicting least-recently-used
// entries past the byte budget. Values larger than the whole budget are not
// cached. gen is the mutation generation observed before the operation that
// produced data: a read-miss fill (mutation = false) is abandoned when the
// generation moved between the miss and the fill, while a write-through
// refresh (mutation = true) whose generation moved instead drops the key —
// the racing mutations may have reached the inner store in either order, so
// no cached copy is trustworthy — and in both cases a mutation bumps the
// generation so concurrent stale fills are discarded.
func (s *CacheStore) store(key string, data []byte, gen uint64, mutation bool) {
	if s.maxBytes <= 0 {
		return // caching disabled; nothing is ever resident
	}
	if int64(len(data)) > s.maxBytes {
		s.invalidate(key)
		return
	}
	c := make([]byte, len(data))
	copy(c, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		if mutation {
			s.gen++
			s.dropLocked(key)
		}
		return
	}
	if mutation {
		s.gen++
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += int64(len(c)) - int64(len(e.data))
		e.data = c
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&cacheEntry{key: key, data: c})
		s.bytes += int64(len(c))
	}
	for s.bytes > s.maxBytes {
		el := s.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.items, e.key)
		s.bytes -= int64(len(e.data))
		s.evictions.Inc()
	}
	s.resident.Set(s.bytes)
}

// invalidate drops key from the cache and bumps the mutation generation.
func (s *CacheStore) invalidate(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.dropLocked(key)
}

// dropLocked removes key from the cache, if present. Callers hold mu.
func (s *CacheStore) dropLocked(key string) {
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.items, key)
		s.bytes -= int64(len(e.data))
		s.resident.Set(s.bytes)
	}
}

// Put implements Store: write-through, then refresh the cached copy. On
// inner failure nothing is cached, so the cache never gets ahead of the
// durable state. The refresh is guarded by the generation observed before
// the inner write: if another mutation raced this one, the key is dropped
// instead of refreshed, since the inner store may hold either value.
func (s *CacheStore) Put(key string, data []byte) error {
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()
	if err := s.inner.Put(key, data); err != nil {
		s.invalidate(key)
		return err
	}
	s.store(key, data, gen, true)
	return nil
}

// Get implements Store, serving hits from memory.
func (s *CacheStore) Get(key string) ([]byte, error) {
	data, ok, gen := s.lookup(key)
	if ok {
		return data, nil
	}
	data, err := s.inner.Get(key)
	if err != nil {
		return nil, err
	}
	s.store(key, data, gen, false)
	return data, nil
}

// Size implements Store, answering from the cache when possible.
func (s *CacheStore) Size(key string) (int64, error) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		n := int64(len(el.Value.(*cacheEntry).data))
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()
	return s.inner.Size(key)
}

// Delete implements Store, invalidating after the inner delete completes:
// the generation bump then postdates the inner mutation, so a concurrent
// read-miss fill that observed the pre-delete value is discarded by the
// fill-generation guard and the deleted key can never be resurrected from
// cache. (Invalidating before the inner delete would leave a window where a
// reader re-fills the still-present value with no later invalidation.)
func (s *CacheStore) Delete(key string) error {
	err := s.inner.Delete(key)
	s.invalidate(key)
	return err
}

// Keys implements Store.
func (s *CacheStore) Keys(prefix string) ([]string, error) { return s.inner.Keys(prefix) }

// Stats implements Store. Cache hits perform no inner read, so BytesRead of
// a cached stack measures actual inner-store traffic — exactly what the
// paper's I/O accounting wants.
func (s *CacheStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *CacheStore) ResetStats() { s.inner.ResetStats() }

// Quarantine forwards to the inner store (when it supports quarantining)
// and invalidates the key, so a corrupt value cannot linger in memory after
// it was moved aside on disk.
func (s *CacheStore) Quarantine(key string) error {
	q, ok := findQuarantiner(s.inner)
	if !ok {
		return errNoQuarantine(s.inner)
	}
	s.invalidate(key)
	return q.Quarantine(key)
}

// Scrub forwards to the inner store's checksum layer and invalidates every
// quarantined key.
func (s *CacheStore) Scrub(prefix string) (*ScrubReport, error) {
	sc, ok := findScrubber(s.inner)
	if !ok {
		return nil, errNoScrub(s.inner)
	}
	rep, err := sc.Scrub(prefix)
	if rep != nil {
		for _, k := range rep.Quarantined {
			s.invalidate(k)
		}
	}
	return rep, err
}

// Purge empties the cache (counters are preserved).
func (s *CacheStore) Purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.lru.Init()
	s.items = make(map[string]*list.Element)
	s.bytes = 0
	s.resident.Set(0)
}

// CachedBytes returns the resident value bytes.
func (s *CacheStore) CachedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// CachedLen returns the resident entry count.
func (s *CacheStore) CachedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
