package diskio

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/demon-mining/demon/internal/obs"
)

// TestCacheDifferential drives the same randomized op sequence against a
// cached store and a bare one, and demands identical observable behavior at
// every step — the "observationally identical" half of the cache contract.
func TestCacheDifferential(t *testing.T) {
	for _, budget := range []int64{64, 1 << 10, 1 << 20} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(budget) * 7919))
			cached := NewCacheStore(NewMemStore(), budget)
			bare := NewMemStore()
			keys := []string{"a", "b", "c", "d/e", "d/f", "g"}
			for step := 0; step < 4000; step++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(5) {
				case 0, 1: // Put
					val := bytes.Repeat([]byte{byte(step)}, rng.Intn(200))
					if err := cached.Put(k, val); err != nil {
						t.Fatalf("step %d: cached Put: %v", step, err)
					}
					if err := bare.Put(k, val); err != nil {
						t.Fatalf("step %d: bare Put: %v", step, err)
					}
				case 2: // Get
					cv, cerr := cached.Get(k)
					bv, berr := bare.Get(k)
					if (cerr == nil) != (berr == nil) || !errors.Is(cerr, berr) && cerr != nil && !errors.Is(cerr, ErrNotFound) {
						t.Fatalf("step %d: Get(%q) err diverged: cached %v, bare %v", step, k, cerr, berr)
					}
					if !bytes.Equal(cv, bv) {
						t.Fatalf("step %d: Get(%q) diverged: cached %d bytes, bare %d", step, k, len(cv), len(bv))
					}
				case 3: // Delete
					if err := cached.Delete(k); err != nil {
						t.Fatalf("step %d: cached Delete: %v", step, err)
					}
					if err := bare.Delete(k); err != nil {
						t.Fatalf("step %d: bare Delete: %v", step, err)
					}
				case 4: // Size + Keys
					cn, cerr := cached.Size(k)
					bn, berr := bare.Size(k)
					if (cerr == nil) != (berr == nil) || cn != bn {
						t.Fatalf("step %d: Size(%q) diverged: cached (%d, %v), bare (%d, %v)", step, k, cn, cerr, bn, berr)
					}
					ck, err := cached.Keys("")
					if err != nil {
						t.Fatalf("step %d: cached Keys: %v", step, err)
					}
					bk, err := bare.Keys("")
					if err != nil {
						t.Fatalf("step %d: bare Keys: %v", step, err)
					}
					if fmt.Sprint(ck) != fmt.Sprint(bk) {
						t.Fatalf("step %d: Keys diverged: cached %v, bare %v", step, ck, bk)
					}
				}
			}
			// Full final sweep.
			for _, k := range keys {
				cv, cerr := cached.Get(k)
				bv, berr := bare.Get(k)
				if (cerr == nil) != (berr == nil) || !bytes.Equal(cv, bv) {
					t.Fatalf("final: Get(%q) diverged", k)
				}
			}
		})
	}
}

// TestCacheDifferentialConcurrent runs a mutator thread against reader
// threads under -race: every read must return a value that was written for
// that key at some point — never a torn or resurrected one. A version byte
// tags each written value so readers can validate without locking.
func TestCacheDifferentialConcurrent(t *testing.T) {
	cached := NewCacheStore(NewMemStore(), 4<<10)
	keys := []string{"w/0", "w/1", "w/2", "w/3"}
	// deleted[v] tracks nothing — instead every value embeds its key index
	// and a version; readers check self-consistency of what they get.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ki := rng.Intn(len(keys))
				val, err := cached.Get(keys[ki])
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // racing a Delete; absence is a valid state
					}
					errs <- fmt.Errorf("Get(%s): %w", keys[ki], err)
					return
				}
				if len(val) < 2 || val[0] != byte(ki) {
					errs <- fmt.Errorf("Get(%s): value tagged for key %d", keys[ki], val[0])
					return
				}
				for _, b := range val[2:] {
					if b != val[1] {
						errs <- fmt.Errorf("Get(%s): torn value (version %d, fill %d)", keys[ki], val[1], b)
						return
					}
				}
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 3000; step++ {
		ki := rng.Intn(len(keys))
		if rng.Intn(10) == 0 {
			if err := cached.Delete(keys[ki]); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			continue
		}
		version := byte(step)
		val := append([]byte{byte(ki), version}, bytes.Repeat([]byte{version}, rng.Intn(100))...)
		if err := cached.Put(keys[ki], val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheCounters pins the metric semantics: misses then hits on repeat
// reads, and evictions under a budget smaller than the working set.
func TestCacheCounters(t *testing.T) {
	// The process-global registry starts disabled; install a fresh enabled
	// one before the CacheStore captures its instruments.
	r := obs.NewRegistry()
	prev := obs.SetDefault(r)
	t.Cleanup(func() { obs.SetDefault(prev) })
	hits0 := r.Counter("diskio.cache.hits").Value()
	misses0 := r.Counter("diskio.cache.misses").Value()
	evict0 := r.Counter("diskio.cache.evictions").Value()

	// Budget fits exactly two of the four 100-byte values.
	c := NewCacheStore(NewMemStore(), 200)
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 4; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if n := c.CachedLen(); n != 2 {
		t.Fatalf("CachedLen = %d, want 2 (budget holds two values)", n)
	}
	if got := r.Counter("diskio.cache.evictions").Value() - evict0; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	// k3 (and k2) resident: hits. k0: evicted, a miss that refills.
	if _, err := c.Get("k3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k0"); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("diskio.cache.hits").Value() - hits0; got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := r.Counter("diskio.cache.misses").Value() - misses0; got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	// The k0 miss refilled it, evicting the LRU entry (k2).
	if got := r.Counter("diskio.cache.evictions").Value() - evict0; got != 3 {
		t.Fatalf("evictions after refill = %d, want 3", got)
	}
	if b := c.CachedBytes(); b != 200 {
		t.Fatalf("CachedBytes = %d, want 200", b)
	}
}

// TestCacheHitsSkipInnerReads pins the point of the cache: repeated Gets of
// a resident key perform no inner-store I/O.
func TestCacheHitsSkipInnerReads(t *testing.T) {
	inner := NewMemStore()
	c := NewCacheStore(inner, 1<<20)
	if err := c.Put("hot", bytes.Repeat([]byte("h"), 512)); err != nil {
		t.Fatal(err)
	}
	inner.ResetStats()
	for i := 0; i < 10; i++ {
		if _, err := c.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	if st := inner.Stats(); st.Reads != 0 {
		t.Fatalf("inner store saw %d reads for a resident key, want 0", st.Reads)
	}
}

// TestCacheOversizeValueNotCached pins that a value larger than the whole
// budget bypasses the cache (and drops any stale resident copy).
func TestCacheOversizeValueNotCached(t *testing.T) {
	c := NewCacheStore(NewMemStore(), 100)
	if err := c.Put("k", []byte("small")); err != nil {
		t.Fatal(err)
	}
	if n := c.CachedLen(); n != 1 {
		t.Fatalf("CachedLen = %d, want 1", n)
	}
	big := bytes.Repeat([]byte("B"), 500)
	if err := c.Put("k", big); err != nil {
		t.Fatal(err)
	}
	if n := c.CachedLen(); n != 0 {
		t.Fatalf("CachedLen after oversize overwrite = %d, want 0", n)
	}
	got, err := c.Get("k")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Get after oversize overwrite: %v (len %d)", err, len(got))
	}
}

// hookStore wraps a Store with callbacks fired around inner mutations, used
// to pin deterministic interleavings of the cache coherence races.
type hookStore struct {
	Store
	beforeDelete func()
	afterPut     func()
}

func (h *hookStore) Delete(key string) error {
	if h.beforeDelete != nil {
		h.beforeDelete()
	}
	return h.Store.Delete(key)
}

func (h *hookStore) Put(key string, data []byte) error {
	err := h.Store.Put(key, data)
	if h.afterPut != nil {
		h.afterPut()
	}
	return err
}

// TestCacheDeleteNoResurrection pins the Delete coherence guarantee: a
// read-miss fill racing a Delete must not resurrect the deleted value. The
// inner delete is hooked so a Get re-fills the cache exactly in the window
// where the value is still present in the inner store; the invalidation
// after the inner delete must drop that fill.
func TestCacheDeleteNoResurrection(t *testing.T) {
	inner := &hookStore{Store: NewMemStore()}
	c := NewCacheStore(inner, 1<<20)
	if err := c.Put("k", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	c.Purge() // force the racing Get below to miss and fill from inner
	inner.beforeDelete = func() {
		if v, err := c.Get("k"); err != nil || !bytes.Equal(v, []byte("doomed")) {
			t.Errorf("racing Get before inner delete: %q, %v", v, err)
		}
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key served after racing re-fill: err = %v, want ErrNotFound", err)
	}
}

// TestCachePutRefreshNotStale pins the generation-guarded Put refresh: when
// two Puts to one key race such that the first writer's cache refresh runs
// last, that refresh must drop the key rather than publish, since the inner
// store holds the second writer's value.
func TestCachePutRefreshNotStale(t *testing.T) {
	inner := &hookStore{Store: NewMemStore()}
	c := NewCacheStore(inner, 1<<20)
	innerDone := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan struct{})
	inner.afterPut = func() {
		inner.afterPut = nil // gate only the first Put
		close(innerDone)
		<-release
	}
	go func() {
		defer close(firstDone)
		if err := c.Put("k", []byte("stale")); err != nil {
			t.Errorf("first Put: %v", err)
		}
	}()
	<-innerDone
	if err := c.Put("k", []byte("fresh")); err != nil { // inner + refresh complete
		t.Fatal(err)
	}
	close(release) // the first Put's refresh now runs last and must abandon
	<-firstDone
	got, err := c.Get("k")
	if err != nil || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("Get after racing refresh = %q, %v; want %q (the inner store's value)", got, err, "fresh")
	}
}

// TestCacheDisabledBudget pins that maxBytes <= 0 disables caching even for
// zero-length values, which the size comparison alone would retain.
func TestCacheDisabledBudget(t *testing.T) {
	c := NewCacheStore(NewMemStore(), 0)
	if err := c.Put("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if n := c.CachedLen(); n != 0 {
		t.Fatalf("CachedLen with disabled cache = %d, want 0", n)
	}
}

// TestCacheScrubInvalidates pins that a Scrub through the cache drops
// quarantined keys from memory: a corrupt value must not stay readable from
// the cache after the checksum layer moved it aside on disk.
func TestCacheScrubInvalidates(t *testing.T) {
	raw := NewMemStore()
	cs := NewChecksumStore(raw)
	c := NewCacheStore(cs, 1<<20)
	if err := c.Put("victim", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("victim"); err != nil { // now resident
		t.Fatal(err)
	}
	// Corrupt beneath the frame: flip a payload byte in the raw store.
	framed, err := raw.Get("victim")
	if err != nil {
		t.Fatal(err)
	}
	framed[len(framed)-1] ^= 0xff
	if err := raw.Put("victim", framed); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub("")
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "victim" {
		t.Fatalf("Scrub quarantined %v, want [victim]", rep.Quarantined)
	}
	if _, err := c.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine served from cache: err = %v, want ErrNotFound", err)
	}
}
