package kvfile

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/demon-mining/demon/internal/diskio"
)

// The kvfile: store URL scheme. Options:
//
//	sync=N         fsync-batch every N mutations (default 1)
//	compact=off    disable mutation-triggered compaction
//
// Importing this package (a blank import is enough) makes
// diskio.Open("kvfile:PATH") work.
func init() {
	diskio.RegisterScheme("kvfile", func(path string, opts map[string]string) (diskio.Store, error) {
		if path == "" {
			return nil, fmt.Errorf("kvfile: store URL needs a file path")
		}
		var o Options
		for k, v := range opts {
			switch k {
			case "sync":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("kvfile: bad sync option %q (want integer >= 1)", v)
				}
				o.SyncEvery = n
			case "compact":
				switch v {
				case "off":
					o.NoAutoCompact = true
				case "on", "":
				default:
					return nil, fmt.Errorf("kvfile: bad compact option %q (want on or off)", v)
				}
			default:
				return nil, fmt.Errorf("kvfile: unknown store option %q", k)
			}
		}
		// Parent directories are created like FileStore creates its root,
		// so "kvfile:DIR/store.kv" works on a fresh data directory.
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("kvfile: %w", err)
			}
		}
		return Open(path, o)
	})
}
