package kvfile

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
)

// FuzzKVFileReopen drives a random mutation sequence to a committed close,
// then damages the file and reopens it. The recovery contract under test:
//
//   - a reopen that succeeds must surface a state the store actually passed
//     through (for byte flips: exactly the final committed state — flips can
//     only land in superblock slots, where the dual-slot protocol absorbs
//     them, or in committed records, which must be rejected);
//   - a reopen that fails must fail with diskio.ErrCorrupt;
//   - committed data is never silently dropped or altered into a state the
//     store never held.
//
// Truncation and zeroing that reach EOF are physically indistinguishable
// from a torn crash tail, so there the oracle admits any earlier committed
// state (a snapshot of the op sequence), not only the final one.
func FuzzKVFileReopen(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3}, uint8(0), uint16(70), uint8(1))
	f.Add([]byte{0, 10, 0, 10, 2, 10, 0, 11}, uint8(1), uint16(80), uint8(4))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 3, 0}, uint8(2), uint16(100), uint8(20))
	f.Add([]byte{0, 5, 2, 5, 0, 5}, uint8(0), uint16(3), uint8(1))
	f.Add([]byte{0, 7}, uint8(1), uint16(0), uint8(0))
	f.Add([]byte{0, 1, 0, 2}, uint8(2), uint16(64), uint8(255))

	f.Fuzz(func(t *testing.T, ops []byte, action uint8, rawOff uint16, rawLen uint8) {
		path := filepath.Join(t.TempDir(), "fuzz.kv")
		s, err := Open(path, Options{NoAutoCompact: true})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}

		// Replay the op stream, snapshotting the model after every mutation:
		// each snapshot is a state the committed store passed through.
		model := map[string]string{}
		snapshots := []map[string]string{cloneState(model)}
		for i := 0; i+1 < len(ops) && i < 80; i += 2 {
			sel, p := ops[i], ops[i+1]
			key := fmt.Sprintf("k%d", p%8)
			switch sel % 4 {
			case 0, 1:
				val := bytes.Repeat([]byte{p}, int(p%60)+1)
				if err := s.Put(key, val); err != nil {
					t.Fatalf("Put: %v", err)
				}
				model[key] = string(val)
			case 2:
				if err := s.Delete(key); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(model, key)
			case 3:
				if err := s.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
				// Compaction rewrites the whole file: earlier byte layouts
				// are gone, so earlier snapshots are no longer reachable by
				// truncation either.
				snapshots = snapshots[:0]
			}
			snapshots = append(snapshots, cloneState(model))
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		final := cloneState(model)

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		orig := append([]byte(nil), data...)

		// Damage the file.
		reachesEOF := false
		switch action % 3 {
		case 0: // flip one byte
			off := int(rawOff) % len(data)
			data[off] ^= byte(rawLen) | 1
		case 1: // truncate
			data = data[:int(rawOff)%(len(data)+1)]
			reachesEOF = true
		case 2: // zero a range
			off := int(rawOff) % len(data)
			end := off + int(rawLen)
			if end >= len(data) {
				end = len(data)
				reachesEOF = true
			}
			for i := off; i < end; i++ {
				data[i] = 0
			}
		}
		if bytes.Equal(data, orig) {
			return // damage was a no-op; nothing to test
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := Open(path, Options{NoAutoCompact: true})
		if err != nil {
			if !errors.Is(err, diskio.ErrCorrupt) {
				t.Fatalf("reopen of damaged file failed with %v, want ErrCorrupt", err)
			}
			return
		}
		defer re.Close()
		got := fuzzDump(t, re)

		if stateEqual(got, final) {
			return
		}
		if !reachesEOF {
			t.Fatalf("mid-file damage (action %d) silently changed the state:\n got %v\nwant %v",
				action%3, got, final)
		}
		// EOF-reaching damage mimics a torn tail: any committed snapshot is
		// an honest recovery, plus the empty state of a truncate-to-zero.
		if len(got) == 0 {
			return
		}
		for _, snap := range snapshots {
			if stateEqual(got, snap) {
				return
			}
		}
		t.Fatalf("recovered state matches no committed snapshot:\n got %v\nfinal %v", got, final)
	})
}

func cloneState(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func stateEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func fuzzDump(t *testing.T, s *Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}
