package kvfile

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
)

func openT(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

// dump reads the full logical state of a store.
func dump(t *testing.T, s *Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("key/%02d", i), fmt.Sprintf("value-%d", i*i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	if err := s.Delete("key/07"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "key/07")
	if err := s.Put("key/03", []byte("overwritten")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	want["key/03"] = "overwritten"
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = openT(t, path, Options{})
	defer s.Close()
	got := dump(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("reopened state = %v, want %v", got, want)
	}
}

func TestBatchedSyncReplaysOnReopen(t *testing.T) {
	// With a large SyncEvery nothing is superblock-committed, but the
	// appends themselves hit the file: reopening must replay them from the
	// tail (crash between data write and commit mark).
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{SyncEvery: 1000})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Simulate the crash: drop the handle without Close's final commit.
	s.mu.Lock()
	s.f.Close()
	s.closed = true
	s.mu.Unlock()

	s = openT(t, path, Options{})
	defer s.Close()
	if n := s.Len(); n != 10 {
		t.Fatalf("replayed %d keys, want 10", n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Put("good", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Append a torn record: a prefix of a real append, cut mid-value.
	buf, _ := appendRecord(kindPut, "torn", bytes.Repeat([]byte("x"), 100))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf[:len(buf)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openT(t, path, Options{})
	defer s.Close()
	got := dump(t, s)
	if len(got) != 1 || got["good"] != "payload" {
		t.Fatalf("state after torn tail = %v, want only good=payload", got)
	}
	// The debris must be gone from the file, not just skipped.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != superblockSize+s.LogBytes() {
		t.Fatalf("file is %d bytes, log claims %d", fi.Size(), superblockSize+s.LogBytes())
	}
}

func TestCommittedCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Put("k", bytes.Repeat([]byte("v"), 64)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[superblockSize+10] ^= 0xff // flip a committed byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path, Options{}); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("Open on corrupt committed region: err = %v, want ErrCorrupt", err)
	}
}

func TestSuperblockSlotFallback(t *testing.T) {
	// Destroying the newest slot must fall back to the older one; the
	// records past its (older) commit offset verify and are replayed, so no
	// data is lost.
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	newestSlot := int64(s.gen%2) * slotSize
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xde}, slotSize), newestSlot); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openT(t, path, Options{})
	defer s.Close()
	got := dump(t, s)
	if got["a"] != "1" || got["b"] != "2" || len(got) != 2 {
		t.Fatalf("state after slot loss = %v, want a=1 b=2", got)
	}
}

func TestBothSlotsDestroyedRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xde}, superblockSize), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(path, Options{}); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("Open with no valid slot: err = %v, want ErrCorrupt", err)
	}
}

func TestCompactReclaims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{NoAutoCompact: true})
	val := bytes.Repeat([]byte("x"), 1000)
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete("k4"); err != nil {
		t.Fatal(err)
	}
	before := s.LogBytes()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.LogBytes()
	if after >= before/5 {
		t.Fatalf("LogBytes after compact = %d, want far below %d", after, before)
	}
	want := map[string]string{"k0": string(val), "k1": string(val), "k2": string(val), "k3": string(val)}
	if got := dump(t, s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("state after compact lost data: %d keys, want 4", len(got))
	}
	// Mutations and reopen must work on the compacted file.
	if err := s.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = openT(t, path, Options{})
	defer s.Close()
	if got := dump(t, s); got["post"] != "compact" || got["k0"] != string(val) || len(got) != 5 {
		t.Fatalf("state after compact+reopen = %d keys (post=%q)", len(got), got["post"])
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{CompactMinBytes: 4096, CompactFraction: 0.5})
	defer s.Close()
	val := bytes.Repeat([]byte("y"), 512)
	for round := 0; round < 50; round++ {
		if err := s.Put("hot", val); err != nil {
			t.Fatal(err)
		}
	}
	// 50 overwrites of one 512-byte value: without compaction the log would
	// hold ~25 KiB of garbage; the trigger must have kept it bounded.
	if lb := s.LogBytes(); lb > 16*1024 {
		t.Fatalf("LogBytes = %d, auto-compaction never fired", lb)
	}
	got, err := s.Get("hot")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("Get(hot) after auto-compact: %v", err)
	}
}

func TestDeleteAbsentAppendsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	defer s.Close()
	before := s.LogBytes()
	if err := s.Delete("never"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.LogBytes() != before {
		t.Fatalf("Delete of absent key grew the log by %d bytes", s.LogBytes()-before)
	}
}

func TestClosedOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed: %v, want ErrClosed", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed: %v, want ErrClosed", err)
	}
}

func TestLeftoverCompactTempIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-compaction leaves an incomplete temp file behind.
	if err := os.WriteFile(compactPath(path), []byte("junk from a dead compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = openT(t, path, Options{})
	defer s.Close()
	if got := dump(t, s); got["k"] != "v" {
		t.Fatalf("state = %v", got)
	}
	if _, err := os.Stat(compactPath(path)); !os.IsNotExist(err) {
		t.Fatalf("leftover compact temp not removed: %v", err)
	}
}

// TestStatsCountMutations pins the I/O accounting the perf suite relies on:
// every Put and every effective Delete counts as one write, absent-key
// deletes count nothing, and Get counts one read of the value length.
func TestStatsCountMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.kv")
	s := openT(t, path, Options{})
	defer s.Close()
	if err := s.Put("a", []byte("xyz")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Delete("absent"); err != nil { // no-op, must not count
		t.Fatalf("Delete absent: %v", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st := s.Stats()
	if st.Writes != 2 {
		t.Fatalf("Writes = %d, want 2 (one Put + one effective Delete)", st.Writes)
	}
	if st.BytesWritten != 3 {
		t.Fatalf("BytesWritten = %d, want 3", st.BytesWritten)
	}
	if st.Reads != 1 || st.BytesRead != 3 {
		t.Fatalf("Reads/BytesRead = %d/%d, want 1/3", st.Reads, st.BytesRead)
	}
}
