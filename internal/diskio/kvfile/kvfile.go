// Package kvfile is a zero-dependency single-file key-value backend for
// diskio.Store: an append-only record log with CRC-32C-checked pages, an
// in-memory sorted index rebuilt on open, fsync-batched commit through a
// dual-slot superblock, and log compaction that reclaims overwritten and
// deleted records.
//
// # File format
//
//	file       := superblock record*
//	superblock := slot0 slot1                     (64 bytes total)
//	slot       := "DKV1" gen:u64 commit:u64 pad:u64 crc32c:u32  (32 bytes)
//	record     := kind:u8 keyLen:uvarint [valLen:uvarint] key val crc32c:u32
//
// kind is 'P' (put) or 'D' (delete; no valLen/val). Every record carries a
// CRC-32C over all its preceding bytes, so torn appends and bit rot are
// detected during the open-time scan instead of being served as data.
//
// # Commit protocol
//
// Appended records become committed when a superblock slot carrying the new
// log length (the commit offset) reaches disk: data is fsynced first, then
// the alternate slot is written with an incremented generation and fsynced.
// A crash between the two fsyncs leaves the previous slot valid, and the
// records past its commit offset are replayed on open if they verify — they
// were complete, checksummed appends that only missed their commit mark.
// A record that fails verification past the commit offset is crash debris
// (a torn tail) when it is truncated by end-of-file or followed only by
// zero bytes, and the log is truncated back to the last good record;
// anything else — including any verification failure before the commit
// offset — is reported as diskio.ErrCorrupt, never silently dropped.
//
// With Options.SyncEvery=1 (the default) every mutation runs the full
// commit sequence; larger values batch the two fsyncs over N mutations,
// trading a bounded window of acknowledged-but-uncommitted writes for
// far fewer device flushes. Sync and Close force the pending batch out.
package kvfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/obs"
)

const (
	slotSize       = 32
	superblockSize = 2 * slotSize
	slotMagic      = "DKV1"

	kindPut    = 'P'
	kindDelete = 'D'

	// recordOverhead is the fixed per-record framing floor: kind byte plus
	// CRC; the varint lengths add one byte or more each.
	recordOverhead = 5
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = errors.New("kvfile: store is closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tune a Store. The zero value selects the durable defaults.
type Options struct {
	// SyncEvery commits (data fsync + superblock fsync) every N mutations;
	// 0 or 1 means every mutation is individually durable before it is
	// acknowledged. Sync/Close flush a pending batch.
	SyncEvery int
	// CompactMinBytes is the log size below which compaction never triggers
	// (default 1 MiB). Lower it in tests to exercise compaction.
	CompactMinBytes int64
	// CompactFraction is the garbage fraction (dead bytes over total log
	// bytes) above which a mutation triggers compaction (default 0.5).
	CompactFraction float64
	// NoAutoCompact disables mutation-triggered compaction; Compact can
	// still be called explicitly.
	NoAutoCompact bool
}

func (o Options) withDefaults() Options {
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	if o.CompactFraction <= 0 || o.CompactFraction >= 1 {
		o.CompactFraction = 0.5
	}
	return o
}

// entry locates a live key in the log.
type entry struct {
	valOff int64 // file offset of the value bytes
	valLen int
	recLen int64 // whole record length, for garbage accounting
}

// Store is a single-file diskio.Store. It is safe for concurrent use: any
// number of readers may run alongside one another; mutations serialize on an
// internal lock.
type Store struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64

	opts Options
	path string

	mu        sync.RWMutex
	f         *os.File
	closed    bool
	index     map[string]entry
	sorted    []string // sorted key cache; nil when stale
	gen       uint64   // generation of the last written superblock slot
	commit    int64    // durable log length per the superblock
	dataEnd   int64    // log length including uncommitted appends
	liveBytes int64    // Σ recLen over the index (live records)
	pending   int      // mutations since the last commit
}

// Open opens (creating if absent) the single-file store at path.
func Open(path string, opts Options) (*Store, error) {
	s := &Store{
		opts:  opts.withDefaults(),
		path:  path,
		index: make(map[string]entry),
	}
	// A leftover compaction temp file is pre-rename debris: the live file is
	// authoritative, the temp is incomplete by definition.
	_ = os.Remove(compactPath(path))

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvfile: open %s: %w", path, err)
	}
	s.f = f
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kvfile: open %s: %w", path, err)
	}
	if fi.Size() == 0 {
		if err := s.initEmpty(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.load(fi.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// initEmpty writes the superblock of a brand-new file and makes it durable.
func (s *Store) initEmpty() error {
	s.gen = 1
	s.commit = superblockSize
	s.dataEnd = superblockSize
	zero := make([]byte, superblockSize)
	if _, err := s.f.WriteAt(zero, 0); err != nil {
		return fmt.Errorf("kvfile: init %s: %w", s.path, err)
	}
	if err := s.writeSlot(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("kvfile: init %s: %w", s.path, err)
	}
	return syncDir(filepath.Dir(s.path))
}

// encodeSlot serializes a superblock slot.
func encodeSlot(gen uint64, commit int64) []byte {
	buf := make([]byte, slotSize)
	copy(buf, slotMagic)
	binary.LittleEndian.PutUint64(buf[4:12], gen)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(commit))
	binary.LittleEndian.PutUint32(buf[28:32], crc32.Checksum(buf[:28], crcTable))
	return buf
}

// decodeSlot validates one superblock slot.
func decodeSlot(buf []byte) (gen uint64, commit int64, ok bool) {
	if len(buf) < slotSize || string(buf[:4]) != slotMagic {
		return 0, 0, false
	}
	if crc32.Checksum(buf[:28], crcTable) != binary.LittleEndian.Uint32(buf[28:32]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[4:12]), int64(binary.LittleEndian.Uint64(buf[12:20])), true
}

// writeSlot persists the current (gen, commit) into the slot the generation
// selects. The caller is responsible for fsync ordering.
func (s *Store) writeSlot() error {
	off := int64(s.gen%2) * slotSize
	if _, err := s.f.WriteAt(encodeSlot(s.gen, s.commit), off); err != nil {
		return fmt.Errorf("kvfile: superblock %s: %w", s.path, err)
	}
	return nil
}

// load rebuilds the index from an existing file: superblock selection, a
// strict scan of the committed region, and torn-tail-tolerant replay of the
// region past the commit offset.
func (s *Store) load(size int64) error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("kvfile: load %s: %w", s.path, err)
	}
	if int64(len(data)) < superblockSize {
		return fmt.Errorf("%w: kvfile %s: %d bytes, shorter than the superblock", diskio.ErrCorrupt, s.path, len(data))
	}
	gen0, commit0, ok0 := decodeSlot(data[0:slotSize])
	gen1, commit1, ok1 := decodeSlot(data[slotSize:superblockSize])
	switch {
	case ok0 && ok1:
		if gen1 > gen0 {
			s.gen, s.commit = gen1, commit1
		} else {
			s.gen, s.commit = gen0, commit0
		}
	case ok0:
		s.gen, s.commit = gen0, commit0
	case ok1:
		s.gen, s.commit = gen1, commit1
	default:
		return fmt.Errorf("%w: kvfile %s: no valid superblock slot", diskio.ErrCorrupt, s.path)
	}
	if s.commit < superblockSize || s.commit > int64(len(data)) {
		return fmt.Errorf("%w: kvfile %s: commit offset %d outside file of %d bytes",
			diskio.ErrCorrupt, s.path, s.commit, len(data))
	}

	// Committed region: every record must verify — this data was
	// acknowledged as durable, so damage here is corruption, never debris.
	off := int64(superblockSize)
	for off < s.commit {
		r, err := parseRecord(data, off, s.commit)
		if err != nil {
			return fmt.Errorf("%w: kvfile %s: committed record at offset %d: %v",
				diskio.ErrCorrupt, s.path, off, err)
		}
		s.apply(r)
		off = r.end
	}

	// Tail region: complete, verified records are appends that missed their
	// commit mark (crash between the data fsync and the superblock fsync) —
	// replay them. The first failure ends the log if it looks like a torn
	// append (truncated by EOF, or nothing but zero bytes after it);
	// otherwise committed-era damage cannot be ruled out and the open fails.
	end := off
	for off < int64(len(data)) {
		r, err := parseRecord(data, off, int64(len(data)))
		if err != nil {
			if errors.Is(err, errTruncated) || allZero(data[off:]) {
				break
			}
			return fmt.Errorf("%w: kvfile %s: record at offset %d: %v",
				diskio.ErrCorrupt, s.path, off, err)
		}
		s.apply(r)
		off = r.end
		end = off
	}

	s.dataEnd = end
	if end != int64(len(data)) || s.commit != end {
		// Crash debris found: truncate it away and re-commit the recovered
		// length so the next open sees a clean log.
		if err := s.f.Truncate(end); err != nil {
			return fmt.Errorf("kvfile: truncating recovered log %s: %w", s.path, err)
		}
		s.commit = end
		s.gen++
		if err := s.writeSlot(); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("kvfile: syncing recovered log %s: %w", s.path, err)
		}
		obs.Default().Counter("diskio.kvfile.recovered").Inc()
	}
	return nil
}

// apply folds one parsed record into the index and the garbage accounting.
func (s *Store) apply(r rec) {
	if old, ok := s.index[r.key]; ok {
		s.liveBytes -= old.recLen
	}
	if r.kind == kindDelete {
		delete(s.index, r.key)
	} else {
		s.index[r.key] = entry{valOff: r.valOff, valLen: r.valLen, recLen: r.end - r.off}
		s.liveBytes += r.end - r.off
	}
	s.sorted = nil
}

// errTruncated marks a record cut off by the end of the scan region.
var errTruncated = errors.New("record truncated")

// rec is one parsed record.
type rec struct {
	kind   byte
	key    string
	valOff int64
	valLen int
	off    int64 // record start
	end    int64 // offset just past the CRC
}

// parseRecord decodes and verifies the record starting at off, reading no
// byte at or past limit.
func parseRecord(data []byte, off, limit int64) (rec, error) {
	r := rec{off: off}
	buf := data[off:limit]
	if len(buf) < 1 {
		return r, errTruncated
	}
	r.kind = buf[0]
	if r.kind != kindPut && r.kind != kindDelete {
		return r, fmt.Errorf("unknown record kind 0x%02x", r.kind)
	}
	p := 1
	keyLen, n := binary.Uvarint(buf[p:])
	if n <= 0 {
		return r, errTruncated
	}
	p += n
	valLen := uint64(0)
	if r.kind == kindPut {
		valLen, n = binary.Uvarint(buf[p:])
		if n <= 0 {
			return r, errTruncated
		}
		p += n
	}
	need := uint64(p) + keyLen + valLen + 4
	if keyLen > uint64(len(buf)) || valLen > uint64(len(buf)) || need > uint64(len(buf)) {
		return r, errTruncated
	}
	r.key = string(buf[p : p+int(keyLen)])
	p += int(keyLen)
	r.valOff = off + int64(p)
	r.valLen = int(valLen)
	p += int(valLen)
	want := binary.LittleEndian.Uint32(buf[p : p+4])
	if got := crc32.Checksum(buf[:p], crcTable); got != want {
		return r, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	r.end = off + int64(p) + 4
	return r, nil
}

// appendRecord encodes a record; valOff is the value's offset within the
// returned buffer.
func appendRecord(kind byte, key string, val []byte) (buf []byte, valOff int) {
	buf = make([]byte, 0, recordOverhead+2*binary.MaxVarintLen32+len(key)+len(val))
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	if kind == kindPut {
		buf = binary.AppendUvarint(buf, uint64(len(val)))
	}
	buf = append(buf, key...)
	valOff = len(buf)
	buf = append(buf, val...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, valOff
}

// append writes one record at dataEnd and folds it into the index; callers
// hold s.mu and then run maybeCommit.
func (s *Store) append(kind byte, key string, val []byte) error {
	buf, valOff := appendRecord(kind, key, val)
	if _, err := s.f.WriteAt(buf, s.dataEnd); err != nil {
		return fmt.Errorf("kvfile: append %s: %w", s.path, err)
	}
	r := rec{kind: kind, key: key, valOff: s.dataEnd + int64(valOff), valLen: len(val), off: s.dataEnd, end: s.dataEnd + int64(len(buf))}
	s.dataEnd = r.end
	s.apply(r)
	s.pending++
	return nil
}

// maybeCommit runs the commit sequence when the batch is full; callers hold
// s.mu.
func (s *Store) maybeCommit(force bool) error {
	if s.pending == 0 || (!force && s.pending < s.opts.SyncEvery) {
		return nil
	}
	// Data first, then the commit mark: a crash between the two fsyncs
	// leaves the previous superblock valid and the new records replayable.
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("kvfile: sync %s: %w", s.path, err)
	}
	s.gen++
	s.commit = s.dataEnd
	if err := s.writeSlot(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("kvfile: sync %s: %w", s.path, err)
	}
	s.pending = 0
	return nil
}

// maybeCompact triggers compaction when the log has outgrown the floor and
// garbage dominates; callers hold s.mu.
func (s *Store) maybeCompact() error {
	if s.opts.NoAutoCompact {
		return nil
	}
	logBytes := s.dataEnd - superblockSize
	if logBytes < s.opts.CompactMinBytes {
		return nil
	}
	if float64(logBytes-s.liveBytes) < s.opts.CompactFraction*float64(logBytes) {
		return nil
	}
	return s.compactLocked()
}

// Put implements diskio.Store.
func (s *Store) Put(key string, data []byte) error {
	if key == "" {
		return errors.New("kvfile: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.append(kindPut, key, data); err != nil {
		return err
	}
	if err := s.maybeCommit(false); err != nil {
		return err
	}
	s.countWrite(len(data))
	return s.maybeCompact()
}

// Get implements diskio.Store.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", diskio.ErrNotFound, key)
	}
	buf := make([]byte, e.valLen)
	if _, err := s.f.ReadAt(buf, e.valOff); err != nil {
		return nil, fmt.Errorf("kvfile: get %s: %w", key, err)
	}
	s.countRead(len(buf))
	return buf, nil
}

// Size implements diskio.Store.
func (s *Store) Size(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	e, ok := s.index[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", diskio.ErrNotFound, key)
	}
	return int64(e.valLen), nil
}

// Delete implements diskio.Store. Deleting an absent key is a no-op and
// appends nothing.
func (s *Store) Delete(key string) error {
	if key == "" {
		return errors.New("kvfile: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.append(kindDelete, key, nil); err != nil {
		return err
	}
	if err := s.maybeCommit(false); err != nil {
		return err
	}
	s.countWrite(0)
	return s.maybeCompact()
}

// Keys implements diskio.Store, serving from the sorted key cache (rebuilt
// lazily after mutations).
func (s *Store) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.sorted == nil {
		s.sorted = make([]string, 0, len(s.index))
		for k := range s.index {
			s.sorted = append(s.sorted, k)
		}
		sort.Strings(s.sorted)
	}
	lo := sort.SearchStrings(s.sorted, prefix)
	hi := lo
	for hi < len(s.sorted) && strings.HasPrefix(s.sorted[hi], prefix) {
		hi++
	}
	out := make([]string, hi-lo)
	copy(out, s.sorted[lo:hi])
	return out, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Sync commits any pending batch (data fsync + superblock fsync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.maybeCommit(true)
}

// Close commits pending writes and releases the file. Further operations
// return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.maybeCommit(true)
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

func compactPath(path string) string { return path + ".compact" }

// Compact rewrites the log to live records only (sorted by key), atomically
// replacing the file. The rewritten file is fully committed before the
// rename, so a crash at any point leaves either the old log or the new one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Pending appends must be durable in the OLD log first: if the rewrite
	// fails midway we fall back to it.
	if err := s.maybeCommit(true); err != nil {
		return err
	}
	tmpPath := compactPath(s.path)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvfile: compact %s: %w", s.path, err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}

	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if _, err := tmp.WriteAt(make([]byte, superblockSize), 0); err != nil {
		return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
	}
	newIndex := make(map[string]entry, len(s.index))
	off := int64(superblockSize)
	for _, k := range keys {
		e := s.index[k]
		val := make([]byte, e.valLen)
		if _, err := s.f.ReadAt(val, e.valOff); err != nil {
			return cleanup(fmt.Errorf("kvfile: compact %s: reading %s: %w", s.path, k, err))
		}
		buf, valOff := appendRecord(kindPut, k, val)
		if _, err := tmp.WriteAt(buf, off); err != nil {
			return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
		}
		newIndex[k] = entry{valOff: off + int64(valOff), valLen: e.valLen, recLen: int64(len(buf))}
		off += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
	}
	newGen := uint64(1)
	if _, err := tmp.WriteAt(encodeSlot(newGen, off), int64(newGen%2)*slotSize); err != nil {
		return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return cleanup(fmt.Errorf("kvfile: compact %s: %w", s.path, err))
	}
	// Past the rename the compacted file IS the store: the old inode is
	// unlinked, so the in-memory swap must complete even if the directory
	// sync fails — otherwise later appends would land in a deleted file and
	// vanish at close. The sync error is surfaced after the swap.
	var dirErr error
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		dirErr = fmt.Errorf("kvfile: compact %s: %w", s.path, err)
	}
	reclaimed := (s.dataEnd - superblockSize) - (off - superblockSize)
	old := s.f
	s.f = tmp
	old.Close()
	s.index = newIndex
	s.sorted = nil
	s.gen = newGen
	s.commit = off
	s.dataEnd = off
	s.liveBytes = off - superblockSize
	s.pending = 0
	obs.Default().Counter("diskio.kvfile.compactions").Inc()
	obs.Default().Counter("diskio.kvfile.compact.reclaimed_bytes").Add(reclaimed)
	return dirErr
}

// LogBytes returns the current log length excluding the superblock — the
// quantity compaction shrinks.
func (s *Store) LogBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dataEnd - superblockSize
}

// Stats implements diskio.Store.
func (s *Store) Stats() diskio.Stats {
	return diskio.Stats{
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
	}
}

// ResetStats implements diskio.Store.
func (s *Store) ResetStats() {
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
	s.reads.Store(0)
	s.writes.Store(0)
}

func (s *Store) countRead(n int)  { s.bytesRead.Add(int64(n)); s.reads.Add(1) }
func (s *Store) countWrite(n int) { s.bytesWritten.Add(int64(n)); s.writes.Add(1) }

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
