package diskio

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store URLs give every tool one syntax for selecting a storage backend:
//
//	mem:                        in-memory store (tests, experiments)
//	file:DIR                    one file per key under DIR, durable stack
//	kvfile:PATH                 single-file KV engine at PATH, durable stack
//
// An optional query string tunes the stack:
//
//	?cache=SIZE                 wrap an LRU read cache (e.g. 64kb, 16mb)
//	?sync=N                     kvfile only: fsync-batch every N mutations
//
// file: and kvfile: resolve to the crash-safe production stack — the base
// backend wrapped with transient-error retries and CRC-checksummed record
// framing (the same stack NewDurableFileStore builds), optionally topped by
// the cache. mem: stays plain, matching what tests expect of NewMemStore.
//
// Backends outside this package register themselves with RegisterScheme
// (kvfile does, from its init), so Open has no dependency on them.

// OpenFunc opens a registered backend: path is everything between the
// scheme's colon and the '?', opts the parsed query parameters.
type OpenFunc func(path string, opts map[string]string) (Store, error)

var (
	schemeMu sync.RWMutex
	schemes  = make(map[string]OpenFunc)
)

// RegisterScheme installs a backend under a URL scheme; registering a
// duplicate panics (it is a wiring bug, like a duplicate flag).
func RegisterScheme(scheme string, open OpenFunc) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemes[scheme]; dup {
		panic("diskio: duplicate store scheme " + scheme)
	}
	schemes[scheme] = open
}

// Schemes lists the registered backend schemes (including the built-in mem
// and file), sorted.
func Schemes() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	out := []string{"file", "mem"}
	for s := range schemes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ParseStoreURL splits "scheme:path?k=v" into its parts. A URL with no
// colon is an error — callers that accept bare directories should apply
// their default scheme before calling Open.
func ParseStoreURL(rawurl string) (scheme, path string, opts map[string]string, err error) {
	scheme, rest, ok := strings.Cut(rawurl, ":")
	if !ok || scheme == "" {
		return "", "", nil, fmt.Errorf("diskio: store URL %q has no scheme (want scheme:path)", rawurl)
	}
	path, query, _ := strings.Cut(rest, "?")
	opts = make(map[string]string)
	if query != "" {
		for _, kv := range strings.Split(query, "&") {
			k, v, _ := strings.Cut(kv, "=")
			if k == "" {
				return "", "", nil, fmt.Errorf("diskio: store URL %q: empty option name", rawurl)
			}
			opts[k] = v
		}
	}
	return scheme, path, opts, nil
}

// ParseSize parses a byte size: a plain integer, or one with a kb/mb/gb
// suffix (powers of 1024; case-insensitive, 'b' optional).
func ParseSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"kb", 1 << 10}, {"k", 1 << 10}, {"mb", 1 << 20}, {"m", 1 << 20}, {"gb", 1 << 30}, {"g", 1 << 30}, {"b", 1}} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("diskio: bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// Open builds the store stack a URL describes. See the package comment on
// url.go for the syntax. The returned store should be released with
// CloseStore when the backend holds OS resources (kvfile does).
func Open(rawurl string) (Store, error) {
	scheme, path, opts, err := ParseStoreURL(rawurl)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{"cache": true}
	var base Store
	switch scheme {
	case "mem":
		if path != "" {
			return nil, fmt.Errorf("diskio: mem: store takes no path (got %q)", path)
		}
		base = NewMemStore()
	case "file":
		if path == "" {
			return nil, fmt.Errorf("diskio: file: store needs a directory")
		}
		fs, err := NewFileStore(path)
		if err != nil {
			return nil, err
		}
		base = NewChecksumStore(NewRetryStore(fs))
	default:
		schemeMu.RLock()
		open := schemes[scheme]
		schemeMu.RUnlock()
		if open == nil {
			return nil, fmt.Errorf("diskio: unknown store scheme %q (registered: %s)",
				scheme, strings.Join(Schemes(), ", "))
		}
		// Backend-specific options are the backend's business; it must
		// reject the ones it does not know.
		for k := range opts {
			if k != "cache" {
				known[k] = true
			}
		}
		inner, err := open(path, withoutKey(opts, "cache"))
		if err != nil {
			return nil, err
		}
		base = NewChecksumStore(NewRetryStore(inner))
	}
	for k := range opts {
		if !known[k] {
			return nil, fmt.Errorf("diskio: store URL %q: unknown option %q", rawurl, k)
		}
	}
	if v, ok := opts["cache"]; ok {
		n, err := ParseSize(v)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			base = NewCacheStore(base, n)
		}
	}
	return base, nil
}

// withoutKey returns opts minus one key (the original map is not modified).
func withoutKey(opts map[string]string, key string) map[string]string {
	out := make(map[string]string, len(opts))
	for k, v := range opts {
		if k != key {
			out[k] = v
		}
	}
	return out
}

// Unwrapper is implemented by decorating stores; CloseStore and the scrub
// helpers walk the chain through it.
type Unwrapper interface {
	Unwrap() Store
}

// CloseStore walks the decorator chain and closes the first store that
// holds OS resources (io.Closer). Stores without one (MemStore, FileStore)
// make it a no-op, so callers can close unconditionally.
func CloseStore(s Store) error {
	for s != nil {
		if c, ok := s.(io.Closer); ok {
			return c.Close()
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// ScrubChain walks the decorator chain to the first store that can scrub
// (a ChecksumStore, or a CacheStore forwarding with invalidation) and runs
// its sweep. It fails when no layer carries checksummed framing.
func ScrubChain(s Store, prefix string) (*ScrubReport, error) {
	sc, ok := findScrubber(s)
	if !ok {
		return nil, errNoScrub(s)
	}
	return sc.Scrub(prefix)
}

// scrubber is the checksum layer's sweep interface.
type scrubber interface {
	Scrub(prefix string) (*ScrubReport, error)
}

// findScrubber walks the chain to the first store that can scrub.
func findScrubber(s Store) (scrubber, bool) {
	for s != nil {
		if sc, ok := s.(scrubber); ok {
			return sc, true
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil, false
		}
		s = u.Unwrap()
	}
	return nil, false
}

// findQuarantiner walks the chain to the first store that can quarantine.
func findQuarantiner(s Store) (Quarantiner, bool) {
	for s != nil {
		if q, ok := s.(Quarantiner); ok {
			return q, true
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil, false
		}
		s = u.Unwrap()
	}
	return nil, false
}

func errNoQuarantine(s Store) error {
	return fmt.Errorf("diskio: store %T has no checksummed framing to quarantine into", s)
}

func errNoScrub(s Store) error {
	return fmt.Errorf("diskio: store %T has no checksummed framing to scrub", s)
}
