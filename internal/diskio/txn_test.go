package diskio

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func dumpStore(t *testing.T, s Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("dump %s: %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}

func TestTxnStorePassthroughOutsideTxn(t *testing.T) {
	s := NewTxnStore(NewMemStore())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n, err := s.Size("k"); err != nil || n != 1 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
}

func TestTxnCommitIsAtomicAndClean(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)

	s.Begin()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Reads inside the txn observe staged state; the base store does not.
	if got, _ := s.Get("a"); string(got) != "1" {
		t.Fatal("txn read missed staged write")
	}
	if n, err := s.Size("b"); err != nil || n != 1 {
		t.Fatalf("txn Size = %d, %v", n, err)
	}
	if _, err := base.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("staged write leaked to final key before commit")
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[a b]" {
		t.Fatalf("txn Keys = %v", keys)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	got := dumpStore(t, base)
	if len(got) != 2 || got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("post-commit store = %v", got)
	}
}

func TestTxnRollbackLeavesNoTrace(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)
	if err := s.Put("keep", []byte("old")); err != nil {
		t.Fatal(err)
	}

	s.Begin()
	if err := s.Put("keep", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("keep"); err != nil {
		t.Fatal(err)
	}
	s.Rollback()

	got := dumpStore(t, base)
	if len(got) != 1 || got["keep"] != "old" {
		t.Fatalf("post-rollback store = %v", got)
	}
	// Rollback with no txn active is a no-op.
	s.Rollback()
}

func TestTxnDeleteSemantics(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)
	if err := s.Put("old", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Begin()
	if err := s.Delete("old"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("txn read saw deleted key")
	}
	if _, err := s.Size("old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("txn Size saw deleted key")
	}
	// The delete is deferred: the base still has it until commit.
	if _, err := base.Get("old"); err != nil {
		t.Fatal("deferred delete applied early")
	}
	// Put after Delete resurrects the key.
	if err := s.Put("old", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, err := base.Get("old"); err != nil || string(got) != "v2" {
		t.Fatalf("resurrected key = %q, %v", got, err)
	}

	s.Begin()
	if err := s.Put("tmp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Get("tmp"); !errors.Is(err, ErrNotFound) {
		t.Fatal("put-then-delete key survived commit")
	}
}

func TestTxnNestedBeginJoins(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)
	s.Begin()
	if err := s.Put("outer", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Begin() // joins
	if err := s.Put("inner", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil { // inner commit: no effect yet
		t.Fatal(err)
	}
	if _, err := base.Get("inner"); !errors.Is(err, ErrNotFound) {
		t.Fatal("inner commit applied before outer")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	got := dumpStore(t, base)
	if len(got) != 2 {
		t.Fatalf("post-commit store = %v", got)
	}
}

func TestTxnCommitWithoutBegin(t *testing.T) {
	s := NewTxnStore(NewMemStore())
	if err := s.Commit(); err == nil {
		t.Fatal("Commit without Begin succeeded")
	}
}

// crashStack builds base → fault(torn, crash) → checksum → txn, the full
// durability sandwich the miners run on in the fault sweep.
func crashStack() (*MemStore, *FaultStore, *TxnStore) {
	base := NewMemStore()
	fault := NewFaultStore(base)
	fault.TornWrite = true
	return base, fault, NewTxnStore(NewChecksumStore(fault))
}

// TestTxnCrashSweep commits a three-key transaction while crashing at every
// operation index; after Recover, the store must hold either none or all of
// the transaction's writes — never a subset.
func TestTxnCrashSweep(t *testing.T) {
	// Count ops in a fault-free run.
	base, fault, s := crashStack()
	doTxn := func(s *TxnStore) error {
		s.Begin()
		for i, k := range []string{"x/1", "x/2", "x/3"} {
			if err := s.Put(k, bytes.Repeat([]byte{byte('a' + i)}, 64)); err != nil {
				s.Rollback()
				return err
			}
		}
		return s.Commit()
	}
	if err := doTxn(s); err != nil {
		t.Fatal(err)
	}
	total := int(fault.Ops())
	want := dumpStore(t, base)

	for k := 0; k < total; k++ {
		base, fault, s := crashStack()
		fault.CrashAfter(k)
		err := doTxn(s)
		if err == nil {
			t.Fatalf("crash at op %d/%d did not surface", k, total)
		}
		// "Restart": recover through a clean stack over the same device.
		clean := NewChecksumStore(base)
		rep, err := Recover(clean)
		if err != nil {
			t.Fatalf("crash at op %d: recover: %v", k, err)
		}
		got := dumpStore(t, base)
		switch len(got) {
		case 0:
			// Rolled back: nothing visible.
		case len(want):
			for key, v := range want {
				if got[key] != v {
					t.Fatalf("crash at op %d: key %s diverges after roll-forward", k, key)
				}
			}
		default:
			t.Fatalf("crash at op %d: partial commit visible: %d of %d keys (report %+v)",
				k, len(got), len(want), rep)
		}
		// Recovery is idempotent.
		if rep2, err := Recover(clean); err != nil || !rep2.Clean() {
			t.Fatalf("crash at op %d: second recover = %+v, %v", k, rep2, err)
		}
	}
}

func TestRecoverRollsBackUncommittedStaging(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)
	s.Begin()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: drop the txn on the floor without commit/rollback.
	rep, err := Recover(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RolledBack) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := dumpStore(t, base); len(got) != 0 {
		t.Fatalf("staging survived recovery: %v", got)
	}
}

func TestTxnKeysHidesStaging(t *testing.T) {
	base := NewMemStore()
	s := NewTxnStore(base)
	s.Begin()
	if err := s.Put("data/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.HasPrefix(k, StagingPrefix) {
			t.Fatalf("Keys leaked staging key %s", k)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnRejectsReservedPrefix(t *testing.T) {
	s := NewTxnStore(NewMemStore())
	s.Begin()
	defer s.Rollback()
	if err := s.Put(StagingPrefix+"sneaky", nil); err == nil {
		t.Fatal("write under staging/ accepted inside a txn")
	}
}
