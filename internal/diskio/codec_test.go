package diskio

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortedIntsRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{10, 100, 1000, 1000000},
	}
	for _, xs := range cases {
		buf := AppendSortedInts(nil, xs)
		got, rest, err := ReadSortedInts(buf)
		if err != nil {
			t.Fatalf("ReadSortedInts(%v): %v", xs, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trailing bytes after %v", xs)
		}
		if len(xs) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, xs) {
			t.Fatalf("round trip %v -> %v", xs, got)
		}
	}
}

func TestSortedIntsPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendSortedInts accepted unsorted input")
		}
	}()
	AppendSortedInts(nil, []int{3, 2})
}

func TestSortedIntsPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendSortedInts accepted duplicate")
		}
	}()
	AppendSortedInts(nil, []int{2, 2})
}

// Property: encode/decode of random strictly-increasing lists is lossless and
// delta encoding never exceeds the raw encoding size.
func TestSortedIntsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 64)
		set := make(map[int]bool, n)
		for len(set) < n {
			set[rng.Intn(1<<20)] = true
		}
		xs := make([]int, 0, n)
		for x := range set {
			xs = append(xs, x)
		}
		sort.Ints(xs)
		buf := AppendSortedInts(nil, xs)
		got, rest, err := ReadSortedInts(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		raw := AppendInts(nil, xs)
		return len(buf) <= len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	xs := []int{5, 0, 5, 1 << 30}
	buf := AppendInts(nil, xs)
	got, rest, err := ReadInts(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadInts err=%v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(got, xs) {
		t.Fatalf("round trip %v -> %v", xs, got)
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	xs := []float64{0, -1.5, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	buf := AppendFloat64s(nil, xs)
	got, rest, err := ReadFloat64s(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadFloat64s err=%v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(got, xs) {
		t.Fatalf("round trip %v -> %v", xs, got)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// Length claims more elements than bytes available.
	if _, _, err := ReadSortedInts([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("ReadSortedInts accepted implausible length")
	}
	if _, _, err := ReadInts([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("ReadInts accepted implausible length")
	}
	if _, _, err := ReadFloat64s([]byte{3, 0, 0}); err == nil {
		t.Error("ReadFloat64s accepted short buffer")
	}
	if _, _, err := ReadUvarint(nil); err == nil {
		t.Error("ReadUvarint accepted empty buffer")
	}
	// Truncated list body.
	buf := AppendSortedInts(nil, []int{1, 2, 3})
	if _, _, err := ReadSortedInts(buf[:len(buf)-1]); err == nil {
		t.Error("ReadSortedInts accepted truncated body")
	}
}

func TestMultipleValuesInOneBuffer(t *testing.T) {
	buf := AppendSortedInts(nil, []int{1, 5, 9})
	buf = AppendFloat64s(buf, []float64{2.5})
	buf = AppendUvarint(buf, 42)

	ints, buf, err := ReadSortedInts(buf)
	if err != nil {
		t.Fatal(err)
	}
	floats, buf, err := ReadFloat64s(buf)
	if err != nil {
		t.Fatal(err)
	}
	x, buf, err := ReadUvarint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 0 || x != 42 || floats[0] != 2.5 || ints[2] != 9 {
		t.Fatalf("sequential decode mismatch: %v %v %d rest=%d", ints, floats, x, len(buf))
	}
}
