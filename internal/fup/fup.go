// Package fup implements the FUP algorithm of Cheung, Han, Ng and Wong
// (ICDE 1996), the first incremental frequent-itemset maintenance algorithm
// and the baseline the BORDERS algorithm improves on (Section 6 of the DEMON
// paper). FUP proceeds level-wise like Apriori: at each level it first
// settles the fate of the previously frequent k-itemsets using a scan of the
// increment only, then generates candidate new k-itemsets and counts the
// survivors against the old database — so unlike BORDERS it may rescan the
// entire old database once per level.
//
// It is provided as a comparison baseline; the repository's ablation benches
// measure BORDERS's advantage (fewer full scans) directly against it.
package fup

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// Model is the FUP-maintained model: the frequent itemsets with exact
// counts over the covered blocks. FUP does not maintain a negative border —
// that is exactly the structural improvement BORDERS added.
type Model struct {
	N          int
	MinSupport float64
	Frequent   map[itemset.Key]int
	Blocks     []blockseq.ID
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	c := &Model{
		N:          m.N,
		MinSupport: m.MinSupport,
		Frequent:   make(map[itemset.Key]int, len(m.Frequent)),
		Blocks:     append([]blockseq.ID(nil), m.Blocks...),
	}
	for k, v := range m.Frequent {
		c.Frequent[k] = v
	}
	return c
}

// Maintainer drives FUP maintenance. The old database is read through the
// BlockStore; statistics record how often it had to be rescanned.
type Maintainer struct {
	Store      *itemset.BlockStore
	MinSupport float64
}

// Stats reports the work one AddBlock performed.
type Stats struct {
	// IncrementScans counts scans of the new block (one per level).
	IncrementScans int
	// OldDBScans counts full scans of the old database (FUP's cost driver;
	// BORDERS needs at most one).
	OldDBScans int
	// CandidatesCounted is the number of candidates counted against the
	// old database.
	CandidatesCounted int
}

// Empty returns a model over no blocks.
func (mt *Maintainer) Empty() *Model {
	return &Model{MinSupport: mt.MinSupport, Frequent: make(map[itemset.Key]int)}
}

// AddBlock updates the model with one new block, level by level:
//
//  1. Winners/losers among the old frequent k-itemsets are decided by
//     scanning only the increment (their old counts are known).
//  2. Candidate new k-itemsets are generated from the level's surviving
//     frequent sets, pruned by the Apriori property and by the observation
//     that a candidate not frequent *within the increment alone* relative
//     to the increment size cannot have become frequent overall unless it
//     was frequent before (which is excluded by construction).
//  3. Survivors are counted against the old database — one full scan per
//     level with any survivors.
func (mt *Maintainer) AddBlock(m *Model, blk *itemset.TxBlock) (Stats, error) {
	var st Stats
	oldBlocks := append([]blockseq.ID(nil), m.Blocks...)
	oldN := m.N
	newN := oldN + len(blk.Txs)
	minCount := itemset.MinCount(newN, m.MinSupport)
	incMinCount := itemset.MinCount(len(blk.Txs), m.MinSupport)

	// Level-wise loop. `prevFrequent` holds the (k-1)-itemsets frequent on
	// the updated database; level 1 starts from all items.
	newFrequent := make(map[itemset.Key]int)
	var prevLevel []itemset.Itemset

	for k := 1; ; k++ {
		// Old frequent k-itemsets: update their counts with the increment.
		var oldK []itemset.Itemset
		for key := range m.Frequent {
			if x := key.Itemset(); len(x) == k {
				oldK = append(oldK, x)
			}
		}
		itemset.SortItemsets(oldK)

		incCounts := make(map[itemset.Key]int)
		if len(oldK) > 0 {
			tree := itemset.NewPrefixTree(oldK)
			for _, tx := range blk.Txs {
				tree.CountTx(tx)
			}
			st.IncrementScans++
			incCounts = tree.Counts()
		}
		levelFrequent := make(map[itemset.Key]int)
		for _, x := range oldK {
			key := x.Key()
			total := m.Frequent[key] + incCounts[key]
			if total >= minCount {
				levelFrequent[key] = total
			}
		}

		// Candidate new k-itemsets. Level 1 candidates are the increment's
		// items that were not frequent before; deeper levels come from the
		// prefix join of the previous level's frequent sets.
		var cands []itemset.Itemset
		if k == 1 {
			seen := make(map[itemset.Item]bool)
			for _, tx := range blk.Txs {
				for _, it := range tx.Items {
					seen[it] = true
				}
			}
			st.IncrementScans++
			for it := range seen {
				x := itemset.Itemset{it}
				if _, old := m.Frequent[x.Key()]; !old {
					cands = append(cands, x)
				}
			}
			itemset.SortItemsets(cands)
		} else {
			freqKeys := make(map[itemset.Key]bool, len(prevLevel))
			for _, x := range prevLevel {
				freqKeys[x.Key()] = true
			}
			for _, c := range itemset.PruneByFrequent(itemset.PrefixJoin(prevLevel), freqKeys) {
				if _, old := m.Frequent[c.Key()]; !old {
					cands = append(cands, c)
				}
			}
		}

		// FUP pruning: a brand-new itemset must be frequent within the
		// increment itself, otherwise its overall support cannot have
		// crossed the threshold.
		if len(cands) > 0 {
			tree := itemset.NewPrefixTree(cands)
			for _, tx := range blk.Txs {
				tree.CountTx(tx)
			}
			st.IncrementScans++
			counts := tree.Counts()
			survivors := cands[:0]
			survivorInc := make(map[itemset.Key]int)
			for _, c := range cands {
				if counts[c.Key()] >= incMinCount {
					survivors = append(survivors, c)
					survivorInc[c.Key()] = counts[c.Key()]
				}
			}
			cands = survivors

			// Count survivors against the old database (one full scan).
			if len(cands) > 0 && oldN > 0 {
				oldTree := itemset.NewPrefixTree(cands)
				err := mt.Store.ForEachTx(oldBlocks, func(tx itemset.Transaction) error {
					oldTree.CountTx(tx)
					return nil
				})
				if err != nil {
					return st, fmt.Errorf("fup: scanning old database at level %d: %w", k, err)
				}
				st.OldDBScans++
				st.CandidatesCounted += len(cands)
				oldCounts := oldTree.Counts()
				for _, c := range cands {
					key := c.Key()
					total := oldCounts[key] + survivorInc[key]
					if total >= minCount {
						levelFrequent[key] = total
					}
				}
			} else if oldN == 0 {
				st.CandidatesCounted += len(cands)
				for _, c := range cands {
					key := c.Key()
					if survivorInc[key] >= minCount {
						levelFrequent[key] = survivorInc[key]
					}
				}
			}
		}

		if len(levelFrequent) == 0 {
			break
		}
		prevLevel = prevLevel[:0]
		for key, c := range levelFrequent {
			newFrequent[key] = c
			prevLevel = append(prevLevel, key.Itemset())
		}
		itemset.SortItemsets(prevLevel)
	}

	m.Frequent = newFrequent
	m.N = newN
	m.Blocks = append(m.Blocks, blk.ID)
	return st, nil
}
