package fup

import (
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

func randomBlock(rng *rand.Rand, id blockseq.ID, firstTID, n, universe, avgLen int) *itemset.TxBlock {
	rows := make([][]itemset.Item, n)
	for i := range rows {
		m := 1 + rng.Intn(2*avgLen)
		rows[i] = make([]itemset.Item, m)
		for j := range rows[i] {
			rows[i][j] = itemset.Item(rng.Intn(universe))
		}
	}
	return itemset.NewTxBlock(id, firstTID, rows)
}

// TestFUPMatchesApriori: FUP's frequent sets (with counts) must equal the
// from-scratch Apriori result after every block.
func TestFUPMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		minsup := []float64{0.05, 0.1, 0.2, 0.3}[trial]
		bs := itemset.NewBlockStore(diskio.NewMemStore())
		mt := &Maintainer{Store: bs, MinSupport: minsup}
		m := mt.Empty()
		var all []itemset.Transaction
		tid := 0
		for step := 0; step < 4; step++ {
			n := 30 + rng.Intn(40)
			blk := randomBlock(rng, blockseq.ID(step+1), tid, n, 12, 4)
			tid += n
			if err := bs.Put(blk); err != nil {
				t.Fatal(err)
			}
			if _, err := mt.AddBlock(m, blk); err != nil {
				t.Fatal(err)
			}
			all = append(all, blk.Txs...)

			want, err := itemset.Apriori(itemset.SliceSource(all), nil, minsup)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Frequent) != len(want.Frequent) {
				t.Fatalf("trial %d step %d: |L| = %d, want %d",
					trial, step, len(m.Frequent), len(want.Frequent))
			}
			for k, c := range want.Frequent {
				if m.Frequent[k] != c {
					t.Fatalf("trial %d step %d: count(%v) = %d, want %d",
						trial, step, k.Itemset(), m.Frequent[k], c)
				}
			}
			if m.N != want.N {
				t.Fatalf("N = %d, want %d", m.N, want.N)
			}
		}
	}
}

func TestFUPStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bs := itemset.NewBlockStore(diskio.NewMemStore())
	mt := &Maintainer{Store: bs, MinSupport: 0.1}
	m := mt.Empty()

	blk1 := randomBlock(rng, 1, 0, 100, 10, 4)
	if err := bs.Put(blk1); err != nil {
		t.Fatal(err)
	}
	st, err := mt.AddBlock(m, blk1)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrapping never scans the (empty) old database.
	if st.OldDBScans != 0 {
		t.Fatalf("bootstrap old-DB scans = %d", st.OldDBScans)
	}
	if st.CandidatesCounted == 0 || st.IncrementScans == 0 {
		t.Fatalf("bootstrap stats = %+v", st)
	}

	// Adding an identical block: no new itemsets, so no old-DB scans.
	blk2 := itemset.NewTxBlock(2, blk1.Len(), nil)
	blk2.Txs = append(blk2.Txs, blk1.Txs...)
	if err := bs.Put(blk2); err != nil {
		t.Fatal(err)
	}
	st, err = mt.AddBlock(m, blk2)
	if err != nil {
		t.Fatal(err)
	}
	if st.OldDBScans != 0 {
		t.Fatalf("identical block old-DB scans = %d, want 0", st.OldDBScans)
	}

	// A block with brand-new heavy itemsets forces old-DB scans, one per
	// affected level.
	rows := make([][]itemset.Item, 100)
	for i := range rows {
		rows[i] = []itemset.Item{100, 101, 102}
	}
	blk3 := itemset.NewTxBlock(3, blk1.Len()*2, rows)
	if err := bs.Put(blk3); err != nil {
		t.Fatal(err)
	}
	st, err = mt.AddBlock(m, blk3)
	if err != nil {
		t.Fatal(err)
	}
	if st.OldDBScans == 0 {
		t.Fatal("new heavy itemsets did not trigger an old-DB scan")
	}
}

func TestFUPClone(t *testing.T) {
	mt := &Maintainer{Store: itemset.NewBlockStore(diskio.NewMemStore()), MinSupport: 0.1}
	m := mt.Empty()
	m.Frequent[itemset.NewItemset(1).Key()] = 5
	m.Blocks = []blockseq.ID{1}
	m.N = 10
	c := m.Clone()
	c.Frequent[itemset.NewItemset(1).Key()] = 99
	c.Blocks[0] = 7
	if m.Frequent[itemset.NewItemset(1).Key()] != 5 || m.Blocks[0] != 1 {
		t.Fatal("Clone shares state")
	}
}

// TestFUPBoundaryCounts exercises exact-threshold boundaries where the
// increment-pruning inequality is tight.
func TestFUPBoundaryCounts(t *testing.T) {
	// κ = 0.5. Old DB: 4 tx, {7} appears once (not frequent, 1 < 2). New
	// block: 4 tx, {7} appears 3 times. Overall 4/8 = exactly 0.5 →
	// frequent. FUP must not prune it: increment count 3 ≥ incMinCount 2.
	bs := itemset.NewBlockStore(diskio.NewMemStore())
	mt := &Maintainer{Store: bs, MinSupport: 0.5}
	m := mt.Empty()

	blk1 := itemset.NewTxBlock(1, 0, [][]itemset.Item{{1}, {1}, {1, 7}, {1}})
	if err := bs.Put(blk1); err != nil {
		t.Fatal(err)
	}
	if _, err := mt.AddBlock(m, blk1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Frequent[itemset.NewItemset(7).Key()]; ok {
		t.Fatal("{7} frequent too early")
	}

	blk2 := itemset.NewTxBlock(2, 4, [][]itemset.Item{{7}, {7}, {7, 1}, {2}})
	if err := bs.Put(blk2); err != nil {
		t.Fatal(err)
	}
	if _, err := mt.AddBlock(m, blk2); err != nil {
		t.Fatal(err)
	}
	if c := m.Frequent[itemset.NewItemset(7).Key()]; c != 4 {
		t.Fatalf("{7} count = %d, want 4", c)
	}
}
