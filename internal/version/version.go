// Package version reports the build identity shared by every DEMON binary:
// the module version and the VCS revision baked in by the Go toolchain. It
// backs the -version flag of the CLIs and the /versionz endpoint of the
// debug mux and demon-serve.
package version

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Module is the main module path.
	Module string `json:"module"`
	// Version is the module version ("(devel)" for a source build).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, suffixed with
	// "+dirty" when the working tree had local modifications; empty when the
	// build carried no VCS stamp.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339) when stamped.
	Time string `json:"time,omitempty"`
	// Go is the toolchain version the binary was built with.
	Go string `json:"go"`
}

// Get reads the build identity from the binary's embedded build info.
func Get() Info {
	info := Info{Module: "github.com/demon-mining/demon", Version: "(devel)", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			info.Time = s.Value
		}
	}
	if revision != "" {
		if modified == "true" {
			revision += "+dirty"
		}
		info.Revision = revision
	}
	return info
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s", i.Module, i.Version)
	if i.Revision != "" {
		s += " (" + i.Revision + ")"
	}
	return s + " " + i.Go
}

// WriteJSON writes the info as JSON, for /versionz.
func (i Info) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(i)
}

// PrintAndExitIf implements the shared -version flag behaviour: when on is
// true it prints the build identity of prog to stdout and exits 0.
func PrintAndExitIf(on bool, prog string, exit func(int), stdout io.Writer) {
	if !on {
		return
	}
	fmt.Fprintf(stdout, "%s %s\n", prog, Get())
	exit(0)
}
