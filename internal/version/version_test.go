package version

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.Module == "" || i.Version == "" || i.Go == "" {
		t.Fatalf("incomplete build info: %+v", i)
	}
	if !strings.HasPrefix(i.Go, "go") {
		t.Fatalf("Go version %q does not look like a toolchain version", i.Go)
	}
	s := i.String()
	if !strings.Contains(s, i.Version) || !strings.Contains(s, i.Go) {
		t.Fatalf("String() = %q misses version or toolchain", s)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Get().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var round Info
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if round.Module != Get().Module {
		t.Fatalf("module %q != %q", round.Module, Get().Module)
	}
}

func TestPrintAndExitIf(t *testing.T) {
	var buf bytes.Buffer
	code := -1
	PrintAndExitIf(false, "x", func(c int) { code = c }, &buf)
	if code != -1 || buf.Len() != 0 {
		t.Fatalf("off flag still printed/exited (code %d, out %q)", code, buf.String())
	}
	PrintAndExitIf(true, "demon-test", func(c int) { code = c }, &buf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.HasPrefix(buf.String(), "demon-test ") {
		t.Fatalf("output %q does not lead with the program name", buf.String())
	}
}
