package borders

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

// Encode serializes the model (lattice plus covered block identifiers).
// A model is small compared to its blocks, so — as Section 3.2.3 argues —
// keeping all but the current one on disk costs negligible space.
func (m *Model) Encode() []byte {
	buf := m.Lattice.Encode()
	ids := make([]int, len(m.Blocks))
	for i, id := range m.Blocks {
		ids[i] = int(id)
	}
	buf = diskio.AppendInts(buf, ids)
	return buf
}

// DecodeModel reverses Model.Encode.
func DecodeModel(data []byte) (*Model, error) {
	lat, rest, err := itemset.DecodeLattice(data)
	if err != nil {
		return nil, fmt.Errorf("borders: decoding model lattice: %w", err)
	}
	ids, rest, err := diskio.ReadInts(rest)
	if err != nil {
		return nil, fmt.Errorf("borders: decoding model blocks: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("borders: %d trailing bytes after model", len(rest))
	}
	m := &Model{Lattice: lat, Blocks: make([]blockseq.ID, len(ids))}
	for i, id := range ids {
		m.Blocks[i] = blockseq.ID(id)
	}
	return m, nil
}

// ModelStore persists models under named slots through a diskio.Store —
// the disk-resident collection of future-window models GEMM maintains.
type ModelStore struct {
	store  diskio.Store
	prefix string
}

// NewModelStore creates a store writing under the given key prefix.
func NewModelStore(store diskio.Store, prefix string) *ModelStore {
	return &ModelStore{store: store, prefix: prefix}
}

func (s *ModelStore) key(slot int) string {
	return fmt.Sprintf("%s/model-%04d", s.prefix, slot)
}

// Save writes the model of one slot.
func (s *ModelStore) Save(slot int, m *Model) error {
	if err := s.store.Put(s.key(slot), m.Encode()); err != nil {
		return fmt.Errorf("borders: saving model slot %d: %w", slot, err)
	}
	return nil
}

// Slots lists the slot numbers with a stored model, sorted. A restore can
// check it against the expected window size before loading, turning a
// missing or mismatched collection into a descriptive error instead of a
// bare not-found.
func (s *ModelStore) Slots() ([]int, error) {
	keys, err := s.store.Keys(s.prefix + "/model-")
	if err != nil {
		return nil, fmt.Errorf("borders: listing model slots: %w", err)
	}
	slots := make([]int, 0, len(keys))
	for _, k := range keys {
		slot, err := strconv.Atoi(strings.TrimPrefix(k, s.prefix+"/model-"))
		if err != nil || s.key(slot) != k {
			continue // unrelated key under the prefix
		}
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots, nil
}

// Load reads the model of one slot.
func (s *ModelStore) Load(slot int) (*Model, error) {
	data, err := s.store.Get(s.key(slot))
	if err != nil {
		return nil, fmt.Errorf("borders: loading model slot %d: %w", slot, err)
	}
	return DecodeModel(data)
}
