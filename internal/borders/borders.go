// Package borders implements the BORDERS incremental frequent-itemset
// maintenance algorithm (Feldman et al. 1997 / Thomas et al. 1997) as
// described in Section 3.1.1 of the DEMON paper, with the counting procedure
// of the update phase pluggable: PT-Scan (the baseline, a full scan of the
// selected data with a prefix tree), ECUT (item TID-lists) and ECUT+
// (materialized 2-itemset TID-lists). The package also provides the
// deletion-capable variant AuM used in the Section 3.2.4 trade-off
// discussion, and support-threshold changes (κ → κ′).
package borders

import (
	"fmt"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/tidlist"
)

// Model is a maintained frequent-itemset model: the lattice L(D, κ) ∪
// NB⁻(D, κ) with counts, plus the identifiers of the blocks it was extracted
// from. Carrying the block list inside the model is what lets GEMM maintain
// w models over different BSS selections with one Maintainer.
type Model struct {
	Lattice *itemset.Lattice
	Blocks  []blockseq.ID
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	blocks := make([]blockseq.ID, len(m.Blocks))
	copy(blocks, m.Blocks)
	return &Model{Lattice: m.Lattice.Clone(), Blocks: blocks}
}

// Counter counts the support of a candidate set over a set of blocks. It is
// the update-phase counting procedure; implementations differ only in what
// data they fetch.
type Counter interface {
	// Name identifies the strategy in reports ("PT-Scan", "ECUT", "ECUT+").
	Name() string
	// Count returns the absolute support count of every itemset in sets
	// over the union of the given blocks.
	Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error)
}

// PTScan is the BORDERS baseline counter: organize the candidates in a
// prefix tree and scan every transaction of the selected blocks.
type PTScan struct {
	Blocks *itemset.BlockStore
	// Workers shards each block's transactions across worker goroutines,
	// counting with per-worker prefix trees merged additively; non-positive
	// selects GOMAXPROCS, 1 keeps the scan serial. The merged counts are
	// identical to the serial scan for every worker count.
	Workers int
}

// Name implements Counter.
func (PTScan) Name() string { return "PT-Scan" }

// Count implements Counter.
func (c PTScan) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	counts, err := scanBlocks(c.Blocks, blocks, c.Workers, func() itemset.TxCounter {
		return itemset.NewPrefixTree(sets)
	})
	if err != nil {
		return nil, fmt.Errorf("borders: PT-Scan: %w", err)
	}
	return counts, nil
}

// HashTreeScan is the footnote-7 alternative to PT-Scan: same full scan,
// hash tree instead of prefix tree.
type HashTreeScan struct {
	Blocks  *itemset.BlockStore
	Fanout  int // defaults to 8
	LeafCap int // defaults to 16
	// Workers shards each block's transactions across worker goroutines with
	// per-worker hash trees (the trees carry per-instance visit state, so
	// they cannot be shared); non-positive selects GOMAXPROCS, 1 keeps the
	// scan serial.
	Workers int
}

// Name implements Counter.
func (HashTreeScan) Name() string { return "HT-Scan" }

// Count implements Counter.
func (c HashTreeScan) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	fanout, leafCap := c.Fanout, c.LeafCap
	if fanout <= 0 {
		fanout = 8
	}
	if leafCap <= 0 {
		leafCap = 16
	}
	counts, err := scanBlocks(c.Blocks, blocks, c.Workers, func() itemset.TxCounter {
		return itemset.NewHashTree(sets, fanout, leafCap)
	})
	if err != nil {
		return nil, fmt.Errorf("borders: HT-Scan: %w", err)
	}
	return counts, nil
}

// scanBlocks runs the full-scan counting loop shared by PT-Scan and HT-Scan:
// each selected block is fetched and its transactions are sharded across
// workers, each shard counting into its own structure from build; per-shard
// counts merge additively (Section 3.1.1), so the totals are identical to a
// single serial scan for every worker count.
func scanBlocks(bs *itemset.BlockStore, blocks []blockseq.ID, workers int, build func() itemset.TxCounter) (map[itemset.Key]int, error) {
	var total map[itemset.Key]int
	for _, id := range blocks {
		blk, err := bs.Get(id)
		if err != nil {
			return nil, err
		}
		counts := itemset.ParallelCount(blk.Txs, workers, build)
		if total == nil {
			total = counts
		} else {
			itemset.MergeCounts(total, counts)
		}
	}
	if total == nil {
		total = build().Counts()
	}
	return total, nil
}

// ECUT counts through per-block item TID-lists.
type ECUT struct {
	TIDs *tidlist.Store
}

// Name implements Counter.
func (ECUT) Name() string { return "ECUT" }

// Count implements Counter.
func (c ECUT) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	return c.TIDs.CountECUT(sets, blocks)
}

// ECUTPlus counts through materialized 2-itemset TID-lists, falling back to
// item lists where no pair is materialized.
type ECUTPlus struct {
	TIDs *tidlist.Store
}

// Name implements Counter.
func (ECUTPlus) Name() string { return "ECUT+" }

// Count implements Counter.
func (c ECUTPlus) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	return c.TIDs.CountECUTPlus(sets, blocks)
}

// Stats reports what one maintenance step did, split into the two BORDERS
// phases. Figures 4–7 of the paper plot exactly this breakdown.
type Stats struct {
	// Detection is the time spent scanning the new block and updating the
	// supports of all tracked itemsets.
	Detection time.Duration
	// Update is the time spent counting and classifying new candidates (zero
	// when the detection phase flags no change).
	Update time.Duration
	// Promoted counts border itemsets that became frequent.
	Promoted int
	// Demoted counts frequent itemsets that fell below the threshold.
	Demoted int
	// CandidatesCounted is the number of new candidate itemsets whose
	// support the update phase counted (the |S| of Figure 2).
	CandidatesCounted int
	// UpdateInvoked reports whether the update phase ran at all.
	UpdateInvoked bool
}

// Add merges two stats, accumulating phase times and counters.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Detection:         s.Detection + o.Detection,
		Update:            s.Update + o.Update,
		Promoted:          s.Promoted + o.Promoted,
		Demoted:           s.Demoted + o.Demoted,
		CandidatesCounted: s.CandidatesCounted + o.CandidatesCounted,
		UpdateInvoked:     s.UpdateInvoked || o.UpdateInvoked,
	}
}
