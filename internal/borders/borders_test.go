package borders

import (
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/tidlist"
)

// env bundles the stores and a maintainer for one counting strategy.
type env struct {
	blocks *itemset.BlockStore
	tids   *tidlist.Store
	mt     *Maintainer
}

func newEnv(t *testing.T, counterName string, minsup float64) *env {
	t.Helper()
	mem := diskio.NewMemStore()
	e := &env{
		blocks: itemset.NewBlockStore(mem),
		tids:   tidlist.NewStore(mem),
	}
	var c Counter
	switch counterName {
	case "PT-Scan":
		c = PTScan{Blocks: e.blocks}
	case "HT-Scan":
		c = HashTreeScan{Blocks: e.blocks}
	case "ECUT":
		c = ECUT{TIDs: e.tids}
	case "ECUT+":
		c = ECUTPlus{TIDs: e.tids}
	default:
		t.Fatalf("unknown counter %q", counterName)
	}
	e.mt = &Maintainer{Store: e.blocks, Counter: c, MinSupport: minsup}
	return e
}

// ingest stores a block everywhere and, for ECUT+, materializes the model's
// current frequent 2-itemsets (the paper's heuristic).
func (e *env) ingest(t *testing.T, m *Model, blk *itemset.TxBlock) {
	t.Helper()
	if err := e.blocks.Put(blk); err != nil {
		t.Fatal(err)
	}
	if err := e.tids.Materialize(blk); err != nil {
		t.Fatal(err)
	}
	var pairs []itemset.Itemset
	for _, x := range m.Lattice.FrequentSets() {
		if len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	if len(pairs) > 0 {
		if _, _, err := e.tids.MaterializePairs(blk, pairs, -1); err != nil {
			t.Fatal(err)
		}
	}
}

func randomBlock(rng *rand.Rand, id blockseq.ID, firstTID, n, universe, avgLen int) *itemset.TxBlock {
	rows := make([][]itemset.Item, n)
	for i := range rows {
		m := 1 + rng.Intn(2*avgLen)
		rows[i] = make([]itemset.Item, m)
		for j := range rows[i] {
			rows[i][j] = itemset.Item(rng.Intn(universe))
		}
	}
	return itemset.NewTxBlock(id, firstTID, rows)
}

// allTxs flattens blocks for the Apriori reference run.
func allTxs(blocks []*itemset.TxBlock) []itemset.Transaction {
	var out []itemset.Transaction
	for _, b := range blocks {
		out = append(out, b.Txs...)
	}
	return out
}

func latticesMatch(t *testing.T, ctx string, got, want *itemset.Lattice) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", ctx, got.N, want.N)
	}
	if len(got.Frequent) != len(want.Frequent) {
		t.Fatalf("%s: |L| = %d, want %d\n got %v\nwant %v", ctx,
			len(got.Frequent), len(want.Frequent), got.FrequentSets(), want.FrequentSets())
	}
	for k, c := range want.Frequent {
		if got.Frequent[k] != c {
			t.Fatalf("%s: count(%v) = %d, want %d", ctx, k.Itemset(), got.Frequent[k], c)
		}
	}
	if len(got.Border) != len(want.Border) {
		t.Fatalf("%s: |NB| = %d, want %d\n got %v\nwant %v", ctx,
			len(got.Border), len(want.Border), got.BorderSets(), want.BorderSets())
	}
	for k, c := range want.Border {
		gc, ok := got.Border[k]
		if !ok || gc != c {
			t.Fatalf("%s: border count(%v) = %d (present %v), want %d", ctx, k.Itemset(), gc, ok, c)
		}
	}
}

var counterNames = []string{"PT-Scan", "HT-Scan", "ECUT", "ECUT+"}

// TestIncrementalMatchesApriori is the central correctness test: maintaining
// the model block by block — with every counting strategy — must yield
// exactly the lattice Apriori computes from scratch over the union of the
// blocks, after every step.
func TestIncrementalMatchesApriori(t *testing.T) {
	for _, name := range counterNames {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 4; trial++ {
				minsup := []float64{0.05, 0.1, 0.2, 0.3}[trial]
				e := newEnv(t, name, minsup)
				m := e.mt.Empty()
				var seen []*itemset.TxBlock
				tid := 0
				for step := 0; step < 4; step++ {
					n := 30 + rng.Intn(40)
					blk := randomBlock(rng, blockseq.ID(step+1), tid, n, 12, 4)
					tid += n
					e.ingest(t, m, blk)
					if _, err := e.mt.AddBlock(m, blk); err != nil {
						t.Fatal(err)
					}
					seen = append(seen, blk)

					want, err := itemset.Apriori(itemset.SliceSource(allTxs(seen)), nil, minsup)
					if err != nil {
						t.Fatal(err)
					}
					latticesMatch(t, name, m.Lattice, want)
					if err := m.Lattice.Validate(); err != nil {
						t.Fatalf("%s step %d: %v", name, step, err)
					}
				}
			}
		})
	}
}

// TestDeleteBlockMatchesApriori exercises the AuM path: after deleting a
// block the model must equal Apriori over the remaining blocks.
func TestDeleteBlockMatchesApriori(t *testing.T) {
	for _, name := range []string{"PT-Scan", "ECUT"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			e := newEnv(t, name, 0.1)
			m := e.mt.Empty()
			var blocks []*itemset.TxBlock
			tid := 0
			for step := 0; step < 3; step++ {
				blk := randomBlock(rng, blockseq.ID(step+1), tid, 50, 10, 4)
				tid += 50
				e.ingest(t, m, blk)
				if _, err := e.mt.AddBlock(m, blk); err != nil {
					t.Fatal(err)
				}
				blocks = append(blocks, blk)
			}
			// Delete the oldest block, as a sliding window would.
			if _, err := e.mt.DeleteBlock(m, 1); err != nil {
				t.Fatal(err)
			}
			want, err := itemset.Apriori(itemset.SliceSource(allTxs(blocks[1:])), nil, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			// The maintained model may track extra border itemsets for items
			// that only occurred in the deleted block (count now 0); they
			// are still valid border members only if observed. Apriori over
			// the remaining data has no knowledge of them, so compare
			// frequent sets exactly and border as superset.
			if m.Lattice.N != want.N {
				t.Fatalf("N = %d, want %d", m.Lattice.N, want.N)
			}
			if len(m.Lattice.Frequent) != len(want.Frequent) {
				t.Fatalf("|L| = %d, want %d", len(m.Lattice.Frequent), len(want.Frequent))
			}
			for k, c := range want.Frequent {
				if m.Lattice.Frequent[k] != c {
					t.Fatalf("count(%v) = %d, want %d", k.Itemset(), m.Lattice.Frequent[k], c)
				}
			}
			for k, c := range want.Border {
				gc, ok := m.Lattice.Border[k]
				if !ok || gc != c {
					t.Fatalf("border %v = %d (present %v), want %d", k.Itemset(), gc, ok, c)
				}
			}
			if err := m.Lattice.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.Blocks[0] != 2 || len(m.Blocks) != 2 {
				t.Fatalf("Blocks = %v, want [2 3]", m.Blocks)
			}
		})
	}
}

func TestDeleteUnknownBlock(t *testing.T) {
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	if _, err := e.mt.DeleteBlock(m, 7); err == nil {
		t.Fatal("DeleteBlock of unknown block succeeded")
	}
}

func TestChangeMinSupportRaise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := newEnv(t, "PT-Scan", 0.05)
	m := e.mt.Empty()
	blk := randomBlock(rng, 1, 0, 100, 10, 4)
	e.ingest(t, m, blk)
	if _, err := e.mt.AddBlock(m, blk); err != nil {
		t.Fatal(err)
	}
	scans := e.blocks.Store().Stats().Reads

	if _, err := e.mt.ChangeMinSupport(m, 0.2); err != nil {
		t.Fatal(err)
	}
	// Raising the threshold must not read any data.
	if got := e.blocks.Store().Stats().Reads; got != scans {
		t.Fatalf("raising κ read data: %d -> %d reads", scans, got)
	}
	want, err := itemset.Apriori(itemset.SliceSource(blk.Txs), nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent sets must match exactly; the maintained border may hold
	// additional deeper itemsets (tracked at the lower threshold) that the
	// fresh Apriori run never generated, but every true border member must
	// be present with the right count.
	if len(m.Lattice.Frequent) != len(want.Frequent) {
		t.Fatalf("|L| = %d, want %d", len(m.Lattice.Frequent), len(want.Frequent))
	}
	for k, c := range want.Frequent {
		if m.Lattice.Frequent[k] != c {
			t.Fatalf("count(%v) = %d, want %d", k.Itemset(), m.Lattice.Frequent[k], c)
		}
	}
	for k := range want.Border {
		if _, ok := m.Lattice.Border[k]; !ok {
			t.Fatalf("border itemset %v missing after raise", k.Itemset())
		}
	}
	if err := m.Lattice.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChangeMinSupportLower(t *testing.T) {
	for _, name := range []string{"PT-Scan", "ECUT"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			e := newEnv(t, name, 0.3)
			m := e.mt.Empty()
			blk := randomBlock(rng, 1, 0, 100, 10, 4)
			e.ingest(t, m, blk)
			if _, err := e.mt.AddBlock(m, blk); err != nil {
				t.Fatal(err)
			}
			if _, err := e.mt.ChangeMinSupport(m, 0.08); err != nil {
				t.Fatal(err)
			}
			want, err := itemset.Apriori(itemset.SliceSource(blk.Txs), nil, 0.08)
			if err != nil {
				t.Fatal(err)
			}
			latticesMatch(t, name, m.Lattice, want)
		})
	}
}

func TestChangeMinSupportRejectsBadValues(t *testing.T) {
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	for _, k := range []float64{0, 1, -1, 3} {
		if _, err := e.mt.ChangeMinSupport(m, k); err == nil {
			t.Errorf("ChangeMinSupport accepted %v", k)
		}
	}
}

func TestStatsPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	blk1 := randomBlock(rng, 1, 0, 80, 10, 4)
	e.ingest(t, m, blk1)
	st, err := e.mt.AddBlock(m, blk1)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrapping an empty model must have invoked the update phase.
	if !st.UpdateInvoked || st.CandidatesCounted == 0 {
		t.Fatalf("bootstrap stats = %+v", st)
	}
	// Adding an identical block changes nothing: no update phase.
	blk2 := itemset.NewTxBlock(2, blk1.Len(), nil)
	blk2.Txs = append(blk2.Txs, blk1.Txs...)
	for i := range blk2.Txs {
		blk2.Txs[i].TID = blk1.Len() + i
	}
	e.ingest(t, m, blk2)
	st, err = e.mt.AddBlock(m, blk2)
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdateInvoked {
		t.Fatalf("identical block invoked the update phase: %+v", st)
	}
	if st.Promoted != 0 || st.Demoted != 0 {
		t.Fatalf("identical block changed the model: %+v", st)
	}
}

func TestModelClone(t *testing.T) {
	e := newEnv(t, "PT-Scan", 0.2)
	m := e.mt.Empty()
	blk := randomBlock(rand.New(rand.NewSource(9)), 1, 0, 40, 8, 3)
	e.ingest(t, m, blk)
	if _, err := e.mt.AddBlock(m, blk); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Blocks = append(c.Blocks, 99)
	for k := range c.Lattice.Frequent {
		c.Lattice.Frequent[k] = -1
		break
	}
	if len(m.Blocks) != 1 {
		t.Fatal("Clone shares Blocks")
	}
	for _, v := range m.Lattice.Frequent {
		if v < 0 {
			t.Fatal("Clone shares lattice maps")
		}
	}
}

func TestCounterNames(t *testing.T) {
	wants := map[string]Counter{
		"PT-Scan": PTScan{},
		"HT-Scan": HashTreeScan{},
		"ECUT":    ECUT{},
		"ECUT+":   ECUTPlus{},
	}
	for want, c := range wants {
		if got := c.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestAddBlockRejectsDuplicate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	blk := randomBlock(rng, 1, 0, 40, 8, 3)
	e.ingest(t, m, blk)
	if _, err := e.mt.AddBlock(m, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := e.mt.AddBlock(m, blk); err == nil {
		t.Fatal("AddBlock accepted a duplicate block")
	}
}
