package borders

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// TestParallelCounterMatchesSerial: sharded counting must equal serial
// counting exactly (additivity), for every strategy and worker count.
func TestParallelCounterMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	var ids []blockseq.ID
	tid := 0
	for i := 1; i <= 6; i++ {
		blk := randomBlock(rng, blockseq.ID(i), tid, 60, 12, 4)
		tid += 60
		e.ingest(t, m, blk)
		if _, err := e.mt.AddBlock(m, blk); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, blk.ID)
	}
	var sets []itemset.Itemset
	for k := range m.Lattice.Border {
		sets = append(sets, k.Itemset())
		if len(sets) == 25 {
			break
		}
	}
	itemset.SortItemsets(sets)

	counters := []Counter{
		PTScan{Blocks: e.blocks},
		HashTreeScan{Blocks: e.blocks},
		ECUT{TIDs: e.tids},
		ECUTPlus{TIDs: e.tids},
	}
	for _, inner := range counters {
		want, err := inner.Count(sets, ids)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 8, 100} {
			pc := ParallelCounter{Inner: inner, Workers: workers}
			got, err := pc.Count(sets, ids)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", inner.Name(), workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: parallel counts diverge", inner.Name(), workers)
			}
		}
	}
}

// TestParallelCounterInMaintenance: a maintainer driven by the parallel
// counter must produce the identical model.
func TestParallelCounterInMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	serial := newEnv(t, "ECUT", 0.1)
	parallel := newEnv(t, "ECUT", 0.1)
	parallel.mt.Counter = ParallelCounter{Inner: parallel.mt.Counter, Workers: 4}

	ms := serial.mt.Empty()
	mp := parallel.mt.Empty()
	tid := 0
	for i := 1; i <= 4; i++ {
		blk := randomBlock(rng, blockseq.ID(i), tid, 70, 10, 4)
		tid += 70
		serial.ingest(t, ms, blk)
		parallel.ingest(t, mp, blk)
		if _, err := serial.mt.AddBlock(ms, blk); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.mt.AddBlock(mp, blk); err != nil {
			t.Fatal(err)
		}
		latticesMatch(t, "parallel", mp.Lattice, ms.Lattice)
	}
}

type errCounter struct{}

func (errCounter) Name() string { return "err" }
func (errCounter) Count([]itemset.Itemset, []blockseq.ID) (map[itemset.Key]int, error) {
	return nil, errors.New("boom")
}

func TestParallelCounterPropagatesErrors(t *testing.T) {
	pc := ParallelCounter{Inner: errCounter{}, Workers: 3}
	if _, err := pc.Count([]itemset.Itemset{itemset.NewItemset(1)}, []blockseq.ID{1, 2, 3, 4}); err == nil {
		t.Fatal("shard error not propagated")
	}
	if got := pc.Name(); got != "err-parallel" {
		t.Fatalf("Name = %q", got)
	}
}
