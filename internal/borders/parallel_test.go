package borders

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// TestParallelCounterMatchesSerial: sharded counting must equal serial
// counting exactly (additivity), for every strategy and worker count.
func TestParallelCounterMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	var ids []blockseq.ID
	tid := 0
	for i := 1; i <= 6; i++ {
		blk := randomBlock(rng, blockseq.ID(i), tid, 60, 12, 4)
		tid += 60
		e.ingest(t, m, blk)
		if _, err := e.mt.AddBlock(m, blk); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, blk.ID)
	}
	var sets []itemset.Itemset
	for k := range m.Lattice.Border {
		sets = append(sets, k.Itemset())
		if len(sets) == 25 {
			break
		}
	}
	itemset.SortItemsets(sets)

	counters := []Counter{
		PTScan{Blocks: e.blocks},
		PTScan{Blocks: e.blocks, Workers: 3},
		HashTreeScan{Blocks: e.blocks},
		HashTreeScan{Blocks: e.blocks, Workers: 3},
		ECUT{TIDs: e.tids},
		ECUTPlus{TIDs: e.tids},
	}
	var ref map[itemset.Key]int
	for _, inner := range counters {
		want, err := inner.Count(sets, ids)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = want
		} else if !reflect.DeepEqual(want, ref) {
			t.Fatalf("%s: counts diverge from the serial PT-Scan reference", inner.Name())
		}
		for _, workers := range []int{0, 1, 2, 3, 8, 100} {
			pc := ParallelCounter{Inner: inner, Workers: workers}
			got, err := pc.Count(sets, ids)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", inner.Name(), workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: parallel counts diverge", inner.Name(), workers)
			}
		}
	}
}

// TestParallelCounterInMaintenance: a maintainer driven by the parallel
// counter must produce the identical model.
func TestParallelCounterInMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	serial := newEnv(t, "ECUT", 0.1)
	parallel := newEnv(t, "ECUT", 0.1)
	parallel.mt.Counter = ParallelCounter{Inner: parallel.mt.Counter, Workers: 4}

	ms := serial.mt.Empty()
	mp := parallel.mt.Empty()
	tid := 0
	for i := 1; i <= 4; i++ {
		blk := randomBlock(rng, blockseq.ID(i), tid, 70, 10, 4)
		tid += 70
		serial.ingest(t, ms, blk)
		parallel.ingest(t, mp, blk)
		if _, err := serial.mt.AddBlock(ms, blk); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.mt.AddBlock(mp, blk); err != nil {
			t.Fatal(err)
		}
		latticesMatch(t, "parallel", mp.Lattice, ms.Lattice)
	}
}

// TestMaintainerWorkersDeterministic: the sharded detection-phase scan must
// yield the identical model for every worker count.
func TestMaintainerWorkersDeterministic(t *testing.T) {
	for _, workers := range []int{0, 2, 3, 8} {
		rng := rand.New(rand.NewSource(82))
		serial := newEnv(t, "PT-Scan", 0.1)
		parallel := newEnv(t, "PT-Scan", 0.1)
		serial.mt.Workers = 1
		parallel.mt.Workers = workers

		ms := serial.mt.Empty()
		mp := parallel.mt.Empty()
		tid := 0
		for i := 1; i <= 4; i++ {
			blk := randomBlock(rng, blockseq.ID(i), tid, 70, 10, 4)
			tid += 70
			serial.ingest(t, ms, blk)
			parallel.ingest(t, mp, blk)
			if _, err := serial.mt.AddBlock(ms, blk); err != nil {
				t.Fatal(err)
			}
			if _, err := parallel.mt.AddBlock(mp, blk); err != nil {
				t.Fatal(err)
			}
			latticesMatch(t, "maintainer-workers", mp.Lattice, ms.Lattice)
		}
		if _, err := serial.mt.DeleteBlock(ms, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.mt.DeleteBlock(mp, 1); err != nil {
			t.Fatal(err)
		}
		latticesMatch(t, "maintainer-workers-delete", mp.Lattice, ms.Lattice)
	}
}

type errCounter struct{}

func (errCounter) Name() string { return "err" }
func (errCounter) Count([]itemset.Itemset, []blockseq.ID) (map[itemset.Key]int, error) {
	return nil, errors.New("boom")
}

func TestParallelCounterPropagatesErrors(t *testing.T) {
	pc := ParallelCounter{Inner: errCounter{}, Workers: 3}
	if _, err := pc.Count([]itemset.Itemset{itemset.NewItemset(1)}, []blockseq.ID{1, 2, 3, 4}); err == nil {
		t.Fatal("shard error not propagated")
	}
	// The wrapper reports the inner name unchanged so obs counters keep one
	// stable name regardless of the worker count.
	if got := pc.Name(); got != "err" {
		t.Fatalf("Name = %q", got)
	}
}

// shardErrCounter fails on every shard with an error naming the shard's
// first block, and stalls the lowest shard so later shards finish first —
// the returned error must still be the lowest shard's.
type shardErrCounter struct{ firstBlock blockseq.ID }

func (shardErrCounter) Name() string { return "shard-err" }
func (c shardErrCounter) Count(_ []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	if len(blocks) > 0 && blocks[0] == c.firstBlock {
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("first block %d", blocks[0])
}

// TestParallelCounterDeterministicError: when several shards fail, the error
// of the lowest-index shard is reported, deterministically, even when that
// shard is the slowest to finish.
func TestParallelCounterDeterministicError(t *testing.T) {
	blocks := []blockseq.ID{10, 20, 30, 40, 50, 60}
	pc := ParallelCounter{Inner: shardErrCounter{firstBlock: 10}, Workers: 3}
	for trial := 0; trial < 20; trial++ {
		_, err := pc.Count([]itemset.Itemset{itemset.NewItemset(1)}, blocks)
		if err == nil {
			t.Fatal("shard errors not propagated")
		}
		want := "borders: parallel shard 0: first block 10"
		if err.Error() != want {
			t.Fatalf("trial %d: error %q, want %q", trial, err.Error(), want)
		}
	}
}

// spyCounter records how many Count calls it receives; used to check the
// no-blocks fast path delegates exactly once, serially.
type spyCounter struct {
	calls int
}

func (*spyCounter) Name() string { return "spy" }
func (c *spyCounter) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	c.calls++ // unsynchronized on purpose: -race flags any concurrent call
	counts := make(map[itemset.Key]int, len(sets))
	for _, x := range sets {
		counts[x.Key()] = 0
	}
	return counts, nil
}

// TestParallelCounterEmptyBlocksNoSpawn: with zero blocks the counter
// delegates serially (a single inner call, no goroutines — the unsynchronized
// spy would trip -race otherwise) and still returns zeroed counts.
func TestParallelCounterEmptyBlocksNoSpawn(t *testing.T) {
	spy := &spyCounter{}
	pc := ParallelCounter{Inner: spy, Workers: 8}
	sets := []itemset.Itemset{itemset.NewItemset(1), itemset.NewItemset(2)}
	counts, err := pc.Count(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spy.calls != 1 {
		t.Fatalf("inner Count called %d times, want 1", spy.calls)
	}
	for _, x := range sets {
		if c, ok := counts[x.Key()]; !ok || c != 0 {
			t.Fatalf("count[%v] = %d, %v", x, c, ok)
		}
	}
}
