package borders

import (
	"fmt"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
)

// Maintainer drives BORDERS maintenance of a Model. Blocks must be ingested
// into the stores the Counter reads from (the transaction BlockStore for
// PT-Scan, the TID-list store for ECUT/ECUT+) before AddBlock is called; the
// demon facade package does this ordering for callers.
type Maintainer struct {
	// Store provides the transaction data of blocks; the detection phase
	// scans the new block through it, and DeleteBlock re-reads the departing
	// block.
	Store *itemset.BlockStore
	// Counter is the update-phase counting strategy.
	Counter Counter
	// MinSupport is the fractional threshold κ for models created by Empty.
	MinSupport float64
	// IO optionally exposes the I/O counters of the store the Counter reads
	// from. When set (and the obs registry is enabled), the update phase
	// records the bytes each counting invocation fetched under
	// "borders.count.<strategy>.bytes" — the quantity the Section 3.1.1
	// ECUT-vs-PT-Scan argument turns on.
	IO interface{ Stats() diskio.Stats }
	// Workers shards the detection-phase scan of the new (or departing)
	// block across worker goroutines, each counting into its own prefix tree
	// with the per-shard counts merged additively; non-positive selects
	// GOMAXPROCS, 1 keeps the scan serial. The resulting model is identical
	// for every worker count.
	Workers int
}

// scanTracked counts the tracked itemsets over txs, sharding the
// transactions across the maintainer's workers. When isNew is non-nil it
// also tallies, per shard, the occurrences of items isNew reports as
// untracked; isNew must be safe for concurrent read-only calls. Both result
// maps merge additively in shard order, so they equal the serial scan.
func (mt *Maintainer) scanTracked(tracked []itemset.Itemset, txs []itemset.Transaction, isNew func(itemset.Item) bool) (map[itemset.Key]int, map[itemset.Item]int) {
	type shardResult struct {
		counts   map[itemset.Key]int
		newItems map[itemset.Item]int
	}
	scan := func(txs []itemset.Transaction) shardResult {
		tree := itemset.NewPrefixTree(tracked)
		var newItems map[itemset.Item]int
		if isNew != nil {
			newItems = make(map[itemset.Item]int)
		}
		for _, tx := range txs {
			tree.CountTx(tx)
			if isNew != nil {
				for _, it := range tx.Items {
					if isNew(it) {
						newItems[it]++
					}
				}
			}
		}
		return shardResult{counts: tree.Counts(), newItems: newItems}
	}
	shards := par.Shards(len(txs), mt.Workers)
	if shards <= 1 {
		r := scan(txs)
		return r.counts, r.newItems
	}
	results := make([]shardResult, shards)
	par.Do(len(txs), mt.Workers, func(s, lo, hi int) {
		results[s] = scan(txs[lo:hi])
	})
	total := results[0]
	for _, r := range results[1:] {
		itemset.MergeCounts(total.counts, r.counts)
		for it, c := range r.newItems {
			total.newItems[it] += c
		}
	}
	return total.counts, total.newItems
}

// Empty returns a model over zero blocks.
func (mt *Maintainer) Empty() *Model {
	return &Model{Lattice: itemset.NewLattice(mt.MinSupport)}
}

// AddBlock updates the model to reflect the arrival of blk, which must
// already be ingested. It implements both BORDERS phases: the detection
// phase scans only the new block, updating the supports of every tracked
// itemset (and discovering never-seen items); the update phase, invoked only
// when the detection phase flags border promotions, counts new candidate
// itemsets over all of the model's blocks with the configured Counter.
//
// Adding a block to an empty model degenerates to computing the initial
// lattice through the Counter, one level at a time.
func (mt *Maintainer) AddBlock(m *Model, blk *itemset.TxBlock) (Stats, error) {
	var st Stats
	for _, id := range m.Blocks {
		if id == blk.ID {
			return st, fmt.Errorf("borders: block %d already part of the model", blk.ID)
		}
	}
	l := m.Lattice

	start := time.Now()
	// Detection phase: one scan of the new block. Tracked itemsets are
	// counted with a prefix tree; untracked single items are counted on the
	// side (every item ever seen is tracked, so an untracked item is new).
	tracked := make([]itemset.Itemset, 0, len(l.Frequent)+len(l.Border))
	for k := range l.Frequent {
		tracked = append(tracked, k.Itemset())
	}
	for k := range l.Border {
		tracked = append(tracked, k.Itemset())
	}
	isNew := func(it itemset.Item) bool {
		k := itemset.Itemset{it}.Key()
		if _, f := l.Frequent[k]; f {
			return false
		}
		_, b := l.Border[k]
		return !b
	}
	counts, newItems := mt.scanTracked(tracked, blk.Txs, isNew)
	for k, c := range counts {
		if _, ok := l.Frequent[k]; ok {
			l.Frequent[k] += c
		} else {
			l.Border[k] += c
		}
	}
	for it, c := range newItems {
		l.Border[itemset.Itemset{it}.Key()] = c
	}
	l.N += len(blk.Txs)
	l.Passes++
	m.Blocks = append(m.Blocks, blk.ID)
	st.Detection = time.Since(start)
	obs.Default().Timer("borders.detect.ns").Record(st.Detection)

	ust, err := mt.reclassifyAndExpand(m)
	if err != nil {
		return st, fmt.Errorf("borders: adding block %d: %w", blk.ID, err)
	}
	return st.Add(ust), nil
}

// DeleteBlock updates the model to reflect the removal of one of its blocks
// (the AuM variant of Section 3.2.4): the supports of all tracked itemsets
// contained in the departing transactions are decremented, then the model is
// reclassified — border itemsets may rise above the shrunken threshold,
// triggering the same update phase as an addition.
func (mt *Maintainer) DeleteBlock(m *Model, id blockseq.ID) (Stats, error) {
	var st Stats
	pos := -1
	for i, b := range m.Blocks {
		if b == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return st, fmt.Errorf("borders: block %d is not part of the model", id)
	}
	blk, err := mt.Store.Get(id)
	if err != nil {
		return st, fmt.Errorf("borders: deleting block %d: %w", id, err)
	}

	start := time.Now()
	l := m.Lattice
	tracked := make([]itemset.Itemset, 0, len(l.Frequent)+len(l.Border))
	for k := range l.Frequent {
		tracked = append(tracked, k.Itemset())
	}
	for k := range l.Border {
		tracked = append(tracked, k.Itemset())
	}
	counts, _ := mt.scanTracked(tracked, blk.Txs, nil)
	for k, c := range counts {
		if _, ok := l.Frequent[k]; ok {
			l.Frequent[k] -= c
		} else {
			l.Border[k] -= c
		}
	}
	l.N -= len(blk.Txs)
	l.Passes++
	m.Blocks = append(m.Blocks[:pos], m.Blocks[pos+1:]...)
	st.Detection = time.Since(start)
	obs.Default().Timer("borders.detect.ns").Record(st.Detection)

	ust, err := mt.reclassifyAndExpand(m)
	if err != nil {
		return st, fmt.Errorf("borders: deleting block %d: %w", id, err)
	}
	return st.Add(ust), nil
}

// ChangeMinSupport retargets the model to threshold κ′ (Section 3.1.1).
// Raising the threshold needs no data access: the tracked counts are exact,
// so the new lattice is carved out of the old one. Lowering it reclassifies
// the tracked itemsets and runs the BORDERS update phase to expand the
// frontier.
func (mt *Maintainer) ChangeMinSupport(m *Model, minsup float64) (Stats, error) {
	if minsup <= 0 || minsup >= 1 {
		return Stats{}, fmt.Errorf("borders: minimum support %v outside (0, 1)", minsup)
	}
	m.Lattice.MinSupport = minsup
	st, err := mt.reclassifyAndExpand(m)
	if err != nil {
		return st, fmt.Errorf("borders: changing threshold to %v: %w", minsup, err)
	}
	return st, nil
}

// reclassifyAndExpand restores the lattice invariants after counts, N, or
// the threshold changed, then — if any border itemset was promoted (or any
// untracked candidates became generable) — runs the update phase: repeated
// candidate generation by prefix join, pruning, counting through the
// Counter, and classification, until no new frequent itemsets appear.
func (mt *Maintainer) reclassifyAndExpand(m *Model) (Stats, error) {
	var st Stats
	l := m.Lattice
	minCount := itemset.MinCount(l.N, l.MinSupport)

	// Demote frequent itemsets that fell below the threshold.
	var demoted []itemset.Key
	for k, c := range l.Frequent {
		if c < minCount {
			demoted = append(demoted, k)
		}
	}
	demotedCounts := make(map[itemset.Key]int, len(demoted))
	for _, k := range demoted {
		demotedCounts[k] = l.Frequent[k]
		delete(l.Frequent, k)
	}
	st.Demoted = len(demoted)

	// A demoted itemset joins the border iff all its proper subsets are
	// still frequent (footnote 6).
	for k, c := range demotedCounts {
		x := k.Itemset()
		if allSubsetsFrequent(l, x) {
			l.Border[k] = c
		}
	}
	// Border itemsets with a no-longer-frequent subset leave the border.
	for k := range l.Border {
		if !allSubsetsFrequent(l, k.Itemset()) {
			delete(l.Border, k)
		}
	}

	// Promote border itemsets that reached the threshold.
	promoted := false
	for k, c := range l.Border {
		if c >= minCount {
			l.Frequent[k] = c
			delete(l.Border, k)
			st.Promoted++
			promoted = true
		}
	}
	reg := obs.Default()
	reg.Counter("borders.promoted").Add(int64(st.Promoted))
	reg.Counter("borders.demoted").Add(int64(st.Demoted))
	if !promoted {
		return st, nil
	}

	// Update phase: expand the frontier until no new frequent itemsets.
	start := time.Now()
	st.UpdateInvoked = true
	updateTimer := reg.Timer("borders.update.ns")
	reg.Counter("borders.update.invocations").Inc()
	// Per-strategy counting instruments; resolved only when recording so the
	// disabled path stays allocation-free.
	var countTimer *obs.Timer
	var candCounter, byteCounter *obs.Counter
	if reg.Enabled() {
		label := obs.Label(mt.Counter.Name())
		countTimer = reg.Timer("borders.count." + label + ".ns")
		candCounter = reg.Counter("borders.count." + label + ".candidates")
		if mt.IO != nil {
			byteCounter = reg.Counter("borders.count." + label + ".bytes")
		}
	}
	for {
		cands := newCandidates(l)
		if len(cands) == 0 {
			break
		}
		var ioBefore diskio.Stats
		if byteCounter != nil {
			ioBefore = mt.IO.Stats()
		}
		cspan := countTimer.Start()
		counts, err := mt.Counter.Count(cands, m.Blocks)
		cspan.EndObserving(candCounter, int64(len(cands)))
		if byteCounter != nil {
			byteCounter.Add(mt.IO.Stats().BytesRead - ioBefore.BytesRead)
		}
		if err != nil {
			return st, err
		}
		st.CandidatesCounted += len(cands)
		anyFrequent := false
		for _, c := range cands {
			k := c.Key()
			if counts[k] >= minCount {
				l.Frequent[k] = counts[k]
				anyFrequent = true
			} else {
				l.Border[k] = counts[k]
			}
		}
		if !anyFrequent {
			break
		}
	}
	st.Update = time.Since(start)
	updateTimer.Record(st.Update)
	return st, nil
}

// allSubsetsFrequent reports whether every proper (len-1)-subset of x is in
// the frequent set; 1-itemsets trivially qualify (their proper subset is ∅).
func allSubsetsFrequent(l *itemset.Lattice, x itemset.Itemset) bool {
	if len(x) <= 1 {
		return true
	}
	for i := range x {
		if _, ok := l.Frequent[x.Without(i).Key()]; !ok {
			return false
		}
	}
	return true
}

// newCandidates generates untracked candidates from the current frequent
// sets: a prefix join within each size class, the Apriori subset prune, and
// a filter against already-tracked itemsets. Output order is deterministic.
func newCandidates(l *itemset.Lattice) []itemset.Itemset {
	bySize := make(map[int][]itemset.Itemset)
	freqKeys := make(map[itemset.Key]bool, len(l.Frequent))
	for k := range l.Frequent {
		x := k.Itemset()
		bySize[len(x)] = append(bySize[len(x)], x)
		freqKeys[k] = true
	}
	var out []itemset.Itemset
	for _, sets := range bySize {
		cands := itemset.PruneByFrequent(itemset.PrefixJoin(sets), freqKeys)
		for _, c := range cands {
			k := c.Key()
			if _, ok := l.Frequent[k]; ok {
				continue
			}
			if _, ok := l.Border[k]; ok {
				continue
			}
			out = append(out, c)
		}
	}
	itemset.SortItemsets(out)
	return out
}
