package borders

import (
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

func TestModelEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	e := newEnv(t, "PT-Scan", 0.1)
	m := e.mt.Empty()
	blk := randomBlock(rng, 1, 0, 80, 10, 4)
	e.ingest(t, m, blk)
	if _, err := e.mt.AddBlock(m, blk); err != nil {
		t.Fatal(err)
	}

	dec, err := DecodeModel(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	latticesMatch(t, "codec", dec.Lattice, m.Lattice)
	if dec.Lattice.MinSupport != m.Lattice.MinSupport {
		t.Fatalf("κ = %v, want %v", dec.Lattice.MinSupport, m.Lattice.MinSupport)
	}
	if dec.Lattice.Passes != m.Lattice.Passes {
		t.Fatalf("passes = %d, want %d", dec.Lattice.Passes, m.Lattice.Passes)
	}
	if len(dec.Blocks) != 1 || dec.Blocks[0] != 1 {
		t.Fatalf("blocks = %v", dec.Blocks)
	}

	// The decoded model must continue to maintain correctly.
	blk2 := randomBlock(rng, 2, blk.Len(), 60, 10, 4)
	e.ingest(t, dec, blk2)
	if _, err := e.mt.AddBlock(dec, blk2); err != nil {
		t.Fatal(err)
	}
	if err := dec.Lattice.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeModelCorrupt(t *testing.T) {
	e := newEnv(t, "PT-Scan", 0.2)
	m := e.mt.Empty()
	m.Lattice.N = 10
	m.Lattice.Frequent[itemset.NewItemset(1).Key()] = 5
	enc := m.Encode()
	if _, err := DecodeModel(enc[:len(enc)-1]); err == nil {
		t.Error("accepted truncated model")
	}
	if _, err := DecodeModel(nil); err == nil {
		t.Error("accepted empty model")
	}
	if _, err := DecodeModel(append(enc, 0xFF)); err == nil {
		t.Error("accepted trailing garbage")
	}
}

func TestModelStore(t *testing.T) {
	store := diskio.NewMemStore()
	ms := NewModelStore(store, "ckpt")
	m := &Model{Lattice: itemset.NewLattice(0.1)}
	m.Lattice.N = 4
	m.Lattice.Frequent[itemset.NewItemset(2, 3).Key()] = 3
	m.Blocks = append(m.Blocks, 1, 2)

	if err := ms.Save(3, m); err != nil {
		t.Fatal(err)
	}
	got, err := ms.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lattice.Frequent[itemset.NewItemset(2, 3).Key()] != 3 {
		t.Fatal("loaded model lost counts")
	}
	if _, err := ms.Load(99); err == nil {
		t.Error("loaded missing slot")
	}
}

func TestModelStoreSlots(t *testing.T) {
	store := diskio.NewMemStore()
	ms := NewModelStore(store, "ckpt")
	m := &Model{Lattice: itemset.NewLattice(0.1)}
	for _, slot := range []int{2, 0, 5} {
		if err := ms.Save(slot, m); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated keys under the prefix are not slots.
	if err := store.Put("ckpt/model-extra", nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("ckpt/meta", nil); err != nil {
		t.Fatal(err)
	}
	slots, err := ms.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 || slots[0] != 0 || slots[1] != 2 || slots[2] != 5 {
		t.Fatalf("Slots = %v, want [0 2 5]", slots)
	}
}
