package borders

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/tidlist"
)

// Failure-injection tests: storage faults during maintenance must surface
// as errors (wrapped, with context) and never as silently wrong models.

func TestCounterReadFailurePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	fault := diskio.NewFaultStore(diskio.NewMemStore())
	blocks := itemset.NewBlockStore(fault)
	mt := &Maintainer{Store: blocks, Counter: PTScan{Blocks: blocks}, MinSupport: 0.1}
	m := mt.Empty()

	blk := randomBlock(rng, 1, 0, 80, 10, 4)
	if err := blocks.Put(blk); err != nil {
		t.Fatal(err)
	}
	// The update phase must read the block back; fail exactly those reads.
	fault.FailKey = func(key string) bool { return strings.HasPrefix(key, "txblock/") }
	_, err := mt.AddBlock(m, blk)
	if !errors.Is(err, diskio.ErrInjected) {
		t.Fatalf("AddBlock err = %v, want injected fault", err)
	}
	if !strings.Contains(err.Error(), "adding block 1") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestECUTReadFailurePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fault := diskio.NewFaultStore(diskio.NewMemStore())
	blocks := itemset.NewBlockStore(fault)
	tids := tidlist.NewStore(fault)
	mt := &Maintainer{Store: blocks, Counter: ECUT{TIDs: tids}, MinSupport: 0.1}
	m := mt.Empty()

	blk := randomBlock(rng, 1, 0, 80, 10, 4)
	if err := blocks.Put(blk); err != nil {
		t.Fatal(err)
	}
	if err := tids.Materialize(blk); err != nil {
		t.Fatal(err)
	}
	fault.FailKey = func(key string) bool { return strings.HasPrefix(key, "tid/") }
	// A read failure on a present TID-list must propagate — only a
	// not-found is "item absent". Silently counting zero would corrupt the
	// model.
	if _, err := mt.AddBlock(m, blk); !errors.Is(err, diskio.ErrInjected) {
		t.Fatalf("AddBlock err = %v, want injected fault", err)
	}
}

func TestDeleteBlockReadFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	fault := diskio.NewFaultStore(diskio.NewMemStore())
	blocks := itemset.NewBlockStore(fault)
	mt := &Maintainer{Store: blocks, Counter: PTScan{Blocks: blocks}, MinSupport: 0.1}
	m := mt.Empty()

	for i := 1; i <= 2; i++ {
		blk := randomBlock(rng, blockseq.ID(i), (i-1)*60, 60, 10, 4)
		if err := blocks.Put(blk); err != nil {
			t.Fatal(err)
		}
		if _, err := mt.AddBlock(m, blk); err != nil {
			t.Fatal(err)
		}
	}
	// Use a fresh block store so the departing block must be re-read.
	mt.Store = itemset.NewBlockStore(fault)
	fault.FailKey = func(key string) bool { return strings.HasPrefix(key, "txblock/") }
	if _, err := mt.DeleteBlock(m, 1); !errors.Is(err, diskio.ErrInjected) {
		t.Fatalf("DeleteBlock err = %v, want injected fault", err)
	}
	// The model still lists the block (the deletion did not half-apply
	// the block list removal before the read).
	if len(m.Blocks) != 2 {
		t.Fatalf("blocks after failed delete = %v", m.Blocks)
	}
}
