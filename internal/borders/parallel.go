package borders

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// ParallelCounter wraps a Counter and shards the selected blocks across
// worker goroutines, merging the per-shard counts. Support counts are
// additive over blocks (the Section 3.1.1 additivity property), so the
// result is exactly the serial count regardless of scheduling. The wrapped
// counter must be safe for concurrent Count calls on disjoint block sets —
// all counters in this package are, because the underlying stores are.
type ParallelCounter struct {
	// Inner is the counting strategy to shard.
	Inner Counter
	// Workers is the shard count; zero or negative selects GOMAXPROCS.
	Workers int
}

// Name implements Counter.
func (c ParallelCounter) Name() string { return c.Inner.Name() + "-parallel" }

// Count implements Counter.
func (c ParallelCounter) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		return c.Inner.Count(sets, blocks)
	}

	// Contiguous shards keep block locality.
	type result struct {
		counts map[itemset.Key]int
		err    error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(blocks) / workers
		hi := (w + 1) * len(blocks) / workers
		wg.Add(1)
		go func(w int, shard []blockseq.ID) {
			defer wg.Done()
			counts, err := c.Inner.Count(sets, shard)
			results[w] = result{counts: counts, err: err}
		}(w, blocks[lo:hi])
	}
	wg.Wait()

	total := make(map[itemset.Key]int, len(sets))
	for _, x := range sets {
		total[x.Key()] = 0
	}
	for w, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("borders: parallel shard %d: %w", w, r.err)
		}
		for k, v := range r.counts {
			total[k] += v
		}
	}
	return total, nil
}
