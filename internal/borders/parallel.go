package borders

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/par"
)

// ParallelCounter wraps a Counter and shards the selected blocks across
// worker goroutines, merging the per-shard counts. Support counts are
// additive over blocks (the Section 3.1.1 additivity property), so the
// result is exactly the serial count regardless of scheduling. The wrapped
// counter must be safe for concurrent Count calls on disjoint block sets —
// all counters in this package are, because the underlying stores are.
type ParallelCounter struct {
	// Inner is the counting strategy to shard.
	Inner Counter
	// Workers is the shard count; zero or negative selects GOMAXPROCS.
	Workers int
}

// Name implements Counter. It reports the inner counter's name unchanged so
// observability counters (borders.counted.<name>) keep one stable name
// regardless of the worker count.
func (c ParallelCounter) Name() string { return c.Inner.Name() }

// Count implements Counter. When several shards fail, the error of the
// lowest-index shard is returned — not whichever shard the scheduler
// happened to finish first — so error reporting is deterministic across
// runs and worker counts. With no blocks (or a single shard) the inner
// counter is called directly on the calling goroutine; no goroutine is
// spawned.
func (c ParallelCounter) Count(sets []itemset.Itemset, blocks []blockseq.ID) (map[itemset.Key]int, error) {
	if len(blocks) == 0 {
		return c.Inner.Count(sets, blocks)
	}
	shards := par.Shards(len(blocks), c.Workers)
	if shards <= 1 {
		return c.Inner.Count(sets, blocks)
	}

	// Contiguous shards keep block locality.
	partial := make([]map[itemset.Key]int, shards)
	errs := make([]error, shards)
	par.Do(len(blocks), c.Workers, func(s, lo, hi int) {
		partial[s], errs[s] = c.Inner.Count(sets, blocks[lo:hi])
	})
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("borders: parallel shard %d: %w", s, err)
		}
	}

	total := make(map[itemset.Key]int, len(sets))
	for _, x := range sets {
		total[x.Key()] = 0
	}
	for _, counts := range partial {
		itemset.MergeCounts(total, counts)
	}
	return total, nil
}
