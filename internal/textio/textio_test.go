package textio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTransactions(t *testing.T) {
	in := "1 5 9\n\n# comment\n3\n7 7 2\n"
	rows, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0]) != 3 || rows[0][2] != 9 {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if len(rows[1]) != 1 || rows[1][0] != 3 {
		t.Fatalf("row 1 = %v", rows[1])
	}
}

func TestReadTransactionsErrors(t *testing.T) {
	if _, err := ReadTransactions(strings.NewReader("1 x 3\n")); err == nil {
		t.Error("accepted non-numeric item")
	}
	if _, err := ReadTransactions(strings.NewReader("-1\n")); err == nil {
		t.Error("accepted negative item")
	}
}

func TestReadPoints(t *testing.T) {
	in := "1.5 -2.0\n# c\n3 4\n"
	pts, err := ReadPoints(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0][1] != -2.0 || pts[1][0] != 3 {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := ReadPoints(strings.NewReader("1 2\n1 2 3\n")); err == nil {
		t.Error("accepted ragged dimensions")
	}
	if _, err := ReadPoints(strings.NewReader("1 zz\n")); err == nil {
		t.Error("accepted non-numeric coordinate")
	}
}

func TestReadFiles(t *testing.T) {
	dir := t.TempDir()
	txPath := filepath.Join(dir, "tx.txt")
	if err := os.WriteFile(txPath, []byte("1 2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadTransactionsFile(txPath)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	ptPath := filepath.Join(dir, "pt.txt")
	if err := os.WriteFile(ptPath, []byte("1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadPointsFile(ptPath)
	if err != nil || len(pts) != 1 {
		t.Fatalf("pts=%d err=%v", len(pts), err)
	}
	if _, err := ReadTransactionsFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing tx file accepted")
	}
	if _, err := ReadPointsFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing point file accepted")
	}
}
