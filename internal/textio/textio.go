// Package textio reads the plain-text block files the CLI tools exchange:
// transaction blocks (one transaction per line, space-separated item ids)
// and point blocks (one point per line, space-separated coordinates).
package textio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
)

// ReadTransactions parses transaction rows from r. Blank lines and lines
// starting with '#' are skipped.
func ReadTransactions(r io.Reader) ([][]itemset.Item, error) {
	var rows [][]itemset.Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		row := make([]itemset.Item, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: bad item %q: %w", lineNo, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("textio: line %d: negative item %d", lineNo, v)
			}
			row = append(row, itemset.Item(v))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	return rows, nil
}

// ReadTransactionsFile reads a transaction block file.
func ReadTransactionsFile(path string) ([][]itemset.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := ReadTransactions(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// ReadPoints parses point rows from r. All points must share one
// dimensionality. Blank lines and '#' comments are skipped.
func ReadPoints(r io.Reader) ([]cf.Point, error) {
	var pts []cf.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	dim := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if dim < 0 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("textio: line %d: %d coordinates, want %d", lineNo, len(fields), dim)
		}
		p := make(cf.Point, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: bad coordinate %q: %w", lineNo, f, err)
			}
			p[i] = v
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	return pts, nil
}

// ReadPointsFile reads a point block file.
func ReadPointsFile(path string) ([]cf.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := ReadPoints(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}
