// Package gemm implements GEMM, the GEneric Model Maintainer of Section 3.2
// of the DEMON paper: given any incremental model-maintenance algorithm A_M
// for the unrestricted window option, GEMM derives maintenance for the most
// recent window option under both window-independent and window-relative
// block selection sequences by simultaneously evolving one model per future
// window overlapping the current one (Algorithm 3.1).
package gemm

import (
	"context"
	"fmt"
	"reflect"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
)

// Maintainer is the abstraction of the paper's A_M: it can create an empty
// model and update a model with one block. Models must be independent — GEMM
// holds w of them and updates each separately. M may be a pointer type whose
// Add mutates in place and returns the same pointer.
type Maintainer[B, M any] interface {
	// Empty returns a model over no data.
	Empty() M
	// Add returns the model updated with the block.
	Add(m M, blk B) (M, error)
}

// Kind selects the BSS flavour a GEMM instance follows.
type Kind int

const (
	// WindowIndependent follows a window-independent BSS: bits are attached
	// to absolute block identifiers and the per-model sequences are
	// k-projections (Section 3.2.1).
	WindowIndependent Kind = iota
	// WindowRelative follows a window-relative BSS: bits are attached to
	// window positions, move with the window, and the per-model sequences
	// are k-right-shifts (Section 3.2.2).
	WindowRelative
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case WindowIndependent:
		return "window-independent"
	case WindowRelative:
		return "window-relative"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// GEMM maintains the collection of w models for the most recent window of
// size w. Slot 0 holds the model of the current window; slot j holds the
// model extracted from the overlap between the current window and the future
// window starting j blocks later.
//
// During warm-up (fewer than w blocks seen) the window degenerates to
// D[1, t]; for window-relative sequences the bits are right-aligned with the
// window end, i.e. block t always sits at position w.
type GEMM[B, M any] struct {
	am     Maintainer[B, M]
	w      int
	kind   Kind
	bss    blockseq.BSS          // window-independent
	rel    blockseq.WindowRelBSS // window-relative
	models []M                   // length w; slot 0 = current
	t      blockseq.ID
	broken error
	// workers is the slot-maintenance worker knob; see SetWorkers.
	workers int
}

// NewWindowIndependent creates a GEMM following a window-independent BSS.
func NewWindowIndependent[B, M any](am Maintainer[B, M], w int, bss blockseq.BSS) (*GEMM[B, M], error) {
	if w < 1 {
		return nil, fmt.Errorf("gemm: window size %d < 1", w)
	}
	if bss == nil {
		return nil, fmt.Errorf("gemm: nil BSS")
	}
	g := &GEMM[B, M]{am: am, w: w, kind: WindowIndependent, bss: bss}
	g.models = make([]M, w)
	for i := range g.models {
		g.models[i] = am.Empty()
	}
	return g, nil
}

// NewWindowRelative creates a GEMM following a window-relative BSS of length
// w.
func NewWindowRelative[B, M any](am Maintainer[B, M], rel blockseq.WindowRelBSS) (*GEMM[B, M], error) {
	w := rel.Len()
	if w < 1 {
		return nil, fmt.Errorf("gemm: window-relative BSS is empty")
	}
	g := &GEMM[B, M]{am: am, w: w, kind: WindowRelative, rel: rel}
	g.models = make([]M, w)
	for i := range g.models {
		g.models[i] = am.Empty()
	}
	return g, nil
}

// SetWorkers sets the worker count AddBlock fans slot maintenance across:
// non-positive selects GOMAXPROCS, 1 keeps slot updates serial. Models in
// different slots are independent, so the resulting collection is identical
// for every worker count; A_M.Add must be safe for concurrent calls on
// distinct models. SetWorkers must not be called concurrently with AddBlock.
func (g *GEMM[B, M]) SetWorkers(n int) { g.workers = n }

// Kind returns the BSS flavour.
func (g *GEMM[B, M]) Kind() Kind { return g.kind }

// WindowSize returns w.
func (g *GEMM[B, M]) WindowSize() int { return g.w }

// T returns the identifier of the latest block seen.
func (g *GEMM[B, M]) T() blockseq.ID { return g.t }

// Window returns the current most recent window.
func (g *GEMM[B, M]) Window() blockseq.Window {
	return blockseq.Snapshot{T: g.t}.MostRecent(g.w)
}

// Current returns the model of the current window with respect to the BSS —
// the m(D[t-w+1, t], b) the analyst asked for.
func (g *GEMM[B, M]) Current() M { return g.models[0] }

// bitFor returns whether the new block id is selected for the model in slot
// j after the shift (i.e. for the window starting j blocks after the new
// current window's start).
func (g *GEMM[B, M]) bitFor(slot int, id blockseq.ID) bool {
	switch g.kind {
	case WindowIndependent:
		// The k-projection never zeroes the newest position, so the bit is
		// the block's own bit for every slot.
		return g.bss.Bit(id)
	case WindowRelative:
		// After the shift, slot j's window ends (w-1-j) blocks after id, so
		// id sits at position w-j.
		return g.rel.BitAt(g.w - slot)
	default:
		panic("gemm: unknown kind")
	}
}

// AddBlock performs the GAMMA-Update step of Algorithm 3.1: the expiring
// current model is dropped, every remaining model shifts one slot and is
// updated with the new block when its (projected or right-shifted) sequence
// selects it, and a fresh model for the newest future window is started.
//
// Slot updates fan across the workers configured with SetWorkers; slots
// aliasing one model update it exactly once.
//
// id must be exactly T()+1. If any A_M update fails, the collection is left
// inconsistent and the GEMM instance refuses further use.
func (g *GEMM[B, M]) AddBlock(blk B, id blockseq.ID) error {
	return g.AddBlockCtx(context.Background(), blk, id)
}

// AddBlockCtx is AddBlock carrying a request context: when ctx belongs to a
// sampled trace, the slot-maintenance span (gemm.slide.ns) records into it.
func (g *GEMM[B, M]) AddBlockCtx(ctx context.Context, blk B, id blockseq.ID) error {
	if g.broken != nil {
		return fmt.Errorf("gemm: maintainer is broken by a previous error: %w", g.broken)
	}
	if id != g.t+1 {
		return fmt.Errorf("gemm: block %d out of order, expected %d", id, g.t+1)
	}

	// Shift: slot j+1 becomes slot j; a fresh model enters the last slot.
	reg := obs.Default()
	span := reg.Timer("gemm.slide.ns").StartCtx(ctx)
	next := make([]M, g.w)
	copy(next, g.models[1:])
	next[g.w-1] = g.am.Empty()

	// Collect the selected slots, grouped by model identity: slots aliasing
	// one model (possible after RestoreState) update it once. Groups are
	// independent, so they fan across the configured workers; on failure the
	// error of the lowest-index slot is reported, deterministically.
	selected := make([]int, 0, g.w)
	for j := 0; j < g.w; j++ {
		if g.bitFor(j, id) {
			selected = append(selected, j)
		}
	}
	groups := make([][]int, 0, len(selected))
	byPtr := make(map[uintptr]int)
	for _, j := range selected {
		if p, ok := modelPointer(next[j]); ok {
			if gi, dup := byPtr[p]; dup {
				groups[gi] = append(groups[gi], j)
				continue
			}
			byPtr[p] = len(groups)
		}
		groups = append(groups, []int{j})
	}
	results := make([]M, len(groups))
	errs := make([]error, len(groups))
	par.Do(len(groups), g.workers, func(_, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			results[gi], errs[gi] = g.am.Add(next[groups[gi][0]], blk)
		}
	})
	for gi, err := range errs {
		if err != nil {
			g.broken = err
			span.End()
			return fmt.Errorf("gemm: updating slot %d with block %d: %w", groups[gi][0], id, err)
		}
	}
	for gi, slots := range groups {
		for _, j := range slots {
			next[j] = results[gi]
		}
	}
	updated := len(selected)
	g.models = next
	g.t = id
	span.EndObserving(reg.Counter("gemm.slot_updates"), int64(updated))
	if reg.Enabled() {
		reg.Gauge("gemm.window").Set(int64(g.w))
		reg.Gauge("gemm.t").Set(int64(g.t))
	}
	return nil
}

// Slots returns the maintained models; index 0 is the current window's
// model and index j the model of the future window starting j blocks later.
// The slice is a copy; the models themselves are shared.
func (g *GEMM[B, M]) Slots() []M {
	out := make([]M, len(g.models))
	copy(out, g.models)
	return out
}

// RestoreState replaces the collection of models and the latest block
// identifier — the counterpart of Slots for resuming from a checkpoint. The
// number of models must equal the window size, and a maintainer broken by a
// previous error is repaired by restoring.
func (g *GEMM[B, M]) RestoreState(models []M, t blockseq.ID) error {
	if len(models) != g.w {
		return fmt.Errorf("gemm: restoring %d models into window of size %d", len(models), g.w)
	}
	if t < 0 {
		return fmt.Errorf("gemm: negative block id %d", t)
	}
	g.models = make([]M, g.w)
	copy(g.models, models)
	g.t = t
	g.broken = nil
	return nil
}

// modelPointer returns a pointer identity for reference-kind models, used to
// detect slots aliasing one model. Value-kind models (structs, slices, …)
// report no identity and are treated as distinct slots.
func modelPointer[M any](m M) (uintptr, bool) {
	v := reflect.ValueOf(m)
	switch v.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		p := v.Pointer()
		return p, p != 0
	}
	return 0, false
}

// DistinctModels returns how many of the w maintained models are necessarily
// distinct given the BSS — the paper notes that slots whose sequences
// coincide hold identical models (e.g. the second and third models in the
// Section 3.2.1 example). It is a reporting aid; GEMM stores all w slots.
func (g *GEMM[B, M]) DistinctModels() int {
	seqs := make([]string, g.w)
	base := g.t - blockseq.ID(g.w) + 1
	for k := 0; k < g.w; k++ {
		switch g.kind {
		case WindowIndependent:
			if base < 1 {
				// During warm-up projections are not yet meaningful; report
				// conservatively.
				return g.w
			}
			seqs[k] = blockseq.Project(g.bss, base, g.w, k).String()
		case WindowRelative:
			seqs[k] = g.rel.RightShift(k).String()
		}
	}
	distinct := make(map[string]bool, g.w)
	for _, s := range seqs {
		distinct[s] = true
	}
	return len(distinct)
}
