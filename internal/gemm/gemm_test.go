package gemm

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
)

// bagMaintainer is a toy A_M whose model is the multiset of block IDs it was
// built from — ideal for checking exactly which blocks GEMM feeds each slot.
type bagMaintainer struct {
	failOn blockseq.ID // Add fails when this block arrives (0 = never)
}

func (m bagMaintainer) Empty() []blockseq.ID { return nil }

func (m bagMaintainer) Add(bag []blockseq.ID, blk blockseq.ID) ([]blockseq.ID, error) {
	if m.failOn != 0 && blk == m.failOn {
		return nil, errors.New("injected failure")
	}
	return append(bag, blk), nil
}

// TestWindowIndependentPaperExample replays the Section 3.2.1 worked
// example: BSS ⟨10110⟩, w = 3.
func TestWindowIndependentPaperExample(t *testing.T) {
	bss := blockseq.Explicit{Bits: []bool{true, false, true, true, false}}
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 3, bss)
	if err != nil {
		t.Fatal(err)
	}
	for id := blockseq.ID(1); id <= 3; id++ {
		if err := g.AddBlock(id, id); err != nil {
			t.Fatal(err)
		}
	}
	// Paper: collection on D[1,3] is m(101)={D1,D3}, m(001)={D3}, m(001)={D3}.
	if got := g.Current(); !reflect.DeepEqual(got, []blockseq.ID{1, 3}) {
		t.Fatalf("current on D[1,3] = %v, want [1 3]", got)
	}
	if !reflect.DeepEqual(g.models[1], []blockseq.ID{3}) || !reflect.DeepEqual(g.models[2], []blockseq.ID{3}) {
		t.Fatalf("future models = %v, %v; want [3], [3]", g.models[1], g.models[2])
	}
	// Paper notes the second and third models are identical.
	if got := g.DistinctModels(); got != 2 {
		t.Fatalf("DistinctModels = %d, want 2", got)
	}
	// After D4: m(D[2,4], 011) = {D3, D4}.
	if err := g.AddBlock(4, 4); err != nil {
		t.Fatal(err)
	}
	if got := g.Current(); !reflect.DeepEqual(got, []blockseq.ID{3, 4}) {
		t.Fatalf("current on D[2,4] = %v, want [3 4]", got)
	}
	if g.Window() != (blockseq.Window{Lo: 2, Hi: 4}) {
		t.Fatalf("Window = %v", g.Window())
	}
}

// TestWindowRelativePaperExample replays the Section 3.2.2 worked example:
// window-relative BSS ⟨101⟩, w = 3: the model on D[1,3] comes from blocks 1
// and 3; after D4 the model on D[2,4] comes from blocks 2 and 4.
func TestWindowRelativePaperExample(t *testing.T) {
	rel := blockseq.NewWindowRel(true, false, true)
	g, err := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, rel)
	if err != nil {
		t.Fatal(err)
	}
	for id := blockseq.ID(1); id <= 3; id++ {
		if err := g.AddBlock(id, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Current(); !reflect.DeepEqual(got, []blockseq.ID{1, 3}) {
		t.Fatalf("current on D[1,3] = %v, want [1 3]", got)
	}
	if err := g.AddBlock(4, 4); err != nil {
		t.Fatal(err)
	}
	if got := g.Current(); !reflect.DeepEqual(got, []blockseq.ID{2, 4}) {
		t.Fatalf("current on D[2,4] = %v, want [2 4]", got)
	}
}

// naiveWindowIndependent recomputes the expected current model from scratch:
// the blocks in the window selected by their absolute bits.
func naiveWindowIndependent(bss blockseq.BSS, t blockseq.ID, w int) []blockseq.ID {
	win := blockseq.Snapshot{T: t}.MostRecent(w)
	return blockseq.Selected(bss, win)
}

// naiveWindowRelative recomputes the expected current model: position w is
// right-aligned with block t.
func naiveWindowRelative(rel blockseq.WindowRelBSS, t blockseq.ID, w int) []blockseq.ID {
	var out []blockseq.ID
	for id := blockseq.ID(1); id <= t; id++ {
		pos := int(id) + w - int(t)
		if pos >= 1 && rel.BitAt(pos) {
			out = append(out, id)
		}
	}
	return out
}

func TestWindowIndependentMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(6)
		n := 1 + rng.Intn(15)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		bss := blockseq.Explicit{Bits: bits}
		g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, w, bss)
		if err != nil {
			t.Fatal(err)
		}
		for id := blockseq.ID(1); id <= blockseq.ID(n); id++ {
			if err := g.AddBlock(id, id); err != nil {
				t.Fatal(err)
			}
			want := naiveWindowIndependent(bss, id, w)
			got := g.Current()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d t=%d w=%d bits=%v: current = %v, want %v",
					trial, id, w, bits, got, want)
			}
		}
	}
}

func TestWindowRelativeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(6)
		bits := make([]bool, w)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		rel := blockseq.NewWindowRel(bits...)
		g, err := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, rel)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(15)
		for id := blockseq.ID(1); id <= blockseq.ID(n); id++ {
			if err := g.AddBlock(id, id); err != nil {
				t.Fatal(err)
			}
			want := naiveWindowRelative(rel, id, w)
			got := g.Current()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d t=%d bits=%v: current = %v, want %v",
					trial, id, bits, got, want)
			}
		}
	}
}

func TestAddBlockOutOfOrder(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 2, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(2, 2); err == nil {
		t.Fatal("AddBlock accepted out-of-order id")
	}
	if err := g.AddBlock(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(1, 1); err == nil {
		t.Fatal("AddBlock accepted duplicate id")
	}
}

func TestAddBlockFailureBreaksMaintainer(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{failOn: 2}, 2, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(2, 2); err == nil {
		t.Fatal("expected injected failure")
	}
	if err := g.AddBlock(3, 3); err == nil {
		t.Fatal("broken maintainer accepted another block")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewWindowIndependent[int, int](nil, 0, blockseq.All{}); err == nil {
		t.Fatal("accepted w = 0")
	}
	if _, err := NewWindowIndependent[int, int](nil, 2, nil); err == nil {
		t.Fatal("accepted nil BSS")
	}
	if _, err := NewWindowRelative[int, int](nil, blockseq.NewWindowRel()); err == nil {
		t.Fatal("accepted empty window-relative BSS")
	}
}

func TestDistinctModelsWindowRelative(t *testing.T) {
	// ⟨111⟩ right-shifted: 111, 011, 001 — all distinct.
	g, err := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, blockseq.NewWindowRel(true, true, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.DistinctModels(); got != 3 {
		t.Fatalf("DistinctModels = %d, want 3", got)
	}
	// ⟨100⟩: shifts 100, 010, 001 — distinct. ⟨000⟩: all zero — one.
	g2, _ := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, blockseq.NewWindowRel(false, false, false))
	if got := g2.DistinctModels(); got != 1 {
		t.Fatalf("DistinctModels all-zero = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if WindowIndependent.String() != "window-independent" ||
		WindowRelative.String() != "window-relative" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind printed empty")
	}
}

// TestAllOnesBSSEqualsSlidingWindow: with BSS ⟨1...1⟩ the current model must
// contain exactly the window's blocks — the plain sliding-window case of the
// Section 3.2.4 trade-off discussion.
func TestAllOnesBSSEqualsSlidingWindow(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 4, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	for id := blockseq.ID(1); id <= 10; id++ {
		if err := g.AddBlock(id, id); err != nil {
			t.Fatal(err)
		}
	}
	want := []blockseq.ID{7, 8, 9, 10}
	if got := g.Current(); !reflect.DeepEqual(got, want) {
		t.Fatalf("current = %v, want %v", got, want)
	}
}

func TestSlotsAndRestoreState(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 3, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	for id := blockseq.ID(1); id <= 4; id++ {
		if err := g.AddBlock(id, id); err != nil {
			t.Fatal(err)
		}
	}
	slots := g.Slots()
	if len(slots) != 3 {
		t.Fatalf("Slots = %d", len(slots))
	}
	if !reflect.DeepEqual(slots[0], []blockseq.ID{2, 3, 4}) {
		t.Fatalf("slot 0 = %v", slots[0])
	}
	// Mutating the returned slice must not affect the maintainer.
	slots[0] = nil
	if g.Current() == nil {
		t.Fatal("Slots aliases internal storage")
	}

	// Build a second maintainer, restore the first one's state, and verify
	// both continue identically.
	g2, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 3, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RestoreState(g.Slots(), g.T()); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(5, 5); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddBlock(5, 5); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Current(), g2.Current()) {
		t.Fatalf("restored maintainer diverged: %v vs %v", g.Current(), g2.Current())
	}
}

func TestRestoreStateValidation(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, 3, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RestoreState(make([][]blockseq.ID, 2), 1); err == nil {
		t.Error("accepted wrong slot count")
	}
	if err := g.RestoreState(make([][]blockseq.ID, 3), -1); err == nil {
		t.Error("accepted negative block id")
	}
}

func TestRestoreStateRepairsBrokenMaintainer(t *testing.T) {
	g, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{failOn: 1}, 2, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddBlock(1, 1); err == nil {
		t.Fatal("expected injected failure")
	}
	if err := g.RestoreState(make([][]blockseq.ID, 2), 0); err != nil {
		t.Fatal(err)
	}
	// The maintainer works again (block 1 still fails by injection, so
	// feed block ids that don't trigger it).
	g2, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{failOn: 99}, 2, blockseq.All{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RestoreState(g.Slots(), g.T()); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddBlock(1, 1); err != nil {
		t.Fatalf("restored maintainer still broken: %v", err)
	}
}

// TestAddBlockWorkersMetamorphic checks the metamorphic property of the
// parallel slot fan-out: for random BSSes and block streams, a GEMM run at
// any worker count produces exactly the slot collection of a serial run,
// and the current model keeps matching the from-scratch naive oracles.
func TestAddBlockWorkersMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	workerCounts := []int{0, 2, 3, 8}
	for trial := 0; trial < 30; trial++ {
		w := 1 + rng.Intn(6)
		n := 1 + rng.Intn(15)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		relBits := make([]bool, w)
		for i := range relBits {
			relBits[i] = rng.Intn(2) == 1
		}
		bss := blockseq.Explicit{Bits: bits}
		rel := blockseq.NewWindowRel(relBits...)

		for _, workers := range workerCounts {
			gi, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, w, bss)
			if err != nil {
				t.Fatal(err)
			}
			gi.SetWorkers(workers)
			si, err := NewWindowIndependent[blockseq.ID, []blockseq.ID](bagMaintainer{}, w, bss)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, rel)
			if err != nil {
				t.Fatal(err)
			}
			gr.SetWorkers(workers)
			sr, err := NewWindowRelative[blockseq.ID, []blockseq.ID](bagMaintainer{}, rel)
			if err != nil {
				t.Fatal(err)
			}
			for id := blockseq.ID(1); id <= blockseq.ID(n); id++ {
				for _, g := range []*GEMM[blockseq.ID, []blockseq.ID]{gi, si, gr, sr} {
					if err := g.AddBlock(id, id); err != nil {
						t.Fatal(err)
					}
				}
				if !reflect.DeepEqual(gi.Slots(), si.Slots()) {
					t.Fatalf("trial %d workers %d t=%d: window-independent slots %v != serial %v",
						trial, workers, id, gi.Slots(), si.Slots())
				}
				if !reflect.DeepEqual(gr.Slots(), sr.Slots()) {
					t.Fatalf("trial %d workers %d t=%d: window-relative slots %v != serial %v",
						trial, workers, id, gr.Slots(), sr.Slots())
				}
				if want, got := naiveWindowIndependent(bss, id, w), gi.Current(); len(want)+len(got) > 0 && !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d workers %d t=%d: current %v != naive %v", trial, workers, id, got, want)
				}
				if want, got := naiveWindowRelative(rel, id, w), gr.Current(); len(want)+len(got) > 0 && !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d workers %d t=%d: window-relative current %v != naive %v",
						trial, workers, id, got, want)
				}
			}
		}
	}
}

// countingMaintainer's model is a pointer whose pointee counts Add calls —
// it detects a slot group updating its shared model more than once.
type countingMaintainer struct{}

func (countingMaintainer) Empty() *int { n := 0; return &n }

func (countingMaintainer) Add(m *int, _ blockseq.ID) (*int, error) {
	*m++
	return m, nil
}

// TestAddBlockAliasedSlotsUpdateOnce restores one shared model into every
// slot and verifies a parallel AddBlock updates it exactly once: aliased
// slots form one update group regardless of the worker count.
func TestAddBlockAliasedSlotsUpdateOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g, err := NewWindowIndependent[blockseq.ID, *int](countingMaintainer{}, 4, blockseq.All{})
		if err != nil {
			t.Fatal(err)
		}
		g.SetWorkers(workers)
		shared := 0
		if err := g.RestoreState([]*int{&shared, &shared, &shared, &shared}, 2); err != nil {
			t.Fatal(err)
		}
		if err := g.AddBlock(3, 3); err != nil {
			t.Fatal(err)
		}
		// Slots 0..2 alias the restored model (slot 3 is fresh): one group,
		// one Add.
		if shared != 1 {
			t.Fatalf("workers %d: shared model updated %d times, want 1", workers, shared)
		}
	}
}
