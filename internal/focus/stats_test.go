package focus

import (
	"math"
	"testing"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Classic critical values: P(X ≤ x) for chi-square.
	tests := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.95},
		{6.635, 1, 0.99},
		{5.991, 2, 0.95},
		{18.307, 10, 0.95},
		{2.706, 1, 0.90},
		{23.209, 10, 0.99},
	}
	for _, tc := range tests {
		got, err := ChiSquareCDF(tc.x, tc.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 2e-4 {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", tc.x, tc.df, got, tc.want)
		}
	}
}

func TestChiSquareCDFEdges(t *testing.T) {
	if got, _ := ChiSquareCDF(0, 3); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	if got, _ := ChiSquareCDF(-5, 3); got != 0 {
		t.Fatalf("CDF(-5) = %v", got)
	}
	if got, _ := ChiSquareCDF(1e6, 3); got < 0.999999 {
		t.Fatalf("CDF(1e6) = %v", got)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Fatal("accepted df = 0")
	}
}

func TestChiSquareSurvival(t *testing.T) {
	cdf, _ := ChiSquareCDF(4.2, 3)
	sf, _ := ChiSquareSurvival(4.2, 3)
	if math.Abs(cdf+sf-1) > 1e-12 {
		t.Fatalf("CDF + survival = %v", cdf+sf)
	}
}

func TestRegularizedGammaPMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 20; x += 0.5 {
		got, err := regularizedGammaP(2.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("P(2.5, %v) = %v not monotone (prev %v)", x, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("P(2.5, %v) = %v outside [0,1]", x, got)
		}
		prev = got
	}
}

func TestRegularizedGammaPKnown(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 1, 2.5, 7} {
		got, err := regularizedGammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	if _, err := regularizedGammaP(0, 1); err == nil {
		t.Fatal("accepted a = 0")
	}
	if _, err := regularizedGammaP(1, -1); err == nil {
		t.Fatal("accepted x < 0")
	}
}

func TestTwoSampleChiSquareIdentical(t *testing.T) {
	h := []int{50, 30, 20}
	stat, df, err := TwoSampleChiSquare(h, h)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Fatalf("identical histograms stat = %v", stat)
	}
	if df != 2 {
		t.Fatalf("df = %d, want 2", df)
	}
}

func TestTwoSampleChiSquareDifferent(t *testing.T) {
	stat, df, err := TwoSampleChiSquare([]int{90, 10}, []int{10, 90})
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Fatalf("df = %d", df)
	}
	p, err := ChiSquareSurvival(stat, df)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("opposite histograms p = %v, want tiny", p)
	}
}

func TestTwoSampleChiSquareSkipsEmptyRegions(t *testing.T) {
	_, df, err := TwoSampleChiSquare([]int{50, 0, 50}, []int{40, 0, 60})
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Fatalf("df = %d, want 1 (empty region skipped)", df)
	}
}

func TestTwoSampleChiSquareErrors(t *testing.T) {
	if _, _, err := TwoSampleChiSquare([]int{1}, []int{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, _, err := TwoSampleChiSquare([]int{-1, 2}, []int{1, 2}); err == nil {
		t.Error("accepted negative count")
	}
	if _, _, err := TwoSampleChiSquare([]int{0, 0}, []int{1, 2}); err == nil {
		t.Error("accepted empty sample")
	}
}

// Property: p-values stay in [0, 1] and the CDF is monotone in x for random
// degrees of freedom.
func TestChiSquareProperties(t *testing.T) {
	for df := 1; df <= 30; df += 3 {
		prev := -1.0
		for x := 0.0; x < 80; x += 2.5 {
			cdf, err := ChiSquareCDF(x, df)
			if err != nil {
				t.Fatal(err)
			}
			if cdf < 0 || cdf > 1 {
				t.Fatalf("CDF(%v, %d) = %v outside [0,1]", x, df, cdf)
			}
			if cdf < prev-1e-12 {
				t.Fatalf("CDF(%v, %d) = %v not monotone (prev %v)", x, df, cdf, prev)
			}
			prev = cdf
			sf, err := ChiSquareSurvival(x, df)
			if err != nil {
				t.Fatal(err)
			}
			if sf < 0 || sf > 1 {
				t.Fatalf("survival(%v, %d) = %v outside [0,1]", x, df, sf)
			}
		}
	}
}

// Property: the two-sample chi-square statistic is symmetric in its
// arguments and zero only for proportionally identical histograms.
func TestTwoSampleChiSquareSymmetry(t *testing.T) {
	h1 := []int{40, 25, 35, 0, 10}
	h2 := []int{22, 31, 17, 3, 2}
	s12, d12, err := TwoSampleChiSquare(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	s21, d21, err := TwoSampleChiSquare(h2, h1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s12-s21) > 1e-9 || d12 != d21 {
		t.Fatalf("asymmetric: %v/%d vs %v/%d", s12, d12, s21, d21)
	}
	// Proportionally identical histograms (h and 2h) score zero.
	h3 := []int{80, 50, 70, 0, 20}
	s, _, err := TwoSampleChiSquare(h1, h3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 1e-9 {
		t.Fatalf("proportional histograms stat = %v", s)
	}
}
