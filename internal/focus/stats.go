package focus

import (
	"fmt"
	"math"
)

// Statistical primitives for significance computation, implemented from
// scratch on the stdlib: the regularized lower incomplete gamma function
// P(a, x) (series expansion for x < a+1, continued fraction otherwise, per
// the classic Numerical Recipes treatment) and the chi-square CDF built on
// it.

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// regularizedGammaP computes P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
func regularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("focus: regularizedGammaP requires a > 0, got %v", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("focus: regularizedGammaP requires x >= 0, got %v", x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// gammaSeries evaluates P(a, x) by its series representation.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("focus: gamma series did not converge for a=%v x=%v", a, x)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by its continued
// fraction representation (modified Lentz's method).
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("focus: gamma continued fraction did not converge for a=%v x=%v", a, x)
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareCDF(x float64, df int) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("focus: chi-square df %d < 1", df)
	}
	if x <= 0 {
		return 0, nil
	}
	return regularizedGammaP(float64(df)/2, x/2)
}

// ChiSquareSurvival returns P(X > x), the upper tail probability — the
// p-value of a chi-square statistic.
func ChiSquareSurvival(x float64, df int) (float64, error) {
	cdf, err := ChiSquareCDF(x, df)
	if err != nil {
		return 0, err
	}
	p := 1 - cdf
	if p < 0 {
		p = 0
	}
	return p, nil
}

// TwoSampleChiSquare computes the chi-square homogeneity statistic of two
// histograms over the same regions, plus its degrees of freedom. Regions
// empty in both samples are skipped; dof = (non-empty regions − 1).
// Histograms must have equal length and non-negative entries.
func TwoSampleChiSquare(h1, h2 []int) (stat float64, df int, err error) {
	if len(h1) != len(h2) {
		return 0, 0, fmt.Errorf("focus: histogram lengths %d and %d differ", len(h1), len(h2))
	}
	var n1, n2 int
	for i := range h1 {
		if h1[i] < 0 || h2[i] < 0 {
			return 0, 0, fmt.Errorf("focus: negative histogram count at region %d", i)
		}
		n1 += h1[i]
		n2 += h2[i]
	}
	if n1 == 0 || n2 == 0 {
		return 0, 0, fmt.Errorf("focus: empty sample (n1=%d, n2=%d)", n1, n2)
	}
	total := float64(n1 + n2)
	nonEmpty := 0
	for i := range h1 {
		row := float64(h1[i] + h2[i])
		if row == 0 {
			continue
		}
		nonEmpty++
		e1 := row * float64(n1) / total
		e2 := row * float64(n2) / total
		d1 := float64(h1[i]) - e1
		d2 := float64(h2[i]) - e2
		stat += d1*d1/e1 + d2*d2/e2
	}
	df = nonEmpty - 1
	if df < 1 {
		df = 1
	}
	return stat, df, nil
}
