package focus

import (
	"math"
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
)

// questBlock draws a block from a quest generator with the given seed.
func questBlock(t *testing.T, seed int64, id blockseq.ID, n int) *itemset.TxBlock {
	t.Helper()
	g, err := quest.New(quest.Config{
		NumTx: n, AvgTxLen: 8, NumItems: 50, NumPatterns: 10, AvgPatternLen: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Block(id, n)
}

// shiftedBlock remaps every item by +delta, producing a block with disjoint
// frequent itemsets.
func shiftedBlock(b *itemset.TxBlock, delta itemset.Item) *itemset.TxBlock {
	rows := make([][]itemset.Item, b.Len())
	for i, tx := range b.Txs {
		rows[i] = make([]itemset.Item, len(tx.Items))
		for j, it := range tx.Items {
			rows[i][j] = it + delta
		}
	}
	return itemset.NewTxBlock(b.ID+1, b.FirstTID+b.Len(), rows)
}

func TestItemsetDifferSameProcessSimilar(t *testing.T) {
	// Two blocks from the same generator stream: deviation small, p large.
	g, err := quest.New(quest.Config{
		NumTx: 2000, AvgTxLen: 8, NumItems: 50, NumPatterns: 10, AvgPatternLen: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := g.Block(1, 1000)
	b := g.Block(2, 1000)
	d := ItemsetDiffer{MinSupport: 0.05}
	sim, dev, err := Similar[*itemset.TxBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !sim {
		t.Fatalf("same-process blocks found dissimilar: %+v", dev)
	}
	if dev.Score > 0.05 {
		t.Fatalf("same-process deviation score %v too large", dev.Score)
	}
}

func TestItemsetDifferDifferentProcessDissimilar(t *testing.T) {
	a := questBlock(t, 4, 1, 1000)
	b := shiftedBlock(a, 50) // disjoint item universe: maximally different
	d := ItemsetDiffer{MinSupport: 0.05}
	sim, dev, err := Similar[*itemset.TxBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sim {
		t.Fatalf("disjoint blocks found similar: %+v", dev)
	}
	if dev.PValue > 1e-6 {
		t.Fatalf("disjoint blocks p = %v, want tiny", dev.PValue)
	}
	if dev.Score <= 0 {
		t.Fatalf("disjoint blocks score = %v", dev.Score)
	}
}

func TestItemsetDifferIdenticalBlocks(t *testing.T) {
	a := questBlock(t, 5, 1, 500)
	d := ItemsetDiffer{MinSupport: 0.05}
	dev, err := d.Deviation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Score != 0 {
		t.Fatalf("self-deviation score = %v", dev.Score)
	}
	if dev.PValue < 0.999 {
		t.Fatalf("self-deviation p = %v", dev.PValue)
	}
}

func TestItemsetDifferSymmetric(t *testing.T) {
	a := questBlock(t, 6, 1, 600)
	b := questBlock(t, 7, 2, 800)
	d := ItemsetDiffer{MinSupport: 0.05}
	ab, err := d.Deviation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := d.Deviation(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab.Score-ba.Score) > 1e-12 {
		t.Fatalf("score asymmetric: %v vs %v", ab.Score, ba.Score)
	}
	if math.Abs(ab.PValue-ba.PValue) > 1e-9 {
		t.Fatalf("p-value asymmetric: %v vs %v", ab.PValue, ba.PValue)
	}
}

func TestItemsetDifferBootstrapAgreesDirectionally(t *testing.T) {
	g, err := quest.New(quest.Config{
		NumTx: 1200, AvgTxLen: 6, NumItems: 30, NumPatterns: 8, AvgPatternLen: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	same1, same2 := g.Block(1, 600), g.Block(2, 600)
	diff := shiftedBlock(same1, 30)

	d := ItemsetDiffer{MinSupport: 0.05, Mode: Bootstrap, Resamples: 60, Seed: 1}
	devSame, err := d.Deviation(same1, same2)
	if err != nil {
		t.Fatal(err)
	}
	devDiff, err := d.Deviation(same1, diff)
	if err != nil {
		t.Fatal(err)
	}
	if devSame.PValue <= devDiff.PValue {
		t.Fatalf("bootstrap: same-process p %v <= different-process p %v",
			devSame.PValue, devDiff.PValue)
	}
	if devDiff.PValue > 0.05 {
		t.Fatalf("bootstrap different-process p = %v, want small", devDiff.PValue)
	}
}

func TestItemsetDifferValidation(t *testing.T) {
	a := questBlock(t, 9, 1, 100)
	if _, err := (ItemsetDiffer{MinSupport: 0}).Deviation(a, a); err == nil {
		t.Error("accepted κ = 0")
	}
	empty := itemset.NewTxBlock(2, 0, nil)
	if _, err := (ItemsetDiffer{MinSupport: 0.1}).Deviation(a, empty); err == nil {
		t.Error("accepted empty block")
	}
	if _, _, err := Similar[*itemset.TxBlock](ItemsetDiffer{MinSupport: 0.1}, a, a, 0); err == nil {
		t.Error("accepted α = 0")
	}
	if _, _, err := Similar[*itemset.TxBlock](ItemsetDiffer{MinSupport: 0.1}, a, a, 1); err == nil {
		t.Error("accepted α = 1")
	}
}

func TestTopDifferences(t *testing.T) {
	a := questBlock(t, 10, 1, 800)
	b := shiftedBlock(a, 50)
	d := ItemsetDiffer{MinSupport: 0.05}
	diffs, err := d.TopDifferences(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 || len(diffs) > 5 {
		t.Fatalf("TopDifferences returned %d entries", len(diffs))
	}
	for i := 1; i < len(diffs); i++ {
		di := math.Abs(diffs[i-1].SupportA - diffs[i-1].SupportB)
		dj := math.Abs(diffs[i].SupportA - diffs[i].SupportB)
		if di < dj {
			t.Fatalf("TopDifferences not sorted: %v < %v at %d", di, dj, i)
		}
	}
	// Disjoint universes: every region is fully one-sided.
	if diffs[0].SupportA > 0 && diffs[0].SupportB > 0 {
		t.Fatalf("top difference %+v should be one-sided", diffs[0])
	}
}

func pointBlock(rng *rand.Rand, id blockseq.ID, centers []cf.Point, n int) *birch.PointBlock {
	pts := make([]cf.Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make(cf.Point, len(c))
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		pts[i] = p
	}
	return &birch.PointBlock{ID: id, Points: pts}
}

func TestClusterDifferSameProcessSimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	centers := []cf.Point{{0, 0}, {30, 30}, {0, 30}}
	a := pointBlock(rng, 1, centers, 900)
	b := pointBlock(rng, 2, centers, 900)
	d := ClusterDiffer{K: 3}
	sim, dev, err := Similar[*birch.PointBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !sim {
		t.Fatalf("same-process point blocks dissimilar: %+v", dev)
	}
}

func TestClusterDifferDifferentProcessDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := pointBlock(rng, 1, []cf.Point{{0, 0}, {30, 30}}, 900)
	b := pointBlock(rng, 2, []cf.Point{{15, 0}, {0, 15}}, 900)
	d := ClusterDiffer{K: 2}
	sim, dev, err := Similar[*birch.PointBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sim {
		t.Fatalf("different-process point blocks similar: %+v", dev)
	}
	if dev.Score <= 0.1 {
		t.Fatalf("different-process score = %v", dev.Score)
	}
}

func TestClusterDifferValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := pointBlock(rng, 1, []cf.Point{{0, 0}}, 50)
	if _, err := (ClusterDiffer{K: 0}).Deviation(a, a); err == nil {
		t.Error("accepted K = 0")
	}
	empty := &birch.PointBlock{ID: 2}
	if _, err := (ClusterDiffer{K: 2}).Deviation(a, empty); err == nil {
		t.Error("accepted empty block")
	}
}

func TestItemsetDifferEmptyGCR(t *testing.T) {
	// At a very high threshold with diverse transactions, neither block has
	// any frequent itemset: identical (vacuous) models, deviation zero.
	rows := make([][]itemset.Item, 50)
	for i := range rows {
		rows[i] = []itemset.Item{itemset.Item(i)}
	}
	a := itemset.NewTxBlock(1, 0, rows)
	b := itemset.NewTxBlock(2, 50, rows)
	d := ItemsetDiffer{MinSupport: 0.9}
	dev, err := d.Deviation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Score != 0 || dev.PValue != 1 || dev.Regions != 0 {
		t.Fatalf("empty-GCR deviation = %+v", dev)
	}
}

func TestItemsetDifferUnknownMode(t *testing.T) {
	a := questBlock(t, 14, 1, 100)
	d := ItemsetDiffer{MinSupport: 0.1, Mode: SignificanceMode(9)}
	if _, err := d.Deviation(a, a); err == nil {
		t.Fatal("accepted unknown significance mode")
	}
}

func TestClusterDifferCustomTreeConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := pointBlock(rng, 1, []cf.Point{{0, 0}}, 200)
	b := pointBlock(rng, 2, []cf.Point{{0, 0}}, 200)
	d := ClusterDiffer{K: 1, Tree: cf.TreeConfig{
		Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 32,
	}}
	dev, err := d.Deviation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dev.PValue < 0.01 {
		t.Fatalf("same-process blocks with custom tree: %+v", dev)
	}
}

func TestTopDifferencesUnlimited(t *testing.T) {
	a := questBlock(t, 16, 1, 400)
	b := questBlock(t, 17, 2, 400)
	d := ItemsetDiffer{MinSupport: 0.05}
	all, err := d.TopDifferences(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := d.TopDifferences(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) > 2 || len(all) < len(limited) {
		t.Fatalf("lengths: all %d, limited %d", len(all), len(limited))
	}
}
