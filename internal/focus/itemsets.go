package focus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
)

// SignificanceMode selects how a deviation's p-value is computed.
type SignificanceMode int

const (
	// Parametric approximates the null distribution with a chi-square over
	// per-region two-proportion terms. Fast; the default for pattern
	// detection, which compares every pair of blocks.
	Parametric SignificanceMode = iota
	// Bootstrap estimates the p-value by pooling both blocks and
	// recomputing the deviation over random re-splits, the procedure the
	// FOCUS paper qualifies deviations with. Slower but assumption-free.
	Bootstrap
)

// ItemsetDiffer instantiates FOCUS with frequent itemset models: the
// structural component of a block's model is its set of frequent itemsets,
// the greatest common refinement of two models is the union of their
// itemsets, and the measure of a region (itemset) is its support in the
// block. Computing the deviation takes at most one scan of each block, to
// count the other model's itemsets.
type ItemsetDiffer struct {
	// MinSupport is the threshold κ the per-block models are mined at.
	MinSupport float64
	// Mode selects the significance computation (default Parametric).
	Mode SignificanceMode
	// Resamples is the number of bootstrap re-splits (default 100).
	Resamples int
	// Seed drives the bootstrap resampling.
	Seed int64
	// Workers shards the deviation computation — the two per-block model
	// builds run concurrently and the region counting scans shard over
	// transactions — across worker goroutines: non-positive selects
	// GOMAXPROCS, 1 keeps the computation serial. Results are identical for
	// every worker count; bootstrap resampling stays serial (it threads one
	// RNG).
	Workers int
}

// Deviation implements Differ[*itemset.TxBlock].
func (d ItemsetDiffer) Deviation(a, b *itemset.TxBlock) (Deviation, error) {
	span := obs.Default().Timer("focus.deviation.ns").Start()
	defer span.End()
	if d.MinSupport <= 0 || d.MinSupport >= 1 {
		return Deviation{}, fmt.Errorf("focus: minimum support %v outside (0, 1)", d.MinSupport)
	}
	if a.Len() == 0 || b.Len() == 0 {
		return Deviation{}, fmt.Errorf("focus: cannot compare empty blocks (%d, %d transactions)", a.Len(), b.Len())
	}
	la, lb, err := d.minePair(a, b)
	if err != nil {
		return Deviation{}, err
	}

	gcr := unionFrequent(la, lb)
	if len(gcr) == 0 {
		// Neither block has any frequent itemset: identical (vacuous) models.
		return Deviation{Score: 0, PValue: 1, Regions: 0}, nil
	}

	ca, err := countsOver(gcr, la, a, d.Workers)
	if err != nil {
		return Deviation{}, err
	}
	cb, err := countsOver(gcr, lb, b, d.Workers)
	if err != nil {
		return Deviation{}, err
	}

	score := deviationScore(gcr, ca, cb, a.Len(), b.Len())
	var p float64
	switch d.Mode {
	case Parametric:
		p, err = parametricPValue(gcr, ca, cb, a.Len(), b.Len())
	case Bootstrap:
		p, err = d.bootstrapPValue(gcr, a, b, score)
	default:
		err = fmt.Errorf("focus: unknown significance mode %d", d.Mode)
	}
	if err != nil {
		return Deviation{}, err
	}
	obs.Default().Histogram("focus.deviation.regions").Observe(int64(len(gcr)))
	return Deviation{Score: score, PValue: p, Regions: len(gcr)}, nil
}

// minePair builds the per-block frequent-itemset models, concurrently when
// the differ has more than one worker; errors report the first block's
// failure first, deterministically.
func (d ItemsetDiffer) minePair(a, b *itemset.TxBlock) (*itemset.Lattice, *itemset.Lattice, error) {
	blks := [2]*itemset.TxBlock{a, b}
	var lats [2]*itemset.Lattice
	var errs [2]error
	par.Do(2, d.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			lats[i], errs[i] = itemset.Apriori(itemset.SliceSource(blks[i].Txs), nil, d.MinSupport)
		}
	})
	if err := par.FirstError(errs[:]); err != nil {
		return nil, nil, err
	}
	return lats[0], lats[1], nil
}

// unionFrequent returns the sorted union of the two models' frequent
// itemsets — the greatest common refinement of the two structural
// components.
func unionFrequent(la, lb *itemset.Lattice) []itemset.Itemset {
	seen := make(map[itemset.Key]bool, len(la.Frequent)+len(lb.Frequent))
	var out []itemset.Itemset
	for k := range la.Frequent {
		if !seen[k] {
			seen[k] = true
			out = append(out, k.Itemset())
		}
	}
	for k := range lb.Frequent {
		if !seen[k] {
			seen[k] = true
			out = append(out, k.Itemset())
		}
	}
	itemset.SortItemsets(out)
	return out
}

// countsOver returns the support count of every GCR itemset in the block,
// reusing lattice counts where tracked and scanning the block once for the
// rest; the scan shards over transactions across the given workers.
func countsOver(gcr []itemset.Itemset, l *itemset.Lattice, blk *itemset.TxBlock, workers int) (map[itemset.Key]int, error) {
	out := make(map[itemset.Key]int, len(gcr))
	var missing []itemset.Itemset
	for _, x := range gcr {
		k := x.Key()
		if c, ok := l.Frequent[k]; ok {
			out[k] = c
		} else if c, ok := l.Border[k]; ok {
			out[k] = c
		} else {
			missing = append(missing, x)
		}
	}
	if len(missing) > 0 {
		counts := itemset.ParallelCount(blk.Txs, workers, func() itemset.TxCounter {
			return itemset.NewPrefixTree(missing)
		})
		for k, c := range counts {
			out[k] = c
		}
	}
	return out, nil
}

// deviationScore is the absolute deviation: the mean absolute support
// difference over the GCR (difference function f = |·|, aggregation g = Σ,
// scaled by the region count).
func deviationScore(gcr []itemset.Itemset, ca, cb map[itemset.Key]int, na, nb int) float64 {
	var sum float64
	for _, x := range gcr {
		k := x.Key()
		sum += math.Abs(float64(ca[k])/float64(na) - float64(cb[k])/float64(nb))
	}
	return sum / float64(len(gcr))
}

// parametricPValue treats each region as a two-proportion comparison,
// converts the most extreme region's z² into a per-region p-value, and
// applies a Šidák combination over the number of informative regions:
// p = 1 − (1 − p_min)^m. Itemset regions overlap heavily (an itemset and
// its subsets count largely the same transactions), so the positively
// dependent per-region tests make this combination conservative — two blocks
// are declared dissimilar only when at least one region's supports differ
// far beyond sampling noise, which is the behaviour the DEMON pattern
// experiments rely on. Regions with pooled support 0 or 1 carry no
// information and are skipped.
func parametricPValue(gcr []itemset.Itemset, ca, cb map[itemset.Key]int, na, nb int) (float64, error) {
	maxZ2 := 0.0
	m := 0
	fa, fb := float64(na), float64(nb)
	for _, x := range gcr {
		k := x.Key()
		pooled := float64(ca[k]+cb[k]) / (fa + fb)
		v := pooled * (1 - pooled) * (1/fa + 1/fb)
		if v <= 0 {
			continue
		}
		diff := float64(ca[k])/fa - float64(cb[k])/fb
		if z2 := diff * diff / v; z2 > maxZ2 {
			maxZ2 = z2
		}
		m++
	}
	if m == 0 {
		return 1, nil
	}
	pMin, err := ChiSquareSurvival(maxZ2, 1)
	if err != nil {
		return 0, err
	}
	// Šidák: probability that the minimum of m (idealized independent)
	// per-region p-values is at most pMin.
	p := 1 - math.Pow(1-pMin, float64(m))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// bootstrapPValue pools the two blocks and estimates P(deviation ≥ observed)
// under the same-process null by recomputing the GCR measures over random
// re-splits of the pool.
func (d ItemsetDiffer) bootstrapPValue(gcr []itemset.Itemset, a, b *itemset.TxBlock, observed float64) (float64, error) {
	resamples := d.Resamples
	if resamples <= 0 {
		resamples = 100
	}
	pool := make([]itemset.Transaction, 0, a.Len()+b.Len())
	pool = append(pool, a.Txs...)
	pool = append(pool, b.Txs...)
	rng := rand.New(rand.NewSource(d.Seed))
	exceed := 0
	for r := 0; r < resamples; r++ {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		ca := countInto(gcr, pool[:a.Len()], d.Workers)
		cb := countInto(gcr, pool[a.Len():], d.Workers)
		if deviationScore(gcr, ca, cb, a.Len(), b.Len()) >= observed-1e-12 {
			exceed++
		}
	}
	// Add-one smoothing keeps the estimate away from an impossible zero.
	return (float64(exceed) + 1) / (float64(resamples) + 1), nil
}

func countInto(gcr []itemset.Itemset, txs []itemset.Transaction, workers int) map[itemset.Key]int {
	return itemset.ParallelCount(txs, workers, func() itemset.TxCounter {
		return itemset.NewPrefixTree(gcr)
	})
}

// TopDifferences reports the itemsets with the largest absolute support
// difference between the two blocks — the interpretable part of the FOCUS
// deviation, used by the CLI to explain why two blocks were found
// dissimilar. It returns at most n entries, largest difference first.
func (d ItemsetDiffer) TopDifferences(a, b *itemset.TxBlock, n int) ([]SupportDiff, error) {
	la, lb, err := d.minePair(a, b)
	if err != nil {
		return nil, err
	}
	gcr := unionFrequent(la, lb)
	ca, err := countsOver(gcr, la, a, d.Workers)
	if err != nil {
		return nil, err
	}
	cb, err := countsOver(gcr, lb, b, d.Workers)
	if err != nil {
		return nil, err
	}
	diffs := make([]SupportDiff, 0, len(gcr))
	for _, x := range gcr {
		k := x.Key()
		diffs = append(diffs, SupportDiff{
			Itemset:  x,
			SupportA: float64(ca[k]) / float64(a.Len()),
			SupportB: float64(cb[k]) / float64(b.Len()),
		})
	}
	sort.Slice(diffs, func(i, j int) bool {
		di := math.Abs(diffs[i].SupportA - diffs[i].SupportB)
		dj := math.Abs(diffs[j].SupportA - diffs[j].SupportB)
		if di != dj {
			return di > dj
		}
		return diffs[i].Itemset.Key() < diffs[j].Itemset.Key()
	})
	if n >= 0 && len(diffs) > n {
		diffs = diffs[:n]
	}
	return diffs, nil
}

// SupportDiff is one region of the common structural component with its
// measures in both blocks.
type SupportDiff struct {
	Itemset  itemset.Itemset
	SupportA float64
	SupportB float64
}
