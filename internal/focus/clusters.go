package focus

import (
	"fmt"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
)

// ClusterDiffer instantiates FOCUS with cluster models: the structural
// component of a block's model is its set of cluster regions (centroids),
// the greatest common refinement of two models is the partition induced by
// the union of both centroid sets (each point belongs to the region of its
// nearest centroid), and the measure of a region is the fraction of the
// block's points falling in it. Because the induced regions are disjoint,
// the significance is an exact two-sample chi-square homogeneity test.
type ClusterDiffer struct {
	// K is the number of clusters mined from each block.
	K int
	// Tree is the CF-tree configuration of the per-block BIRCH runs; the
	// zero value selects cf.DefaultTreeConfig.
	Tree cf.TreeConfig
	// Workers shards the deviation computation — the two per-block BIRCH
	// runs go concurrently and the region histograms shard over points —
	// across worker goroutines: non-positive selects GOMAXPROCS, 1 keeps the
	// computation serial. Results are identical for every worker count.
	Workers int
}

func (d ClusterDiffer) treeConfig() cf.TreeConfig {
	if d.Tree == (cf.TreeConfig{}) {
		return cf.DefaultTreeConfig()
	}
	return d.Tree
}

// Deviation implements Differ[*birch.PointBlock].
func (d ClusterDiffer) Deviation(a, b *birch.PointBlock) (Deviation, error) {
	span := obs.Default().Timer("focus.deviation.ns").Start()
	defer span.End()
	if d.K < 1 {
		return Deviation{}, fmt.Errorf("focus: cluster differ K = %d < 1", d.K)
	}
	if len(a.Points) == 0 || len(b.Points) == 0 {
		return Deviation{}, fmt.Errorf("focus: cannot compare empty blocks (%d, %d points)", len(a.Points), len(b.Points))
	}
	cfg := birch.Config{Tree: d.treeConfig(), K: d.K, Workers: 1}
	blks := [2]*birch.PointBlock{a, b}
	var models [2]*birch.Model
	var errs [2]error
	par.Do(2, d.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			models[i], errs[i] = birch.Run(cfg, blks[i].Points)
		}
	})
	if err := par.FirstError(errs[:]); err != nil {
		return Deviation{}, err
	}
	ma, mb := models[0], models[1]

	// The GCR: the union of both models' centroids.
	var regions []cf.Point
	for _, c := range ma.Clusters {
		regions = append(regions, c.Centroid())
	}
	for _, c := range mb.Clusters {
		regions = append(regions, c.Centroid())
	}
	if len(regions) == 0 {
		return Deviation{Score: 0, PValue: 1, Regions: 0}, nil
	}

	ha := histogram(a.Points, regions, d.Workers)
	hb := histogram(b.Points, regions, d.Workers)

	// Total variation distance between the two region measures.
	var score float64
	for i := range regions {
		pa := float64(ha[i]) / float64(len(a.Points))
		pb := float64(hb[i]) / float64(len(b.Points))
		if pa > pb {
			score += pa - pb
		} else {
			score += pb - pa
		}
	}
	score /= 2

	stat, df, err := TwoSampleChiSquare(ha, hb)
	if err != nil {
		return Deviation{}, err
	}
	p, err := ChiSquareSurvival(stat, df)
	if err != nil {
		return Deviation{}, err
	}
	obs.Default().Histogram("focus.deviation.regions").Observe(int64(len(regions)))
	return Deviation{Score: score, PValue: p, Regions: len(regions)}, nil
}

// histogram assigns each point to its nearest region and counts per region,
// sharding the points across the given workers; the per-shard histograms
// merge additively in shard order, so the counts equal a serial pass.
func histogram(pts []cf.Point, regions []cf.Point, workers int) []int {
	count := func(pts []cf.Point) []int {
		h := make([]int, len(regions))
		for _, p := range pts {
			best, bestD := 0, cf.Distance(p, regions[0])
			for i := 1; i < len(regions); i++ {
				if d := cf.Distance(p, regions[i]); d < bestD {
					best, bestD = i, d
				}
			}
			h[best]++
		}
		return h
	}
	shards := par.Shards(len(pts), workers)
	if shards <= 1 {
		return count(pts)
	}
	part := make([][]int, shards)
	par.Do(len(pts), workers, func(s, lo, hi int) {
		part[s] = count(pts[lo:hi])
	})
	h := part[0]
	for _, p := range part[1:] {
		for i, c := range p {
			h[i] += c
		}
	}
	return h
}
