// Package focus implements the FOCUS deviation framework (Ganti, Gehrke,
// Ramakrishnan, Loh, PODS 1999) that Section 4 of the DEMON paper
// instantiates for pattern detection: a model has a structural component
// (its "interesting regions") and a measure component (a summary of the data
// mapped to each region); the deviation between two datasets is the
// aggregate of the measure differences over the greatest common refinement
// of their two models' structural components, and the statistical
// significance of the deviation is the probability that both datasets were
// drawn from the same underlying process.
//
// Two instantiations are provided, matching the classes the DEMON
// experiments use: frequent itemset models over transaction blocks and
// cluster models over point blocks.
package focus

import "fmt"

// Deviation is the result of comparing two blocks through a model class.
type Deviation struct {
	// Score is the deviation value δ: the normalized aggregate of measure
	// differences over the common structural component. Zero means the
	// induced models agree exactly; larger is more different.
	Score float64
	// PValue is the probability of observing a deviation at least this
	// large if both blocks were drawn from the same process. Small values
	// mean the blocks differ significantly.
	PValue float64
	// Regions is the size of the greatest common refinement the measures
	// were compared over.
	Regions int
}

// Differ computes deviations between two blocks of type B. Implementations
// must be deterministic and symmetric up to numerical noise.
type Differ[B any] interface {
	Deviation(a, b B) (Deviation, error)
}

// Similar reports whether two blocks are M-similar at significance level α
// per Definition 4.1: the deviation between them is *not* statistically
// significant at level α, i.e. the same-process hypothesis survives.
// α must lie in (0, 1); typical values are 0.01–0.05.
func Similar[B any](d Differ[B], a, b B, alpha float64) (bool, Deviation, error) {
	if alpha <= 0 || alpha >= 1 {
		return false, Deviation{}, fmt.Errorf("focus: significance level %v outside (0, 1)", alpha)
	}
	dev, err := d.Deviation(a, b)
	if err != nil {
		return false, Deviation{}, err
	}
	return dev.PValue >= alpha, dev, nil
}
