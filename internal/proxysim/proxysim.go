// Package proxysim generates a synthetic web proxy trace standing in for the
// DEC traces the DEMON paper's Section 5.3 experiments use (the original FTP
// archive is no longer available). The trace preserves the schema — each
// request carries a timestamp, one of 10 object types, and a response size
// discretized into 10000-byte buckets — and, more importantly, the temporal
// similarity structure the paper's findings rest on:
//
//   - working days share one joint type×size distribution;
//   - weekends (and the Labor Day holiday, Monday 9-2-1996) share another;
//   - late-night hours of working days follow the weekend distribution, so
//     "late night weekday blocks can be similar to blocks on weekends";
//   - Monday 9-9-1996 is anomalous: its distribution differs from every
//     other working day.
//
// The trace spans noon 9-2-1996 to midnight 9-22-1996 (the 82 six-hour
// periods of Figure 10) and is segmented into blocks at 4, 6, 8, 12 or
// 24-hour granularity, each request becoming a two-item transaction
// {type, 1000 + size bucket} exactly as the paper models it.
package proxysim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// NumTypes is the number of object types (gif, jpg, html, ...).
const NumTypes = 10

// BucketItemBase offsets size-bucket items so they never collide with type
// items in the transaction item space.
const BucketItemBase = 1000

// traceStart is noon on Monday, September 2, 1996 (Labor Day) — block 0 of
// Figure 10 starts here.
var traceStart = time.Date(1996, time.September, 2, 12, 0, 0, 0, time.UTC)

// traceEnd is midnight at the end of September 22, 1996.
var traceEnd = time.Date(1996, time.September, 23, 0, 0, 0, 0, time.UTC)

// DayKind classifies a calendar day of the trace.
type DayKind int

const (
	// Workday is a regular working day.
	Workday DayKind = iota
	// Weekend covers Saturdays, Sundays and the Labor Day holiday.
	Weekend
	// Anomalous is Monday 9-9-1996, whose traffic differs from all other
	// working days.
	Anomalous
)

// String names the kind.
func (k DayKind) String() string {
	switch k {
	case Workday:
		return "workday"
	case Weekend:
		return "weekend/holiday"
	case Anomalous:
		return "anomalous"
	default:
		return fmt.Sprintf("DayKind(%d)", int(k))
	}
}

// KindOfDay classifies a date within the trace: weekends and Labor Day
// (9-2-1996) count as Weekend; 9-9-1996 is Anomalous; everything else is a
// Workday.
func KindOfDay(t time.Time) DayKind {
	if t.Month() == time.September && t.Year() == 1996 {
		switch t.Day() {
		case 2:
			return Weekend // Labor Day
		case 9:
			return Anomalous
		}
	}
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		return Weekend
	default:
		return Workday
	}
}

// Request is one proxy log tuple.
type Request struct {
	Time time.Time
	// Type is the object type in [0, NumTypes).
	Type int
	// Bytes is the response size; Bucket() discretizes it.
	Bytes int
}

// Bucket returns the 10000-byte size bucket of the response.
func (r Request) Bucket() int { return r.Bytes / 10000 }

// Config parameterizes the simulator.
type Config struct {
	// RequestsPerHour is the base arrival rate during working-day office
	// hours; other periods scale it down. Defaults to 400.
	RequestsPerHour int
	// Seed makes the trace deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RequestsPerHour == 0 {
		c.RequestsPerHour = 400
	}
	return c
}

// profile is a joint distribution over (type, size bucket): cumulative
// weights over a small set of (type, meanBytes) modes.
type profile struct {
	modes []mode
	cum   []float64
}

type mode struct {
	typ       int
	meanBytes float64
}

func newProfile(modes []mode, weights []float64) profile {
	p := profile{modes: modes, cum: make([]float64, len(modes))}
	var total float64
	for _, w := range weights {
		total += w
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		p.cum[i] = acc
	}
	p.cum[len(p.cum)-1] = 1
	return p
}

func (p profile) draw(rng *rand.Rand) (typ, bytes int) {
	u := rng.Float64()
	i := 0
	for i < len(p.cum)-1 && p.cum[i] < u {
		i++
	}
	m := p.modes[i]
	// Sizes are exponential around the mode's mean, so buckets concentrate
	// but tail off realistically.
	b := int(rng.ExpFloat64() * m.meanBytes)
	return m.typ, b
}

// The three traffic profiles. Office traffic is text-heavy with small
// responses; weekend/night traffic is media-heavy with large responses; the
// anomaly is dominated by two otherwise-rare types with mid-size responses
// (e.g. a crawler or a mirror sync).
var (
	officeProfile = newProfile(
		[]mode{{0, 8000}, {1, 15000}, {2, 30000}, {3, 55000}, {4, 5000}},
		[]float64{0.40, 0.25, 0.15, 0.10, 0.10},
	)
	weekendProfile = newProfile(
		[]mode{{2, 60000}, {3, 90000}, {5, 120000}, {0, 9000}, {6, 40000}},
		[]float64{0.30, 0.25, 0.20, 0.15, 0.10},
	)
	anomalyProfile = newProfile(
		[]mode{{7, 45000}, {8, 70000}, {9, 20000}, {0, 8000}},
		[]float64{0.40, 0.30, 0.20, 0.10},
	)
)

// profileFor returns the joint distribution in effect at time t. Working
// days use the office profile between 8:00 and 20:00 and the weekend
// profile at night; weekends and the holiday use the weekend profile all
// day; the anomalous Monday uses its own profile during office hours.
func profileFor(t time.Time) profile {
	kind := KindOfDay(t)
	hour := t.Hour()
	office := hour >= 8 && hour < 20
	switch kind {
	case Weekend:
		return weekendProfile
	case Anomalous:
		if office {
			return anomalyProfile
		}
		return weekendProfile
	default:
		if office {
			return officeProfile
		}
		return weekendProfile
	}
}

// rateFor returns the arrival-rate multiplier at time t.
func rateFor(t time.Time) float64 {
	kind := KindOfDay(t)
	hour := t.Hour()
	office := hour >= 8 && hour < 20
	switch {
	case kind == Workday && office, kind == Anomalous && office:
		return 1.0
	case kind == Weekend && office:
		return 0.6
	default:
		return 0.3 // nights
	}
}

// Trace is a generated proxy trace.
type Trace struct {
	Requests []Request
}

// Generate builds the full deterministic trace.
func Generate(cfg Config) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var reqs []Request
	for hour := traceStart; hour.Before(traceEnd); hour = hour.Add(time.Hour) {
		n := int(float64(cfg.RequestsPerHour) * rateFor(hour))
		p := profileFor(hour)
		for i := 0; i < n; i++ {
			typ, bytes := p.draw(rng)
			reqs = append(reqs, Request{
				Time:  hour.Add(time.Duration(rng.Int63n(int64(time.Hour)))),
				Type:  typ,
				Bytes: bytes,
			})
		}
	}
	return &Trace{Requests: reqs}
}

// Span returns the trace start and end instants.
func Span() (start, end time.Time) { return traceStart, traceEnd }

// BlockInfo describes one segmented block.
type BlockInfo struct {
	ID    blockseq.ID
	Start time.Time
	End   time.Time
	// Kind is the day kind of the block's start instant.
	Kind DayKind
}

// Label renders the block period, e.g. "Mon 09-09 12:00-16:00".
func (b BlockInfo) Label() string {
	return fmt.Sprintf("%s %02d-%02d %02d:00-%02d:00",
		b.Start.Weekday().String()[:3], b.Start.Month(), b.Start.Day(),
		b.Start.Hour(), b.End.Hour())
}

// Segment splits the trace into blocks of the given granularity (in hours,
// one of the paper's 4, 6, 8, 12, 24) starting from noon 9-2-1996, turning
// each request into the two-item transaction {type, 1000+bucket}. Block
// identifiers start at 1 (Figure 10's block 0 is our block 1).
func (tr *Trace) Segment(granularityHours int) ([]*itemset.TxBlock, []BlockInfo, error) {
	if granularityHours < 1 {
		return nil, nil, fmt.Errorf("proxysim: granularity %d hours < 1", granularityHours)
	}
	span := traceEnd.Sub(traceStart)
	width := time.Duration(granularityHours) * time.Hour
	numBlocks := int((span + width - 1) / width)

	rows := make([][][]itemset.Item, numBlocks)
	for _, r := range tr.Requests {
		idx := int(r.Time.Sub(traceStart) / width)
		if idx < 0 || idx >= numBlocks {
			continue
		}
		rows[idx] = append(rows[idx], []itemset.Item{
			itemset.Item(r.Type),
			itemset.Item(BucketItemBase + r.Bucket()),
		})
	}

	blocks := make([]*itemset.TxBlock, numBlocks)
	infos := make([]BlockInfo, numBlocks)
	tid := 0
	for i := range blocks {
		id := blockseq.ID(i + 1)
		blocks[i] = itemset.NewTxBlock(id, tid, rows[i])
		tid += len(rows[i])
		start := traceStart.Add(time.Duration(i) * width)
		end := start.Add(width)
		if end.After(traceEnd) {
			end = traceEnd
		}
		infos[i] = BlockInfo{ID: id, Start: start, End: end, Kind: KindOfDay(start)}
	}
	return blocks, infos, nil
}
