package proxysim

import (
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
)

func TestKindOfDay(t *testing.T) {
	tests := []struct {
		day  int
		want DayKind
	}{
		{2, Weekend}, // Labor Day (Monday)
		{3, Workday}, {4, Workday}, {5, Workday}, {6, Workday},
		{7, Weekend}, {8, Weekend},
		{9, Anomalous},
		{10, Workday}, {13, Workday},
		{14, Weekend}, {15, Weekend},
		{16, Workday}, {20, Workday},
		{21, Weekend}, {22, Weekend},
	}
	for _, tc := range tests {
		d := time.Date(1996, time.September, tc.day, 10, 0, 0, 0, time.UTC)
		if got := KindOfDay(d); got != tc.want {
			t.Errorf("KindOfDay(9-%d) = %v, want %v", tc.day, got, tc.want)
		}
	}
}

func TestCalendarSanity(t *testing.T) {
	// 9-2-1996 really was a Monday; 9-9-1996 too.
	if wd := time.Date(1996, 9, 2, 0, 0, 0, 0, time.UTC).Weekday(); wd != time.Monday {
		t.Fatalf("9-2-1996 is %v", wd)
	}
	if wd := time.Date(1996, 9, 9, 0, 0, 0, 0, time.UTC).Weekday(); wd != time.Monday {
		t.Fatalf("9-9-1996 is %v", wd)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 1, RequestsPerHour: 50})
	b := Generate(Config{Seed: 1, RequestsPerHour: 50})
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("nondeterministic request count")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestRequestsWithinSpanAndDomain(t *testing.T) {
	tr := Generate(Config{Seed: 2, RequestsPerHour: 30})
	start, end := Span()
	for _, r := range tr.Requests {
		if r.Time.Before(start) || !r.Time.Before(end) {
			t.Fatalf("request at %v outside trace span", r.Time)
		}
		if r.Type < 0 || r.Type >= NumTypes {
			t.Fatalf("request type %d outside [0, %d)", r.Type, NumTypes)
		}
		if r.Bytes < 0 {
			t.Fatalf("negative response size %d", r.Bytes)
		}
	}
}

func TestSegmentSixHourBlocks(t *testing.T) {
	tr := Generate(Config{Seed: 3, RequestsPerHour: 30})
	blocks, infos, err := tr.Segment(6)
	if err != nil {
		t.Fatal(err)
	}
	// Noon 9-2 to midnight 9-22 is 490 hours... the paper counts 82 blocks.
	if len(blocks) != 82 {
		t.Fatalf("6-hour segmentation yields %d blocks, want 82", len(blocks))
	}
	if len(infos) != len(blocks) {
		t.Fatal("infos and blocks disagree")
	}
	total := 0
	prevEnd := 0
	for i, b := range blocks {
		if b.ID != infos[i].ID {
			t.Fatal("id mismatch")
		}
		if b.FirstTID != prevEnd {
			t.Fatalf("block %d FirstTID %d, want %d", i, b.FirstTID, prevEnd)
		}
		prevEnd += b.Len()
		total += b.Len()
		for _, tx := range b.Txs {
			if len(tx.Items) != 2 {
				t.Fatalf("transaction with %d items, want 2", len(tx.Items))
			}
			if tx.Items[0] >= NumTypes || tx.Items[1] < BucketItemBase {
				t.Fatalf("transaction items %v malformed", tx.Items)
			}
		}
	}
	if total != len(tr.Requests) {
		t.Fatalf("segmented %d transactions, trace has %d requests", total, len(tr.Requests))
	}
}

func TestSegmentGranularities(t *testing.T) {
	tr := Generate(Config{Seed: 4, RequestsPerHour: 10})
	wants := map[int]int{4: 123, 6: 82, 8: 62, 12: 41, 24: 21}
	for g, want := range wants {
		blocks, _, err := tr.Segment(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != want {
			t.Errorf("granularity %dh: %d blocks, want %d", g, len(blocks), want)
		}
	}
	if _, _, err := tr.Segment(0); err == nil {
		t.Fatal("Segment accepted granularity 0")
	}
}

func TestBlockInfoLabel(t *testing.T) {
	tr := Generate(Config{Seed: 5, RequestsPerHour: 5})
	_, infos, err := tr.Segment(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := infos[0].Label(); got != "Mon 09-02 12:00-18:00" {
		t.Fatalf("first block label = %q", got)
	}
	if infos[0].Kind != Weekend {
		t.Fatalf("Labor Day block kind = %v", infos[0].Kind)
	}
}

// TestSimilarityStructure verifies the trace reproduces the paper's
// findings: same-kind working-day blocks are similar, the anomalous Monday
// and weekend blocks are dissimilar from working-day blocks, and late-night
// weekday blocks look like weekend blocks.
func TestSimilarityStructure(t *testing.T) {
	tr := Generate(Config{Seed: 6, RequestsPerHour: 400})
	blocks, infos, err := tr.Segment(24)
	if err != nil {
		t.Fatal(err)
	}
	d := focus.ItemsetDiffer{MinSupport: 0.01}

	find := func(day int) int {
		for i, info := range infos {
			if info.Start.Day() == day {
				return i
			}
		}
		t.Fatalf("no block starting on 9-%d", day)
		return -1
	}
	tue1 := find(3)  // Tuesday 9-3
	wed1 := find(4)  // Wednesday 9-4
	mon2 := find(9)  // anomalous Monday
	sat := find(7)   // Saturday
	tue2 := find(10) // Tuesday 9-10

	similar := func(i, j int) bool {
		ok, _, err := focus.Similar[*itemset.TxBlock](d, blocks[i], blocks[j], 0.01)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}

	if !similar(tue1, wed1) {
		t.Error("adjacent working days dissimilar")
	}
	if !similar(tue1, tue2) {
		t.Error("working days a week apart dissimilar")
	}
	if similar(tue1, mon2) {
		t.Error("anomalous Monday similar to a working day")
	}
	if similar(tue1, sat) {
		t.Error("Saturday similar to a working day")
	}
	if similar(mon2, sat) {
		t.Error("anomalous Monday similar to Saturday (profiles should differ)")
	}
}

// TestNightBlocksResembleWeekends checks the "late night weekday blocks can
// be similar to blocks on weekends" finding at 4-hour granularity.
func TestNightBlocksResembleWeekends(t *testing.T) {
	tr := Generate(Config{Seed: 7, RequestsPerHour: 400})
	blocks, infos, err := tr.Segment(4)
	if err != nil {
		t.Fatal(err)
	}
	d := focus.ItemsetDiffer{MinSupport: 0.01}

	var night, weekendDay int
	night, weekendDay = -1, -1
	for i, info := range infos {
		// A 0:00-4:00 block on a working day.
		if night < 0 && info.Kind == Workday && info.Start.Hour() == 0 {
			night = i
		}
		// A Saturday midday block.
		if weekendDay < 0 && info.Start.Weekday() == time.Saturday && info.Start.Hour() == 12 {
			weekendDay = i
		}
	}
	if night < 0 || weekendDay < 0 {
		t.Fatal("required blocks not found")
	}
	ok, dev, err := focus.Similar[*itemset.TxBlock](d, blocks[night], blocks[weekendDay], 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("weekday night block not similar to weekend block: %+v", dev)
	}
}

func TestDayKindString(t *testing.T) {
	if Workday.String() != "workday" || Weekend.String() == "" || Anomalous.String() == "" {
		t.Fatal("DayKind.String broken")
	}
	if DayKind(9).String() == "" {
		t.Fatal("unknown DayKind printed empty")
	}
}
