package cf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestNewCF(t *testing.T) {
	c := NewCF(Point{3, 4})
	if c.N != 1 || c.LS[0] != 3 || c.LS[1] != 4 || !almostEqual(c.SS, 25) {
		t.Fatalf("NewCF = %+v", c)
	}
	// Independence from the input point.
	p := Point{1, 2}
	c = NewCF(p)
	p[0] = 99
	if c.LS[0] != 1 {
		t.Fatal("NewCF aliases input point")
	}
}

func TestCFAdd(t *testing.T) {
	a := NewCF(Point{1, 0})
	b := NewCF(Point{3, 4})
	s := a.Add(b)
	if s.N != 2 || s.LS[0] != 4 || s.LS[1] != 4 || !almostEqual(s.SS, 26) {
		t.Fatalf("Add = %+v", s)
	}
	// Adding a zero CF is identity.
	if got := a.Add(CF{}); got.N != 1 || got.LS[0] != 1 {
		t.Fatalf("Add zero = %+v", got)
	}
	if got := (CF{}).Add(b); got.N != 1 || got.LS[1] != 4 {
		t.Fatalf("zero Add = %+v", got)
	}
}

func TestCFAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	NewCF(Point{1}).Add(NewCF(Point{1, 2}))
}

func TestCentroid(t *testing.T) {
	c := NewCF(Point{0, 0}).AddPoint(Point{2, 4})
	got := c.Centroid()
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Centroid = %v", got)
	}
	if got := (CF{LS: make([]float64, 2)}).Centroid(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Centroid = %v", got)
	}
}

// TestRadiusMatchesDefinition verifies the CF-only radius formula against
// the direct definition on random point sets.
func TestRadiusMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		dim := 1 + rng.Intn(4)
		pts := make([]Point, n)
		c := Zero(dim)
		for i := range pts {
			pts[i] = make(Point, dim)
			for d := range pts[i] {
				pts[i][d] = rng.NormFloat64() * 10
			}
			c = c.AddPoint(pts[i])
		}
		cent := c.Centroid()
		var sum float64
		for _, p := range pts {
			d := Distance(p, cent)
			sum += d * d
		}
		want := math.Sqrt(sum / float64(n))
		if got := c.Radius(); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: Radius = %v, want %v", trial, got, want)
		}
	}
}

// TestDiameterMatchesDefinition verifies the CF-only diameter formula
// against the direct pairwise definition.
func TestDiameterMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		dim := 1 + rng.Intn(3)
		pts := make([]Point, n)
		c := Zero(dim)
		for i := range pts {
			pts[i] = make(Point, dim)
			for d := range pts[i] {
				pts[i][d] = rng.NormFloat64() * 5
			}
			c = c.AddPoint(pts[i])
		}
		var sum float64
		for i := range pts {
			for j := range pts {
				if i == j {
					continue
				}
				d := Distance(pts[i], pts[j])
				sum += d * d
			}
		}
		want := math.Sqrt(sum / float64(n*(n-1)))
		if got := c.Diameter(); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: Diameter = %v, want %v", trial, got, want)
		}
	}
}

func TestSinglePointRadiusDiameterZero(t *testing.T) {
	c := NewCF(Point{5, -3})
	if c.Radius() != 0 {
		t.Fatalf("single point radius = %v", c.Radius())
	}
	if c.Diameter() != 0 {
		t.Fatalf("single point diameter = %v", c.Diameter())
	}
}

// Property: CF addition is commutative and associative (up to float noise).
func TestCFAddProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if math.IsNaN(ax + ay + bx + by + cx + cy) {
			return true
		}
		clamp := func(v float64) float64 {
			if v > 1e6 {
				return 1e6
			}
			if v < -1e6 {
				return -1e6
			}
			return v
		}
		a := NewCF(Point{clamp(ax), clamp(ay)})
		b := NewCF(Point{clamp(bx), clamp(by)})
		c := NewCF(Point{clamp(cx), clamp(cy)})
		ab := a.Add(b)
		ba := b.Add(a)
		if ab.N != ba.N || !almostEqual(ab.SS, ba.SS) || !almostEqual(ab.LS[0], ba.LS[0]) {
			return false
		}
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		return l.N == r.N && almostEqual(l.SS, r.SS) &&
			almostEqual(l.LS[0], r.LS[0]) && almostEqual(l.LS[1], r.LS[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	if got := Distance(Point{0, 0}, Point{3, 4}); !almostEqual(got, 5) {
		t.Fatalf("Distance = %v, want 5", got)
	}
}

func TestCentroidDistance(t *testing.T) {
	a := NewCF(Point{0, 0}).AddPoint(Point{2, 0}) // centroid (1, 0)
	b := NewCF(Point{4, 0})                       // centroid (4, 0)
	if got := a.CentroidDistance(b); !almostEqual(got, 3) {
		t.Fatalf("CentroidDistance = %v, want 3", got)
	}
}
