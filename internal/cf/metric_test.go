package cf

import (
	"math"
	"math/rand"
	"testing"
)

// randomClusterPair draws two random point sets and their CFs.
func randomClusterPair(rng *rand.Rand) (a, b []Point, ca, cb CF) {
	dim := 1 + rng.Intn(3)
	mk := func(n int, off float64) ([]Point, CF) {
		pts := make([]Point, n)
		c := Zero(dim)
		for i := range pts {
			p := make(Point, dim)
			for d := range p {
				p[d] = rng.NormFloat64()*3 + off
			}
			pts[i] = p
			c = c.AddPoint(p)
		}
		return pts, c
	}
	a, ca = mk(2+rng.Intn(10), 0)
	b, cb = mk(2+rng.Intn(10), rng.Float64()*10)
	return a, b, ca, cb
}

func TestD2MatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		a, b, ca, cb := randomClusterPair(rng)
		var sum float64
		for _, p := range a {
			for _, q := range b {
				d := Distance(p, q)
				sum += d * d
			}
		}
		want := math.Sqrt(sum / float64(len(a)*len(b)))
		got := D2.Between(ca, cb)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: D2 = %v, want %v", trial, got, want)
		}
	}
}

func TestD3MatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		a, b, ca, cb := randomClusterPair(rng)
		all := append(append([]Point{}, a...), b...)
		var sum float64
		for i := range all {
			for j := range all {
				if i == j {
					continue
				}
				d := Distance(all[i], all[j])
				sum += d * d
			}
		}
		n := float64(len(all))
		want := math.Sqrt(sum / (n * (n - 1)))
		got := D3.Between(ca, cb)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: D3 = %v, want %v", trial, got, want)
		}
	}
}

func TestD4MatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wss := func(pts []Point) float64 {
		c := Zero(len(pts[0]))
		for _, p := range pts {
			c = c.AddPoint(p)
		}
		cent := c.Centroid()
		var s float64
		for _, p := range pts {
			d := Distance(p, cent)
			s += d * d
		}
		return s
	}
	for trial := 0; trial < 25; trial++ {
		a, b, ca, cb := randomClusterPair(rng)
		all := append(append([]Point{}, a...), b...)
		want := math.Sqrt(math.Max(0, wss(all)-wss(a)-wss(b)))
		got := D4.Between(ca, cb)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: D4 = %v, want %v", trial, got, want)
		}
	}
}

func TestD0D1(t *testing.T) {
	a := NewCF(Point{0, 0})
	b := NewCF(Point{3, 4})
	if got := D0.Between(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("D0 = %v", got)
	}
	if got := D1.Between(a, b); math.Abs(got-7) > 1e-12 {
		t.Fatalf("D1 = %v", got)
	}
}

func TestMetricStringAndValidation(t *testing.T) {
	names := map[Metric]string{D0: "D0", D1: "D1", D2: "D2", D3: "D3", D4: "D4"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %q", m, m.String())
		}
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric printed empty")
	}
	cfg := TreeConfig{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 8, Metric: Metric(9)}
	if _, err := NewTree(cfg); err == nil {
		t.Error("accepted unknown metric")
	}
}

func TestMetricBetweenPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Between on unknown metric did not panic")
		}
	}()
	Metric(9).Between(NewCF(Point{1}), NewCF(Point{2}))
}

// TestTreeWorksUnderEveryMetric: the CF-tree must preserve mass and respect
// its budget regardless of the descent metric.
func TestTreeWorksUnderEveryMetric(t *testing.T) {
	for _, m := range []Metric{D0, D1, D2, D3, D4} {
		t.Run(m.String(), func(t *testing.T) {
			cfg := TreeConfig{Branching: 4, LeafEntries: 8, MaxLeafEntriesTotal: 64, Metric: m}
			tree := newTestTree(t, cfg)
			rng := rand.New(rand.NewSource(4))
			n := 1500
			for i := 0; i < n; i++ {
				c := Point{float64(i%3) * 40, 0}
				p := Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
				if err := tree.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, sc := range tree.SubClusters() {
				total += sc.N
			}
			if total != n {
				t.Fatalf("mass %d, want %d", total, n)
			}
			if tree.NumSubClusters() > cfg.MaxLeafEntriesTotal {
				t.Fatalf("budget exceeded: %d", tree.NumSubClusters())
			}
		})
	}
}
