package cf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/diskio"
)

func buildTestTree(t *testing.T, cfg TreeConfig, n int, seed int64) *Tree {
	t.Helper()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := Point{rng.NormFloat64(), rng.NormFloat64() + float64(i%4)*5}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

func TestTreeCodecRoundTrip(t *testing.T) {
	cfgs := []TreeConfig{
		{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 16},
		{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 16,
			OutlierBuffering: true, OutlierMaxN: 2},
	}
	for _, cfg := range cfgs {
		tree := buildTestTree(t, cfg, 200, 7)
		enc := tree.Encode()
		dec, err := DecodeTree(cfg, enc)
		if err != nil {
			t.Fatal(err)
		}
		// The decoded tree is bit-for-bit the encoded one.
		if !bytes.Equal(dec.Encode(), enc) {
			t.Fatal("re-encoding a decoded tree changed the bytes")
		}
		if dec.NumPoints() != tree.NumPoints() || dec.NumSubClusters() != tree.NumSubClusters() ||
			dec.Threshold() != tree.Threshold() || dec.Rebuilds() != tree.Rebuilds() {
			t.Fatalf("decoded counters diverge: %d/%d points, %d/%d subclusters",
				dec.NumPoints(), tree.NumPoints(), dec.NumSubClusters(), tree.NumSubClusters())
		}
		// And behaves identically under further insertions.
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			p := Point{rng.NormFloat64(), rng.NormFloat64()}
			if err := tree.Insert(p); err != nil {
				t.Fatal(err)
			}
			if err := dec.Insert(append(Point(nil), p...)); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(dec.Encode(), tree.Encode()) {
			t.Fatal("decoded tree diverges from original under further insertions")
		}
	}
}

func TestTreeCodecRoundTripEmpty(t *testing.T) {
	cfg := DefaultTreeConfig()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTree(cfg, tree.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if dec.NumPoints() != 1 {
		t.Fatalf("points = %d", dec.NumPoints())
	}
}

func TestDecodeTreeRejectsDamage(t *testing.T) {
	cfg := TreeConfig{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 16}
	enc := buildTestTree(t, cfg, 120, 11).Encode()

	if _, err := DecodeTree(cfg, append(bytes.Clone(enc), 0)); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v", err)
	}
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeTree(cfg, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	// A lying leaf-count header is rejected.
	bad := bytes.Clone(enc)
	// Field 2 is numLeafCFs; bump it (single-byte uvarint for small trees
	// stays single-byte when incremented below 0x7f).
	dimLen := 1 // dim is 2: one byte
	if bad[dimLen] >= 0x7e {
		t.Skip("leaf count not a small uvarint")
	}
	bad[dimLen]++
	if _, err := DecodeTree(cfg, bad); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("leaf-count mismatch: err = %v", err)
	}
}
