package cf

import (
	"fmt"
	"math"
)

// TreeConfig parameterizes a CF-tree.
type TreeConfig struct {
	// Branching is the maximum number of entries in a non-leaf node (B in
	// ZRL96). Must be at least 2.
	Branching int
	// LeafEntries is the maximum number of entries in a leaf node (L).
	// Must be at least 2.
	LeafEntries int
	// Threshold is the initial absorption threshold T: a leaf entry absorbs
	// a CF only if the merged entry's diameter stays within T. Zero starts
	// the tree fully discriminating and lets rebuilds grow T.
	Threshold float64
	// MaxLeafEntriesTotal caps the total number of leaf entries (the
	// "tennis balls"); exceeding it triggers a rebuild with a larger
	// threshold, modelling BIRCH's fixed memory budget. Must be at least 2.
	MaxLeafEntriesTotal int
	// OutlierBuffering enables ZRL96's outlier treatment: during a rebuild,
	// sparse leaf entries (fewer points than OutlierMaxN) are parked in an
	// outlier buffer instead of reinserted; each later rebuild retries them
	// against the grown threshold, reabsorbing any that now fit a dense
	// region. Buffered entries are excluded from SubClusters but reported
	// by Outliers.
	OutlierBuffering bool
	// OutlierMaxN is the largest point count a leaf entry may have and
	// still be considered an outlier candidate. Defaults to 1.
	OutlierMaxN int
	// Metric selects the ZRL96 cluster distance used to pick the closest
	// entry while descending (default D0, centroid Euclidean).
	Metric Metric
}

// DefaultTreeConfig returns the configuration used by the experiments:
// branching 8, 16 leaf entries per node, 512 sub-clusters total.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{Branching: 8, LeafEntries: 16, MaxLeafEntriesTotal: 512}
}

func (c TreeConfig) validate() error {
	if c.Branching < 2 {
		return fmt.Errorf("cf: branching factor %d < 2", c.Branching)
	}
	if c.LeafEntries < 2 {
		return fmt.Errorf("cf: leaf entries %d < 2", c.LeafEntries)
	}
	if c.MaxLeafEntriesTotal < 2 {
		return fmt.Errorf("cf: max leaf entries total %d < 2", c.MaxLeafEntriesTotal)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("cf: negative threshold %v", c.Threshold)
	}
	if c.OutlierMaxN < 0 {
		return fmt.Errorf("cf: negative outlier max %d", c.OutlierMaxN)
	}
	if !c.Metric.valid() {
		return fmt.Errorf("cf: unknown metric %d", int(c.Metric))
	}
	return nil
}

func (c TreeConfig) outlierMaxN() int {
	if c.OutlierMaxN == 0 {
		return 1
	}
	return c.OutlierMaxN
}

// Tree is a CF-tree: a height-balanced tree of cluster features. Leaf
// entries are the sub-clusters; interior entries summarize their subtrees.
type Tree struct {
	cfg        TreeConfig
	root       *node
	dim        int
	numLeafCFs int
	threshold  float64
	rebuilds   int
	points     int
	outliers   []CF
}

type node struct {
	leaf    bool
	entries []entry
}

type entry struct {
	cf    CF
	child *node // nil iff the owning node is a leaf
}

// NewTree creates an empty CF-tree.
func NewTree(cfg TreeConfig) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:       cfg,
		root:      &node{leaf: true},
		threshold: cfg.Threshold,
	}, nil
}

// Threshold returns the current absorption threshold (grows on rebuilds).
func (t *Tree) Threshold() float64 { return t.threshold }

// Rebuilds returns how many times the tree was rebuilt with a larger
// threshold.
func (t *Tree) Rebuilds() int { return t.rebuilds }

// NumPoints returns the number of points inserted so far.
func (t *Tree) NumPoints() int { return t.points }

// NumSubClusters returns the current number of leaf entries.
func (t *Tree) NumSubClusters() int { return t.numLeafCFs }

// Insert adds one point, splitting and rebuilding as needed.
func (t *Tree) Insert(p Point) error {
	if t.dim == 0 {
		t.dim = len(p)
	} else if len(p) != t.dim {
		return fmt.Errorf("cf: point dimension %d, tree dimension %d", len(p), t.dim)
	}
	t.insertCF(NewCF(p))
	t.points++
	if t.numLeafCFs > t.cfg.MaxLeafEntriesTotal {
		t.rebuild()
	}
	return nil
}

// insertCF inserts a cluster feature (a point's CF or, during rebuilds, a
// whole sub-cluster).
func (t *Tree) insertCF(c CF) {
	extra := t.insert(t.root, c)
	if extra != nil {
		// Root split: grow the tree by one level.
		oldRoot := t.root
		left := entry{cf: sumEntries(oldRoot.entries), child: oldRoot}
		t.root = &node{leaf: false, entries: []entry{left, *extra}}
	}
}

// insert descends to the closest child, absorbing or adding at the leaf, and
// returns a new sibling entry when n split.
func (t *Tree) insert(n *node, c CF) *entry {
	if n.leaf {
		if len(n.entries) > 0 {
			best := t.closest(n.entries, c)
			merged := n.entries[best].cf.Add(c)
			if merged.Diameter() <= t.threshold {
				n.entries[best].cf = merged
				return nil
			}
		}
		n.entries = append(n.entries, entry{cf: c})
		t.numLeafCFs++
		if len(n.entries) > t.cfg.LeafEntries {
			return t.split(n)
		}
		return nil
	}
	best := t.closest(n.entries, c)
	extra := t.insert(n.entries[best].child, c)
	if extra == nil {
		n.entries[best].cf = n.entries[best].cf.Add(c)
		return nil
	}
	// The child split: part of its mass moved to the new sibling, so the
	// surviving child's entry is recomputed rather than incremented.
	n.entries[best].cf = sumEntries(n.entries[best].child.entries)
	n.entries = append(n.entries, *extra)
	if len(n.entries) > t.cfg.Branching {
		return t.split(n)
	}
	return nil
}

// closest returns the index of the entry nearest to c under the configured
// metric.
func (t *Tree) closest(entries []entry, c CF) int {
	best, bestD := 0, math.Inf(1)
	for i := range entries {
		d := t.cfg.Metric.Between(entries[i].cf, c)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// split divides an overflowing node around its two farthest entries and
// returns the entry for the new sibling; n keeps the first group.
func (t *Tree) split(n *node) *entry {
	seedA, seedB := farthestPair(n.entries)
	groupA := make([]entry, 0, len(n.entries))
	groupB := make([]entry, 0, len(n.entries))
	ca := n.entries[seedA].cf.Centroid()
	cb := n.entries[seedB].cf.Centroid()
	for i, e := range n.entries {
		switch {
		case i == seedA:
			groupA = append(groupA, e)
		case i == seedB:
			groupB = append(groupB, e)
		case Distance(e.cf.Centroid(), ca) <= Distance(e.cf.Centroid(), cb):
			groupA = append(groupA, e)
		default:
			groupB = append(groupB, e)
		}
	}
	n.entries = groupA
	sibling := &node{leaf: n.leaf, entries: groupB}
	return &entry{cf: sumEntries(groupB), child: sibling}
}

// farthestPair returns the indices of the two entries with maximum centroid
// distance (O(k²), k ≤ branching factor).
func farthestPair(entries []entry) (int, int) {
	bi, bj, bd := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		ci := entries[i].cf.Centroid()
		for j := i + 1; j < len(entries); j++ {
			d := Distance(ci, entries[j].cf.Centroid())
			if d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj
}

func sumEntries(entries []entry) CF {
	if len(entries) == 0 {
		return CF{}
	}
	acc := entries[0].cf.Clone()
	for _, e := range entries[1:] {
		acc = acc.Add(e.cf)
	}
	return acc
}

// rebuild raises the threshold and reinserts all leaf CFs, shrinking the
// tree — the BIRCH response to exhausting the memory budget. With outlier
// buffering enabled, sparse entries are parked instead of reinserted, and
// previously parked outliers are retried against the grown threshold.
func (t *Tree) rebuild() {
	leaves := t.SubClusters()
	newT := t.suggestThreshold(leaves)
	if newT <= t.threshold {
		newT = t.threshold*1.5 + 1e-9
	}
	t.threshold = newT
	t.reinsert(leaves)
	// If the heuristic threshold did not shrink the tree enough, keep
	// growing it geometrically; the loop terminates because a large enough
	// threshold absorbs everything into few entries.
	for t.numLeafCFs > t.cfg.MaxLeafEntriesTotal {
		leaves = t.SubClusters()
		t.threshold = t.threshold*1.5 + 1e-9
		t.reinsert(leaves)
	}
	t.rebuilds++
}

// reinsert rebuilds the tree from the given leaf CFs at the current
// threshold, applying the outlier policy.
func (t *Tree) reinsert(leaves []CF) {
	t.root = &node{leaf: true}
	t.numLeafCFs = 0
	if !t.cfg.OutlierBuffering {
		for _, c := range leaves {
			t.insertCF(c)
		}
		return
	}
	maxN := t.cfg.outlierMaxN()
	var parked []CF
	for _, c := range leaves {
		if c.N <= maxN {
			parked = append(parked, c)
			continue
		}
		t.insertCF(c)
	}
	// Retry old and new outliers: an entry that now fits within the grown
	// threshold of its closest dense region is reabsorbed.
	parked = append(parked, t.outliers...)
	t.outliers = t.outliers[:0]
	for _, c := range parked {
		if t.wouldAbsorb(c) {
			t.insertCF(c)
		} else {
			t.outliers = append(t.outliers, c)
		}
	}
}

// wouldAbsorb reports whether inserting c would merge into an existing leaf
// entry (rather than opening a new sparse entry).
func (t *Tree) wouldAbsorb(c CF) bool {
	n := t.root
	for !n.leaf {
		if len(n.entries) == 0 {
			return false
		}
		n = n.entries[t.closest(n.entries, c)].child
	}
	if len(n.entries) == 0 {
		return false
	}
	merged := n.entries[t.closest(n.entries, c)].cf.Add(c)
	return merged.Diameter() <= t.threshold
}

// Outliers returns the buffered outlier entries (empty unless
// OutlierBuffering is enabled).
func (t *Tree) Outliers() []CF {
	out := make([]CF, len(t.outliers))
	for i, c := range t.outliers {
		out[i] = c.Clone()
	}
	return out
}

// suggestThreshold estimates the next threshold as the average distance of
// each sub-cluster centroid to its nearest neighbour — merging typical
// nearest pairs roughly halves the leaf count.
func (t *Tree) suggestThreshold(leaves []CF) float64 {
	if len(leaves) < 2 {
		return t.threshold * 2
	}
	cents := make([]Point, len(leaves))
	for i, c := range leaves {
		cents[i] = c.Centroid()
	}
	var sum float64
	for i := range cents {
		best := math.Inf(1)
		for j := range cents {
			if i == j {
				continue
			}
			if d := Distance(cents[i], cents[j]); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(cents))
}

// SubClusters returns a copy of all leaf cluster features — the set C the
// DEMON paper keeps in memory between blocks.
func (t *Tree) SubClusters() []CF {
	var out []CF
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, e := range n.entries {
				out = append(out, e.cf.Clone())
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return out
}

// Validate checks the CF-tree invariants: interior entries summarize their
// subtrees exactly, node sizes respect the configuration, and all leaves are
// at the same depth. Used by tests.
func (t *Tree) Validate() error {
	depths := make(map[int]bool)
	var walk func(n *node, depth int) (CF, error)
	walk = func(n *node, depth int) (CF, error) {
		if n.leaf {
			depths[depth] = true
			if len(n.entries) > t.cfg.LeafEntries {
				return CF{}, fmt.Errorf("cf: leaf with %d entries > %d", len(n.entries), t.cfg.LeafEntries)
			}
			return sumEntries(n.entries), nil
		}
		if len(n.entries) > t.cfg.Branching {
			return CF{}, fmt.Errorf("cf: interior node with %d entries > %d", len(n.entries), t.cfg.Branching)
		}
		acc := CF{}
		for _, e := range n.entries {
			sub, err := walk(e.child, depth+1)
			if err != nil {
				return CF{}, err
			}
			if sub.N != e.cf.N || math.Abs(sub.SS-e.cf.SS) > 1e-6*(1+math.Abs(sub.SS)) {
				return CF{}, fmt.Errorf("cf: interior entry out of sync: N %d vs %d", e.cf.N, sub.N)
			}
			acc = acc.Add(sub)
		}
		return acc, nil
	}
	total, err := walk(t.root, 0)
	if err != nil {
		return err
	}
	outlierN := 0
	for _, c := range t.outliers {
		outlierN += c.N
	}
	if total.N+outlierN != t.points {
		return fmt.Errorf("cf: tree summarizes %d points (+%d outliers), inserted %d",
			total.N, outlierN, t.points)
	}
	if len(depths) > 1 {
		return fmt.Errorf("cf: leaves at multiple depths %v", depths)
	}
	return nil
}
