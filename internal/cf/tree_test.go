package cf

import (
	"math"
	"math/rand"
	"testing"
)

func newTestTree(t *testing.T, cfg TreeConfig) *Tree {
	t.Helper()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewTreeValidatesConfig(t *testing.T) {
	bad := []TreeConfig{
		{Branching: 1, LeafEntries: 4, MaxLeafEntriesTotal: 10},
		{Branching: 4, LeafEntries: 1, MaxLeafEntriesTotal: 10},
		{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 1},
		{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 10, Threshold: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTree(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTreeInsertPreservesMass(t *testing.T) {
	tree := newTestTree(t, DefaultTreeConfig())
	rng := rand.New(rand.NewSource(3))
	var wantLS0, wantSS float64
	n := 2000
	for i := 0; i < n; i++ {
		p := Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		wantLS0 += p[0]
		wantSS += p[0]*p[0] + p[1]*p[1] + p[2]*p[2]
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if tree.NumPoints() != n {
		t.Fatalf("NumPoints = %d, want %d", tree.NumPoints(), n)
	}
	total := Zero(3)
	for _, c := range tree.SubClusters() {
		total = total.Add(c)
	}
	if total.N != n {
		t.Fatalf("sub-clusters summarize %d points, want %d", total.N, n)
	}
	if math.Abs(total.LS[0]-wantLS0) > 1e-6*(1+math.Abs(wantLS0)) {
		t.Fatalf("LS[0] = %v, want %v", total.LS[0], wantLS0)
	}
	if math.Abs(total.SS-wantSS) > 1e-6*(1+wantSS) {
		t.Fatalf("SS = %v, want %v", total.SS, wantSS)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRespectsLeafBudget(t *testing.T) {
	cfg := TreeConfig{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 32}
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		if err := tree.Insert(Point{rng.Float64() * 100, rng.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tree.NumSubClusters(); got > cfg.MaxLeafEntriesTotal {
		t.Fatalf("NumSubClusters = %d > budget %d", got, cfg.MaxLeafEntriesTotal)
	}
	if tree.Rebuilds() == 0 {
		t.Fatal("expected at least one rebuild on uniform data")
	}
	if tree.Threshold() <= 0 {
		t.Fatal("threshold did not grow")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSeparatesWellSeparatedClusters(t *testing.T) {
	tree := newTestTree(t, DefaultTreeConfig())
	rng := rand.New(rand.NewSource(5))
	centers := []Point{{0, 0}, {100, 0}, {0, 100}}
	for i := 0; i < 1500; i++ {
		c := centers[i%3]
		p := Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Every sub-cluster centroid must sit near exactly one true center.
	for _, sc := range tree.SubClusters() {
		cent := sc.Centroid()
		best := math.Inf(1)
		for _, c := range centers {
			if d := Distance(cent, c); d < best {
				best = d
			}
		}
		if best > 10 {
			t.Fatalf("sub-cluster centroid %v is %v away from all true centers", cent, best)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRejectsDimensionChange(t *testing.T) {
	tree := newTestTree(t, DefaultTreeConfig())
	if err := tree.Insert(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(Point{1, 2, 3}); err == nil {
		t.Fatal("Insert accepted dimension change")
	}
}

func TestTreeIdenticalPointsAbsorb(t *testing.T) {
	tree := newTestTree(t, TreeConfig{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 8})
	for i := 0; i < 100; i++ {
		if err := tree.Insert(Point{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Identical points have zero diameter and must absorb into one entry
	// even at threshold zero.
	if got := tree.NumSubClusters(); got != 1 {
		t.Fatalf("NumSubClusters = %d, want 1", got)
	}
	sc := tree.SubClusters()
	if sc[0].N != 100 {
		t.Fatalf("sub-cluster N = %d, want 100", sc[0].N)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeOrderInsensitivity(t *testing.T) {
	// BIRCH is robust (not exactly invariant) to input order; on well
	// separated data the per-center point mass must match regardless of
	// order.
	centers := []Point{{0, 0}, {1000, 1000}}
	rng := rand.New(rand.NewSource(6))
	pts := make([]Point, 600)
	for i := range pts {
		c := centers[i%2]
		pts[i] = Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	massPerCenter := func(order []Point) [2]int {
		tree := newTestTree(t, DefaultTreeConfig())
		for _, p := range order {
			if err := tree.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		var mass [2]int
		for _, sc := range tree.SubClusters() {
			cent := sc.Centroid()
			if Distance(cent, centers[0]) < Distance(cent, centers[1]) {
				mass[0] += sc.N
			} else {
				mass[1] += sc.N
			}
		}
		return mass
	}
	m1 := massPerCenter(pts)
	shuffled := make([]Point, len(pts))
	copy(shuffled, pts)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	m2 := massPerCenter(shuffled)
	if m1 != m2 {
		t.Fatalf("order changed the per-center mass: %v vs %v", m1, m2)
	}
	if m1[0] != 300 || m1[1] != 300 {
		t.Fatalf("mass = %v, want [300 300]", m1)
	}
}

func TestOutlierBuffering(t *testing.T) {
	cfg := TreeConfig{
		Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 16,
		OutlierBuffering: true,
	}
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(7))
	// Two dense clusters plus isolated noise points far away.
	n := 0
	for i := 0; i < 2000; i++ {
		var p Point
		if i%100 == 99 {
			p = Point{rng.Float64()*1e4 + 1e4, rng.Float64()*1e4 + 1e4} // noise
		} else if i%2 == 0 {
			p = Point{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			p = Point{100 + rng.NormFloat64(), 100 + rng.NormFloat64()}
		}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	outliers := tree.Outliers()
	if len(outliers) == 0 {
		t.Fatal("no outliers buffered despite isolated noise")
	}
	// Mass conservation: sub-clusters + outliers cover every point.
	total := 0
	for _, c := range tree.SubClusters() {
		total += c.N
	}
	for _, c := range outliers {
		total += c.N
	}
	if total != n {
		t.Fatalf("mass = %d, want %d", total, n)
	}
	// Buffered outliers are sparse by construction.
	for _, c := range outliers {
		if c.N > 1 {
			t.Fatalf("outlier with %d points exceeds OutlierMaxN 1", c.N)
		}
	}
}

func TestOutlierReabsorption(t *testing.T) {
	cfg := TreeConfig{
		Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 8,
		OutlierBuffering: true,
	}
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(8))
	// Uniform data forces repeated rebuilds with growing thresholds; as the
	// threshold grows, parked outliers must eventually be reabsorbed.
	for i := 0; i < 3000; i++ {
		if err := tree.Insert(Point{rng.Float64() * 50, rng.Float64() * 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range tree.SubClusters() {
		total += c.N
	}
	// With a threshold large enough to satisfy the 8-entry budget over
	// uniform data, nearly everything is dense: outliers must be a tiny
	// fraction.
	if out := 3000 - total; out > 60 {
		t.Fatalf("%d points still buffered as outliers", out)
	}
}

func TestOutlierConfigValidation(t *testing.T) {
	cfg := TreeConfig{Branching: 4, LeafEntries: 4, MaxLeafEntriesTotal: 8, OutlierMaxN: -1}
	if _, err := NewTree(cfg); err == nil {
		t.Fatal("accepted negative OutlierMaxN")
	}
}
