// Package cf implements cluster features and the CF-tree of BIRCH (Zhang,
// Ramakrishnan, Livny, SIGMOD 1996), the pre-clustering phase the DEMON
// paper's BIRCH+ algorithm keeps resident across block arrivals. A cluster
// feature CF = (N, LS, SS) summarizes a set of points by its cardinality,
// linear sum and squared sum; CFs are additive, which is what makes the set
// of sub-clusters incrementally maintainable under insertions (and not under
// deletions — the motivation for GEMM).
package cf

import (
	"fmt"
	"math"
)

// Point is an n-dimensional point.
type Point []float64

// CF is a cluster feature: the number of points N, their linear sum LS and
// the sum of their squared norms SS.
type CF struct {
	N  int
	LS []float64
	SS float64
}

// NewCF returns the cluster feature of a single point.
func NewCF(p Point) CF {
	ls := make([]float64, len(p))
	copy(ls, p)
	ss := 0.0
	for _, x := range p {
		ss += x * x
	}
	return CF{N: 1, LS: ls, SS: ss}
}

// Zero returns an empty CF of the given dimensionality.
func Zero(dim int) CF {
	return CF{LS: make([]float64, dim)}
}

// Dim returns the dimensionality.
func (c CF) Dim() int { return len(c.LS) }

// Add returns the CF of the union of the two point sets (CF additivity).
func (c CF) Add(o CF) CF {
	if c.N == 0 {
		return o.Clone()
	}
	if o.N == 0 {
		return c.Clone()
	}
	if len(c.LS) != len(o.LS) {
		panic(fmt.Sprintf("cf: dimension mismatch %d vs %d", len(c.LS), len(o.LS)))
	}
	ls := make([]float64, len(c.LS))
	for i := range ls {
		ls[i] = c.LS[i] + o.LS[i]
	}
	return CF{N: c.N + o.N, LS: ls, SS: c.SS + o.SS}
}

// AddPoint returns the CF with one more point absorbed.
func (c CF) AddPoint(p Point) CF { return c.Add(NewCF(p)) }

// Clone returns an independent copy.
func (c CF) Clone() CF {
	ls := make([]float64, len(c.LS))
	copy(ls, c.LS)
	return CF{N: c.N, LS: ls, SS: c.SS}
}

// Centroid returns the mean of the summarized points. The centroid of an
// empty CF is the zero vector.
func (c CF) Centroid() Point {
	out := make(Point, len(c.LS))
	if c.N == 0 {
		return out
	}
	for i, x := range c.LS {
		out[i] = x / float64(c.N)
	}
	return out
}

// Radius returns the BIRCH radius: the root mean squared distance of the
// points to the centroid, computable from the CF alone as
// sqrt(SS/N - ||LS/N||²).
func (c CF) Radius() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	var norm2 float64
	for _, x := range c.LS {
		m := x / n
		norm2 += m * m
	}
	r2 := c.SS/n - norm2
	if r2 < 0 {
		r2 = 0 // numerical noise on single points / collinear data
	}
	return math.Sqrt(r2)
}

// Diameter returns the BIRCH diameter: the root average pairwise distance of
// the summarized points, sqrt((2N·SS - 2||LS||²) / (N(N-1))).
func (c CF) Diameter() float64 {
	if c.N <= 1 {
		return 0
	}
	n := float64(c.N)
	var ls2 float64
	for _, x := range c.LS {
		ls2 += x * x
	}
	d2 := (2*n*c.SS - 2*ls2) / (n * (n - 1))
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}

// CentroidDistance returns the Euclidean distance between the centroids of
// the two CFs (the D0 metric of BIRCH).
func (c CF) CentroidDistance(o CF) float64 {
	return Distance(c.Centroid(), o.Centroid())
}

// Distance returns the Euclidean distance between two points.
func Distance(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cf: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
