package cf

import (
	"fmt"
	"math"
)

// Metric selects one of the five cluster distance definitions of ZRL96,
// all computable from cluster features alone. The CF-tree uses the
// configured metric to pick the closest entry while descending.
type Metric int

const (
	// D0 is the Euclidean distance between centroids.
	D0 Metric = iota
	// D1 is the Manhattan distance between centroids.
	D1
	// D2 is the average inter-cluster distance: the root mean squared
	// distance between points of the two clusters.
	D2
	// D3 is the average intra-cluster distance of the merged cluster (its
	// diameter).
	D3
	// D4 is the variance-increase distance: the growth in total squared
	// deviation caused by merging.
	D4
)

// String names the metric as ZRL96 does.
func (m Metric) String() string {
	switch m {
	case D0:
		return "D0"
	case D1:
		return "D1"
	case D2:
		return "D2"
	case D3:
		return "D3"
	case D4:
		return "D4"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) valid() bool { return m >= D0 && m <= D4 }

// Between evaluates the metric between two non-empty cluster features.
func (m Metric) Between(a, b CF) float64 {
	switch m {
	case D0:
		return a.CentroidDistance(b)
	case D1:
		ca, cb := a.Centroid(), b.Centroid()
		var s float64
		for i := range ca {
			s += math.Abs(ca[i] - cb[i])
		}
		return s
	case D2:
		// D2² = SS1/N1 + SS2/N2 − 2·LS1·LS2/(N1·N2).
		if a.N == 0 || b.N == 0 {
			return 0
		}
		var dot float64
		for i := range a.LS {
			dot += a.LS[i] * b.LS[i]
		}
		d2 := a.SS/float64(a.N) + b.SS/float64(b.N) - 2*dot/(float64(a.N)*float64(b.N))
		if d2 < 0 {
			d2 = 0
		}
		return math.Sqrt(d2)
	case D3:
		return a.Add(b).Diameter()
	case D4:
		// Variance increase: v(C) = SS − ‖LS‖²/N; D4 = √(v(a∪b) − v(a) − v(b)).
		inc := variance(a.Add(b)) - variance(a) - variance(b)
		if inc < 0 {
			inc = 0
		}
		return math.Sqrt(inc)
	default:
		panic(fmt.Sprintf("cf: unknown metric %d", int(m)))
	}
}

// variance returns the total squared deviation from the centroid,
// SS − ‖LS‖²/N.
func variance(c CF) float64 {
	if c.N == 0 {
		return 0
	}
	var ls2 float64
	for _, x := range c.LS {
		ls2 += x * x
	}
	v := c.SS - ls2/float64(c.N)
	if v < 0 {
		v = 0
	}
	return v
}
