package cf

import (
	"fmt"
	"math"

	"github.com/demon-mining/demon/internal/diskio"
)

// Tree serialization for checkpointing BIRCH+. The resident CF-tree is the
// whole incremental state of the cluster maintainer, so persisting it
// (Section 3.2.3) makes a restarted process behaviorally identical to one
// that never stopped: every field that influences future insertions — the
// node structure, the grown threshold, the outlier buffer, the counters that
// drive rebuilds — round-trips exactly. Floats are stored as IEEE-754 bits,
// so a decoded tree is bit-for-bit the encoded one.

// Encode serializes the tree. The configuration is not included; it is
// supplied again at DecodeTree and must match the one the tree was built
// under.
func (t *Tree) Encode() []byte {
	buf := diskio.AppendUvarint(nil, uint64(t.dim))
	buf = diskio.AppendUvarint(buf, uint64(t.numLeafCFs))
	buf = diskio.AppendUvarint(buf, math.Float64bits(t.threshold))
	buf = diskio.AppendUvarint(buf, uint64(t.rebuilds))
	buf = diskio.AppendUvarint(buf, uint64(t.points))
	buf = diskio.AppendUvarint(buf, uint64(len(t.outliers)))
	for _, c := range t.outliers {
		buf = appendCF(buf, c)
	}
	return appendNode(buf, t.root)
}

func appendCF(buf []byte, c CF) []byte {
	buf = diskio.AppendUvarint(buf, uint64(c.N))
	buf = diskio.AppendFloat64s(buf, c.LS)
	return diskio.AppendUvarint(buf, math.Float64bits(c.SS))
}

func appendNode(buf []byte, n *node) []byte {
	leaf := byte(0)
	if n.leaf {
		leaf = 1
	}
	buf = append(buf, leaf)
	buf = diskio.AppendUvarint(buf, uint64(len(n.entries)))
	for _, e := range n.entries {
		buf = appendCF(buf, e.cf)
		if !n.leaf {
			buf = appendNode(buf, e.child)
		}
	}
	return buf
}

// DecodeTree reverses Encode under the given configuration. Trailing bytes,
// implausible structure and leaf-count mismatches are rejected as corrupt —
// a checkpoint that does not describe a well-formed tree must never be
// resumed from silently.
func DecodeTree(cfg TreeConfig, data []byte) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg}

	dim, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding tree dimension: %w", err)
	}
	nLeaf, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding leaf count: %w", err)
	}
	thBits, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding threshold: %w", err)
	}
	rebuilds, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding rebuild count: %w", err)
	}
	points, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding point count: %w", err)
	}
	t.dim = int(dim)
	t.numLeafCFs = int(nLeaf)
	t.threshold = math.Float64frombits(thBits)
	t.rebuilds = int(rebuilds)
	t.points = int(points)

	nOut, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("cf: decoding outlier count: %w", err)
	}
	if nOut > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible outlier count %d", diskio.ErrCorrupt, nOut)
	}
	t.outliers = make([]CF, 0, nOut)
	for i := uint64(0); i < nOut; i++ {
		var c CF
		if c, data, err = readCF(data, t.dim); err != nil {
			return nil, fmt.Errorf("cf: decoding outlier %d: %w", i, err)
		}
		t.outliers = append(t.outliers, c)
	}

	t.root, data, err = readNode(data, t.dim)
	if err != nil {
		return nil, err
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after tree", diskio.ErrCorrupt, len(data))
	}
	if got := countLeafCFs(t.root); got != t.numLeafCFs {
		return nil, fmt.Errorf("%w: tree holds %d leaf entries, header says %d",
			diskio.ErrCorrupt, got, t.numLeafCFs)
	}
	return t, nil
}

func readCF(data []byte, dim int) (CF, []byte, error) {
	n, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return CF{}, nil, err
	}
	ls, data, err := diskio.ReadFloat64s(data)
	if err != nil {
		return CF{}, nil, err
	}
	if n != 0 && len(ls) != dim {
		return CF{}, nil, fmt.Errorf("%w: CF dimension %d, tree dimension %d",
			diskio.ErrCorrupt, len(ls), dim)
	}
	ssBits, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return CF{}, nil, err
	}
	return CF{N: int(n), LS: ls, SS: math.Float64frombits(ssBits)}, data, nil
}

func readNode(data []byte, dim int) (*node, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: truncated tree node", diskio.ErrCorrupt)
	}
	if data[0] > 1 {
		return nil, nil, fmt.Errorf("%w: node leaf flag %d", diskio.ErrCorrupt, data[0])
	}
	n := &node{leaf: data[0] == 1}
	count, data, err := diskio.ReadUvarint(data[1:])
	if err != nil {
		return nil, nil, fmt.Errorf("cf: decoding node entry count: %w", err)
	}
	if count > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: implausible entry count %d", diskio.ErrCorrupt, count)
	}
	n.entries = make([]entry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e entry
		if e.cf, data, err = readCF(data, dim); err != nil {
			return nil, nil, fmt.Errorf("cf: decoding node entry %d: %w", i, err)
		}
		if !n.leaf {
			if e.child, data, err = readNode(data, dim); err != nil {
				return nil, nil, err
			}
		}
		n.entries = append(n.entries, e)
	}
	return n, data, nil
}

func countLeafCFs(n *node) int {
	if n.leaf {
		return len(n.entries)
	}
	total := 0
	for _, e := range n.entries {
		total += countLeafCFs(e.child)
	}
	return total
}
