package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/fup"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
)

// FupConfig parameterizes the FUP-vs-BORDERS ablation: the DEMON paper's
// Section 6 notes that BORDERS improves FUP by reducing scans of the old
// database; this experiment measures both algorithms over the same block
// stream and reports the old-database scan counts and wall-clock times.
type FupConfig struct {
	Scale      float64
	Spec       string
	BlockSize  int
	Steps      int
	MinSupport float64
	Seed       int64
}

// DefaultFupConfig returns the ablation defaults at the given scale.
func DefaultFupConfig(scale float64) FupConfig {
	return FupConfig{
		Scale:      scale,
		Spec:       "2M.20L.1I.4pats.4plen",
		BlockSize:  100_000,
		Steps:      4,
		MinSupport: 0.01,
		Seed:       1,
	}
}

// FupRow is one arrival's comparison.
type FupRow struct {
	Step int
	// FUPTime / BordersTime are the maintenance wall-clock times.
	FUPTime     time.Duration
	BordersTime time.Duration
	// FUPOldScans is the number of full old-database scans FUP performed
	// (one per level with new candidates); BORDERS performs at most a
	// handful of counting rounds, each one scan, and zero when nothing
	// changed.
	FUPOldScans int
	// BordersUpdateInvoked reports whether BORDERS ran its update phase.
	BordersUpdateInvoked bool
	// FrequentAgree reports whether both algorithms produced identical
	// frequent sets (a built-in cross-check).
	FrequentAgree bool
}

// FupVsBorders replays one block stream through both maintainers.
func FupVsBorders(cfg FupConfig) ([]FupRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	qc, err := quest.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	qc.Seed = cfg.Seed
	gen, err := quest.New(qc)
	if err != nil {
		return nil, err
	}
	size := scaledSize(cfg.BlockSize, cfg.Scale)

	store := diskio.NewMemStore()
	blocks := itemset.NewBlockStore(store)
	bordersMT := &borders.Maintainer{
		Store: blocks, Counter: borders.PTScan{Blocks: blocks}, MinSupport: cfg.MinSupport,
	}
	bordersModel := bordersMT.Empty()
	fupMT := &fup.Maintainer{Store: blocks, MinSupport: cfg.MinSupport}
	fupModel := fupMT.Empty()

	var rows []FupRow
	for step := 1; step <= cfg.Steps; step++ {
		blk := gen.Block(blockseq.ID(step), size)
		if err := blocks.Put(blk); err != nil {
			return nil, err
		}

		start := time.Now()
		fst, err := fupMT.AddBlock(fupModel, blk)
		if err != nil {
			return nil, err
		}
		fupTime := time.Since(start)

		start = time.Now()
		bst, err := bordersMT.AddBlock(bordersModel, blk)
		if err != nil {
			return nil, err
		}
		bordersTime := time.Since(start)

		agree := len(fupModel.Frequent) == len(bordersModel.Lattice.Frequent)
		if agree {
			for k, c := range fupModel.Frequent {
				if bordersModel.Lattice.Frequent[k] != c {
					agree = false
					break
				}
			}
		}
		rows = append(rows, FupRow{
			Step:                 step,
			FUPTime:              fupTime,
			BordersTime:          bordersTime,
			FUPOldScans:          fst.OldDBScans,
			BordersUpdateInvoked: bst.UpdateInvoked,
			FrequentAgree:        agree,
		})
	}
	return rows, nil
}

// WriteFupVsBorders renders the ablation rows.
func WriteFupVsBorders(w io.Writer, rows []FupRow) {
	fmt.Fprintln(w, "Ablation: FUP vs BORDERS maintenance per block arrival")
	fmt.Fprintf(w, "%6s %10s %12s %14s %14s %8s\n",
		"step", "FUP", "BORDERS", "FUP:oldscans", "BORDERS:upd", "agree")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10.4f %12.4f %14d %14v %8v\n",
			r.Step, r.FUPTime.Seconds(), r.BordersTime.Seconds(),
			r.FUPOldScans, r.BordersUpdateInvoked, r.FrequentAgree)
	}
}
