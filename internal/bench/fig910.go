package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pattern"
	"github.com/demon-mining/demon/internal/proxysim"
)

// Fig9Config parameterizes the qualitative pattern-detection experiment
// (the Figure 9 table): compact sequences discovered in the (simulated) web
// proxy trace at several block granularities.
type Fig9Config struct {
	// Granularities are the block widths in hours (paper: 4, 6, 8, 12, 24).
	Granularities []int
	// MinSupport is the per-block mining threshold (paper: 1%).
	MinSupport float64
	// Alpha is the similarity significance level (paper reports deviations
	// significant at 99%, i.e. α = 0.01).
	Alpha float64
	// RequestsPerHour scales the trace volume.
	RequestsPerHour int
	Seed            int64
}

// DefaultFig9Config returns the paper's parameters.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Granularities:   []int{4, 6, 8, 12, 24},
		MinSupport:      0.01,
		Alpha:           0.01,
		RequestsPerHour: 400,
		Seed:            1,
	}
}

// Fig9Pattern is one discovered compact sequence with its human-readable
// block labels.
type Fig9Pattern struct {
	GranularityHours int
	Blocks           []blockseq.ID
	Labels           []string
	// Kinds summarizes the day kinds of the member blocks.
	Kinds []proxysim.DayKind
}

// Fig9Result holds all patterns per granularity.
type Fig9Result struct {
	Patterns []Fig9Pattern
	// AnomalyExcluded reports, per granularity, whether no discovered
	// multi-block pattern contains an anomalous (9-9-1996) office-hours
	// block together with regular workday blocks — the paper's headline
	// qualitative finding.
	AnomalyExcluded map[int]bool
}

// Figure9 runs pattern detection on the simulated trace at every
// granularity and returns the discovered maximal compact sequences.
func Figure9(cfg Fig9Config) (*Fig9Result, error) {
	trace := proxysim.Generate(proxysim.Config{Seed: cfg.Seed, RequestsPerHour: cfg.RequestsPerHour})
	res := &Fig9Result{AnomalyExcluded: make(map[int]bool)}
	for _, g := range cfg.Granularities {
		blocks, infos, err := trace.Segment(g)
		if err != nil {
			return nil, err
		}
		differ := focus.ItemsetDiffer{MinSupport: cfg.MinSupport}
		det, err := pattern.New[*itemset.TxBlock](differ, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			if b.Len() == 0 {
				continue
			}
			if _, err := det.AddBlock(b.ID, b); err != nil {
				return nil, fmt.Errorf("bench: figure 9 granularity %dh block %d: %w", g, b.ID, err)
			}
		}
		infoByID := make(map[blockseq.ID]proxysim.BlockInfo, len(infos))
		for _, info := range infos {
			infoByID[info.ID] = info
		}
		anomalyClean := true
		for _, seq := range det.Maximal() {
			if len(seq) < 2 {
				continue // singletons are not reported as patterns
			}
			p := Fig9Pattern{GranularityHours: g, Blocks: seq}
			hasAnomalyOffice, hasWorkday := false, false
			for _, id := range seq {
				info := infoByID[id]
				p.Labels = append(p.Labels, info.Label())
				p.Kinds = append(p.Kinds, info.Kind)
				switch info.Kind {
				case proxysim.Anomalous:
					if h := info.Start.Hour(); h >= 8 && h < 20 {
						hasAnomalyOffice = true
					}
				case proxysim.Workday:
					if h := info.Start.Hour(); h >= 8 && h < 20 {
						hasWorkday = true
					}
				}
			}
			if hasAnomalyOffice && hasWorkday {
				anomalyClean = false
			}
			res.Patterns = append(res.Patterns, p)
		}
		res.AnomalyExcluded[g] = anomalyClean
	}
	return res, nil
}

// WriteFig9 renders the discovered patterns in the style of the Figure 9
// table.
func WriteFig9(w io.Writer, res *Fig9Result) {
	fmt.Fprintln(w, "Figure 9: patterns discovered in the (simulated) web proxy traces")
	cur := -1
	for _, p := range res.Patterns {
		if p.GranularityHours != cur {
			cur = p.GranularityHours
			fmt.Fprintf(w, "--- granularity %d hr (anomalous Monday excluded from workday patterns: %v)\n",
				cur, res.AnomalyExcluded[cur])
		}
		fmt.Fprintf(w, "  pattern of %d blocks: %s ... %s\n",
			len(p.Blocks), p.Labels[0], p.Labels[len(p.Labels)-1])
	}
}

// Fig10Config parameterizes the per-block pattern-maintenance cost series
// (Figure 10): the 82 six-hour blocks of the trace.
type Fig10Config struct {
	GranularityHours int
	MinSupport       float64
	Alpha            float64
	RequestsPerHour  int
	Seed             int64
}

// DefaultFig10Config returns the paper's parameters.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{GranularityHours: 6, MinSupport: 0.01, Alpha: 0.01, RequestsPerHour: 400, Seed: 1}
}

// Fig10Row is one point of the Figure 10 series.
type Fig10Row struct {
	// BlockNumber follows the paper's 0-based numbering.
	BlockNumber int
	Label       string
	Kind        proxysim.DayKind
	Elapsed     time.Duration
	// DeviationTime and ExtendTime decompose Elapsed into the deviation
	// computations and the sequence-extension bookkeeping, so the figure's
	// cost breakdown is reproducible from a single run.
	DeviationTime time.Duration
	ExtendTime    time.Duration
	// SimilarTo is how many earlier blocks this block matched.
	SimilarTo int
}

// Figure10 replays the trace through the detector and records the per-block
// update time.
func Figure10(cfg Fig10Config) ([]Fig10Row, error) {
	trace := proxysim.Generate(proxysim.Config{Seed: cfg.Seed, RequestsPerHour: cfg.RequestsPerHour})
	blocks, infos, err := trace.Segment(cfg.GranularityHours)
	if err != nil {
		return nil, err
	}
	differ := focus.ItemsetDiffer{MinSupport: cfg.MinSupport}
	det, err := pattern.New[*itemset.TxBlock](differ, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for i, b := range blocks {
		if b.Len() == 0 {
			continue
		}
		start := time.Now()
		st, err := det.AddBlock(b.ID, b)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 10 block %d: %w", b.ID, err)
		}
		rows = append(rows, Fig10Row{
			BlockNumber:   i,
			Label:         infos[i].Label(),
			Kind:          infos[i].Kind,
			Elapsed:       time.Since(start),
			DeviationTime: st.DeviationTime,
			ExtendTime:    st.ExtendTime,
			SimilarTo:     st.SimilarTo,
		})
	}
	return rows, nil
}

// WriteFig10 renders the series with its cost decomposition.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10: time to update compact sequences per block (seconds)")
	fmt.Fprintf(w, "%6s %-22s %-16s %10s %10s %10s %10s\n",
		"block", "period", "kind", "time", "deviation", "extend", "similar")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %-22s %-16s %10.4f %10.4f %10.4f %10d\n",
			r.BlockNumber, r.Label, r.Kind, r.Elapsed.Seconds(),
			r.DeviationTime.Seconds(), r.ExtendTime.Seconds(), r.SimilarTo)
	}
}
