package bench

import (
	"encoding/json"
	"io"
	"runtime"

	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/version"
)

// Artifact is the machine-readable counterpart of demon-bench's stdout
// tables: the typed rows of every experiment that ran, each with the
// instrumentation-registry delta it produced, so per-phase timings and
// per-strategy byte counters land in the BENCH_*.json artifact instead of
// only on a terminal.
type Artifact struct {
	// Build identifies the binary that produced the artifact, so a number in
	// a BENCH_*.json can always be traced to a revision and toolchain.
	Build      version.Info `json:"build"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`

	Scale       float64            `json:"scale"`
	Seed        int64              `json:"seed"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's rows plus its metrics delta.
type ExperimentResult struct {
	Name string `json:"name"`
	// Rows holds the experiment's typed row slice (Fig2Row, MaintainRow, …)
	// and marshals with those types' field names.
	Rows any `json:"rows"`
	// Metrics is the registry delta attributable to this experiment: what
	// the instrumented maintainers recorded between the previous experiment's
	// snapshot and this one's. Nil when the registry was not enabled.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ArtifactBuilder accumulates experiment results and per-experiment registry
// deltas. A nil builder ignores every call, so the CLI can thread one through
// unconditionally.
type ArtifactBuilder struct {
	reg  *obs.Registry
	art  Artifact
	last obs.Snapshot
}

// NewArtifactBuilder starts an artifact against the given registry (usually
// obs.Default, already enabled by the caller), stamped with the build
// identity and the effective seed and scale of the run.
func NewArtifactBuilder(reg *obs.Registry, scale float64, seed int64) *ArtifactBuilder {
	art := Artifact{
		Build:      version.Get(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Seed:       seed,
	}
	return &ArtifactBuilder{reg: reg, art: art, last: reg.Snapshot()}
}

// Add records one finished experiment: its rows and the registry movement
// since the previous Add.
func (b *ArtifactBuilder) Add(name string, rows any) {
	if b == nil {
		return
	}
	res := ExperimentResult{Name: name, Rows: rows}
	if b.reg.Enabled() {
		cur := b.reg.Snapshot()
		delta := cur.Delta(b.last)
		res.Metrics = &delta
		b.last = cur
	}
	b.art.Experiments = append(b.art.Experiments, res)
}

// WriteJSON renders the artifact as indented JSON.
func (b *ArtifactBuilder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b.art)
}
