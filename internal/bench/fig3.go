package bench

import (
	"fmt"
	"io"
)

// Fig3Config parameterizes the Figure 3 table: the extra disk space consumed
// by materialized frequent-2-itemset TID-lists, as a percentage of the
// dataset size, at several minimum support thresholds.
type Fig3Config struct {
	Scale    float64
	Datasets []string
	// Supports are the κ values of the table (paper: 0.008, 0.010, 0.012).
	Supports []float64
	Seed     int64
}

// DefaultFig3Config returns the paper's parameters at the given scale.
func DefaultFig3Config(scale float64) Fig3Config {
	return Fig3Config{
		Scale:    scale,
		Datasets: []string{"2M.20L.1I.4pats.4plen"},
		Supports: []float64{0.008, 0.010, 0.012},
		Seed:     1,
	}
}

// Fig3Row is one row of the Figure 3 table.
type Fig3Row struct {
	Dataset string
	Support float64
	// ExtraSpacePct is the pair-list entry volume as a percentage of the
	// item-list entry volume (= the dataset's transactional volume).
	ExtraSpacePct float64
	// Freq2 is the number of frequent 2-itemsets materialized.
	Freq2 int
}

// Figure3 measures the ECUT+ space overhead.
func Figure3(cfg Fig3Config) ([]Fig3Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	var rows []Fig3Row
	for _, spec := range cfg.Datasets {
		for _, k := range cfg.Supports {
			env, err := NewCountEnv(spec, cfg.Scale, k, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("bench: figure 3 setup for %s κ=%v: %w", spec, k, err)
			}
			freq2 := 0
			for key := range env.Lattice.Frequent {
				if len(key.Itemset()) == 2 {
					freq2++
				}
			}
			rows = append(rows, Fig3Row{
				Dataset:       spec,
				Support:       k,
				ExtraSpacePct: 100 * float64(env.PairBudgetUsed) / float64(env.ItemEntries),
				Freq2:         freq2,
			})
		}
	}
	return rows, nil
}

// WriteFig3 renders the rows as the Figure 3 table.
func WriteFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: % extra space for frequent 2-itemset TID-lists")
	fmt.Fprintf(w, "%-24s %8s %8s %14s\n", "dataset", "κ", "|L2|", "extra space %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8.3f %8d %14.1f\n", r.Dataset, r.Support, r.Freq2, r.ExtraSpacePct)
	}
}
