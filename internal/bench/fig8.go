package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/pointgen"
)

// Fig8Config parameterizes the BIRCH vs BIRCH+ experiment (Figure 8): the
// time to obtain an updated cluster model when a second block of points is
// added, for the non-incremental baseline (re-cluster everything) and the
// incremental BIRCH+ (absorb only the new block).
type Fig8Config struct {
	Scale float64
	// FirstSpec is the first block (paper: 1M.50c.5d).
	FirstSpec string
	// SecondSizes are the second block's point counts before scaling
	// (paper: 100K–800K).
	SecondSizes []int
	// Noise is the uniform noise fraction (paper: 2%).
	Noise float64
	Seed  int64
}

// DefaultFig8Config returns the paper's parameters at the given scale.
func DefaultFig8Config(scale float64) Fig8Config {
	return Fig8Config{
		Scale:       scale,
		FirstSpec:   "1M.50c.5d",
		SecondSizes: []int{100_000, 200_000, 300_000, 400_000, 500_000, 600_000, 700_000, 800_000},
		Noise:       0.02,
		Seed:        1,
	}
}

// Fig8Row is one measured point of Figure 8.
type Fig8Row struct {
	SecondSize int
	// BIRCH is the non-incremental time: phase 1 over both blocks plus
	// phase 2.
	BIRCH time.Duration
	// BIRCHPlus is the incremental time: phase 1 over the new block only
	// plus phase 2.
	BIRCHPlus time.Duration
	// Phase2 is the phase-2 share (the paper plots it separately to show it
	// is negligible).
	Phase2 time.Duration
}

// Figure8 runs the experiment.
func Figure8(cfg Fig8Config) ([]Fig8Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	pcfg, err := pointgen.ParseSpec(cfg.FirstSpec)
	if err != nil {
		return nil, err
	}
	pcfg.Seed = cfg.Seed
	pcfg.Noise = cfg.Noise
	gen, err := pointgen.New(pcfg)
	if err != nil {
		return nil, err
	}
	firstN := scaledSize(pcfg.NumPoints, cfg.Scale)
	first := gen.Block(1, firstN)
	bcfg := birch.DefaultConfig(pcfg.K)

	var rows []Fig8Row
	for _, rawSize := range cfg.SecondSizes {
		size := scaledSize(rawSize, cfg.Scale)
		// Regenerate the second block from a fixed offset so sizes are
		// comparable prefixes of one stream.
		p2 := pcfg
		p2.Seed = cfg.Seed + 7
		gen2, err := pointgen.New(p2)
		if err != nil {
			return nil, err
		}
		second := gen2.Block(2, size)

		row := Fig8Row{SecondSize: size}

		// Non-incremental BIRCH: phase 1 over first+second, then phase 2.
		start := time.Now()
		if _, err := birch.Run(bcfg, first.Points, second.Points); err != nil {
			return nil, fmt.Errorf("bench: figure 8 BIRCH run: %w", err)
		}
		row.BIRCH = time.Since(start)

		// BIRCH+: a fresh resident tree is rebuilt from the first block
		// outside the timed section (reusing plusBase across sizes would
		// accumulate earlier second blocks); only absorbing the new block
		// and running phase 2 is timed.
		plus, err := birch.NewPlus(bcfg)
		if err != nil {
			return nil, err
		}
		if err := plus.AddBlock(first.Points); err != nil {
			return nil, err
		}
		start = time.Now()
		if err := plus.AddBlock(second.Points); err != nil {
			return nil, fmt.Errorf("bench: figure 8 BIRCH+ add: %w", err)
		}
		p2Start := time.Now()
		if _, err := plus.Clusters(); err != nil {
			return nil, fmt.Errorf("bench: figure 8 phase 2: %w", err)
		}
		row.Phase2 = time.Since(p2Start)
		row.BIRCHPlus = time.Since(start)

		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFig8 renders the rows as the Figure 8 series.
func WriteFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: BIRCH vs BIRCH+ time vs new-block size (seconds)")
	fmt.Fprintf(w, "%10s %12s %12s %12s\n", "block", "BIRCH", "BIRCH+", "phase 2")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12.4f %12.4f %12.4f\n",
			r.SecondSize, r.BIRCH.Seconds(), r.BIRCHPlus.Seconds(), r.Phase2.Seconds())
	}
}
