package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFupVsBordersShape(t *testing.T) {
	cfg := DefaultFupConfig(testScale)
	cfg.Steps = 3
	rows, err := FupVsBorders(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Built-in cross-check: both maintainers must agree on the
		// frequent sets at every step.
		if !r.FrequentAgree {
			t.Fatalf("step %d: FUP and BORDERS disagree", r.Step)
		}
		if r.FUPOldScans < 0 {
			t.Fatalf("step %d: negative scan count", r.Step)
		}
	}
	// The first step bootstraps both from empty; later steps with changes
	// make FUP rescan the old database level by level.
	sawMultiScan := false
	for _, r := range rows[1:] {
		if r.FUPOldScans > 1 {
			sawMultiScan = true
		}
	}
	if !sawMultiScan {
		t.Log("note: no step required multiple FUP old-DB scans at this scale")
	}
	var buf bytes.Buffer
	WriteFupVsBorders(&buf, rows)
	if !strings.Contains(buf.String(), "FUP vs BORDERS") {
		t.Error("WriteFupVsBorders missing header")
	}
}

func TestGranularityShape(t *testing.T) {
	cfg := DefaultGranularityConfig()
	cfg.Granularities = []int{6, 24}
	cfg.RequestsPerHour = 150
	rows, err := Granularity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	selected := 0
	for _, r := range rows {
		if r.Blocks <= 0 {
			t.Fatalf("granularity %dh has %d blocks", r.GranularityHours, r.Blocks)
		}
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Fatalf("coverage %v outside [0,1]", r.Coverage)
		}
		if r.Selected {
			selected++
		}
		// The trace has strong day/night structure: some multi-block
		// pattern must exist at every granularity.
		if r.MultiPatterns == 0 {
			t.Fatalf("granularity %dh found no multi-block patterns", r.GranularityHours)
		}
	}
	if selected != 1 {
		t.Fatalf("%d granularities selected, want exactly 1", selected)
	}
	var buf bytes.Buffer
	WriteGranularity(&buf, rows)
	if !strings.Contains(buf.String(), "granularity") {
		t.Error("WriteGranularity missing header")
	}
}

func TestDBSCANCostShape(t *testing.T) {
	cfg := DefaultDBSCANCostConfig()
	cfg.Points = 1200
	cfg.Ops = 80
	row, err := DBSCANCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The Section 3.2.4 claim: deletion costs more than insertion.
	if row.Ratio <= 1 {
		t.Fatalf("delete/insert query ratio = %v, want > 1", row.Ratio)
	}
	if row.FinalClusters < 1 {
		t.Fatalf("final clusters = %d", row.FinalClusters)
	}
	var buf bytes.Buffer
	WriteDBSCANCost(&buf, row)
	if !strings.Contains(buf.String(), "DBSCAN") {
		t.Error("WriteDBSCANCost missing header")
	}
}
