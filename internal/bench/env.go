// Package bench implements the experiment harness that regenerates every
// table and figure of the DEMON paper's evaluation (Section 5), plus the
// ablations called out in DESIGN.md. Each experiment returns typed rows that
// the demon-bench CLI renders as the paper's tables/series and that the
// repository's integration tests assert shape properties on (who wins, by
// roughly what factor, where the crossovers fall).
//
// Dataset sizes scale with a single factor so the full suite runs on a
// laptop (scale 0.1 by default); scale 1.0 reproduces the paper's sizes.
package bench

import (
	"fmt"
	"math/rand"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
	"github.com/demon-mining/demon/internal/tidlist"
)

// CountEnv is a prepared environment for the counting experiments: one
// dataset ingested as a single block, with TID-lists (and the frequent
// 2-itemset pair lists) materialized, the lattice mined, and the negative
// border available to sample candidate sets from.
type CountEnv struct {
	Spec     string
	NumTx    int
	Blocks   *itemset.BlockStore
	TIDs     *tidlist.Store
	BlockIDs []blockseq.ID
	Lattice  *itemset.Lattice
	// Store is the byte-accounted store both the transaction blocks and the
	// TID-lists live in; experiments read its Stats around counting calls to
	// attribute byte traffic to strategies.
	Store diskio.Store
	// Border is the negative border in a seed-determined shuffled order;
	// experiments take prefixes of it as the candidate sets S.
	Border []itemset.Itemset
	// PairBudgetUsed is the number of TID entries spent on 2-itemset lists.
	PairBudgetUsed int64
	// ItemEntries is the total number of TID entries across item lists
	// (equals the transactional data volume).
	ItemEntries int64
}

// NewCountEnv generates the dataset named by spec (scaled), ingests it, and
// mines the lattice at minsup. All frequent 2-itemsets are materialized
// (the best-case ECUT+ setting of Experiment 1).
func NewCountEnv(spec string, scale, minsup float64, seed int64) (*CountEnv, error) {
	cfg, err := quest.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	numTx := int(float64(cfg.NumTx) * scale)
	if numTx < 1000 {
		numTx = 1000
	}
	gen, err := quest.New(cfg)
	if err != nil {
		return nil, err
	}
	store := diskio.NewMemStore()
	env := &CountEnv{
		Spec:   spec,
		NumTx:  numTx,
		Blocks: itemset.NewBlockStore(store),
		TIDs:   tidlist.NewStore(store),
		Store:  store,
	}

	blk := gen.Block(1, numTx)
	if err := env.Blocks.Put(blk); err != nil {
		return nil, err
	}
	if err := env.TIDs.Materialize(blk); err != nil {
		return nil, err
	}
	env.BlockIDs = []blockseq.ID{1}

	env.Lattice, err = itemset.Apriori(itemset.SliceSource(blk.Txs), nil, minsup)
	if err != nil {
		return nil, err
	}

	// Materialize every frequent 2-itemset (unlimited budget).
	var pairs []itemset.Itemset
	for k := range env.Lattice.Frequent {
		if x := k.Itemset(); len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	itemset.SortItemsets(pairs)
	if len(pairs) > 0 {
		_, used, err := env.TIDs.MaterializePairs(blk, pairs, -1)
		if err != nil {
			return nil, err
		}
		env.PairBudgetUsed = used
	}

	// Item entries = sum of item supports = total items across transactions.
	for _, tx := range blk.Txs {
		env.ItemEntries += int64(len(tx.Items))
	}

	env.Border = env.Lattice.BorderSets()
	rng := rand.New(rand.NewSource(seed + 1))
	rng.Shuffle(len(env.Border), func(i, j int) { env.Border[i], env.Border[j] = env.Border[j], env.Border[i] })
	return env, nil
}

// CandidateSet returns the first n shuffled negative-border itemsets — the
// random S ⊆ NB⁻ of Experiment 1.
func (e *CountEnv) CandidateSet(n int) []itemset.Itemset {
	if n > len(e.Border) {
		n = len(e.Border)
	}
	return e.Border[:n]
}

// Counters returns the three counting strategies of Experiment 1 bound to
// this environment, in presentation order.
func (e *CountEnv) Counters() []borders.Counter {
	return []borders.Counter{
		borders.PTScan{Blocks: e.Blocks},
		borders.ECUT{TIDs: e.TIDs},
		borders.ECUTPlus{TIDs: e.TIDs},
	}
}

// CounterByName returns one counting strategy bound to this environment.
func (e *CountEnv) CounterByName(name string) (borders.Counter, error) {
	for _, c := range e.Counters() {
		if c.Name() == name {
			return c, nil
		}
	}
	if name == "HT-Scan" {
		return borders.HashTreeScan{Blocks: e.Blocks}, nil
	}
	return nil, fmt.Errorf("bench: unknown counter %q", name)
}

// scaledSize scales a paper block size, clamping to a small floor so that
// scaled runs remain meaningful.
func scaledSize(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 200 {
		s = 200
	}
	return s
}
