package bench

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/dbscan"
)

// DBSCANCostConfig parameterizes the insertion-vs-deletion cost ablation for
// incremental DBSCAN — the Section 3.2.4 argument for GEMM made measurable:
// certain model classes pay more to delete than to insert, so maintaining w
// insert-only models beats add+delete maintenance.
type DBSCANCostConfig struct {
	// Points is the clustered population size.
	Points int
	// Clusters and Dim shape the data.
	Clusters, Dim int
	// Eps / MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int
	// Ops is the number of random insertions and deletions measured.
	Ops  int
	Seed int64
}

// DefaultDBSCANCostConfig returns the ablation defaults.
func DefaultDBSCANCostConfig() DBSCANCostConfig {
	return DBSCANCostConfig{
		Points:   4000,
		Clusters: 10,
		Dim:      2,
		Eps:      2.0,
		MinPts:   5,
		Ops:      300,
		Seed:     1,
	}
}

// DBSCANCostRow summarizes the measured per-operation costs.
type DBSCANCostRow struct {
	// InsertQueries / DeleteQueries are the mean ε-neighbourhood queries
	// per operation — the data-access cost driver.
	InsertQueries float64
	DeleteQueries float64
	// Ratio is DeleteQueries / InsertQueries.
	Ratio float64
	// FinalClusters sanity-checks the run.
	FinalClusters int
}

// DBSCANCost builds a clustered population, then measures the neighbourhood
// queries of random insertions versus random deletions.
func DBSCANCost(cfg DBSCANCostConfig) (*DBSCANCostRow, error) {
	inc, err := dbscan.NewIncremental(dbscan.Config{Eps: cfg.Eps, MinPts: cfg.MinPts})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]cf.Point, cfg.Clusters)
	for i := range centers {
		c := make(cf.Point, cfg.Dim)
		for d := range c {
			c[d] = rng.Float64() * 100
		}
		centers[i] = c
	}
	draw := func() cf.Point {
		c := centers[rng.Intn(len(centers))]
		p := make(cf.Point, cfg.Dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		return p
	}

	var ids []int
	for i := 0; i < cfg.Points; i++ {
		id, err := inc.Insert(draw())
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}

	before := inc.NeighbourQueries()
	for i := 0; i < cfg.Ops; i++ {
		id, err := inc.Insert(draw())
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	insertQ := float64(inc.NeighbourQueries()-before) / float64(cfg.Ops)

	before = inc.NeighbourQueries()
	deleted := 0
	for i := 0; deleted < cfg.Ops && i < len(ids); i++ {
		idx := rng.Intn(len(ids))
		if err := inc.Delete(ids[idx]); err != nil {
			continue // already deleted; draw again
		}
		deleted++
	}
	if deleted == 0 {
		return nil, fmt.Errorf("bench: no deletions performed")
	}
	deleteQ := float64(inc.NeighbourQueries()-before) / float64(deleted)

	return &DBSCANCostRow{
		InsertQueries: insertQ,
		DeleteQueries: deleteQ,
		Ratio:         deleteQ / insertQ,
		FinalClusters: inc.NumClusters(),
	}, nil
}

// WriteDBSCANCost renders the ablation row.
func WriteDBSCANCost(w io.Writer, r *DBSCANCostRow) {
	fmt.Fprintln(w, "Ablation: incremental DBSCAN insertion vs deletion cost")
	fmt.Fprintf(w, "%22s %22s %8s %10s\n", "insert queries/op", "delete queries/op", "ratio", "clusters")
	fmt.Fprintf(w, "%22.2f %22.2f %8.2f %10d\n",
		r.InsertQueries, r.DeleteQueries, r.Ratio, r.FinalClusters)
}
