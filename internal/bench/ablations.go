package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/gemm"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
)

// GemmVsAuMConfig parameterizes the Section 3.2.4 trade-off ablation: the
// response time of GEMM (one A_M addition per arrival, w models on the
// side) versus AuM (a single model updated by adding the new block and
// deleting the departing one) under the all-ones BSS.
type GemmVsAuMConfig struct {
	Scale float64
	// Spec is the block distribution.
	Spec string
	// BlockSize is each block's transaction count before scaling.
	BlockSize int
	// WindowSize is w.
	WindowSize int
	// Steps is how many arrivals are replayed after warm-up.
	Steps      int
	MinSupport float64
	Seed       int64
}

// DefaultGemmVsAuMConfig returns the ablation defaults at the given scale.
func DefaultGemmVsAuMConfig(scale float64) GemmVsAuMConfig {
	return GemmVsAuMConfig{
		Scale:      scale,
		Spec:       "2M.20L.1I.4pats.4plen",
		BlockSize:  100_000,
		WindowSize: 4,
		Steps:      6,
		MinSupport: 0.01,
		Seed:       1,
	}
}

// GemmVsAuMRow is one arrival's measured response times.
type GemmVsAuMRow struct {
	Step int
	// GEMMResponse is the single time-critical A_M invocation: updating the
	// slot that becomes current.
	GEMMResponse time.Duration
	// GEMMTotal includes the off-line updates of the other w-1 models.
	GEMMTotal time.Duration
	// AuM is the add-new-block plus delete-oldest-block time.
	AuM time.Duration
}

type gemmBenchAdapter struct {
	mt *borders.Maintainer
	// responses records the duration of each slot update in the last
	// AddBlock call; index 0 is the slot becoming current.
	last []time.Duration
}

func (a *gemmBenchAdapter) Empty() *borders.Model { return a.mt.Empty() }

func (a *gemmBenchAdapter) Add(m *borders.Model, blk *itemset.TxBlock) (*borders.Model, error) {
	start := time.Now()
	if _, err := a.mt.AddBlock(m, blk); err != nil {
		return nil, err
	}
	a.last = append(a.last, time.Since(start))
	return m, nil
}

// GemmVsAuM runs the ablation with the all-ones BSS: both maintainers track
// the plain sliding window, so the paper's "AuM takes roughly twice as long"
// claim is directly measurable.
func GemmVsAuM(cfg GemmVsAuMConfig) ([]GemmVsAuMRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	qc, err := quest.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	qc.Seed = cfg.Seed
	gen, err := quest.New(qc)
	if err != nil {
		return nil, err
	}
	size := scaledSize(cfg.BlockSize, cfg.Scale)

	store := diskio.NewMemStore()
	blocks := itemset.NewBlockStore(store)

	gemmAdapter := &gemmBenchAdapter{mt: &borders.Maintainer{
		Store: blocks, Counter: borders.PTScan{Blocks: blocks}, MinSupport: cfg.MinSupport,
	}}
	g, err := gemm.NewWindowIndependent[*itemset.TxBlock, *borders.Model](gemmAdapter, cfg.WindowSize, blockseq.All{})
	if err != nil {
		return nil, err
	}

	aumMT := &borders.Maintainer{Store: blocks, Counter: borders.PTScan{Blocks: blocks}, MinSupport: cfg.MinSupport}
	aumModel := aumMT.Empty()

	// Warm-up: fill one whole window.
	var id blockseq.ID
	for i := 0; i < cfg.WindowSize; i++ {
		id++
		blk := gen.Block(id, size)
		if err := blocks.Put(blk); err != nil {
			return nil, err
		}
		gemmAdapter.last = nil
		if err := g.AddBlock(blk, id); err != nil {
			return nil, err
		}
		if _, err := aumMT.AddBlock(aumModel, blk); err != nil {
			return nil, err
		}
	}

	var rows []GemmVsAuMRow
	for step := 1; step <= cfg.Steps; step++ {
		id++
		blk := gen.Block(id, size)
		if err := blocks.Put(blk); err != nil {
			return nil, err
		}

		gemmAdapter.last = nil
		start := time.Now()
		if err := g.AddBlock(blk, id); err != nil {
			return nil, err
		}
		gemmTotal := time.Since(start)
		var gemmResponse time.Duration
		if len(gemmAdapter.last) > 0 {
			gemmResponse = gemmAdapter.last[0]
		}

		start = time.Now()
		if _, err := aumMT.AddBlock(aumModel, blk); err != nil {
			return nil, err
		}
		if _, err := aumMT.DeleteBlock(aumModel, aumModel.Blocks[0]); err != nil {
			return nil, err
		}
		aum := time.Since(start)

		rows = append(rows, GemmVsAuMRow{
			Step:         step,
			GEMMResponse: gemmResponse,
			GEMMTotal:    gemmTotal,
			AuM:          aum,
		})
	}
	return rows, nil
}

// WriteGemmVsAuM renders the ablation rows.
func WriteGemmVsAuM(w io.Writer, rows []GemmVsAuMRow) {
	fmt.Fprintln(w, "Ablation: GEMM vs AuM response time, BSS=<1...1> (seconds)")
	fmt.Fprintf(w, "%6s %15s %12s %12s\n", "step", "GEMM:response", "GEMM:total", "AuM")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %15.4f %12.4f %12.4f\n",
			r.Step, r.GEMMResponse.Seconds(), r.GEMMTotal.Seconds(), r.AuM.Seconds())
	}
}

// BudgetConfig parameterizes the ECUT+ space-budget sweep: counting time as
// a function of the fraction of frequent 2-itemsets that fit the per-block
// materialization budget.
type BudgetConfig struct {
	Scale float64
	Spec  string
	// Fractions of the unlimited pair-entry volume to sweep.
	Fractions  []float64
	NumSets    int
	MinSupport float64
	Seed       int64
}

// DefaultBudgetConfig returns the sweep defaults.
func DefaultBudgetConfig(scale float64) BudgetConfig {
	return BudgetConfig{
		Scale:      scale,
		Spec:       "2M.20L.1I.4pats.4plen",
		Fractions:  []float64{0, 0.25, 0.5, 0.75, 1},
		NumSets:    40,
		MinSupport: 0.01,
		Seed:       1,
	}
}

// BudgetRow is one point of the sweep.
type BudgetRow struct {
	Fraction float64
	// PairsMaterialized is how many 2-itemsets fit the budget.
	PairsMaterialized int
	// CountTime is the ECUT+ counting time for the candidate set.
	CountTime time.Duration
	// EntriesRead is the number of TID entries fetched.
	EntriesRead int64
}

// ECUTPlusBudget runs the sweep: the 0-fraction point is plain ECUT; the
// 1-fraction point is the best-case ECUT+ of Experiment 1.
func ECUTPlusBudget(cfg BudgetConfig) ([]BudgetRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	var rows []BudgetRow
	for _, frac := range cfg.Fractions {
		env, err := NewCountEnv(cfg.Spec, cfg.Scale, cfg.MinSupport, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Re-materialize pairs under the budgeted entry count. NewCountEnv
		// already materialized everything; rebuild the pair set under the
		// budget by re-running MaterializePairs with the scaled budget.
		blk, err := env.Blocks.Get(1)
		if err != nil {
			return nil, err
		}
		var pairs []itemset.Itemset
		for k := range env.Lattice.Frequent {
			if x := k.Itemset(); len(x) == 2 {
				pairs = append(pairs, x)
			}
		}
		// Decreasing-support order, the paper's heuristic.
		type scored struct {
			set   itemset.Itemset
			count int
		}
		ranked := make([]scored, len(pairs))
		for i, p := range pairs {
			ranked[i] = scored{p, env.Lattice.Frequent[p.Key()]}
		}
		for i := 1; i < len(ranked); i++ {
			for j := i; j > 0 && (ranked[j].count > ranked[j-1].count ||
				(ranked[j].count == ranked[j-1].count && ranked[j].set.Key() < ranked[j-1].set.Key())); j-- {
				ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
			}
		}
		ordered := make([]itemset.Itemset, len(ranked))
		for i, s := range ranked {
			ordered[i] = s.set
		}
		budget := int64(frac * float64(env.PairBudgetUsed))
		if frac == 0 {
			budget = 0
		}
		chosen, _, err := env.TIDs.MaterializePairs(blk, ordered, budget)
		if err != nil {
			return nil, err
		}

		// Prefer candidates of size ≥ 3: only those can be covered by
		// materialized 2-itemset lists (border 2-itemsets are infrequent by
		// definition and never materialized), so the sweep isolates the
		// budget's effect.
		var sets []itemset.Itemset
		for _, x := range env.Border {
			if len(x) >= 3 {
				sets = append(sets, x)
				if len(sets) == cfg.NumSets {
					break
				}
			}
		}
		if len(sets) == 0 {
			sets = env.CandidateSet(cfg.NumSets)
		}
		counter := borders.ECUTPlus{TIDs: env.TIDs}
		env.TIDs.ResetEntriesRead()
		start := time.Now()
		if _, err := counter.Count(sets, env.BlockIDs); err != nil {
			return nil, err
		}
		rows = append(rows, BudgetRow{
			Fraction:          frac,
			PairsMaterialized: len(chosen),
			CountTime:         time.Since(start),
			EntriesRead:       env.TIDs.EntriesRead(),
		})
	}
	return rows, nil
}

// WriteBudget renders the sweep rows.
func WriteBudget(w io.Writer, rows []BudgetRow) {
	fmt.Fprintln(w, "Ablation: ECUT+ pair-materialization budget sweep")
	fmt.Fprintf(w, "%10s %8s %12s %14s\n", "fraction", "pairs", "count time", "entries read")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2f %8d %12.4f %14d\n",
			r.Fraction, r.PairsMaterialized, r.CountTime.Seconds(), r.EntriesRead)
	}
}

// KappaConfig parameterizes the support-threshold change ablation.
type KappaConfig struct {
	Scale      float64
	Spec       string
	MinSupport float64
	// Raise and Lower are the new thresholds tried from MinSupport.
	Raise, Lower float64
	Seed         int64
}

// DefaultKappaConfig returns the ablation defaults.
func DefaultKappaConfig(scale float64) KappaConfig {
	return KappaConfig{
		Scale: scale, Spec: "2M.20L.1I.4pats.4plen",
		MinSupport: 0.01, Raise: 0.02, Lower: 0.008, Seed: 1,
	}
}

// KappaRow reports one threshold change.
type KappaRow struct {
	From, To float64
	Elapsed  time.Duration
	// Candidates is the number of new candidates counted (zero for raises).
	Candidates int
	// Frequent is the frequent-set size after the change.
	Frequent int
}

// KappaChange measures raising vs lowering the threshold on a mined model.
func KappaChange(cfg KappaConfig) ([]KappaRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	var rows []KappaRow
	for _, to := range []float64{cfg.Raise, cfg.Lower} {
		env, err := NewCountEnv(cfg.Spec, cfg.Scale, cfg.MinSupport, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := &borders.Model{Lattice: env.Lattice.Clone(), Blocks: []blockseq.ID{1}}
		mt := &borders.Maintainer{
			Store:      env.Blocks,
			Counter:    borders.ECUT{TIDs: env.TIDs},
			MinSupport: cfg.MinSupport,
		}
		start := time.Now()
		st, err := mt.ChangeMinSupport(model, to)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KappaRow{
			From:       cfg.MinSupport,
			To:         to,
			Elapsed:    time.Since(start),
			Candidates: st.CandidatesCounted,
			Frequent:   len(model.Lattice.Frequent),
		})
	}
	return rows, nil
}

// WriteKappa renders the ablation rows.
func WriteKappa(w io.Writer, rows []KappaRow) {
	fmt.Fprintln(w, "Ablation: support-threshold change κ → κ'")
	fmt.Fprintf(w, "%8s %8s %12s %12s %10s\n", "from", "to", "time", "candidates", "|L|")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.3f %8.3f %12.4f %12d %10d\n",
			r.From, r.To, r.Elapsed.Seconds(), r.Candidates, r.Frequent)
	}
}
