package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
)

// MaintainConfig parameterizes Experiment 2 (Figures 4–7): the total model
// maintenance time — detection phase plus update phase — when a second block
// is added to a first block, versus the second block's size.
type MaintainConfig struct {
	// Figure names which paper figure the parameters correspond to (4–7).
	Figure int
	// Scale multiplies the paper's sizes.
	Scale float64
	// FirstSpec is the first block's distribution (paper:
	// 2M.20L.1I.4pats.4plen).
	FirstSpec string
	// SecondSpec is the second block's distribution (8pats.4plen for
	// Figures 4–5, 4pats.5plen for Figures 6–7, which cause more change).
	SecondSpec string
	// MinSupport is κ (0.008 for Figures 4 and 6, 0.009 for 5 and 7).
	MinSupport float64
	// BlockSizes are the second block's transaction counts before scaling
	// (paper: 10K–400K).
	BlockSizes []int
	Seed       int64
}

// DefaultMaintainConfig returns the paper's parameters for the given figure
// (4, 5, 6 or 7).
func DefaultMaintainConfig(figure int, scale float64) (MaintainConfig, error) {
	cfg := MaintainConfig{
		Figure:     figure,
		Scale:      scale,
		FirstSpec:  "2M.20L.1I.4pats.4plen",
		BlockSizes: []int{10_000, 25_000, 50_000, 75_000, 100_000, 150_000, 200_000, 400_000},
		Seed:       1,
	}
	switch figure {
	case 4:
		cfg.SecondSpec, cfg.MinSupport = "2M.20L.1I.8pats.4plen", 0.008
	case 5:
		cfg.SecondSpec, cfg.MinSupport = "2M.20L.1I.8pats.4plen", 0.009
	case 6:
		cfg.SecondSpec, cfg.MinSupport = "2M.20L.1I.4pats.5plen", 0.008
	case 7:
		cfg.SecondSpec, cfg.MinSupport = "2M.20L.1I.4pats.5plen", 0.009
	default:
		return cfg, fmt.Errorf("bench: maintenance experiment figure must be 4–7, got %d", figure)
	}
	return cfg, nil
}

// MaintainRow is one measured point of Figures 4–7.
type MaintainRow struct {
	Figure    int
	BlockSize int
	// Detection is the detection-phase time (identical across strategies;
	// averaged over them).
	Detection time.Duration
	// UpdatePTScan/UpdateECUT/UpdateECUTPlus are the update-phase times.
	UpdatePTScan   time.Duration
	UpdateECUT     time.Duration
	UpdateECUTPlus time.Duration
	// Candidates is the number of new candidates counted (the |S| the
	// update phase faced).
	Candidates int
}

// Maintain runs one of Figures 4–7.
func Maintain(cfg MaintainConfig) ([]MaintainRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	env, err := NewCountEnv(cfg.FirstSpec, cfg.Scale, cfg.MinSupport, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: figures 4–7 setup: %w", err)
	}
	base := &borders.Model{Lattice: env.Lattice, Blocks: []blockseq.ID{1}}

	spec2, err := quest.ParseSpec(cfg.SecondSpec)
	if err != nil {
		return nil, err
	}
	spec2.Seed = cfg.Seed + 100

	var rows []MaintainRow
	for i, rawSize := range cfg.BlockSizes {
		size := scaledSize(rawSize, cfg.Scale)
		gen2, err := quest.New(spec2)
		if err != nil {
			return nil, err
		}
		gen2.SetNextTID(env.NumTx)
		id := blockseq.ID(100 + i)
		blk2 := gen2.Block(id, size)

		// Ingest once: transactions, item TID-lists, and the pair lists of
		// the current model's frequent 2-itemsets.
		if err := env.Blocks.Put(blk2); err != nil {
			return nil, err
		}
		if err := env.TIDs.Materialize(blk2); err != nil {
			return nil, err
		}
		var pairs []itemset.Itemset
		for k := range base.Lattice.Frequent {
			if x := k.Itemset(); len(x) == 2 {
				pairs = append(pairs, x)
			}
		}
		itemset.SortItemsets(pairs)
		if len(pairs) > 0 {
			if _, _, err := env.TIDs.MaterializePairs(blk2, pairs, -1); err != nil {
				return nil, err
			}
		}

		row := MaintainRow{Figure: cfg.Figure, BlockSize: size}
		var detections time.Duration
		counters := []borders.Counter{
			borders.PTScan{Blocks: env.Blocks},
			borders.ECUT{TIDs: env.TIDs},
			borders.ECUTPlus{TIDs: env.TIDs},
		}
		for _, counter := range counters {
			model := base.Clone()
			mt := &borders.Maintainer{Store: env.Blocks, Counter: counter, MinSupport: cfg.MinSupport, IO: env.Store}
			st, err := mt.AddBlock(model, blk2)
			if err != nil {
				return nil, fmt.Errorf("bench: figure %d with %s: %w", cfg.Figure, counter.Name(), err)
			}
			detections += st.Detection
			switch counter.Name() {
			case "PT-Scan":
				row.UpdatePTScan = st.Update
				row.Candidates = st.CandidatesCounted
			case "ECUT":
				row.UpdateECUT = st.Update
			case "ECUT+":
				row.UpdateECUTPlus = st.Update
			}
		}
		row.Detection = detections / time.Duration(len(counters))
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteMaintain renders the rows as the Figures 4–7 series.
func WriteMaintain(w io.Writer, rows []MaintainRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Figure %d: maintenance time vs new-block size (seconds)\n", rows[0].Figure)
	fmt.Fprintf(w, "%10s %12s %14s %12s %12s %8s\n",
		"block", "detection", "PT-Scan:upd", "ECUT:upd", "ECUT+:upd", "|S|")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12.4f %14.4f %12.4f %12.4f %8d\n",
			r.BlockSize, r.Detection.Seconds(), r.UpdatePTScan.Seconds(),
			r.UpdateECUT.Seconds(), r.UpdateECUTPlus.Seconds(), r.Candidates)
	}
}
