package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The tests in this file assert the *shapes* the paper reports — who wins,
// by roughly what factor, where crossovers fall — at a reduced scale, so the
// full experiment suite is exercised end to end on every test run.

const testScale = 0.03

func TestFigure2Shape(t *testing.T) {
	cfg := DefaultFig2Config(testScale)
	cfg.Datasets = cfg.Datasets[:1] // the 2M variant suffices for shape
	cfg.Sizes = []int{5, 40, 180}
	rows, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	small := rows[0]
	// Paper: for small |S|, ECUT is at least ~2x faster than PT-Scan and
	// ECUT+ is faster still (≈8x in the paper).
	if small.ECUT >= small.PTScan {
		t.Errorf("|S|=%d: ECUT %v not faster than PT-Scan %v", small.NumSets, small.ECUT, small.PTScan)
	}
	if small.ECUTPlus >= small.PTScan {
		t.Errorf("|S|=%d: ECUT+ %v not faster than PT-Scan %v", small.NumSets, small.ECUTPlus, small.PTScan)
	}
	// Paper: ECUT's cost grows with |S| while PT-Scan's is roughly flat, so
	// the ECUT/PT-Scan ratio must grow across the sweep.
	first := rows[0].ECUT.Seconds() / rows[0].PTScan.Seconds()
	last := rows[len(rows)-1].ECUT.Seconds() / rows[len(rows)-1].PTScan.Seconds()
	if last <= first {
		t.Errorf("ECUT/PT-Scan ratio did not grow with |S|: %v -> %v", first, last)
	}
	var buf bytes.Buffer
	WriteFig2(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("WriteFig2 missing header")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(DefaultFig3Config(testScale))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: the extra space shrinks as κ grows (25.3% → 11.8% → 5.3%) and
	// stays well below the dataset size.
	for i := 1; i < len(rows); i++ {
		if rows[i].ExtraSpacePct >= rows[i-1].ExtraSpacePct {
			t.Errorf("extra space not decreasing: %v then %v", rows[i-1].ExtraSpacePct, rows[i].ExtraSpacePct)
		}
	}
	for _, r := range rows {
		if r.ExtraSpacePct <= 0 || r.ExtraSpacePct >= 100 {
			t.Errorf("extra space %v%% implausible at κ=%v", r.ExtraSpacePct, r.Support)
		}
	}
	var buf bytes.Buffer
	WriteFig3(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("WriteFig3 missing header")
	}
}

func TestMaintainShape(t *testing.T) {
	cfg, err := DefaultMaintainConfig(4, testScale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BlockSizes = []int{10_000, 100_000}
	rows, err := Maintain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Candidates == 0 {
			continue
		}
		// Paper: with small new blocks, the TID-list strategies beat the
		// full-scan update. At the largest sizes the candidate count
		// explodes and the strategies converge (the paper's own crossover
		// region), so the strict claim is asserted on the smallest measured
		// block and only near-parity (within 1.5×) on the rest — timing
		// noise at the crossover must not fail the suite.
		strict := i == 0
		if strict {
			if r.UpdateECUT >= r.UpdatePTScan {
				t.Errorf("block %d: ECUT update %v not faster than PT-Scan %v",
					r.BlockSize, r.UpdateECUT, r.UpdatePTScan)
			}
			if r.UpdateECUTPlus >= r.UpdatePTScan {
				t.Errorf("block %d: ECUT+ update %v not faster than PT-Scan %v",
					r.BlockSize, r.UpdateECUTPlus, r.UpdatePTScan)
			}
		} else {
			if r.UpdateECUT > r.UpdatePTScan*3/2 {
				t.Errorf("block %d: ECUT update %v far slower than PT-Scan %v",
					r.BlockSize, r.UpdateECUT, r.UpdatePTScan)
			}
			if r.UpdateECUTPlus > r.UpdatePTScan*3/2 {
				t.Errorf("block %d: ECUT+ update %v far slower than PT-Scan %v",
					r.BlockSize, r.UpdateECUTPlus, r.UpdatePTScan)
			}
		}
		// Paper: with ECUT in the update phase, the detection phase
		// dominates the total maintenance time; allow slack off the
		// smallest block for the same noise reason. (The converse claim —
		// PT-Scan's update dominating detection — only emerges at dataset
		// sizes much larger than the tracked itemset volume, so it is
		// recorded by the full-scale run, not asserted here.)
		if strict && r.Detection <= r.UpdateECUT {
			t.Errorf("block %d: detection %v should dominate ECUT update %v",
				r.BlockSize, r.Detection, r.UpdateECUT)
		}
	}
	var buf bytes.Buffer
	WriteMaintain(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("WriteMaintain missing header")
	}
}

func TestMaintainConfigValidation(t *testing.T) {
	if _, err := DefaultMaintainConfig(3, 1); err == nil {
		t.Error("accepted figure 3 as a maintenance figure")
	}
	for _, f := range []int{4, 5, 6, 7} {
		if _, err := DefaultMaintainConfig(f, 1); err != nil {
			t.Errorf("figure %d rejected: %v", f, err)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	cfg := DefaultFig8Config(testScale)
	cfg.SecondSizes = []int{100_000, 800_000}
	rows, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: BIRCH+ significantly outperforms BIRCH, and phase 2 is a
		// negligible share.
		if r.BIRCHPlus >= r.BIRCH {
			t.Errorf("block %d: BIRCH+ %v not faster than BIRCH %v", r.SecondSize, r.BIRCHPlus, r.BIRCH)
		}
		// Phase 2 runs on the in-memory sub-clusters only; its cost is
		// bounded by the budgeted sub-cluster count and must stay below the
		// full re-clustering time. (Its "negligible" share emerges at paper
		// scale, where phase 1 grows with the data and phase 2 does not.)
		if r.Phase2 >= r.BIRCH {
			t.Errorf("block %d: phase 2 %v not below BIRCH %v", r.SecondSize, r.Phase2, r.BIRCH)
		}
	}
	var buf bytes.Buffer
	WriteFig8(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("WriteFig8 missing header")
	}
}

func TestFigure9Shape(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Granularities = []int{24}
	cfg.RequestsPerHour = 200
	res, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The headline finding: the anomalous Monday never joins a workday
	// pattern.
	if !res.AnomalyExcluded[24] {
		t.Error("anomalous Monday joined a workday pattern at 24h granularity")
	}
	// At least one multi-block workday pattern must exist.
	found := false
	for _, p := range res.Patterns {
		workdays := 0
		for _, k := range p.Kinds {
			if k == 0 { // proxysim.Workday
				workdays++
			}
		}
		if workdays >= 3 {
			found = true
		}
	}
	if !found {
		t.Error("no multi-day workday pattern discovered")
	}
	var buf bytes.Buffer
	WriteFig9(&buf, res)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("WriteFig9 missing header")
	}
}

func TestFigure10Shape(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.RequestsPerHour = 120
	rows, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 82 {
		t.Fatalf("rows = %d, want 82 six-hour blocks", len(rows))
	}
	// Per-block cost grows with the number of earlier blocks to compare
	// against: the last quarter must be slower on average than the first.
	quarter := len(rows) / 4
	var head, tail float64
	for i := 0; i < quarter; i++ {
		head += rows[i].Elapsed.Seconds()
		tail += rows[len(rows)-1-i].Elapsed.Seconds()
	}
	if tail <= head {
		t.Errorf("per-block cost did not grow: first quarter %vs, last quarter %vs", head, tail)
	}
	var buf bytes.Buffer
	WriteFig10(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("WriteFig10 missing header")
	}
}

func TestGemmVsAuMShape(t *testing.T) {
	cfg := DefaultGemmVsAuMConfig(testScale)
	cfg.Steps = 3
	rows, err := GemmVsAuM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: AuM reflects both an addition and a deletion, so it takes
	// roughly twice as long as GEMM's single addition.
	slower := 0
	for _, r := range rows {
		if r.AuM > r.GEMMResponse {
			slower++
		}
		if r.GEMMTotal < r.GEMMResponse {
			t.Errorf("step %d: total %v < response %v", r.Step, r.GEMMTotal, r.GEMMResponse)
		}
	}
	if slower < 2 {
		t.Errorf("AuM slower than GEMM response in only %d/3 steps", slower)
	}
	var buf bytes.Buffer
	WriteGemmVsAuM(&buf, rows)
	if !strings.Contains(buf.String(), "GEMM vs AuM") {
		t.Error("WriteGemmVsAuM missing header")
	}
}

func TestECUTPlusBudgetShape(t *testing.T) {
	cfg := DefaultBudgetConfig(testScale)
	cfg.Fractions = []float64{0, 0.5, 1}
	rows, err := ECUTPlusBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PairsMaterialized != 0 {
		t.Errorf("fraction 0 materialized %d pairs", rows[0].PairsMaterialized)
	}
	// More budget → more pairs and fewer TID entries fetched.
	for i := 1; i < len(rows); i++ {
		if rows[i].PairsMaterialized < rows[i-1].PairsMaterialized {
			t.Errorf("pairs not monotone: %d then %d", rows[i-1].PairsMaterialized, rows[i].PairsMaterialized)
		}
		if rows[i].EntriesRead > rows[i-1].EntriesRead {
			t.Errorf("entries read not monotone: %d then %d", rows[i-1].EntriesRead, rows[i].EntriesRead)
		}
	}
	var buf bytes.Buffer
	WriteBudget(&buf, rows)
	if !strings.Contains(buf.String(), "budget sweep") {
		t.Error("WriteBudget missing header")
	}
}

func TestKappaChangeShape(t *testing.T) {
	rows, err := KappaChange(DefaultKappaConfig(testScale))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	raise, lower := rows[0], rows[1]
	if raise.Candidates != 0 {
		t.Errorf("raising κ counted %d candidates, want 0", raise.Candidates)
	}
	if lower.Candidates == 0 {
		t.Error("lowering κ counted no candidates")
	}
	if raise.Frequent >= lower.Frequent {
		t.Errorf("|L| raise %d >= |L| lower %d", raise.Frequent, lower.Frequent)
	}
	var buf bytes.Buffer
	WriteKappa(&buf, rows)
	if !strings.Contains(buf.String(), "threshold change") {
		t.Error("WriteKappa missing header")
	}
}

func TestCountEnvBasics(t *testing.T) {
	env, err := NewCountEnv("2M.20L.1I.4pats.4plen", 0.01, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if env.NumTx < 1000 {
		t.Fatalf("NumTx = %d", env.NumTx)
	}
	if len(env.Border) == 0 {
		t.Fatal("empty border")
	}
	if got := env.CandidateSet(5); len(got) != 5 {
		t.Fatalf("CandidateSet(5) = %d", len(got))
	}
	if got := env.CandidateSet(1 << 30); len(got) != len(env.Border) {
		t.Fatalf("oversized CandidateSet = %d", len(got))
	}
	if _, err := env.CounterByName("ECUT"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CounterByName("HT-Scan"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CounterByName("nope"); err == nil {
		t.Fatal("unknown counter accepted")
	}
	if _, err := NewCountEnv("bogus", 1, 0.01, 1); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestScalingShape(t *testing.T) {
	cfg := DefaultScalingConfig(testScale)
	cfg.NumBlocks = 3
	cfg.Workers = []int{1, 2, 4}
	rows, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Scaling errors out on digest divergence, so reaching here means every
	// worker count produced byte-identical store contents; assert the row
	// bookkeeping agrees and the runs mined something.
	for _, r := range rows {
		if !r.Identical || r.Digest != rows[0].Digest {
			t.Fatalf("workers=%d: digest %s diverged from %s", r.Workers, r.Digest, rows[0].Digest)
		}
		if r.Frequent == 0 || r.Frequent != rows[0].Frequent {
			t.Fatalf("workers=%d: |L| = %d, want %d > 0", r.Workers, r.Frequent, rows[0].Frequent)
		}
		if r.Maintain <= 0 || r.Ingest <= 0 {
			t.Fatalf("workers=%d: non-positive timings %v/%v", r.Workers, r.Maintain, r.Ingest)
		}
	}
	var out bytes.Buffer
	WriteScaling(&out, rows)
	if !strings.Contains(out.String(), "workers") {
		t.Fatalf("WriteScaling output missing header: %q", out.String())
	}
}

// TestScalingBackends sweeps the experiment over the storage backends: the
// logical store digest must be identical whether blocks and TID-lists live
// in memory, in one file per key, in the single-file KV engine, or behind
// its read cache — and at every worker count within each backend. Scaling
// itself fails on any divergence; the assertions pin the row bookkeeping.
func TestScalingBackends(t *testing.T) {
	cfg := DefaultScalingConfig(testScale)
	cfg.NumBlocks = 2
	cfg.Workers = []int{1, 4}
	cfg.Backends = []string{"mem", "file", "kvfile", "kvfile+cache"}
	cfg.ScratchDir = t.TempDir()
	if testing.Short() {
		cfg.Backends = []string{"mem", "kvfile+cache"}
		cfg.Workers = []int{1, 2}
	}
	rows, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Backends) * len(cfg.Workers); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Backend] = true
		if !r.Identical || r.Digest != rows[0].Digest {
			t.Fatalf("%s/%d: digest %s diverged from %s", r.Backend, r.Workers, r.Digest, rows[0].Digest)
		}
		if r.Frequent != rows[0].Frequent {
			t.Fatalf("%s/%d: |L| = %d, want %d", r.Backend, r.Workers, r.Frequent, rows[0].Frequent)
		}
	}
	for _, be := range cfg.Backends {
		if !seen[be] {
			t.Fatalf("no row for backend %s", be)
		}
	}
	if _, err := Scaling(ScalingConfig{Scale: testScale, NumBlocks: 1, Workers: []int{1},
		Backends: []string{"bogus"}}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
