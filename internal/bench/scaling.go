package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
	"github.com/demon-mining/demon/internal/tidlist"
)

// ScalingConfig parameterizes the parallel-ingestion scaling experiment: the
// same T10.I4 block stream is ingested with BORDERS maintenance at several
// worker counts, timing the maintenance and digesting the final store. The
// digest must be identical at every worker count — the parallel paths
// (PT-Scan candidate counting, detection scans, TID-list materialization)
// are deterministic by the additivity property of support counts.
type ScalingConfig struct {
	// Scale multiplies the block sizes (default 0.1).
	Scale float64
	// Spec is the quest dataset (default the T10.I4 workload
	// "1M.10L.1I.2pats.4plen").
	Spec string
	// NumBlocks and BlockSize shape the stream (defaults 8 blocks of 10000
	// transactions before scaling).
	NumBlocks int
	BlockSize int
	// MinSupport is the mining threshold (default 0.01).
	MinSupport float64
	// Workers are the worker counts swept; the first entry is the baseline
	// speedups are relative to (default 1, 2, 4, 8).
	Workers []int
	// Seed fixes data generation.
	Seed int64
}

// DefaultScalingConfig returns the experiment's parameters at the given
// scale.
func DefaultScalingConfig(scale float64) ScalingConfig {
	return ScalingConfig{
		Scale:      scale,
		Spec:       "1M.10L.1I.2pats.4plen",
		NumBlocks:  8,
		BlockSize:  10000,
		MinSupport: 0.01,
		Workers:    []int{1, 2, 4, 8},
		Seed:       1,
	}
}

// ScalingRow is one worker count's measurement.
type ScalingRow struct {
	Workers int
	// Maintain is the wall-clock time of all AddBlock maintenance steps
	// (detection + update counting).
	Maintain time.Duration
	// Ingest is the wall-clock time spent storing blocks and materializing
	// TID-lists.
	Ingest time.Duration
	// Speedup is baseline-Maintain / Maintain.
	Speedup float64
	// Digest fingerprints every key and value in the final store.
	Digest string
	// Identical reports whether Digest matches the baseline's.
	Identical bool
	// Frequent is the final frequent-itemset count (a cheap model check on
	// top of the byte digest).
	Frequent int
}

// storeDigest hashes every key and value in the store, in sorted key order.
func storeDigest(store diskio.Store) (string, error) {
	keys, err := store.Keys("")
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, k := range keys {
		data, err := store.Get(k)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", k, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Scaling runs the ingestion pipeline once per worker count over identical
// data and returns one row per count. It fails when any run's final store
// bytes diverge from the baseline's — determinism is part of the experiment's
// contract, not just a reported column.
func Scaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	d := DefaultScalingConfig(cfg.Scale)
	if cfg.Spec == "" {
		cfg.Spec = d.Spec
	}
	if cfg.NumBlocks <= 0 {
		cfg.NumBlocks = d.NumBlocks
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = d.BlockSize
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = d.MinSupport
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = d.Workers
	}
	qc, err := quest.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	qc.Seed = cfg.Seed
	blockSize := scaledSize(cfg.BlockSize, cfg.Scale)

	rows := make([]ScalingRow, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		row, err := scalingRun(qc, cfg, blockSize, w)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling at %d workers: %w", w, err)
		}
		base := row
		if len(rows) > 0 {
			base = rows[0]
		}
		row.Speedup = float64(base.Maintain) / float64(max64(int64(row.Maintain), 1))
		row.Identical = row.Digest == base.Digest
		if !row.Identical {
			return nil, fmt.Errorf("bench: scaling at %d workers diverged from the %d-worker baseline: store digest %s != %s",
				w, base.Workers, row.Digest, base.Digest)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scalingRun ingests the whole stream at one worker count: each block is
// stored, its TID-lists (items and the model's frequent 2-itemset pairs)
// materialized, and the BORDERS model maintained with PT-Scan counting.
func scalingRun(qc quest.Config, cfg ScalingConfig, blockSize, workers int) (ScalingRow, error) {
	row := ScalingRow{Workers: workers}
	gen, err := quest.New(qc)
	if err != nil {
		return row, err
	}
	store := diskio.NewMemStore()
	blocks := itemset.NewBlockStore(store)
	tids := tidlist.NewStore(store)
	tids.SetWorkers(workers)
	mt := &borders.Maintainer{
		Store:      blocks,
		Counter:    borders.PTScan{Blocks: blocks, Workers: workers},
		MinSupport: cfg.MinSupport,
	}
	model := mt.Empty()
	for b := 1; b <= cfg.NumBlocks; b++ {
		blk := gen.Block(blockseq.ID(b), blockSize)

		start := time.Now()
		if err := blocks.Put(blk); err != nil {
			return row, err
		}
		if err := tids.Materialize(blk); err != nil {
			return row, err
		}
		if pairs := frequentPairs(model.Lattice); len(pairs) > 0 {
			if _, _, err := tids.MaterializePairs(blk, pairs, -1); err != nil {
				return row, err
			}
		}
		row.Ingest += time.Since(start)

		start = time.Now()
		if _, err := mt.AddBlock(model, blk); err != nil {
			return row, err
		}
		row.Maintain += time.Since(start)
	}
	row.Frequent = len(model.Lattice.Frequent)
	row.Digest, err = storeDigest(store)
	return row, err
}

// frequentPairs lists the lattice's frequent 2-itemsets in deterministic
// order.
func frequentPairs(l *itemset.Lattice) []itemset.Itemset {
	var pairs []itemset.Itemset
	for k := range l.Frequent {
		if x := k.Itemset(); len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	itemset.SortItemsets(pairs)
	return pairs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteScaling renders the rows.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling: parallel ingestion vs worker count (identical store bytes required)")
	fmt.Fprintf(w, "%8s %12s %12s %9s %10s %10s\n",
		"workers", "maintain", "ingest", "speedup", "|L|", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %9.2f %10d %10v\n",
			r.Workers, r.Maintain.Seconds(), r.Ingest.Seconds(), r.Speedup, r.Frequent, r.Identical)
	}
}
