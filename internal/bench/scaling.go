package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	_ "github.com/demon-mining/demon/internal/diskio/kvfile" // register the kvfile: store scheme
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/quest"
	"github.com/demon-mining/demon/internal/tidlist"
)

// ScalingConfig parameterizes the parallel-ingestion scaling experiment: the
// same T10.I4 block stream is ingested with BORDERS maintenance at several
// worker counts, timing the maintenance and digesting the final store. The
// digest must be identical at every worker count — the parallel paths
// (PT-Scan candidate counting, detection scans, TID-list materialization)
// are deterministic by the additivity property of support counts.
type ScalingConfig struct {
	// Scale multiplies the block sizes (default 0.1).
	Scale float64
	// Spec is the quest dataset (default the T10.I4 workload
	// "1M.10L.1I.2pats.4plen").
	Spec string
	// NumBlocks and BlockSize shape the stream (defaults 8 blocks of 10000
	// transactions before scaling).
	NumBlocks int
	BlockSize int
	// MinSupport is the mining threshold (default 0.01).
	MinSupport float64
	// Workers are the worker counts swept; the first entry is the baseline
	// speedups are relative to (default 1, 2, 4, 8).
	Workers []int
	// Backends are the storage backends swept (mem, file, kvfile,
	// kvfile+cache; default mem only). Every (backend, workers) cell must
	// produce the same logical store digest — the backends may lay bytes out
	// differently on disk, but what they serve back must be identical.
	Backends []string
	// ScratchDir hosts the disk backends' stores (default: fresh temp dirs,
	// removed after each run).
	ScratchDir string
	// Seed fixes data generation.
	Seed int64
}

// DefaultScalingConfig returns the experiment's parameters at the given
// scale.
func DefaultScalingConfig(scale float64) ScalingConfig {
	return ScalingConfig{
		Scale:      scale,
		Spec:       "1M.10L.1I.2pats.4plen",
		NumBlocks:  8,
		BlockSize:  10000,
		MinSupport: 0.01,
		Workers:    []int{1, 2, 4, 8},
		Seed:       1,
	}
}

// ScalingRow is one (backend, worker count) cell's measurement.
type ScalingRow struct {
	// Backend is the storage backend the cell ran on.
	Backend string
	Workers int
	// Maintain is the wall-clock time of all AddBlock maintenance steps
	// (detection + update counting).
	Maintain time.Duration
	// Ingest is the wall-clock time spent storing blocks and materializing
	// TID-lists.
	Ingest time.Duration
	// Speedup is baseline-Maintain / Maintain.
	Speedup float64
	// Digest fingerprints every key and value in the final store.
	Digest string
	// Identical reports whether Digest matches the baseline's.
	Identical bool
	// Frequent is the final frequent-itemset count (a cheap model check on
	// top of the byte digest).
	Frequent int
}

// storeDigest hashes every key and value in the store, in sorted key order.
func storeDigest(store diskio.Store) (string, error) {
	keys, err := store.Keys("")
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, k := range keys {
		data, err := store.Get(k)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", k, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// backendStoreURL maps a scaling backend name to a store URL over dir. The
// names mirror the faultsweep matrix.
func backendStoreURL(name, dir string) (string, error) {
	switch name {
	case "", "mem":
		return "mem:", nil
	case "file":
		return "file:" + dir + "/store", nil
	case "kvfile":
		return "kvfile:" + dir + "/store.kv", nil
	case "kvfile+cache":
		return "kvfile:" + dir + "/store.kv?cache=256kb", nil
	default:
		return "", fmt.Errorf("bench: unknown scaling backend %q (want mem, file, kvfile or kvfile+cache)", name)
	}
}

// Scaling runs the ingestion pipeline once per (backend, worker count) cell
// over identical data and returns one row per cell. It fails when any run's
// final store digest diverges from the first cell's — determinism across
// worker counts AND byte-serving equivalence across storage backends are
// part of the experiment's contract, not just a reported column.
func Scaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	d := DefaultScalingConfig(cfg.Scale)
	if cfg.Spec == "" {
		cfg.Spec = d.Spec
	}
	if cfg.NumBlocks <= 0 {
		cfg.NumBlocks = d.NumBlocks
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = d.BlockSize
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = d.MinSupport
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = d.Workers
	}
	if len(cfg.Backends) == 0 {
		cfg.Backends = []string{"mem"}
	}
	qc, err := quest.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	qc.Seed = cfg.Seed
	blockSize := scaledSize(cfg.BlockSize, cfg.Scale)

	rows := make([]ScalingRow, 0, len(cfg.Workers)*len(cfg.Backends))
	for _, be := range cfg.Backends {
		for _, w := range cfg.Workers {
			row, err := scalingRun(qc, cfg, blockSize, be, w)
			if err != nil {
				return nil, fmt.Errorf("bench: scaling on %s at %d workers: %w", be, w, err)
			}
			base := row
			if len(rows) > 0 {
				base = rows[0]
			}
			row.Speedup = float64(base.Maintain) / float64(max64(int64(row.Maintain), 1))
			row.Identical = row.Digest == base.Digest
			if !row.Identical {
				return nil, fmt.Errorf("bench: scaling on %s at %d workers diverged from the %s/%d-worker baseline: store digest %s != %s",
					be, w, base.Backend, base.Workers, row.Digest, base.Digest)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// scalingRun ingests the whole stream at one worker count: each block is
// stored, its TID-lists (items and the model's frequent 2-itemset pairs)
// materialized, and the BORDERS model maintained with PT-Scan counting.
func scalingRun(qc quest.Config, cfg ScalingConfig, blockSize int, backend string, workers int) (ScalingRow, error) {
	row := ScalingRow{Backend: backend, Workers: workers}
	gen, err := quest.New(qc)
	if err != nil {
		return row, err
	}
	scratch, err := os.MkdirTemp(cfg.ScratchDir, "demon-scaling-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(scratch)
	url, err := backendStoreURL(backend, scratch)
	if err != nil {
		return row, err
	}
	store, err := diskio.Open(url)
	if err != nil {
		return row, err
	}
	defer diskio.CloseStore(store)
	blocks := itemset.NewBlockStore(store)
	tids := tidlist.NewStore(store)
	tids.SetWorkers(workers)
	mt := &borders.Maintainer{
		Store:      blocks,
		Counter:    borders.PTScan{Blocks: blocks, Workers: workers},
		MinSupport: cfg.MinSupport,
	}
	model := mt.Empty()
	for b := 1; b <= cfg.NumBlocks; b++ {
		blk := gen.Block(blockseq.ID(b), blockSize)

		start := time.Now()
		if err := blocks.Put(blk); err != nil {
			return row, err
		}
		if err := tids.Materialize(blk); err != nil {
			return row, err
		}
		if pairs := frequentPairs(model.Lattice); len(pairs) > 0 {
			if _, _, err := tids.MaterializePairs(blk, pairs, -1); err != nil {
				return row, err
			}
		}
		row.Ingest += time.Since(start)

		start = time.Now()
		if _, err := mt.AddBlock(model, blk); err != nil {
			return row, err
		}
		row.Maintain += time.Since(start)
	}
	row.Frequent = len(model.Lattice.Frequent)
	row.Digest, err = storeDigest(store)
	return row, err
}

// frequentPairs lists the lattice's frequent 2-itemsets in deterministic
// order.
func frequentPairs(l *itemset.Lattice) []itemset.Itemset {
	var pairs []itemset.Itemset
	for k := range l.Frequent {
		if x := k.Itemset(); len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	itemset.SortItemsets(pairs)
	return pairs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteScaling renders the rows.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling: parallel ingestion vs worker count and backend (identical store digest required)")
	fmt.Fprintf(w, "%14s %8s %12s %12s %9s %10s %10s\n",
		"backend", "workers", "maintain", "ingest", "speedup", "|L|", "identical")
	for _, r := range rows {
		be := r.Backend
		if be == "" {
			be = "mem"
		}
		fmt.Fprintf(w, "%14s %8d %12.4f %12.4f %9.2f %10d %10v\n",
			be, r.Workers, r.Maintain.Seconds(), r.Ingest.Seconds(), r.Speedup, r.Frequent, r.Identical)
	}
}
