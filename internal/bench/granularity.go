package bench

import (
	"fmt"
	"io"

	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pattern"
	"github.com/demon-mining/demon/internal/proxysim"
)

// GranularityConfig parameterizes the block-granularity experiment — the
// DEMON conclusion's future-work items made concrete: how the granularity
// affects the discovered patterns, and which granularity a simple
// coverage-minus-fragmentation score would select automatically.
type GranularityConfig struct {
	Granularities   []int
	MinSupport      float64
	Alpha           float64
	RequestsPerHour int
	Seed            int64
}

// DefaultGranularityConfig returns the experiment defaults.
func DefaultGranularityConfig() GranularityConfig {
	return GranularityConfig{
		Granularities:   []int{4, 6, 8, 12, 24},
		MinSupport:      0.01,
		Alpha:           0.01,
		RequestsPerHour: 400,
		Seed:            1,
	}
}

// GranularityRow summarizes pattern detection at one granularity.
type GranularityRow struct {
	GranularityHours int
	Blocks           int
	// MultiPatterns is the number of maximal compact sequences with at
	// least two blocks.
	MultiPatterns int
	// Coverage is the fraction of blocks inside some multi-block pattern.
	Coverage float64
	// Score is the selection heuristic (coverage − fragmentation).
	Score float64
	// Selected marks the granularity the heuristic picks.
	Selected bool
}

// Granularity runs pattern detection at every granularity and scores each.
func Granularity(cfg GranularityConfig) ([]GranularityRow, error) {
	trace := proxysim.Generate(proxysim.Config{Seed: cfg.Seed, RequestsPerHour: cfg.RequestsPerHour})
	var rows []GranularityRow
	for _, g := range cfg.Granularities {
		blocks, _, err := trace.Segment(g)
		if err != nil {
			return nil, err
		}
		differ := focus.ItemsetDiffer{MinSupport: cfg.MinSupport}
		det, err := pattern.New[*itemset.TxBlock](differ, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, b := range blocks {
			if b.Len() == 0 {
				continue
			}
			n++
			if _, err := det.AddBlock(b.ID, b); err != nil {
				return nil, fmt.Errorf("bench: granularity %dh block %d: %w", g, b.ID, err)
			}
		}
		maximal := det.Maximal()
		covered := make(map[int64]bool)
		multi := 0
		for _, s := range maximal {
			if len(s) < 2 {
				continue
			}
			multi++
			for _, id := range s {
				covered[int64(id)] = true
			}
		}
		rows = append(rows, GranularityRow{
			GranularityHours: g,
			Blocks:           n,
			MultiPatterns:    multi,
			Coverage:         float64(len(covered)) / float64(max(n, 1)),
			Score:            pattern.Score(maximal, n),
		})
	}
	best := -1
	for i, r := range rows {
		if best < 0 || r.Score > rows[best].Score {
			best = i
		}
	}
	if best >= 0 {
		rows[best].Selected = true
	}
	return rows, nil
}

// WriteGranularity renders the rows.
func WriteGranularity(w io.Writer, rows []GranularityRow) {
	fmt.Fprintln(w, "Extension: block-granularity selection (coverage − fragmentation)")
	fmt.Fprintf(w, "%12s %8s %10s %10s %8s %9s\n",
		"granularity", "blocks", "patterns", "coverage", "score", "selected")
	for _, r := range rows {
		sel := ""
		if r.Selected {
			sel = "  <==="
		}
		fmt.Fprintf(w, "%10dhr %8d %10d %10.3f %8.3f%s\n",
			r.GranularityHours, r.Blocks, r.MultiPatterns, r.Coverage, r.Score, sel)
	}
}
