package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/demon-mining/demon/internal/diskio"
)

// Fig2Config parameterizes Experiment 1 (Figure 2): counting time versus the
// number of itemsets |S| for ECUT, ECUT+ and PT-Scan.
type Fig2Config struct {
	// Scale multiplies the paper's dataset sizes (default 0.1).
	Scale float64
	// Datasets are the quest specs; the paper uses the 2M and 4M variants
	// of *.20L.1I.4pats.4plen.
	Datasets []string
	// Sizes are the |S| values swept; the paper uses 5..180.
	Sizes []int
	// MinSupport is the mining threshold (paper: 0.01).
	MinSupport float64
	// Seed fixes data generation and border sampling.
	Seed int64
}

// DefaultFig2Config returns the paper's parameters at the given scale.
func DefaultFig2Config(scale float64) Fig2Config {
	return Fig2Config{
		Scale:      scale,
		Datasets:   []string{"2M.20L.1I.4pats.4plen", "4M.20L.1I.4pats.4plen"},
		Sizes:      []int{5, 10, 20, 40, 75, 120, 180},
		MinSupport: 0.01,
		Seed:       1,
	}
}

// StrategyIO is the I/O a counting invocation performed, from the store's
// byte accounting — the quantity the Section 3.1.1 ECUT-vs-PT-Scan argument
// turns on, kept in the JSON artifact rather than only on stdout.
type StrategyIO struct {
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
}

func ioDelta(after, before diskio.Stats) StrategyIO {
	return StrategyIO{
		BytesRead:    after.BytesRead - before.BytesRead,
		BytesWritten: after.BytesWritten - before.BytesWritten,
		Reads:        after.Reads - before.Reads,
		Writes:       after.Writes - before.Writes,
	}
}

// Fig2Row is one measured point of Figure 2.
type Fig2Row struct {
	Dataset  string
	NumSets  int
	PTScan   time.Duration
	ECUT     time.Duration
	ECUTPlus time.Duration
	// PTScanIO/ECUTIO/ECUTPlusIO are the per-strategy store I/O deltas of
	// the counting call.
	PTScanIO   StrategyIO
	ECUTIO     StrategyIO
	ECUTPlusIO StrategyIO
}

// Figure2 runs Experiment 1 and returns one row per (dataset, |S|) pair.
func Figure2(cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	var rows []Fig2Row
	for _, spec := range cfg.Datasets {
		env, err := NewCountEnv(spec, cfg.Scale, cfg.MinSupport, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 2 setup for %s: %w", spec, err)
		}
		for _, n := range cfg.Sizes {
			sets := env.CandidateSet(n)
			if len(sets) == 0 {
				return nil, fmt.Errorf("bench: figure 2: dataset %s has an empty negative border", spec)
			}
			row := Fig2Row{Dataset: spec, NumSets: len(sets)}
			for _, c := range env.Counters() {
				before := env.Store.Stats()
				start := time.Now()
				if _, err := c.Count(sets, env.BlockIDs); err != nil {
					return nil, fmt.Errorf("bench: figure 2 counting with %s: %w", c.Name(), err)
				}
				elapsed := time.Since(start)
				io := ioDelta(env.Store.Stats(), before)
				switch c.Name() {
				case "PT-Scan":
					row.PTScan, row.PTScanIO = elapsed, io
				case "ECUT":
					row.ECUT, row.ECUTIO = elapsed, io
				case "ECUT+":
					row.ECUTPlus, row.ECUTPlusIO = elapsed, io
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteFig2 renders the rows as the Figure 2 series, with the per-strategy
// bytes fetched alongside the times (the I/O side of the §3.1.1 claim).
func WriteFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2: counting time vs #itemsets (seconds; MB read)")
	fmt.Fprintf(w, "%-24s %9s %12s %12s %12s %10s %10s %10s\n",
		"dataset", "|S|", "PT-Scan", "ECUT", "ECUT+", "PT:MB", "ECUT:MB", "ECUT+:MB")
	const mb = 1 << 20
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %9d %12.4f %12.4f %12.4f %10.2f %10.2f %10.2f\n",
			r.Dataset, r.NumSets, r.PTScan.Seconds(), r.ECUT.Seconds(), r.ECUTPlus.Seconds(),
			float64(r.PTScanIO.BytesRead)/mb, float64(r.ECUTIO.BytesRead)/mb, float64(r.ECUTPlusIO.BytesRead)/mb)
	}
}
