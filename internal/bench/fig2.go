package bench

import (
	"fmt"
	"io"
	"time"
)

// Fig2Config parameterizes Experiment 1 (Figure 2): counting time versus the
// number of itemsets |S| for ECUT, ECUT+ and PT-Scan.
type Fig2Config struct {
	// Scale multiplies the paper's dataset sizes (default 0.1).
	Scale float64
	// Datasets are the quest specs; the paper uses the 2M and 4M variants
	// of *.20L.1I.4pats.4plen.
	Datasets []string
	// Sizes are the |S| values swept; the paper uses 5..180.
	Sizes []int
	// MinSupport is the mining threshold (paper: 0.01).
	MinSupport float64
	// Seed fixes data generation and border sampling.
	Seed int64
}

// DefaultFig2Config returns the paper's parameters at the given scale.
func DefaultFig2Config(scale float64) Fig2Config {
	return Fig2Config{
		Scale:      scale,
		Datasets:   []string{"2M.20L.1I.4pats.4plen", "4M.20L.1I.4pats.4plen"},
		Sizes:      []int{5, 10, 20, 40, 75, 120, 180},
		MinSupport: 0.01,
		Seed:       1,
	}
}

// Fig2Row is one measured point of Figure 2.
type Fig2Row struct {
	Dataset  string
	NumSets  int
	PTScan   time.Duration
	ECUT     time.Duration
	ECUTPlus time.Duration
}

// Figure2 runs Experiment 1 and returns one row per (dataset, |S|) pair.
func Figure2(cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	var rows []Fig2Row
	for _, spec := range cfg.Datasets {
		env, err := NewCountEnv(spec, cfg.Scale, cfg.MinSupport, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 2 setup for %s: %w", spec, err)
		}
		for _, n := range cfg.Sizes {
			sets := env.CandidateSet(n)
			if len(sets) == 0 {
				return nil, fmt.Errorf("bench: figure 2: dataset %s has an empty negative border", spec)
			}
			row := Fig2Row{Dataset: spec, NumSets: len(sets)}
			for _, c := range env.Counters() {
				start := time.Now()
				if _, err := c.Count(sets, env.BlockIDs); err != nil {
					return nil, fmt.Errorf("bench: figure 2 counting with %s: %w", c.Name(), err)
				}
				elapsed := time.Since(start)
				switch c.Name() {
				case "PT-Scan":
					row.PTScan = elapsed
				case "ECUT":
					row.ECUT = elapsed
				case "ECUT+":
					row.ECUTPlus = elapsed
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteFig2 renders the rows as the Figure 2 series.
func WriteFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2: counting time vs #itemsets (seconds)")
	fmt.Fprintf(w, "%-24s %9s %12s %12s %12s\n", "dataset", "|S|", "PT-Scan", "ECUT", "ECUT+")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %9d %12.4f %12.4f %12.4f\n",
			r.Dataset, r.NumSets, r.PTScan.Seconds(), r.ECUT.Seconds(), r.ECUTPlus.Seconds())
	}
}
