// Package blockio is the NDJSON block-stream wire format shared by
// demon-datagen and demon-serve: one JSON object per line, one block per
// object. A transaction block is {"txs": [[1,2,3],[2,4]]}; a point block is
// {"points": [[0.1,0.2],[1.2,0.3]]}. Blocks arrive in ingestion order, so a
// stream is exactly the systematically evolving database of the paper — a
// generator can pipe blocks straight into a resident server.
package blockio

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
)

// Block is one block of a stream: exactly one of Txs or Points is set.
type Block struct {
	// Txs is a transaction block: one item-id list per transaction.
	Txs [][]int32 `json:"txs,omitempty"`
	// Points is a point block: one coordinate list per point.
	Points [][]float64 `json:"points,omitempty"`
}

// Kind names the block's payload: "tx", "points", or "empty".
func (b Block) Kind() string {
	switch {
	case b.Txs != nil:
		return "tx"
	case b.Points != nil:
		return "points"
	default:
		return "empty"
	}
}

// Validate rejects blocks that set both payloads or neither. An empty
// payload of the right kind (zero transactions) is valid — evolving
// databases do have quiet periods.
func (b Block) Validate() error {
	if b.Txs != nil && b.Points != nil {
		return fmt.Errorf("blockio: block sets both txs and points")
	}
	if b.Txs == nil && b.Points == nil {
		return fmt.Errorf("blockio: block sets neither txs nor points")
	}
	return nil
}

// TxBlock wraps transaction rows as a Block.
func TxBlock(rows [][]itemset.Item) Block {
	txs := make([][]int32, len(rows))
	for i, row := range rows {
		tx := make([]int32, len(row))
		for j, it := range row {
			tx[j] = int32(it)
		}
		txs[i] = tx
	}
	if txs == nil {
		txs = [][]int32{}
	}
	return Block{Txs: txs}
}

// PointBlock wraps points as a Block.
func PointBlock(pts []cf.Point) Block {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = []float64(p)
	}
	if out == nil {
		out = [][]float64{}
	}
	return Block{Points: out}
}

// Items converts the transaction payload to miner rows.
func (b Block) Items() [][]itemset.Item {
	rows := make([][]itemset.Item, len(b.Txs))
	for i, tx := range b.Txs {
		row := make([]itemset.Item, len(tx))
		for j, it := range tx {
			row[j] = itemset.Item(it)
		}
		rows[i] = row
	}
	return rows
}

// CFPoints converts the point payload to miner points.
func (b Block) CFPoints() []cf.Point {
	pts := make([]cf.Point, len(b.Points))
	for i, p := range b.Points {
		pts[i] = cf.Point(p)
	}
	return pts
}

// MarshalJSON emits exactly the one payload field that is set, so an empty
// transaction block round-trips as {"txs":[]} instead of being collapsed to
// an invalid {} by omitempty.
func (b Block) MarshalJSON() ([]byte, error) {
	if b.Txs != nil {
		return json.Marshal(struct {
			Txs [][]int32 `json:"txs"`
		}{b.Txs})
	}
	return json.Marshal(struct {
		Points [][]float64 `json:"points"`
	}{b.Points})
}

// Encoder writes a block stream, one JSON object per line.
type Encoder struct {
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{enc: json.NewEncoder(w)} }

// Encode appends one block to the stream.
func (e *Encoder) Encode(b Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return e.enc.Encode(b)
}

// Decoder reads a block stream. It tolerates any JSON whitespace between
// objects (newlines in practice) and has no line-length limit.
type Decoder struct {
	dec *json.Decoder
	n   int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	d := json.NewDecoder(r)
	// Item ids and coordinates fit the declared types exactly; unknown
	// fields are configuration mistakes worth failing loudly on.
	d.DisallowUnknownFields()
	return &Decoder{dec: d}
}

// Next returns the next block of the stream, or io.EOF at its end.
func (d *Decoder) Next() (Block, error) {
	var b Block
	if err := d.dec.Decode(&b); err != nil {
		if err == io.EOF {
			return b, io.EOF
		}
		return b, fmt.Errorf("blockio: block %d: %w", d.n+1, err)
	}
	d.n++
	if err := b.Validate(); err != nil {
		return b, fmt.Errorf("blockio: block %d: %w", d.n, err)
	}
	return b, nil
}

// ReadAll decodes the whole stream.
func ReadAll(r io.Reader) ([]Block, error) {
	d := NewDecoder(r)
	var out []Block
	for {
		b, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}
