// Package blockio is the NDJSON block-stream wire format shared by
// demon-datagen, demon-feed and demon-serve: one JSON object per line, one
// block per object. A transaction block is {"txs": [[1,2,3],[2,4]]}; a point
// block is {"points": [[0.1,0.2],[1.2,0.3]]}. Blocks arrive in ingestion
// order, so a stream is exactly the systematically evolving database of the
// paper — a generator can pipe blocks straight into a resident server.
//
// A block may additionally carry a per-namespace monotonic sequence number
// ({"seq": 7, "txs": ...}). Sequence numbers start at 1 and increase by one
// per block; they let the server acknowledge re-sent duplicates as no-ops
// and reject gaps, which is what makes retrying an ambiguously failed send
// safe (see internal/serve and internal/client).
package blockio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
)

// ErrLineTooLong reports an NDJSON line exceeding a LineDecoder's cap.
var ErrLineTooLong = errors.New("blockio: NDJSON line exceeds the configured maximum length")

// Block is one block of a stream: exactly one of Txs or Points is set.
type Block struct {
	// Seq is the block's optional sequence number within its namespace's
	// stream; zero means unsequenced. Sequenced streams start at 1 and
	// increase by exactly one per block.
	Seq uint64 `json:"seq,omitempty"`
	// Txs is a transaction block: one item-id list per transaction.
	Txs [][]int32 `json:"txs,omitempty"`
	// Points is a point block: one coordinate list per point.
	Points [][]float64 `json:"points,omitempty"`
}

// Kind names the block's payload: "tx", "points", or "empty".
func (b Block) Kind() string {
	switch {
	case b.Txs != nil:
		return "tx"
	case b.Points != nil:
		return "points"
	default:
		return "empty"
	}
}

// Validate rejects blocks that set both payloads or neither. An empty
// payload of the right kind (zero transactions) is valid — evolving
// databases do have quiet periods.
func (b Block) Validate() error {
	if b.Txs != nil && b.Points != nil {
		return fmt.Errorf("blockio: block sets both txs and points")
	}
	if b.Txs == nil && b.Points == nil {
		return fmt.Errorf("blockio: block sets neither txs nor points")
	}
	return nil
}

// TxBlock wraps transaction rows as a Block.
func TxBlock(rows [][]itemset.Item) Block {
	txs := make([][]int32, len(rows))
	for i, row := range rows {
		tx := make([]int32, len(row))
		for j, it := range row {
			tx[j] = int32(it)
		}
		txs[i] = tx
	}
	if txs == nil {
		txs = [][]int32{}
	}
	return Block{Txs: txs}
}

// PointBlock wraps points as a Block.
func PointBlock(pts []cf.Point) Block {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = []float64(p)
	}
	if out == nil {
		out = [][]float64{}
	}
	return Block{Points: out}
}

// Items converts the transaction payload to miner rows.
func (b Block) Items() [][]itemset.Item {
	rows := make([][]itemset.Item, len(b.Txs))
	for i, tx := range b.Txs {
		row := make([]itemset.Item, len(tx))
		for j, it := range tx {
			row[j] = itemset.Item(it)
		}
		rows[i] = row
	}
	return rows
}

// CFPoints converts the point payload to miner points.
func (b Block) CFPoints() []cf.Point {
	pts := make([]cf.Point, len(b.Points))
	for i, p := range b.Points {
		pts[i] = cf.Point(p)
	}
	return pts
}

// MarshalJSON emits exactly the one payload field that is set, so an empty
// transaction block round-trips as {"txs":[]} instead of being collapsed to
// an invalid {} by omitempty. The sequence number is emitted only when set.
func (b Block) MarshalJSON() ([]byte, error) {
	if b.Txs != nil {
		return json.Marshal(struct {
			Seq uint64    `json:"seq,omitempty"`
			Txs [][]int32 `json:"txs"`
		}{b.Seq, b.Txs})
	}
	return json.Marshal(struct {
		Seq    uint64      `json:"seq,omitempty"`
		Points [][]float64 `json:"points"`
	}{b.Seq, b.Points})
}

// Encoder writes a block stream, one JSON object per line.
type Encoder struct {
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{enc: json.NewEncoder(w)} }

// Encode appends one block to the stream.
func (e *Encoder) Encode(b Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return e.enc.Encode(b)
}

// Decoder reads a block stream. It tolerates any JSON whitespace between
// objects (newlines in practice) and has no line-length limit.
type Decoder struct {
	dec *json.Decoder
	n   int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	d := json.NewDecoder(r)
	// Item ids and coordinates fit the declared types exactly; unknown
	// fields are configuration mistakes worth failing loudly on.
	d.DisallowUnknownFields()
	return &Decoder{dec: d}
}

// Next returns the next block of the stream, or io.EOF at its end.
func (d *Decoder) Next() (Block, error) {
	var b Block
	if err := d.dec.Decode(&b); err != nil {
		if err == io.EOF {
			return b, io.EOF
		}
		return b, fmt.Errorf("blockio: block %d: %w", d.n+1, err)
	}
	d.n++
	if err := b.Validate(); err != nil {
		return b, fmt.Errorf("blockio: block %d: %w", d.n, err)
	}
	return b, nil
}

// LineDecoder reads a block stream one line at a time with a hard cap on
// the line length, so a hostile or misbehaving client cannot make the
// server buffer an unbounded JSON token. Unlike Decoder it enforces the
// strict NDJSON shape: exactly one JSON object per newline-terminated line
// (blank lines are skipped). A line over the cap fails with ErrLineTooLong.
type LineDecoder struct {
	sc  *bufio.Scanner
	n   int
	max int
}

// NewLineDecoder returns a LineDecoder reading from r with lines capped at
// maxLine bytes (a non-positive cap selects bufio.MaxScanTokenSize).
func NewLineDecoder(r io.Reader, maxLine int) *LineDecoder {
	if maxLine <= 0 {
		maxLine = bufio.MaxScanTokenSize
	}
	sc := bufio.NewScanner(r)
	initial := 64 * 1024
	if maxLine < initial {
		initial = maxLine
	}
	sc.Buffer(make([]byte, initial), maxLine)
	return &LineDecoder{sc: sc, max: maxLine}
}

// Next returns the next block of the stream, or io.EOF at its end.
func (d *LineDecoder) Next() (Block, error) {
	var b Block
	for d.sc.Scan() {
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		d.n++
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil {
			return b, fmt.Errorf("blockio: block %d: %w", d.n, err)
		}
		// Anything after the object on the same line is a framing error.
		if dec.More() {
			return b, fmt.Errorf("blockio: block %d: trailing data after the JSON object", d.n)
		}
		if err := b.Validate(); err != nil {
			return b, fmt.Errorf("blockio: block %d: %w", d.n, err)
		}
		return b, nil
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return b, fmt.Errorf("%w (cap %d bytes, around block %d)", ErrLineTooLong, d.max, d.n+1)
		}
		return b, fmt.Errorf("blockio: reading block %d: %w", d.n+1, err)
	}
	return b, io.EOF
}

// ReadAll decodes the whole stream.
func ReadAll(r io.Reader) ([]Block, error) {
	d := NewDecoder(r)
	var out []Block
	for {
		b, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}
