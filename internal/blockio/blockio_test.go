package blockio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	blocks := []Block{
		TxBlock([][]itemset.Item{{1, 2, 3}, {2, 4}}),
		TxBlock(nil), // an empty block is a valid quiet period
		PointBlock([]cf.Point{{0.5, -1.25}, {3, 4}}),
	}
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	if got[0].Kind() != "tx" || got[1].Kind() != "tx" || got[2].Kind() != "points" {
		t.Fatalf("kinds = %s %s %s", got[0].Kind(), got[1].Kind(), got[2].Kind())
	}
	rows := got[0].Items()
	if len(rows) != 2 || len(rows[0]) != 3 || rows[0][2] != 3 || rows[1][1] != 4 {
		t.Fatalf("tx rows mangled: %v", rows)
	}
	if n := len(got[1].Items()); n != 0 {
		t.Fatalf("empty block decoded to %d rows", n)
	}
	pts := got[2].CFPoints()
	if len(pts) != 2 || pts[0][1] != -1.25 {
		t.Fatalf("points mangled: %v", pts)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"both payloads":  `{"txs":[[1]],"points":[[1.0]]}`,
		"empty object":   `{}`,
		"unknown field":  `{"transactions":[[1]]}`,
		"truncated json": `{"txs":[[1`,
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecoderStopsAtEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader("")) // empty stream
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next on empty stream = %v, want io.EOF", err)
	}
}
