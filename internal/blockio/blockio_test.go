package blockio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	blocks := []Block{
		TxBlock([][]itemset.Item{{1, 2, 3}, {2, 4}}),
		TxBlock(nil), // an empty block is a valid quiet period
		PointBlock([]cf.Point{{0.5, -1.25}, {3, 4}}),
	}
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	if got[0].Kind() != "tx" || got[1].Kind() != "tx" || got[2].Kind() != "points" {
		t.Fatalf("kinds = %s %s %s", got[0].Kind(), got[1].Kind(), got[2].Kind())
	}
	rows := got[0].Items()
	if len(rows) != 2 || len(rows[0]) != 3 || rows[0][2] != 3 || rows[1][1] != 4 {
		t.Fatalf("tx rows mangled: %v", rows)
	}
	if n := len(got[1].Items()); n != 0 {
		t.Fatalf("empty block decoded to %d rows", n)
	}
	pts := got[2].CFPoints()
	if len(pts) != 2 || pts[0][1] != -1.25 {
		t.Fatalf("points mangled: %v", pts)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"both payloads":  `{"txs":[[1]],"points":[[1.0]]}`,
		"empty object":   `{}`,
		"unknown field":  `{"transactions":[[1]]}`,
		"truncated json": `{"txs":[[1`,
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecoderStopsAtEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader("")) // empty stream
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next on empty stream = %v, want io.EOF", err)
	}
}

func TestSeqRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	b := TxBlock([][]itemset.Item{{1, 2}})
	b.Seq = 7
	if err := enc.Encode(b); err != nil {
		t.Fatalf("encode: %v", err)
	}
	p := PointBlock([]cf.Point{{1, 2}})
	p.Seq = 8
	if err := enc.Encode(p); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := enc.Encode(TxBlock(nil)); err != nil { // unsequenced stays seq-less
		t.Fatalf("encode: %v", err)
	}
	wire := buf.String()
	if !strings.Contains(wire, `"seq":7`) || !strings.Contains(wire, `"seq":8`) {
		t.Fatalf("sequence numbers missing from wire: %s", wire)
	}
	if strings.Count(wire, `"seq"`) != 2 {
		t.Fatalf("unsequenced block grew a seq field: %s", wire)
	}
	got, err := ReadAll(strings.NewReader(wire))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got[0].Seq != 7 || got[1].Seq != 8 || got[2].Seq != 0 {
		t.Fatalf("seqs = %d %d %d, want 7 8 0", got[0].Seq, got[1].Seq, got[2].Seq)
	}
}

func TestLineDecoder(t *testing.T) {
	in := "{\"seq\":1,\"txs\":[[1,2]]}\n\n{\"points\":[[0.5]]}\n"
	d := NewLineDecoder(strings.NewReader(in), 1024)
	b1, err := d.Next()
	if err != nil || b1.Seq != 1 || b1.Kind() != "tx" {
		t.Fatalf("first block = %+v, %v", b1, err)
	}
	b2, err := d.Next()
	if err != nil || b2.Kind() != "points" {
		t.Fatalf("second block = %+v, %v", b2, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

func TestLineDecoderCapsLineLength(t *testing.T) {
	long := `{"txs":[[` + strings.Repeat("1,", 4000) + `1]]}`
	d := NewLineDecoder(strings.NewReader(long+"\n"), 256)
	if _, err := d.Next(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("oversized line = %v, want ErrLineTooLong", err)
	}
}

func TestLineDecoderRejectsTrailingData(t *testing.T) {
	d := NewLineDecoder(strings.NewReader(`{"txs":[[1]]} {"txs":[[2]]}`+"\n"), 1024)
	if _, err := d.Next(); err == nil {
		t.Fatalf("two objects on one line decoded without error")
	}
}
