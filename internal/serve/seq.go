package serve

import (
	"errors"
	"fmt"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/diskio"
)

// Sequencing sentinels the HTTP layer maps to status codes. Sequencing is
// opt-in per stream: a block carrying seq > 0 enrolls the namespace, after
// which every block must arrive in strict +1 order. Duplicates (seq at or
// below the accepted high-water mark) are acknowledged as no-ops so a client
// that re-sends after an ambiguous failure cannot double-ingest; gaps are
// rejected so a lost block cannot silently vanish.
var (
	// ErrDuplicate reports a block whose sequence number was already
	// accepted (HTTP 200 with "duplicate": true — an idempotent success).
	ErrDuplicate = errors.New("serve: duplicate block")
	// ErrSeqGap reports a sequence number beyond the next expected one
	// (HTTP 409: the client must re-send the missing blocks first).
	ErrSeqGap = errors.New("serve: sequence gap")
	// ErrUnsequenced reports a seq-less block sent to a namespace that has
	// started sequencing (HTTP 409: mixing modes would break the exactly-once
	// accounting).
	ErrUnsequenced = errors.New("serve: unsequenced block in sequenced namespace")
)

// seqMetaKey persists the namespace's sequence high-water mark. It is
// written by the miner's TxnHook inside the SAME transaction as the block's
// own writes, so the pair (seq, t) is exactly as durable as the block it
// describes: after a crash the store either has both the block and its seq
// record or neither. Unsequenced namespaces never write this key, keeping
// their stores byte-identical to plain miner runs.
const seqMetaKey = "checkpoint/serve/seq"

// putSeqMeta records that the block committed at position t carried
// sequence number seq.
func putSeqMeta(store demon.Store, seq uint64, t demon.BlockID) error {
	buf := diskio.AppendUvarint(nil, seq)
	buf = diskio.AppendUvarint(buf, uint64(t))
	return store.Put(seqMetaKey, buf)
}

// getSeqMeta reads the last committed (seq, t) pair; diskio.ErrNotFound
// when the namespace has never seen a sequenced block.
func getSeqMeta(store demon.Store) (seq uint64, t demon.BlockID, err error) {
	data, err := store.Get(seqMetaKey)
	if err != nil {
		return 0, 0, err
	}
	seq, data, err = diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: decoding seq meta: %w", err)
	}
	tv, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: decoding seq meta: %w", err)
	}
	if len(data) != 0 {
		return 0, 0, fmt.Errorf("serve: %w: %d trailing bytes after seq meta", diskio.ErrCorrupt, len(data))
	}
	return seq, demon.BlockID(tv), nil
}

// recoverSeq reconciles the persisted sequence record with the position the
// model actually restored to. Resume* restores miners from the LAST
// CHECKPOINT, not the last applied block: blocks applied after the
// checkpoint roll out of the model on crash (their raw data remains in the
// store) and must be re-sent. The seq record, written per block, may
// therefore run AHEAD of the restored model by exactly the number of
// rolled-out blocks — and because sequenced blocks map 1:1 onto block
// positions from the moment sequencing starts (unsequenced blocks are
// refused once the namespace is enrolled), the true high-water mark is
//
//	S − (T_s − T_restored)
//
// clamped at zero for the case where the restore point predates sequencing
// entirely. The monitor kind always restores to its full history, so there
// T_s == T_restored and the record is used as-is.
func recoverSeq(store demon.Store, restoredT demon.BlockID) (uint64, error) {
	s, ts, err := getSeqMeta(store)
	if errors.Is(err, diskio.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if ts < restoredT {
		return 0, fmt.Errorf("serve: %w: seq record at t=%d behind restored model t=%d", diskio.ErrCorrupt, ts, restoredT)
	}
	rolledOut := uint64(ts - restoredT)
	if rolledOut >= s {
		return 0, nil
	}
	return s - rolledOut, nil
}
