package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/blockio"
)

// TestNamespaceStoreBackends exercises the per-namespace backend selection:
// a namespace created with store=kvfile+cache lives in a single file, the
// server default fills in unset specs and is stamped into the persisted
// spec, and a restart under a *different* default still resumes every
// namespace on the backend it was created with.
func TestNamespaceStoreBackends(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{Root: root, DefaultStoreBackend: "kvfile"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	create := func(spec string, wantCode int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/namespaces", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("create %s: status %d, want %d", spec, resp.StatusCode, wantCode)
		}
	}
	create(`{"name":"explicit","kind":"itemset","min_support":0.2,"store":"kvfile","cache_bytes":65536}`, http.StatusCreated)
	create(`{"name":"defaulted","kind":"itemset","min_support":0.2}`, http.StatusCreated)
	create(`{"name":"bad","kind":"itemset","min_support":0.2,"store":"bogus"}`, http.StatusBadRequest)
	create(`{"name":"badcache","kind":"itemset","min_support":0.2,"cache_bytes":-1}`, http.StatusBadRequest)

	for _, ns := range []string{"explicit", "defaulted"} {
		res := postBlocks(t, ts, ns, blockio.TxBlock(txRows(40, 0)), blockio.TxBlock(txRows(40, 1)))
		if res.Accepted != 2 {
			t.Fatalf("%s: accepted %d blocks, want 2", ns, res.Accepted)
		}
		resp, err := http.Post(ts.URL+"/v1/namespaces/"+ns+"/flush?checkpoint=1", "", nil)
		if err != nil {
			t.Fatalf("flush %s: %v", ns, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flush %s: status %d", ns, resp.StatusCode)
		}
	}

	// Both namespaces must live in the kvfile backend's single file, and the
	// defaulted one must have the resolved backend stamped into its spec.
	for _, ns := range []string{"explicit", "defaulted"} {
		kv := filepath.Join(root, ns, "store", "store.kv")
		if _, err := os.Stat(kv); err != nil {
			t.Fatalf("%s has no kvfile store: %v", ns, err)
		}
		spec, err := readSpec(filepath.Join(root, ns))
		if err != nil {
			t.Fatalf("readSpec %s: %v", ns, err)
		}
		if spec.Store != "kvfile" {
			t.Fatalf("%s persisted store backend %q, want kvfile", ns, spec.Store)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// Restart under a different default: the persisted backend wins.
	s2, err := New(Config{Root: root, DefaultStoreBackend: "file"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, ns := range []string{"explicit", "defaulted"} {
		n, ok := s2.Namespace(ns)
		if !ok {
			t.Fatalf("resumed server lost namespace %s", ns)
		}
		if n.T() != 2 {
			t.Fatalf("%s resumed at block %d, want 2", ns, n.T())
		}
		if len(n.m().itemset.FrequentItemsets()) == 0 {
			t.Fatalf("%s resumed with an empty model", ns)
		}
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("drain resumed server: %v", err)
	}

	// Deleting a kvfile namespace closes its store and removes the tree.
	if err := s2.Delete(context.Background(), "explicit"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "explicit")); !os.IsNotExist(err) {
		t.Fatalf("deleted namespace directory still present (err=%v)", err)
	}

	// A server config with an unknown default backend is refused outright.
	if _, err := New(Config{Root: t.TempDir(), DefaultStoreBackend: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown default store backend")
	}
}
