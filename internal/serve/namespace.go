package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull reports backpressure: the namespace's bounded ingest
	// queue is at capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: ingest queue full")
	// ErrDraining reports that intake has stopped for shutdown (HTTP 503).
	ErrDraining = errors.New("serve: namespace draining")
	// ErrWrongKind reports a payload the namespace cannot ingest — points
	// into a transaction model or vice versa (HTTP 400).
	ErrWrongKind = errors.New("serve: block kind does not match namespace kind")
)

// queued is one entry of the ingest queue: a block, or a flush marker whose
// reply channel the worker signals once everything enqueued before it has
// been applied (and, when checkpoint is set, checkpointed).
//
// Block entries carry the span context of the ingest request and their
// enqueue time, so the worker can record the enqueue→dequeue wait into the
// request's trace and apply the block under the same trace — the queue hop
// is where the context.Context chain breaks, and this is the bridge across
// it. The epoch stamps which model generation admitted the entry: a reopen
// bumps the namespace epoch, and the worker discards entries from earlier
// generations instead of applying them to a model that no longer expects
// their position.
type queued struct {
	block      blockio.Block
	flush      chan error
	checkpoint bool

	epoch    uint64
	sc       obs.SpanContext
	enqueued time.Time
}

// ageTracker follows the enqueue times of blocks still waiting in the
// queue, so the collector can expose the oldest-enqueued-block age (the
// second half of ingest lag, alongside queue depth). Pushes come from many
// Enqueue goroutines, pops from the single worker; because a pop can win
// the race against the push of the very entry it dequeued, a pop on an
// empty tracker records debt that the next push cancels.
type ageTracker struct {
	mu   sync.Mutex
	ts   []time.Time
	debt int
}

func (a *ageTracker) push(t time.Time) {
	a.mu.Lock()
	if a.debt > 0 {
		a.debt--
	} else {
		a.ts = append(a.ts, t)
	}
	a.mu.Unlock()
}

func (a *ageTracker) pop() {
	a.mu.Lock()
	if len(a.ts) == 0 {
		a.debt++
	} else {
		a.ts = a.ts[1:]
	}
	a.mu.Unlock()
}

// oldestAge returns how long the oldest still-enqueued block has waited
// (0 when the queue is empty).
func (a *ageTracker) oldestAge(now time.Time) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.ts) == 0 {
		return 0
	}
	return now.Sub(a.ts[0])
}

// model is one generation of a namespace's resident miner. Exactly one
// field is non-nil, per the spec kind. It lives behind an atomic pointer on
// the Namespace so auto-reopen can swap in a freshly resumed generation
// while query handlers keep reading the old one without locks.
type model struct {
	itemset *demon.ItemsetMiner
	window  *demon.ItemsetWindowMiner
	cluster *demon.ClusterMiner
	monitor *monitorModel
}

// T returns the identifier of the latest applied block.
func (m *model) T() demon.BlockID {
	switch {
	case m.itemset != nil:
		return m.itemset.T()
	case m.window != nil:
		return m.window.T()
	case m.cluster != nil:
		return m.cluster.T()
	default:
		return m.monitor.T()
	}
}

// apply feeds one block to the resident miner — each call is one atomic
// store transaction (PR 3): after a crash the store holds all of the
// block's writes or none. ctx carries the ingest request's span context
// across the queue hop.
func (m *model) apply(ctx context.Context, b blockio.Block) error {
	switch {
	case m.itemset != nil:
		_, err := m.itemset.AddBlockCtx(ctx, b.Items())
		return err
	case m.window != nil:
		_, err := m.window.AddBlockCtx(ctx, b.Items())
		return err
	case m.cluster != nil:
		_, err := m.cluster.AddBlockCtx(ctx, b.CFPoints())
		return err
	default:
		return m.monitor.AddBlockCtx(ctx, b.Items())
	}
}

// checkpoint persists the resident model through the store's transaction
// layer. The monitor kind checkpoints implicitly — its durable state is the
// per-block history written inside each AddBlock transaction.
func (m *model) checkpoint() error {
	switch {
	case m.itemset != nil:
		return m.itemset.Checkpoint()
	case m.window != nil:
		return m.window.Checkpoint()
	case m.cluster != nil:
		return m.cluster.Checkpoint()
	default:
		return nil
	}
}

// openModel creates or resumes one model generation over the store via the
// Resume* recovery paths, wires hook into every block transaction, and
// reconciles the persisted sequence record with the position the model
// restored to.
func openModel(store demon.Store, spec Spec, hook func(demon.Store, demon.BlockID) error) (*model, uint64, error) {
	m := &model{}
	var err error
	switch spec.Kind {
	case KindItemset:
		strategy, _ := parseStrategy(spec.Strategy)
		m.itemset, err = demon.ResumeItemsetMiner(demon.ItemsetMinerConfig{
			MinSupport:          spec.MinSupport,
			Strategy:            strategy,
			Store:               store,
			BSS:                 spec.bss(),
			Workers:             spec.Workers,
			AutoCheckpointEvery: spec.CheckpointEvery,
			TxnHook:             hook,
		})
	case KindWindow:
		strategy, _ := parseStrategy(spec.Strategy)
		cfg := demon.ItemsetWindowMinerConfig{
			MinSupport:          spec.MinSupport,
			Strategy:            strategy,
			Store:               store,
			WindowSize:          spec.WindowSize,
			BSS:                 spec.bss(),
			Workers:             spec.Workers,
			AutoCheckpointEvery: spec.CheckpointEvery,
			TxnHook:             hook,
		}
		if spec.WindowRelBSS != "" {
			rel, perr := demon.ParseWindowRelBSS(spec.WindowRelBSS)
			if perr != nil {
				return nil, 0, perr
			}
			cfg.WindowRelBSS = rel
			cfg.WindowSize = 0
		}
		m.window, err = demon.ResumeItemsetWindowMiner(cfg)
	case KindCluster:
		m.cluster, err = demon.ResumeClusterMiner(demon.ClusterMinerConfig{
			K:                   spec.K,
			Store:               store,
			BSS:                 spec.bss(),
			Workers:             spec.Workers,
			AutoCheckpointEvery: spec.CheckpointEvery,
			TxnHook:             hook,
		})
	case KindMonitor:
		m.monitor, err = resumeMonitor(store, spec)
		if err == nil {
			m.monitor.txnHook = hook
		}
	}
	if err != nil {
		return nil, 0, err
	}
	highwater, err := recoverSeq(store, m.T())
	if err != nil {
		return nil, 0, err
	}
	return m, highwater, nil
}

// Namespace is one resident model: a durable store, a miner created or
// resumed over it, and a bounded ingest queue applied by a single worker
// goroutine — AddBlock mutators must not race, so the worker is the
// namespace's only mutator while queries read concurrently through the
// miners' RWMutex read surfaces.
//
// Sequencing state lives at three levels of durability: seqAccepted (the
// admission high-water mark, guarded by mu), seqApplied (committed to the
// store by the worker), and seqDurable (covered by a checkpoint — the only
// mark that survives a crash with certainty, and therefore the only one a
// client may trim its replay buffer to).
type Namespace struct {
	spec Spec
	dir  string

	store demon.Store

	queue chan queued
	done  chan struct{}

	// reopenBackoff is the base delay of the auto-reopen loop; <= 0
	// disables automatic recovery from sticky failures.
	reopenBackoff time.Duration

	// mu guards draining, err, seqAccepted, and epoch; senders tracks
	// in-flight blocking Flush sends so drain can close the queue without
	// racing them (Enqueue sends hold mu, which the closer also takes).
	mu          sync.Mutex
	draining    bool
	err         error
	senders     sync.WaitGroup
	seqAccepted uint64
	epoch       uint64

	// mdl is the current model generation; handlers load it without locks.
	mdl atomic.Pointer[model]

	// pendingSeq carries the sequence number of the block being applied
	// from the worker to the TxnHook running inside the miner's
	// transaction; 0 while no sequenced block is in flight.
	pendingSeq atomic.Uint64
	seqApplied atomic.Uint64
	seqDurable atomic.Uint64

	accepted   atomic.Int64
	applied    atomic.Int64
	rejected   atomic.Int64
	failed     atomic.Int64
	duplicates atomic.Int64
	reopens    atomic.Int64

	ages ageTracker
}

// openNamespace creates or resumes the namespace under dir: the durable
// store stack over dir/store (the backend the spec selects, or the server
// default) and the miner via the Resume* paths, which recover interrupted
// transactions and restore the last checkpoint — a server killed mid-block
// reopens exactly at its last durable state.
func openNamespace(dir string, spec Spec, queueDepth int, reopenBackoff time.Duration, defaultBackend string) (*Namespace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.QueueDepth > 0 {
		queueDepth = spec.QueueDepth
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	url, err := spec.storeURL(dir, defaultBackend)
	if err != nil {
		return nil, err
	}
	store, err := demon.OpenStore(url)
	if err != nil {
		return nil, err
	}
	n := &Namespace{
		spec:          spec,
		dir:           dir,
		store:         store,
		queue:         make(chan queued, queueDepth),
		done:          make(chan struct{}),
		reopenBackoff: reopenBackoff,
	}
	m, highwater, err := openModel(store, spec, n.txnHook)
	if err != nil {
		demon.CloseStore(store)
		return nil, fmt.Errorf("serve: opening namespace %s: %w", spec.Name, err)
	}
	n.mdl.Store(m)
	n.seqAccepted = highwater
	n.seqApplied.Store(highwater)
	n.seqDurable.Store(highwater)
	go n.run()
	return n, nil
}

// txnHook runs inside every block transaction, persisting the (seq, t)
// record atomically with the block itself. Unsequenced blocks write
// nothing, so an unsequenced namespace's store stays byte-identical to a
// plain miner run over the same stream.
func (n *Namespace) txnHook(store demon.Store, id demon.BlockID) error {
	seq := n.pendingSeq.Load()
	if seq == 0 {
		return nil
	}
	return putSeqMeta(store, seq, id)
}

// Spec returns the namespace's configuration.
func (n *Namespace) Spec() Spec { return n.spec }

// Store exposes the namespace's store (read-only use: digests, stats).
func (n *Namespace) Store() demon.Store { return n.store }

// m returns the current model generation.
func (n *Namespace) m() *model { return n.mdl.Load() }

// T returns the identifier of the latest applied block.
func (n *Namespace) T() demon.BlockID { return n.m().T() }

// Seq returns the namespace's sequencing marks: the admission high-water
// mark (the next block must carry seq accepted+1), the last sequence
// committed to the store, and the last covered by a checkpoint (the
// client's safe trim point).
func (n *Namespace) Seq() (accepted, applied, durable uint64) {
	n.mu.Lock()
	accepted = n.seqAccepted
	n.mu.Unlock()
	return accepted, n.seqApplied.Load(), n.seqDurable.Load()
}

// Err returns the sticky ingest failure, if any. Once a block transaction
// fails the namespace refuses further ingestion until the auto-reopen loop
// resumes a fresh model generation from the store (or the server restarts);
// queries keep serving the last good model meanwhile.
func (n *Namespace) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// QueueDepth returns the current and maximum ingest queue occupancy.
func (n *Namespace) QueueDepth() (depth, capacity int) {
	return len(n.queue), cap(n.queue)
}

// Enqueue offers one block to the ingest queue without blocking: a full
// queue is backpressure (ErrQueueFull), a draining namespace rejects intake
// (ErrDraining), and a payload of the wrong kind is refused before it can
// poison the worker (ErrWrongKind). Sequenced blocks additionally pass
// duplicate/gap admission (ErrDuplicate, ErrSeqGap, ErrUnsequenced).
func (n *Namespace) Enqueue(b blockio.Block) error {
	return n.EnqueueCtx(context.Background(), b)
}

// EnqueueCtx is Enqueue carrying the ingest request's context: when ctx
// belongs to a sampled trace, the block's queue wait and its application by
// the worker record into that trace even though they outlive the request.
//
// Admission and the queue send happen under one mu hold, so concurrent
// requests cannot interleave two in-order sequenced blocks into the queue
// out of order, and a block's seq is reserved if and only if it was
// actually enqueued.
func (n *Namespace) EnqueueCtx(ctx context.Context, b blockio.Block) error {
	if txPayload := b.Txs != nil; txPayload != n.spec.txKind() {
		n.rejected.Add(1)
		return fmt.Errorf("%w: %s block into %s namespace %s", ErrWrongKind, b.Kind(), n.spec.Kind, n.spec.Name)
	}
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		n.rejected.Add(1)
		return ErrDraining
	}
	if n.err != nil {
		err := n.err
		n.mu.Unlock()
		n.rejected.Add(1)
		return err
	}
	switch next := n.seqAccepted + 1; {
	case b.Seq == 0 && n.seqAccepted > 0:
		n.mu.Unlock()
		n.rejected.Add(1)
		return fmt.Errorf("%w: namespace %s expects seq %d", ErrUnsequenced, n.spec.Name, next)
	case b.Seq != 0 && b.Seq < next:
		n.mu.Unlock()
		n.duplicates.Add(1)
		return fmt.Errorf("%w: seq %d already accepted by namespace %s (next %d)", ErrDuplicate, b.Seq, n.spec.Name, next)
	case b.Seq > next:
		n.mu.Unlock()
		n.rejected.Add(1)
		return fmt.Errorf("%w: namespace %s got seq %d, wants %d", ErrSeqGap, n.spec.Name, b.Seq, next)
	}

	entry := queued{block: b, epoch: n.epoch, sc: obs.SpanContextFrom(ctx), enqueued: time.Now()}
	select {
	case n.queue <- entry:
		if b.Seq != 0 {
			n.seqAccepted = b.Seq
		}
		n.accepted.Add(1)
		n.ages.push(entry.enqueued)
		n.mu.Unlock()
		return nil
	default:
		n.mu.Unlock()
		n.rejected.Add(1)
		return ErrQueueFull
	}
}

// Flush blocks until every block enqueued before the call has been applied,
// checkpointing afterwards when checkpoint is set. Unlike Enqueue it waits
// for queue space, honouring ctx.
func (n *Namespace) Flush(ctx context.Context, checkpoint bool) error {
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		return ErrDraining
	}
	n.senders.Add(1)
	n.mu.Unlock()

	marker := queued{flush: make(chan error, 1), checkpoint: checkpoint}
	select {
	case n.queue <- marker:
		n.senders.Done()
	case <-ctx.Done():
		n.senders.Done()
		return ctx.Err()
	}
	select {
	case err := <-marker.flush:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain stops intake, waits for the queue to empty, and checkpoints — the
// graceful-shutdown path. The in-flight block transaction always completes:
// the worker finishes its current AddBlock (one atomic store transaction)
// before the queue closes, so a drained store is never mid-block. Drain is
// idempotent; later calls wait for the first to finish.
func (n *Namespace) Drain(ctx context.Context) error {
	n.mu.Lock()
	if !n.draining {
		n.draining = true
		// Close the queue only after every in-flight blocking Flush send has
		// finished (they checked draining before registering); Enqueue sends
		// hold mu, which the closer takes too.
		go func() {
			n.senders.Wait()
			n.mu.Lock()
			close(n.queue)
			n.mu.Unlock()
		}()
	}
	n.mu.Unlock()

	select {
	case <-n.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := n.Err(); err != nil {
		return fmt.Errorf("serve: namespace %s drained with sticky failure: %w", n.spec.Name, err)
	}
	return n.checkpoint()
}

// run is the namespace's single ingest worker.
func (n *Namespace) run() {
	defer close(n.done)
	for q := range n.queue {
		if q.flush != nil {
			err := n.Err()
			if err == nil && q.checkpoint {
				err = n.checkpoint()
			}
			q.flush <- err
			continue
		}
		n.ages.pop()
		// The enqueue→dequeue wait is timed externally (the worker was busy
		// elsewhere), so it is recorded, not spanned.
		wait := time.Since(q.enqueued)
		obs.Default().Timer("serve.queue.wait.ns").Record(wait)
		q.sc.RecordSpan("serve.queue.wait.ns", q.enqueued, wait)

		n.mu.Lock()
		stale := q.epoch != n.epoch || n.err != nil
		n.mu.Unlock()
		if stale {
			// A poisoned namespace keeps consuming so drain never blocks,
			// but applies nothing further; entries admitted by an earlier
			// model generation are likewise dropped — their client was told
			// to resync when the reopen reset the sequence marks.
			n.failed.Add(1)
			continue
		}
		ctx := q.sc.Context(context.Background())
		n.pendingSeq.Store(q.block.Seq)
		err := n.m().apply(ctx, q.block)
		n.pendingSeq.Store(0)
		if err != nil {
			n.failed.Add(1)
			n.mu.Lock()
			n.err = err
			n.mu.Unlock()
			log.Default().ErrorCtx(ctx, "block apply failed; namespace refuses ingestion until reopened",
				"ns", n.spec.Name, "t", int64(n.T()), "err", err)
			n.maybeReopen()
			continue
		}
		n.applied.Add(1)
		if s := q.block.Seq; s != 0 {
			n.seqApplied.Store(s)
			// The monitor's durable state is the block history itself, so
			// every applied block is checkpoint-grade durable; the miner
			// kinds reach durability at their automatic checkpoints.
			if n.spec.Kind == KindMonitor {
				n.seqDurable.Store(s)
			} else if ce := n.spec.CheckpointEvery; ce > 0 && int64(n.T())%int64(ce) == 0 {
				n.seqDurable.Store(s)
			}
		}
	}
}

// checkpoint persists the model and promotes the applied sequence mark to
// durable — after this, a crash cannot roll the model behind it.
func (n *Namespace) checkpoint() error {
	if err := n.m().checkpoint(); err != nil {
		return err
	}
	if s := n.seqApplied.Load(); s > n.seqDurable.Load() {
		n.seqDurable.Store(s)
	}
	return nil
}

// maybeReopen starts the auto-reopen loop after a sticky failure: with
// capped exponential backoff it resumes a fresh model generation from the
// store (the same path a server restart takes), swaps it in, and resets the
// sequence marks to what actually survived — clients then resync and re-send
// from the recovered position. The loop gives up when the namespace drains.
func (n *Namespace) maybeReopen() {
	if n.reopenBackoff <= 0 {
		return
	}
	go func() {
		const maxBackoff = 30 * time.Second
		for delay := n.reopenBackoff; ; delay = min(delay*2, maxBackoff) {
			select {
			case <-n.done:
				return
			case <-time.After(delay):
			}
			if n.tryReopen() {
				return
			}
		}
	}()
}

// tryReopen attempts one reopen; it reports true when the namespace is
// healthy again (or permanently beyond help, i.e. draining).
func (n *Namespace) tryReopen() bool {
	// Wait for the worker to finish discarding poisoned-era entries first:
	// reopening under a non-empty queue would race fresh admissions against
	// stale ones. No new entries can arrive while err is set.
	if len(n.queue) > 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.draining || n.err == nil {
		return true
	}
	if len(n.queue) > 0 {
		return false
	}
	m, highwater, err := openModel(n.store, n.spec, n.txnHook)
	if err != nil {
		log.Default().Warn("namespace reopen failed; backing off",
			"ns", n.spec.Name, "err", err)
		return false
	}
	n.mdl.Store(m)
	n.seqAccepted = highwater
	n.seqApplied.Store(highwater)
	n.seqDurable.Store(highwater)
	n.epoch++
	n.err = nil
	n.reopens.Add(1)
	log.Default().Info("namespace reopened after sticky failure",
		"ns", n.spec.Name, "t", int64(m.T()), "seq", highwater)
	return true
}

// monitorModel adapts the in-memory pattern detector to the durable
// namespace contract: every ingested block commits to the store (block data
// + position meta, one transaction) before the detector absorbs it, and
// resume replays the stored history into a fresh detector. Deviation state
// is derived, so replay reproduces it exactly.
type monitorModel struct {
	mon    *demon.Monitor
	io     *diskio.TxnStore
	blocks *itemset.BlockStore // over io, so writes join the block transaction
	// txnHook, when non-nil, runs inside every AddBlock transaction before
	// commit, mirroring the miners' ItemsetMinerConfig.TxnHook.
	txnHook func(demon.Store, demon.BlockID) error
	// t is atomic: the ingest worker advances it while status handlers read
	// it (the detector behind mon has its own RWMutex).
	t      atomic.Int64
	nextTx int
}

const monitorMetaKey = "checkpoint/monitor/meta"

func putMonitorMeta(store diskio.Store, t demon.BlockID, nextTx int) error {
	buf := diskio.AppendUvarint(nil, uint64(t))
	buf = diskio.AppendUvarint(buf, uint64(nextTx))
	return store.Put(monitorMetaKey, buf)
}

func getMonitorMeta(store diskio.Store) (t demon.BlockID, nextTx int, err error) {
	data, err := store.Get(monitorMetaKey)
	if err != nil {
		return 0, 0, err
	}
	tv, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: decoding monitor meta: %w", err)
	}
	nv, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: decoding monitor meta: %w", err)
	}
	if len(data) != 0 {
		return 0, 0, fmt.Errorf("serve: %w: %d trailing bytes after monitor meta", diskio.ErrCorrupt, len(data))
	}
	return demon.BlockID(tv), int(nv), nil
}

func newMonitor(spec Spec) (*demon.Monitor, error) {
	return demon.NewMonitor(demon.MonitorConfig{
		MinSupport: spec.MinSupport,
		Alpha:      spec.Alpha,
		Workers:    spec.Workers,
	})
}

// resumeMonitor rebuilds the detector by replaying the stored block history
// recorded by previous AddBlock transactions; a fresh store starts empty.
func resumeMonitor(store demon.Store, spec Spec) (*monitorModel, error) {
	if _, err := demon.RecoverStore(store); err != nil {
		return nil, err
	}
	mon, err := newMonitor(spec)
	if err != nil {
		return nil, err
	}
	m := &monitorModel{mon: mon, io: diskio.NewTxnStore(store)}
	m.blocks = itemset.NewBlockStore(m.io)
	t, nextTx, err := getMonitorMeta(store)
	if errors.Is(err, diskio.ErrNotFound) {
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	for id := blockseq.ID(1); id <= t; id++ {
		blk, err := m.blocks.Get(id)
		if err != nil {
			return nil, fmt.Errorf("serve: replaying monitor block %d: %w", id, err)
		}
		rows := make([][]itemset.Item, len(blk.Txs))
		for i, tx := range blk.Txs {
			rows[i] = tx.Items
		}
		if _, err := m.mon.AddBlock(rows); err != nil {
			return nil, fmt.Errorf("serve: replaying monitor block %d: %w", id, err)
		}
	}
	m.t.Store(int64(t))
	m.nextTx = nextTx
	return m, nil
}

func (m *monitorModel) T() demon.BlockID { return demon.BlockID(m.t.Load()) }

// AddBlock commits the block durably, then lets the detector absorb it. A
// detector failure after the commit is sticky — the namespace resumes
// cleanly on restart by replaying the store.
func (m *monitorModel) AddBlock(rows [][]itemset.Item) error {
	return m.AddBlockCtx(context.Background(), rows)
}

// AddBlockCtx is AddBlock carrying a request context for tracing.
func (m *monitorModel) AddBlockCtx(ctx context.Context, rows [][]itemset.Item) error {
	id := m.T() + 1
	blk := itemset.NewTxBlock(id, m.nextTx, rows)

	m.io.BeginCtx(ctx)
	if err := m.blocks.Put(blk); err != nil {
		m.io.Rollback()
		return fmt.Errorf("serve: storing monitor block %d: %w", id, err)
	}
	if err := putMonitorMeta(m.io, id, m.nextTx+blk.Len()); err != nil {
		m.io.Rollback()
		return fmt.Errorf("serve: storing monitor meta: %w", err)
	}
	if m.txnHook != nil {
		if err := m.txnHook(m.io, id); err != nil {
			m.io.Rollback()
			return fmt.Errorf("serve: monitor block %d transaction hook: %w", id, err)
		}
	}
	if err := m.io.Commit(); err != nil {
		return err
	}
	if _, err := m.mon.AddBlockCtx(ctx, rows); err != nil {
		return err
	}
	m.t.Store(int64(id))
	m.nextTx += blk.Len()
	return nil
}

// removeDir releases the namespace's store (closing the kvfile backend's
// file handle, if that is what backs it) and deletes the directory tree;
// used by DELETE after a successful drain.
func (n *Namespace) removeDir() error {
	_ = demon.CloseStore(n.store)
	return os.RemoveAll(n.dir)
}
