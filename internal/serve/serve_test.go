package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/itemset"
)

func mustServer(t *testing.T, root string) *Server {
	t.Helper()
	s, err := New(Config{Root: root})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// txRows builds a deterministic transaction block: half the rows carry
// {1,2}, the rest singletons, so {1,2} is always frequent at κ=0.2.
func txRows(n, salt int) [][]itemset.Item {
	rows := make([][]itemset.Item, n)
	for i := range rows {
		if i%2 == 0 {
			rows[i] = []itemset.Item{1, 2}
		} else {
			rows[i] = []itemset.Item{itemset.Item(3 + (i+salt)%5)}
		}
	}
	return rows
}

func postBlocks(t *testing.T, ts *httptest.Server, ns string, blocks ...blockio.Block) ingestResult {
	t.Helper()
	var body strings.Builder
	enc := blockio.NewEncoder(&body)
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/namespaces/"+ns+"/blocks", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("POST blocks: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST blocks: status %d", resp.StatusCode)
	}
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode ingest result: %v", err)
	}
	return res
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestCreateIngestQueryResume(t *testing.T) {
	root := t.TempDir()
	s := mustServer(t, root)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Create over the API.
	spec := `{"name":"retail","kind":"itemset","min_support":0.2,"strategy":"ecut"}`
	resp, err := http.Post(ts.URL+"/v1/namespaces", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	// Duplicate names are rejected.
	resp, err = http.Post(ts.URL+"/v1/namespaces", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("create dup: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate create: status %d, want 400", resp.StatusCode)
	}

	// Ingest three blocks and flush so queries see them.
	res := postBlocks(t, ts, "retail",
		blockio.TxBlock(txRows(40, 0)), blockio.TxBlock(txRows(40, 1)), blockio.TxBlock(txRows(40, 2)))
	if res.Accepted != 3 {
		t.Fatalf("accepted %d blocks, want 3", res.Accepted)
	}
	resp, err = http.Post(ts.URL+"/v1/namespaces/retail/flush?checkpoint=1", "", nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d", resp.StatusCode)
	}

	var sets []itemsetJSON
	if code := getJSON(t, ts.URL+"/v1/namespaces/retail/itemsets?top=5", &sets); code != 200 {
		t.Fatalf("itemsets: status %d", code)
	}
	found := false
	for _, x := range sets {
		if len(x.Items) == 2 && x.Items[0] == 1 && x.Items[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("itemsets response misses {1,2}: %+v", sets)
	}
	var border []itemsetJSON
	if code := getJSON(t, ts.URL+"/v1/namespaces/retail/border", &border); code != 200 {
		t.Fatalf("border: status %d", code)
	}
	var rules []ruleJSON
	if code := getJSON(t, ts.URL+"/v1/namespaces/retail/rules?minconf=0.5", &rules); code != 200 {
		t.Fatalf("rules: status %d", code)
	}
	var status nsStatus
	if code := getJSON(t, ts.URL+"/v1/namespaces/retail", &status); code != 200 {
		t.Fatalf("status: status %d", code)
	}
	if status.T != 3 || status.Applied != 3 || !status.Healthy {
		t.Fatalf("status = %+v, want T=3 applied=3 healthy", status)
	}

	// Wrong-kind payload is a 400, not a poisoned namespace.
	var body strings.Builder
	_ = blockio.NewEncoder(&body).Encode(blockio.PointBlock([]demon.Point{{1, 2}}))
	resp, err = http.Post(ts.URL+"/v1/namespaces/retail/blocks", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("wrong kind: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong kind: status %d, want 400", resp.StatusCode)
	}

	// Drain and reopen: the namespace resumes at block 3 with the model.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	s2 := mustServer(t, root)
	n, ok := s2.Namespace("retail")
	if !ok {
		t.Fatalf("resumed server lost the namespace")
	}
	if n.T() != 3 {
		t.Fatalf("resumed at block %d, want 3", n.T())
	}
	sets2 := n.m().itemset.FrequentItemsets()
	if len(sets2) == 0 {
		t.Fatalf("resumed model is empty")
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("drain resumed server: %v", err)
	}
}

func TestBackpressure(t *testing.T) {
	// A hand-built namespace with no running worker keeps the queue state
	// deterministic: capacity 2, nothing dequeues.
	n := &Namespace{
		spec:  Spec{Name: "bp", Kind: KindItemset, MinSupport: 0.1},
		queue: make(chan queued, 2),
		done:  make(chan struct{}),
	}
	b := blockio.TxBlock(txRows(4, 0))
	if err := n.Enqueue(b); err != nil {
		t.Fatalf("enqueue 1: %v", err)
	}
	if err := n.Enqueue(b); err != nil {
		t.Fatalf("enqueue 2: %v", err)
	}
	if err := n.Enqueue(b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue 3 = %v, want ErrQueueFull", err)
	}
	if got := n.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	// The HTTP layer maps it to 429 with Retry-After and the accepted count.
	s := mustServer(t, t.TempDir())
	s.ns["bp"] = n
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body strings.Builder
	enc := blockio.NewEncoder(&body)
	_ = enc.Encode(b)
	resp, err := http.Post(ts.URL+"/v1/namespaces/bp/blocks", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Accepted != 0 || res.Enqueued != 2 {
		t.Fatalf("result = %+v, want accepted 0, enqueued 2", res)
	}
}

func TestDrainAppliesQueuedBlocks(t *testing.T) {
	root := t.TempDir()
	s := mustServer(t, root)
	if _, err := s.Create(Spec{Name: "drainy", Kind: KindItemset, MinSupport: 0.2}); err != nil {
		t.Fatalf("create: %v", err)
	}
	n, _ := s.Namespace("drainy")
	const blocks = 10
	for i := 0; i < blocks; i++ {
		if err := n.Enqueue(blockio.TxBlock(txRows(20, i))); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n.T() != blocks {
		t.Fatalf("drained at block %d, want %d — drain lost queued blocks", n.T(), blocks)
	}
	// Intake after drain is rejected.
	if err := n.Enqueue(blockio.TxBlock(txRows(2, 0))); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain enqueue = %v, want ErrDraining", err)
	}
	// Drain checkpointed: a fresh server resumes at the same position.
	s2 := mustServer(t, root)
	n2, ok := s2.Namespace("drainy")
	if !ok || n2.T() != blocks {
		t.Fatalf("resume after drain: ok=%v T=%d, want %d", ok, n2.T(), blocks)
	}
	_ = s2.Drain(context.Background())
}

func TestMonitorNamespaceReplay(t *testing.T) {
	root := t.TempDir()
	s := mustServer(t, root)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := Spec{Name: "mon", Kind: KindMonitor, MinSupport: 0.2, Alpha: 0.01}
	if _, err := s.Create(spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Two similar blocks and one wildly different one.
	similar := blockio.TxBlock(txRows(60, 0))
	different := blockio.TxBlock(func() [][]itemset.Item {
		rows := make([][]itemset.Item, 60)
		for i := range rows {
			rows[i] = []itemset.Item{100, 101, itemset.Item(102 + i%3)}
		}
		return rows
	}())
	postBlocks(t, ts, "mon", similar, similar, different)
	resp, err := http.Post(ts.URL+"/v1/namespaces/mon/flush", "", nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	resp.Body.Close()

	type report struct {
		T        demon.BlockID     `json:"t"`
		Patterns [][]demon.BlockID `json:"patterns"`
		PValue   *float64          `json:"p_value"`
		Similar  *bool             `json:"similar"`
	}
	var rep report
	if code := getJSON(t, ts.URL+"/v1/namespaces/mon/patterns?a=1&b=2", &rep); code != 200 {
		t.Fatalf("patterns: status %d", code)
	}
	if rep.T != 3 {
		t.Fatalf("monitor at block %d, want 3", rep.T)
	}
	if rep.Similar == nil || !*rep.Similar {
		t.Fatalf("blocks 1 and 2 not similar: %+v", rep)
	}

	// Restart: the detector replays the stored history and reports the same
	// patterns and cached deviations.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s2 := mustServer(t, root)
	n, ok := s2.Namespace("mon")
	if !ok {
		t.Fatalf("monitor namespace not resumed")
	}
	if n.T() != 3 {
		t.Fatalf("monitor resumed at %d, want 3", n.T())
	}
	score, pv, ok := n.m().monitor.mon.Similarity(1, 2)
	if !ok || pv < spec.Alpha {
		t.Fatalf("replayed similarity(1,2) = (%v, %v, %v), want similar", score, pv, ok)
	}
	if fmt.Sprint(n.m().monitor.mon.Patterns()) != fmt.Sprint(rep.Patterns) {
		t.Fatalf("replayed patterns %v != served %v", n.m().monitor.mon.Patterns(), rep.Patterns)
	}
	_ = s2.Drain(context.Background())
}

func TestHealthAndVersionEndpoints(t *testing.T) {
	s := mustServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	var v struct {
		Module string `json:"module"`
	}
	if code := getJSON(t, ts.URL+"/versionz", &v); code != 200 || v.Module == "" {
		t.Fatalf("versionz: code %d, module %q", code, v.Module)
	}
	var nss []nsStatus
	if code := getJSON(t, ts.URL+"/namespacesz", &nss); code != 200 {
		t.Fatalf("namespacesz: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/namespaces/ghost/itemsets", nil); code != 404 {
		t.Fatalf("unknown namespace: %d, want 404", code)
	}

	// Draining flips healthz to 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "", Kind: KindItemset, MinSupport: 0.1},
		{Name: "UPPER", Kind: KindItemset, MinSupport: 0.1},
		{Name: "../escape", Kind: KindItemset, MinSupport: 0.1},
		{Name: "x", Kind: "nope", MinSupport: 0.1},
		{Name: "x", Kind: KindItemset, MinSupport: 0},
		{Name: "x", Kind: KindItemset, MinSupport: 0.1, Strategy: "quantum"},
		{Name: "x", Kind: KindWindow, MinSupport: 0.1},
		{Name: "x", Kind: KindItemset, MinSupport: 0.1, WindowSize: 3},
		{Name: "x", Kind: KindCluster},
		{Name: "x", Kind: KindMonitor, MinSupport: 0.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v): validated", i, s)
		}
	}
	good := []Spec{
		{Name: "a-1_b.c", Kind: KindItemset, MinSupport: 0.1, Strategy: "ecutplus", Every: 2, Offset: 1},
		{Name: "w", Kind: KindWindow, MinSupport: 0.1, WindowRelBSS: "101"},
		{Name: "c", Kind: KindCluster, K: 3},
		{Name: "m", Kind: KindMonitor, MinSupport: 0.1, Alpha: 0.05},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}
