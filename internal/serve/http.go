package serve

import (
	"net/http"
	"time"
)

// HTTPTimeouts are the http.Server timeouts demon-serve runs with. A bare
// http.Server has none, which lets one slow or stalled client hold a
// connection (and its goroutine) forever — exactly the failure mode the
// chaos proxy injects. The read/write timeouts are generous because ingest
// requests legitimately stream multi-hundred-MB NDJSON bodies; the
// header timeout is tight because headers never are.
type HTTPTimeouts struct {
	// ReadHeader bounds reading a request's headers (Slowloris guard).
	ReadHeader time.Duration
	// Read bounds reading an entire request, streamed ingest body included.
	Read time.Duration
	// Write bounds writing an entire response.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between requests.
	Idle time.Duration
}

// DefaultHTTPTimeouts returns the production defaults.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       5 * time.Minute,
		Write:      5 * time.Minute,
		Idle:       2 * time.Minute,
	}
}

// Server builds an http.Server on addr serving h with the timeouts applied.
func (t HTTPTimeouts) Server(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
