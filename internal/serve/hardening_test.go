package serve

// HTTP-level tests of the ISSUE-8 server hardening: the sequenced ingest
// contract (duplicates acknowledged as idempotent no-ops, gaps and mode
// mixing rejected), the body and per-line 413 caps with their rejection
// counters, persistence of the sequence marks across a drain/restart, and
// the http.Server timeouts demon-serve runs with.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/obs"
)

// seqLines encodes tx blocks carrying the given sequence numbers as one
// NDJSON request body.
func seqLines(t *testing.T, seqs ...uint64) string {
	t.Helper()
	var body strings.Builder
	enc := blockio.NewEncoder(&body)
	for _, s := range seqs {
		b := blockio.TxBlock(txRows(6, int(s)))
		b.Seq = s
		if err := enc.Encode(b); err != nil {
			t.Fatalf("encode seq %d: %v", s, err)
		}
	}
	return body.String()
}

// postNDJSON posts a raw NDJSON body and decodes the ingest result whatever
// the status code.
func postNDJSON(t *testing.T, ts *httptest.Server, ns, body string) (int, ingestResult) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/namespaces/"+ns+"/blocks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST blocks: %v", err)
	}
	defer resp.Body.Close()
	var res ingestResult
	if err := decodeJSONBody(resp.Body, &res); err != nil {
		t.Fatalf("decode ingest result: %v", err)
	}
	return resp.StatusCode, res
}

func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func TestIngestSequencedContract(t *testing.T) {
	root := t.TempDir()
	s := mustServer(t, root)
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())

	// Blocks 1, 2 enroll the namespace in sequencing.
	code, res := postNDJSON(t, ts, "tx", seqLines(t, 1, 2))
	if code != http.StatusAccepted || res.Accepted != 2 || res.NextSeq != 3 {
		t.Fatalf("initial ingest: code %d, %+v; want 202, accepted 2, next_seq 3", code, res)
	}

	// A pure re-send is an idempotent success: 200 with "duplicate": true,
	// nothing enqueued twice.
	code, res = postNDJSON(t, ts, "tx", seqLines(t, 1, 2))
	if code != http.StatusOK || !res.Duplicate || res.Duplicates != 2 || res.Accepted != 0 {
		t.Fatalf("duplicate re-send: code %d, %+v; want 200 duplicate=true duplicates=2", code, res)
	}

	// A retry overlapping the accepted prefix acks the overlap and ingests
	// the rest — the ambiguous-failure recovery a chaos-torn request needs.
	code, res = postNDJSON(t, ts, "tx", seqLines(t, 2, 3))
	if code != http.StatusAccepted || res.Accepted != 1 || res.Duplicates != 1 || res.NextSeq != 4 {
		t.Fatalf("overlapping retry: code %d, %+v; want 202 accepted=1 duplicates=1 next_seq=4", code, res)
	}

	// A gap means a lost block: reject, tell the client what is expected.
	code, res = postNDJSON(t, ts, "tx", seqLines(t, 9))
	if code != http.StatusConflict || res.NextSeq != 4 || res.Error == "" {
		t.Fatalf("gap: code %d, %+v; want 409 with next_seq 4", code, res)
	}

	// Once sequenced, a seq-less block would break the accounting: reject.
	var plain strings.Builder
	if err := blockio.NewEncoder(&plain).Encode(blockio.TxBlock(txRows(6, 0))); err != nil {
		t.Fatal(err)
	}
	if code, res = postNDJSON(t, ts, "tx", plain.String()); code != http.StatusConflict {
		t.Fatalf("unsequenced block on sequenced stream: code %d (%+v), want 409", code, res)
	}

	// Checkpoint promotes the applied mark to durable — the client trim point.
	resp, err := http.Post(ts.URL+"/v1/namespaces/tx/flush?checkpoint=1", "", nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	var st nsStatus
	if err := decodeJSONBody(resp.Body, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if st.Seq != 3 || st.AppliedSeq != 3 || st.DurableSeq != 3 || st.NextSeq != 4 {
		t.Fatalf("status after checkpoint: %+v; want seq/applied/durable 3, next 4", st)
	}

	// Drain and restart: the marks must come back from the store.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	s2 := mustServer(t, root)
	n, ok := s2.Namespace("tx")
	if !ok {
		t.Fatal("restart lost namespace")
	}
	if acc, app, dur := n.Seq(); acc != 3 || app != 3 || dur != 3 {
		t.Fatalf("restored seq marks (%d, %d, %d), want (3, 3, 3)", acc, app, dur)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The restarted namespace still dedupes and still takes the next block.
	if code, res = postNDJSON(t, ts2, "tx", seqLines(t, 3)); code != http.StatusOK || !res.Duplicate {
		t.Fatalf("post-restart duplicate: code %d (%+v), want 200 duplicate=true", code, res)
	}
	if code, res = postNDJSON(t, ts2, "tx", seqLines(t, 4)); code != http.StatusAccepted || res.Accepted != 1 {
		t.Fatalf("post-restart next block: code %d (%+v), want 202 accepted=1", code, res)
	}

	// Drain before the test returns: the worker still owns block 4, and the
	// TempDir cleanup must not race its transaction.
	if err := s2.Drain(ctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if acc, app, dur := n.Seq(); acc != 4 || app != 4 || dur != 4 {
		t.Fatalf("final seq marks (%d, %d, %d), want (4, 4, 4)", acc, app, dur)
	}
}

func TestIngestBodyCapReturns413(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Root: t.TempDir(), MaxIngestBytes: 96, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, res := postNDJSON(t, ts, "tx", seqLines(t, 1, 2, 3, 4))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d (%+v), want 413", code, res)
	}
	if res.Error == "" {
		t.Fatal("413 carries no error message")
	}
	if v := reg.Counter("serve.ingest.rejected|reason=body").Value(); v != 1 {
		t.Fatalf("rejected|reason=body counter = %d, want 1", v)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestIngestLineCapReturns413(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Root: t.TempDir(), MaxIngestBytes: -1, MaxLineBytes: 64, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A small block passes, the oversized line is refused — the response
	// reports the accepted prefix so the client can resume past it.
	small := seqLines(t, 1)
	if len(small) > 64 {
		t.Fatalf("test block unexpectedly large (%d bytes)", len(small))
	}
	code, res := postNDJSON(t, ts, "tx", small+strings.Repeat(" ", 80)+"\n")
	if code != http.StatusRequestEntityTooLarge || res.Accepted != 1 {
		t.Fatalf("oversized line: code %d (%+v), want 413 with accepted=1", code, res)
	}
	if v := reg.Counter("serve.ingest.rejected|reason=line").Value(); v != 1 {
		t.Fatalf("rejected|reason=line counter = %d, want 1", v)
	}
	// The accepted block is still in flight; drain so the TempDir cleanup
	// cannot race its transaction.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestHTTPTimeoutsServer(t *testing.T) {
	def := DefaultHTTPTimeouts()
	srv := def.Server("127.0.0.1:0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout != def.ReadHeader || srv.ReadTimeout != def.Read ||
		srv.WriteTimeout != def.Write || srv.IdleTimeout != def.Idle {
		t.Fatalf("Server() dropped timeouts: %+v vs %+v", srv, def)
	}
	if srv.ReadHeaderTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatal("default timeouts must be set — a bare http.Server lets one stalled client hold a connection forever")
	}
}

// TestHTTPHeaderTimeoutDropsStalledConn proves the Slowloris guard actually
// fires: a client that connects and never sends headers is cut loose.
func TestHTTPHeaderTimeoutDropsStalledConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := HTTPTimeouts{ReadHeader: 50 * time.Millisecond, Read: time.Second,
		Write: time.Second, Idle: time.Second}.Server("", http.NotFoundHandler())
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("stalled connection: got %v, want EOF (server-side close) well before the read deadline", err)
	}
}
