package serve

// The end-to-end drain test of ISSUE 6: two concurrent clients stream
// NDJSON blocks into two namespaces of a live server while query hammers
// read the models, the server is torn down mid-stream (the SIGTERM path:
// Drain + listener close), restarted over the same root, and fed the rest
// of the stream. The recovered stores must be byte-identical (SHA-256) to
// stores produced by uninterrupted single-process miner runs over the same
// blocks — the serving layer may add ingestion queues, concurrency and a
// restart, but never a single divergent byte.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pointgen"
	"github.com/demon-mining/demon/internal/quest"
)

// storeDigest hashes every key and value of a store in sorted key order.
func storeDigest(t *testing.T, store demon.Store) string {
	t.Helper()
	keys, err := store.Keys("")
	if err != nil {
		t.Fatalf("digest keys: %v", err)
	}
	h := sha256.New()
	for _, k := range keys {
		data, err := store.Get(k)
		if err != nil {
			t.Fatalf("digest get %s: %v", k, err)
		}
		fmt.Fprintf(h, "%s\x00%d\x00", k, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// e2e workload sizes: big enough that the drain lands mid-stream, small
// enough for the race detector.
const (
	e2eTxBlocks   = 12
	e2eTxPerBlock = 60
	e2ePtBlocks   = 12
	e2ePtPerBlock = 50
	e2eMinSupport = 0.05
	e2eK          = 3
	e2eWorkers    = 2
)

func e2eTxData(t *testing.T) [][][]itemset.Item {
	t.Helper()
	qc, err := quest.ParseSpec("2M.10L.1I.4pats.3plen")
	if err != nil {
		t.Fatalf("quest spec: %v", err)
	}
	qc.Seed = 7
	gen, err := quest.New(qc)
	if err != nil {
		t.Fatalf("quest: %v", err)
	}
	blocks := make([][][]itemset.Item, e2eTxBlocks)
	for i := range blocks {
		blk := gen.Block(blockseq.ID(i+1), e2eTxPerBlock)
		rows := make([][]itemset.Item, len(blk.Txs))
		for j, tx := range blk.Txs {
			rows[j] = tx.Items
		}
		blocks[i] = rows
	}
	return blocks
}

func e2ePtData(t *testing.T) [][]demon.Point {
	t.Helper()
	pc, err := pointgen.ParseSpec("1M.3c.4d")
	if err != nil {
		t.Fatalf("pointgen spec: %v", err)
	}
	pc.Seed = 7
	gen, err := pointgen.New(pc)
	if err != nil {
		t.Fatalf("pointgen: %v", err)
	}
	blocks := make([][]demon.Point, e2ePtBlocks)
	for i := range blocks {
		blocks[i] = gen.Block(blockseq.ID(i+1), e2ePtPerBlock).Points
	}
	return blocks
}

// referenceDigests runs uninterrupted single-process miners over the same
// blocks — the fault-free golden runs the served stores must match.
func referenceDigests(t *testing.T, txBlocks [][][]itemset.Item, ptBlocks [][]demon.Point) (txDigest, ptDigest string) {
	t.Helper()
	txStore, err := demon.NewDurableFileStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatalf("ref tx store: %v", err)
	}
	tm, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{
		MinSupport: e2eMinSupport,
		Strategy:   demon.ECUT,
		Store:      txStore,
		Workers:    e2eWorkers,
	})
	if err != nil {
		t.Fatalf("ref tx miner: %v", err)
	}
	for _, rows := range txBlocks {
		if _, err := tm.AddBlock(rows); err != nil {
			t.Fatalf("ref tx add: %v", err)
		}
	}
	if err := tm.Checkpoint(); err != nil {
		t.Fatalf("ref tx checkpoint: %v", err)
	}

	ptStore, err := demon.NewDurableFileStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatalf("ref pt store: %v", err)
	}
	cm, err := demon.NewClusterMiner(demon.ClusterMinerConfig{K: e2eK, Store: ptStore, Workers: e2eWorkers})
	if err != nil {
		t.Fatalf("ref cluster miner: %v", err)
	}
	for _, pts := range ptBlocks {
		if _, err := cm.AddBlock(pts); err != nil {
			t.Fatalf("ref pt add: %v", err)
		}
	}
	if err := cm.Checkpoint(); err != nil {
		t.Fatalf("ref pt checkpoint: %v", err)
	}
	return storeDigest(t, txStore), storeDigest(t, ptStore)
}

// e2eClient streams blocks one POST at a time, retrying each block until
// the server accepts it: 429 (backpressure), 503 (draining) and connection
// errors during the restart window all mean "try again", while 202 with
// accepted=1 means the block is owned by the server — durable once drained
// — and must NOT be re-sent.
type e2eClient struct {
	t       *testing.T
	baseURL *atomic.Value // string
	ns      string
}

func (c *e2eClient) send(b blockio.Block) {
	var body strings.Builder
	if err := blockio.NewEncoder(&body).Encode(b); err != nil {
		c.t.Errorf("encode: %v", err)
		return
	}
	for {
		resp, err := http.Post(c.baseURL.Load().(string)+"/v1/namespaces/"+c.ns+"/blocks",
			"application/x-ndjson", strings.NewReader(body.String()))
		if err != nil {
			time.Sleep(5 * time.Millisecond) // server restarting
			continue
		}
		var res ingestResult
		decErr := json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted && decErr == nil && res.Accepted == 1:
			return
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			time.Sleep(5 * time.Millisecond)
		default:
			c.t.Errorf("ns %s: unexpected ingest response %d (%+v, decode err %v)", c.ns, resp.StatusCode, res, decErr)
			return
		}
	}
}

func TestE2EDrainRestartDigest(t *testing.T) {
	txBlocks := e2eTxData(t)
	ptBlocks := e2ePtData(t)
	wantTx, wantPt := referenceDigests(t, txBlocks, ptBlocks)

	root := t.TempDir()
	s := mustServer(t, root)
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: e2eMinSupport, Strategy: "ecut", Workers: e2eWorkers, QueueDepth: 4}); err != nil {
		t.Fatalf("create tx: %v", err)
	}
	if _, err := s.Create(Spec{Name: "pts", Kind: KindCluster, K: e2eK, Workers: e2eWorkers, QueueDepth: 4}); err != nil {
		t.Fatalf("create pts: %v", err)
	}
	ts := httptest.NewServer(s.Handler())

	var baseURL atomic.Value
	baseURL.Store(ts.URL)

	// Query hammers: concurrent reads from the RWMutex read surfaces while
	// ingestion mutates, across the restart. Responses must stay internally
	// consistent: T never goes backwards (durability would be broken) and
	// every 200 decodes cleanly.
	stopQueries := make(chan struct{})
	var queryWG sync.WaitGroup
	var queries atomic.Int64
	for _, path := range []string{
		"/v1/namespaces/tx/itemsets?top=8",
		"/v1/namespaces/tx/border",
		"/v1/namespaces/tx/rules?minconf=0.6",
		"/v1/namespaces/pts/clusters",
		"/namespacesz",
	} {
		queryWG.Add(1)
		go func(path string) {
			defer queryWG.Done()
			lastT := make(map[string]demon.BlockID)
			for {
				select {
				case <-stopQueries:
					return
				default:
				}
				time.Sleep(2 * time.Millisecond) // hammer, but leave cycles for mining
				resp, err := http.Get(baseURL.Load().(string) + path)
				if err != nil {
					continue // restart window
				}
				if resp.StatusCode == http.StatusOK {
					var raw json.RawMessage
					if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
						t.Errorf("query %s: bad JSON: %v", path, err)
					}
					if path == "/namespacesz" {
						var statuses []nsStatus
						if err := json.Unmarshal(raw, &statuses); err == nil {
							for _, st := range statuses {
								if st.T < lastT[st.Spec.Name] {
									t.Errorf("namespace %s: T went backwards %d -> %d", st.Spec.Name, lastT[st.Spec.Name], st.T)
								}
								lastT[st.Spec.Name] = st.T
							}
						}
					}
					queries.Add(1)
				}
				resp.Body.Close()
			}
		}(path)
	}

	// Two concurrent clients, one per namespace.
	half := e2eTxBlocks / 2
	var firstHalf sync.WaitGroup
	firstHalf.Add(2)
	var clientWG sync.WaitGroup
	clientWG.Add(2)
	go func() {
		defer clientWG.Done()
		c := &e2eClient{t: t, baseURL: &baseURL, ns: "tx"}
		for i, rows := range txBlocks {
			c.send(blockio.TxBlock(rows))
			if i == half-1 {
				firstHalf.Done()
			}
		}
	}()
	go func() {
		defer clientWG.Done()
		c := &e2eClient{t: t, baseURL: &baseURL, ns: "pts"}
		for i, pts := range ptBlocks {
			c.send(blockio.PointBlock(pts))
			if i == half-1 {
				firstHalf.Done()
			}
		}
	}()

	// Mid-stream SIGTERM: drain (stop intake, empty queues, checkpoint) and
	// tear the listener down while both clients still have blocks to send.
	firstHalf.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("mid-stream drain: %v", err)
	}
	cancel()
	ts.Close()

	// Restart over the same root: every namespace resumes from its drained
	// checkpoint; clients then finish their streams against the new listener.
	s2 := mustServer(t, root)
	for _, name := range []string{"tx", "pts"} {
		n, ok := s2.Namespace(name)
		if !ok {
			t.Fatalf("restart lost namespace %s", name)
		}
		if n.T() == 0 {
			t.Fatalf("namespace %s resumed at block 0 — drained blocks were lost", name)
		}
	}
	ts2 := httptest.NewServer(s2.Handler())
	baseURL.Store(ts2.URL)

	clientWG.Wait()
	close(stopQueries)
	queryWG.Wait()
	if queries.Load() == 0 {
		t.Errorf("query hammers never completed a successful read")
	}

	// Final drain checkpoints at the stream end; the stores must now be
	// byte-identical to the uninterrupted single-process runs.
	drainCtx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s2.Drain(drainCtx2); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	ts2.Close()

	txNS, _ := s2.Namespace("tx")
	ptNS, _ := s2.Namespace("pts")
	if n := txNS.T(); int(n) != e2eTxBlocks {
		t.Fatalf("tx namespace ended at block %d, want %d", n, e2eTxBlocks)
	}
	if n := ptNS.T(); int(n) != e2ePtBlocks {
		t.Fatalf("pts namespace ended at block %d, want %d", n, e2ePtBlocks)
	}
	if got := storeDigest(t, txNS.Store()); got != wantTx {
		t.Errorf("tx store digest diverges from the uninterrupted run:\n got %s\nwant %s", got, wantTx)
	}
	if got := storeDigest(t, ptNS.Store()); got != wantPt {
		t.Errorf("pts store digest diverges from the uninterrupted run:\n got %s\nwant %s", got, wantPt)
	}

	// The recovered stores also pass a full checksum scrub.
	for _, n := range []*Namespace{txNS, ptNS} {
		rep, err := demon.ScrubStore(n.Store(), "")
		if err != nil {
			t.Fatalf("scrub %s: %v", n.Spec().Name, err)
		}
		if len(rep.Quarantined) != 0 {
			t.Errorf("scrub %s quarantined %v", n.Spec().Name, rep.Quarantined)
		}
	}
}
