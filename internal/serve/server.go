// Package serve is the resident mining server behind cmd/demon-serve: a
// multi-tenant registry of namespaces (one resident miner or monitor per
// model/config, each over its own crash-safe store), a streaming NDJSON
// ingestion API with bounded per-namespace queues and backpressure, query
// endpoints served concurrently from the miners' RWMutex read surfaces, and
// a graceful drain that rides the transaction/checkpoint machinery so a
// shutdown mid-stream never loses or corrupts state.
//
// Zero-dependency by design: net/http + encoding/json, like the rest of the
// repository.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
)

// DefaultQueueDepth bounds a namespace's ingest queue when neither the
// server config nor the namespace spec says otherwise.
const DefaultQueueDepth = 64

// Ingest body caps: a single request may stream many NDJSON blocks, so the
// body cap is generous, while the per-line cap bounds what one block may
// cost to buffer. Both are configurable.
const (
	DefaultMaxIngestBytes = 256 << 20
	DefaultMaxLineBytes   = 16 << 20
)

// DefaultReopenBackoff is the base delay before a sticky-failed namespace
// attempts to resume a fresh model generation from its store.
const DefaultReopenBackoff = time.Second

// Config configures a Server.
type Config struct {
	// Root is the directory holding one sub-directory per namespace. It is
	// created if missing; existing namespaces under it are resumed.
	Root string
	// QueueDepth is the default per-namespace ingest queue bound
	// (DefaultQueueDepth when zero); a namespace spec may override it.
	QueueDepth int
	// MaxIngestBytes caps one ingest request's body (DefaultMaxIngestBytes
	// when zero, unlimited when negative). Oversized requests get 413.
	MaxIngestBytes int64
	// MaxLineBytes caps one NDJSON line — one block — of an ingest stream
	// (DefaultMaxLineBytes when zero, unlimited when negative).
	MaxLineBytes int
	// ReopenBackoff is the base delay of the per-namespace auto-reopen loop
	// that resumes sticky-failed miners from their stores
	// (DefaultReopenBackoff when zero, disabled when negative).
	ReopenBackoff time.Duration
	// DefaultStoreBackend is the storage backend of namespaces whose spec
	// does not pick one: "file" (default when empty) or "kvfile". Existing
	// namespaces persist their backend in the spec at creation, so changing
	// this only affects namespaces created afterwards.
	DefaultStoreBackend string
	// Registry receives the server's metrics (queue depths, block counters);
	// obs.Default() when nil.
	Registry *obs.Registry
}

// maxIngestBytes resolves the body cap (0 means unlimited).
func (c Config) maxIngestBytes() int64 {
	switch {
	case c.MaxIngestBytes < 0:
		return 0
	case c.MaxIngestBytes == 0:
		return DefaultMaxIngestBytes
	default:
		return c.MaxIngestBytes
	}
}

// maxLineBytes resolves the per-line cap (0 means unlimited).
func (c Config) maxLineBytes() int {
	switch {
	case c.MaxLineBytes < 0:
		return 0
	case c.MaxLineBytes == 0:
		return DefaultMaxLineBytes
	default:
		return c.MaxLineBytes
	}
}

// storeBackend resolves the default storage backend ("file" when unset).
func (c Config) storeBackend() string {
	if c.DefaultStoreBackend == "" {
		return "file"
	}
	return c.DefaultStoreBackend
}

// reopenBackoff resolves the auto-reopen base delay (0 means disabled).
func (c Config) reopenBackoff() time.Duration {
	switch {
	case c.ReopenBackoff < 0:
		return 0
	case c.ReopenBackoff == 0:
		return DefaultReopenBackoff
	default:
		return c.ReopenBackoff
	}
}

// Server is the resident mining server: a registry of namespaces plus the
// HTTP API over them.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.RWMutex
	ns       map[string]*Namespace
	draining bool
}

// New opens a server over cfg.Root, resuming every namespace already on
// disk through the Resume* recovery paths — a server killed mid-block comes
// back at its last durable state.
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("serve: config needs a root directory")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	switch cfg.DefaultStoreBackend {
	case "", "file", "kvfile":
	default:
		return nil, fmt.Errorf("serve: unknown default store backend %q (want file or kvfile)", cfg.DefaultStoreBackend)
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, reg: cfg.Registry, ns: make(map[string]*Namespace)}

	entries, err := os.ReadDir(cfg.Root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cfg.Root, e.Name())
		spec, err := readSpec(dir)
		if errors.Is(err, os.ErrNotExist) {
			continue // not a namespace directory
		}
		if err != nil {
			return nil, fmt.Errorf("serve: resuming %s: %w", e.Name(), err)
		}
		if spec.Name != e.Name() {
			return nil, fmt.Errorf("serve: namespace directory %s holds spec named %q", e.Name(), spec.Name)
		}
		n, err := openNamespace(dir, spec, cfg.QueueDepth, cfg.reopenBackoff(), cfg.storeBackend())
		if err != nil {
			return nil, err
		}
		s.ns[spec.Name] = n
	}

	// Per-namespace gauges use the "name|k=v" label convention the
	// Prometheus writer parses (internal/obs/prom.go), so one metric family
	// fans across namespaces as label values instead of minting a family per
	// namespace. Ingest lag is queue depth plus the age of the
	// oldest-enqueued block still waiting.
	s.reg.AddCollector(func(r *obs.Registry) {
		now := time.Now()
		for _, n := range s.Namespaces() {
			labels := "|ns=" + n.spec.Name
			depth, _ := n.QueueDepth()
			r.Gauge("serve.queue.depth" + labels).Set(int64(depth))
			r.Gauge("serve.blocks.accepted" + labels).Set(n.accepted.Load())
			r.Gauge("serve.blocks.applied" + labels).Set(n.applied.Load())
			r.Gauge("serve.blocks.rejected" + labels).Set(n.rejected.Load())
			r.Gauge("serve.blocks.failed" + labels).Set(n.failed.Load())
			r.Gauge("serve.blocks.duplicate" + labels).Set(n.duplicates.Load())
			r.Gauge("serve.reopens" + labels).Set(n.reopens.Load())
			r.Gauge("serve.t" + labels).Set(int64(n.T()))
			accepted, applied, durable := n.Seq()
			r.Gauge("serve.seq.accepted" + labels).Set(int64(accepted))
			r.Gauge("serve.seq.applied" + labels).Set(int64(applied))
			r.Gauge("serve.seq.durable" + labels).Set(int64(durable))
			r.Gauge("serve.ingest.oldest.age.ns" + labels).Set(n.ages.oldestAge(now).Nanoseconds())
		}
	})
	obs.RegisterRuntimeCollector(s.reg)
	log.Default().Info("server open", "root", cfg.Root, "namespaces", len(s.ns))
	return s, nil
}

// Namespaces lists the current namespaces sorted by name.
func (s *Server) Namespaces() []*Namespace {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Namespace, 0, len(s.ns))
	for _, n := range s.ns {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// Namespace returns one namespace by name.
func (s *Server) Namespace(name string) (*Namespace, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.ns[name]
	return n, ok
}

// Create validates the spec, persists it, and opens the namespace.
func (s *Server) Create(spec Spec) (*Namespace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if _, ok := s.ns[spec.Name]; ok {
		return nil, fmt.Errorf("serve: namespace %s already exists", spec.Name)
	}
	// Stamp the resolved backend into the spec before persisting it: the
	// backend a namespace was created with must survive server restarts even
	// if the server's default changes.
	if spec.Store == "" {
		spec.Store = s.cfg.storeBackend()
	}
	dir := filepath.Join(s.cfg.Root, spec.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeSpec(dir, spec); err != nil {
		return nil, err
	}
	n, err := openNamespace(dir, spec, s.cfg.QueueDepth, s.cfg.reopenBackoff(), s.cfg.storeBackend())
	if err != nil {
		return nil, err
	}
	s.ns[spec.Name] = n
	log.Default().Info("namespace created", "ns", spec.Name, "kind", string(spec.Kind))
	return n, nil
}

// Delete drains a namespace and removes it, including its on-disk state.
func (s *Server) Delete(ctx context.Context, name string) error {
	s.mu.Lock()
	n, ok := s.ns[name]
	if ok {
		delete(s.ns, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: namespace %s not found", name)
	}
	// Drain applies what was already accepted; a sticky failure must not
	// block deletion, so only the removal error is fatal here.
	_ = n.Drain(ctx)
	log.Default().Info("namespace deleted", "ns", name)
	return n.removeDir()
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drain stops intake on every namespace, waits for their queues to empty
// (each in-flight block finishing its atomic transaction), and checkpoints
// every model. After Drain returns nil every namespace's store is at a
// consistent, resumable position. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	log.Default().Info("drain started", "namespaces", len(s.Namespaces()))

	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for _, n := range s.Namespaces() {
		wg.Add(1)
		go func(n *Namespace) {
			defer wg.Done()
			if err := n.Drain(ctx); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(n)
	}
	wg.Wait()
	select {
	case err := <-errs:
		log.Default().Error("drain failed", "err", err)
		return err
	default:
		log.Default().Info("drain complete")
		return nil
	}
}

// ---- HTTP API ----

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// ingestResult reports how far an ingest request got. On backpressure the
// client re-sends the stream from Accepted blocks in; on a sequenced stream
// NextSeq says exactly which block the server wants next, and DurableSeq is
// the checkpoint-covered mark the client may trim its replay buffer to.
type ingestResult struct {
	// Accepted blocks were enqueued and will be applied (drain included).
	Accepted int `json:"accepted"`
	// Duplicates counts sequenced blocks acknowledged as already-accepted
	// no-ops; Duplicate marks a request that was entirely duplicates — an
	// idempotent success (HTTP 200, not 202).
	Duplicates int  `json:"duplicates,omitempty"`
	Duplicate  bool `json:"duplicate,omitempty"`
	// Enqueued is the queue depth after the request (a congestion hint).
	Enqueued int `json:"enqueued"`
	// NextSeq is the sequence number the namespace expects next (0 while
	// unsequenced); DurableSeq is the highest checkpoint-covered sequence.
	NextSeq    uint64 `json:"next_seq,omitempty"`
	DurableSeq uint64 `json:"durable_seq,omitempty"`
	Error      string `json:"error,omitempty"`
}

// nsStatus is the status document of one namespace. The seq fields expose
// the three durability marks of a sequenced stream: Seq was admitted,
// AppliedSeq committed to the store, DurableSeq covered by a checkpoint.
// NextSeq is what a resyncing client should send next.
type nsStatus struct {
	Spec       Spec          `json:"spec"`
	T          demon.BlockID `json:"t"`
	QueueDepth int           `json:"queue_depth"`
	QueueCap   int           `json:"queue_cap"`
	Accepted   int64         `json:"blocks_accepted"`
	Applied    int64         `json:"blocks_applied"`
	Rejected   int64         `json:"blocks_rejected"`
	Failed     int64         `json:"blocks_failed"`
	Duplicates int64         `json:"blocks_duplicate,omitempty"`
	Seq        uint64        `json:"seq,omitempty"`
	AppliedSeq uint64        `json:"applied_seq,omitempty"`
	DurableSeq uint64        `json:"durable_seq,omitempty"`
	NextSeq    uint64        `json:"next_seq"`
	Reopens    int64         `json:"reopens,omitempty"`
	Healthy    bool          `json:"healthy"`
	Error      string        `json:"error,omitempty"`
}

func (n *Namespace) status() nsStatus {
	depth, capacity := n.QueueDepth()
	accepted, applied, durable := n.Seq()
	st := nsStatus{
		Spec:       n.spec,
		T:          n.T(),
		QueueDepth: depth,
		QueueCap:   capacity,
		Accepted:   n.accepted.Load(),
		Applied:    n.applied.Load(),
		Rejected:   n.rejected.Load(),
		Failed:     n.failed.Load(),
		Duplicates: n.duplicates.Load(),
		Seq:        accepted,
		AppliedSeq: applied,
		DurableSeq: durable,
		NextSeq:    accepted + 1,
		Reopens:    n.reopens.Load(),
		Healthy:    true,
	}
	if err := n.Err(); err != nil {
		st.Healthy = false
		st.Error = err.Error()
	}
	return st
}

// itemsetJSON is one itemset with support in query responses.
type itemsetJSON struct {
	Items   []int32 `json:"items"`
	Count   int     `json:"count"`
	Support float64 `json:"support"`
}

func toItemsetJSON(xs []demon.ItemsetSupport) []itemsetJSON {
	out := make([]itemsetJSON, len(xs))
	for i, x := range xs {
		items := make([]int32, len(x.Itemset))
		for j, it := range x.Itemset {
			items[j] = int32(it)
		}
		out[i] = itemsetJSON{Items: items, Count: x.Count, Support: x.Support}
	}
	return out
}

// ruleJSON is one association rule in query responses.
type ruleJSON struct {
	Antecedent []int32 `json:"antecedent"`
	Consequent []int32 `json:"consequent"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// clusterJSON is one cluster in query responses.
type clusterJSON struct {
	Centroid []float64 `json:"centroid"`
	N        int       `json:"n"`
	Radius   float64   `json:"radius"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/namespaces                     create (Spec as JSON body)
//	GET    /v1/namespaces                     list statuses
//	GET    /v1/namespaces/{name}              one status
//	DELETE /v1/namespaces/{name}              drain + remove (state included)
//	POST   /v1/namespaces/{name}/blocks       ingest NDJSON blocks
//	POST   /v1/namespaces/{name}/flush        wait for the queue to empty
//	                                          (?checkpoint=1 checkpoints too)
//	GET    /v1/namespaces/{name}/itemsets     frequent itemsets (?top=N)
//	GET    /v1/namespaces/{name}/border       negative border
//	GET    /v1/namespaces/{name}/rules        association rules (?minconf=C)
//	GET    /v1/namespaces/{name}/clusters     clusters
//	GET    /v1/namespaces/{name}/patterns     deviation report: compact
//	                                          sequences (+?a=&b= similarity)
//	GET    /readyz                            readiness: per-namespace
//	                                          resume/drain state (503 while
//	                                          draining or after failures)
//	GET    /healthz /versionz /metricsz /namespacesz /tracez /debug/pprof/
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux(s.reg)

	// The server's health answers 503 once draining so load balancers stop
	// routing to it; the DebugMux default would keep saying ok.
	mux.Handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			obs.WriteJSONError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	}))

	// Readiness is distinct from liveness: a live server may still be unfit
	// for traffic (draining, or every namespace sticky-failed). Reports the
	// per-namespace resume/drain state so an operator can see which tenant
	// is unhealthy.
	mux.Handle("GET /readyz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		type nsReady struct {
			Name       string `json:"name"`
			Kind       string `json:"kind"`
			Ready      bool   `json:"ready"`
			QueueDepth int    `json:"queue_depth"`
			QueueCap   int    `json:"queue_cap"`
			T          int64  `json:"t"`
			Error      string `json:"error,omitempty"`
		}
		type readiness struct {
			Ready      bool      `json:"ready"`
			Draining   bool      `json:"draining"`
			Namespaces []nsReady `json:"namespaces"`
		}
		rep := readiness{Ready: true, Draining: s.Draining(), Namespaces: []nsReady{}}
		if rep.Draining {
			rep.Ready = false
		}
		for _, n := range s.Namespaces() {
			depth, capacity := n.QueueDepth()
			e := nsReady{
				Name: n.spec.Name, Kind: string(n.spec.Kind), Ready: true,
				QueueDepth: depth, QueueCap: capacity, T: int64(n.T()),
			}
			if err := n.Err(); err != nil {
				e.Ready, e.Error = false, err.Error()
				rep.Ready = false
			}
			rep.Namespaces = append(rep.Namespaces, e)
		}
		code := http.StatusOK
		if !rep.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rep)
	}))

	mux.Handle("GET /namespacesz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		statuses := []nsStatus{}
		for _, n := range s.Namespaces() {
			statuses = append(statuses, n.status())
		}
		writeJSON(w, http.StatusOK, statuses)
	}))

	mux.Handle("GET /v1/namespaces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		statuses := []nsStatus{}
		for _, n := range s.Namespaces() {
			statuses = append(statuses, n.status())
		}
		writeJSON(w, http.StatusOK, statuses)
	}))

	mux.Handle("POST /v1/namespaces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: parsing spec: %w", err))
			return
		}
		n, err := s.Create(spec)
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusCreated, n.status())
		}
	}))

	mux.Handle("GET /v1/namespaces/{name}", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		writeJSON(w, http.StatusOK, n.status())
	}))

	mux.Handle("DELETE /v1/namespaces/{name}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := s.Delete(r.Context(), r.PathValue("name")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))

	mux.Handle("POST /v1/namespaces/{name}/blocks", s.withNS(s.handleIngest))
	mux.Handle("POST /v1/namespaces/{name}/flush", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		checkpoint := r.URL.Query().Get("checkpoint") == "1"
		err := n.Flush(r.Context(), checkpoint)
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, n.status())
		}
	}))

	mux.Handle("GET /v1/namespaces/{name}/itemsets", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		m := n.m()
		var sets []demon.ItemsetSupport
		switch {
		case m.itemset != nil:
			sets = m.itemset.FrequentItemsets()
		case m.window != nil:
			sets = m.window.FrequentItemsets()
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: namespace %s (%s) has no itemset model", n.spec.Name, n.spec.Kind))
			return
		}
		sort.Slice(sets, func(i, j int) bool {
			if sets[i].Count != sets[j].Count {
				return sets[i].Count > sets[j].Count
			}
			return sets[i].Itemset.Key() < sets[j].Itemset.Key()
		})
		if top, err := strconv.Atoi(r.URL.Query().Get("top")); err == nil && top >= 0 && top < len(sets) {
			sets = sets[:top]
		}
		writeJSON(w, http.StatusOK, toItemsetJSON(sets))
	}))

	mux.Handle("GET /v1/namespaces/{name}/border", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		m := n.m()
		var l *demon.Lattice
		switch {
		case m.itemset != nil:
			l = m.itemset.Lattice()
		case m.window != nil:
			l = m.window.Current()
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: namespace %s (%s) has no itemset model", n.spec.Name, n.spec.Kind))
			return
		}
		sets := l.BorderSets()
		out := make([]demon.ItemsetSupport, len(sets))
		for i, x := range sets {
			c := l.Border[x.Key()]
			out[i] = demon.ItemsetSupport{Itemset: x, Count: c, Support: float64(c) / float64(max(l.N, 1))}
		}
		writeJSON(w, http.StatusOK, toItemsetJSON(out))
	}))

	mux.Handle("GET /v1/namespaces/{name}/rules", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		minconf := 0.5
		if v, err := strconv.ParseFloat(r.URL.Query().Get("minconf"), 64); err == nil {
			minconf = v
		}
		m := n.m()
		var rules []demon.Rule
		var err error
		switch {
		case m.itemset != nil:
			rules, err = m.itemset.Rules(minconf)
		case m.window != nil:
			rules, err = m.window.Rules(minconf)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: namespace %s (%s) has no itemset model", n.spec.Name, n.spec.Kind))
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]ruleJSON, len(rules))
		for i, rl := range rules {
			out[i] = ruleJSON{
				Antecedent: toInt32s(rl.Antecedent),
				Consequent: toInt32s(rl.Consequent),
				Support:    rl.Support,
				Confidence: rl.Confidence,
				Lift:       rl.Lift,
			}
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.Handle("GET /v1/namespaces/{name}/clusters", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		m := n.m()
		if m.cluster == nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: namespace %s (%s) has no cluster model", n.spec.Name, n.spec.Kind))
			return
		}
		cs, err := m.cluster.Clusters()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]clusterJSON, len(cs))
		for i, c := range cs {
			out[i] = clusterJSON{Centroid: c.Centroid, N: c.N, Radius: c.Radius}
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.Handle("GET /v1/namespaces/{name}/patterns", s.withNS(func(w http.ResponseWriter, r *http.Request, n *Namespace) {
		m := n.m()
		if m.monitor == nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: namespace %s (%s) has no monitor", n.spec.Name, n.spec.Kind))
			return
		}
		type report struct {
			T        demon.BlockID     `json:"t"`
			Patterns [][]demon.BlockID `json:"patterns"`
			Score    *float64          `json:"score,omitempty"`
			PValue   *float64          `json:"p_value,omitempty"`
			Similar  *bool             `json:"similar,omitempty"`
		}
		rep := report{T: m.monitor.T(), Patterns: m.monitor.mon.Patterns()}
		q := r.URL.Query()
		if q.Has("a") && q.Has("b") {
			a, errA := strconv.Atoi(q.Get("a"))
			b, errB := strconv.Atoi(q.Get("b"))
			if errA != nil || errB != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("serve: a and b must be block identifiers"))
				return
			}
			score, pv, ok := m.monitor.mon.Similarity(demon.BlockID(a), demon.BlockID(b))
			if !ok {
				writeError(w, http.StatusNotFound, fmt.Errorf("serve: no cached deviation for blocks %d and %d", a, b))
				return
			}
			similar := pv >= n.spec.Alpha
			rep.Score, rep.PValue, rep.Similar = &score, &pv, &similar
		}
		writeJSON(w, http.StatusOK, rep)
	}))

	return s.traceMiddleware(mux)
}

// statusWriter captures the response status for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceMiddleware starts a request trace — honoring an incoming
// X-Demon-Trace-Id and always echoing the trace ID on traced responses, so
// traces cross process boundaries — opens the HTTP handler span, and logs
// the request. Requests without a client ID go through the tracer's
// sampler; a request with one is always traced.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.reg.Tracer().StartTrace(r.Header.Get(obs.TraceIDHeader), r.Method+" "+r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if tr == nil {
			next.ServeHTTP(sw, r)
			logRequest(r.Context(), r, sw.status)
			return
		}
		w.Header().Set(obs.TraceIDHeader, tr.ID())
		span := s.reg.Timer("serve.http.request.ns").StartSpan(obs.SpanContextFrom(obs.ContextWithTrace(r.Context(), tr)))
		ctx := span.Ctx(r.Context())
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.End()
		logRequest(ctx, r, sw.status)
	})
}

// logRequest emits one structured line per request: debug for successes so
// the default info level stays quiet under load, warn for server errors.
func logRequest(ctx context.Context, r *http.Request, status int) {
	l := log.Default()
	if status >= http.StatusInternalServerError {
		l.WarnCtx(ctx, "request failed", "method", r.Method, "path", r.URL.Path, "status", status)
		return
	}
	l.DebugCtx(ctx, "request", "method", r.Method, "path", r.URL.Path, "status", status)
}

// retryAfterJitter renders base seconds plus up to base extra, so
// synchronized clients hitting backpressure spread their retries instead of
// stampeding back in lockstep.
func retryAfterJitter(base int) string {
	return strconv.Itoa(base + rand.IntN(base+1))
}

func toInt32s(x demon.Itemset) []int32 {
	out := make([]int32, len(x))
	for i, it := range x {
		out[i] = int32(it)
	}
	return out
}

// withNS resolves the {name} path value to a namespace.
func (s *Server) withNS(h func(http.ResponseWriter, *http.Request, *Namespace)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, ok := s.Namespace(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: namespace %s not found", r.PathValue("name")))
			return
		}
		h(w, r, n)
	})
}

// handleIngest streams NDJSON blocks into the namespace's queue. It stops
// at the first block the queue cannot take and answers 429 (full) or 503
// (draining) with the accepted count and a Retry-After hint; the client
// resumes the stream from there. Accepted blocks are applied even if the
// server drains before they leave the queue.
//
// Hardening: the request body is capped (413 with reason=body), each NDJSON
// line is capped (413 with reason=line), duplicate sequenced blocks are
// acknowledged as no-ops (a request of only duplicates answers 200 with
// "duplicate": true), and sequence gaps or a seq-less block on a sequenced
// stream answer 409 with the expected NextSeq.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, n *Namespace) {
	body := r.Body
	if maxBody := s.cfg.maxIngestBytes(); maxBody > 0 {
		body = http.MaxBytesReader(w, body, maxBody)
	}
	dec := blockio.NewLineDecoder(body, s.cfg.maxLineBytes())
	res := ingestResult{}
	respond := func(code int) {
		res.Enqueued, _ = n.QueueDepth()
		accepted, _, durable := n.Seq()
		if accepted > 0 {
			res.NextSeq = accepted + 1
			res.DurableSeq = durable
		}
		writeJSON(w, code, res)
	}
	for {
		b, err := dec.Next()
		if err == io.EOF {
			if res.Accepted == 0 && res.Duplicates > 0 {
				// Every block was already accepted: the retry of an
				// ambiguous failure. Idempotent success, nothing enqueued.
				res.Duplicate = true
				respond(http.StatusOK)
				return
			}
			respond(http.StatusAccepted)
			return
		}
		if err != nil {
			res.Error = err.Error()
			var tooLarge *http.MaxBytesError
			switch {
			case errors.As(err, &tooLarge):
				s.reg.Counter("serve.ingest.rejected|reason=body").Inc()
				respond(http.StatusRequestEntityTooLarge)
			case errors.Is(err, blockio.ErrLineTooLong):
				s.reg.Counter("serve.ingest.rejected|reason=line").Inc()
				respond(http.StatusRequestEntityTooLarge)
			default:
				s.reg.Counter("serve.ingest.rejected|reason=decode").Inc()
				respond(http.StatusBadRequest)
			}
			return
		}
		switch err := n.EnqueueCtx(r.Context(), b); {
		case err == nil:
			res.Accepted++
		case errors.Is(err, ErrDuplicate):
			res.Duplicates++
		case errors.Is(err, ErrQueueFull):
			res.Error = err.Error()
			w.Header().Set("Retry-After", retryAfterJitter(1))
			respond(http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrDraining):
			res.Error = err.Error()
			w.Header().Set("Retry-After", retryAfterJitter(5))
			respond(http.StatusServiceUnavailable)
			return
		case errors.Is(err, ErrWrongKind):
			res.Error = err.Error()
			respond(http.StatusBadRequest)
			return
		case errors.Is(err, ErrSeqGap), errors.Is(err, ErrUnsequenced):
			res.Error = err.Error()
			s.reg.Counter("serve.ingest.rejected|reason=seq").Inc()
			respond(http.StatusConflict)
			return
		default:
			res.Error = err.Error()
			respond(http.StatusConflict) // sticky namespace failure
			return
		}
	}
}
