package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	demon "github.com/demon-mining/demon"
)

// Kind names the model class a namespace keeps resident.
type Kind string

const (
	// KindItemset maintains frequent itemsets over the unrestricted window
	// (BORDERS, ItemsetMiner).
	KindItemset Kind = "itemset"
	// KindWindow maintains frequent itemsets over the most recent window
	// (GEMM over BORDERS, ItemsetWindowMiner).
	KindWindow Kind = "window"
	// KindCluster maintains a cluster model over the unrestricted window
	// (BIRCH+, ClusterMiner).
	KindCluster Kind = "cluster"
	// KindMonitor runs the pattern detector over the block stream and serves
	// deviation reports (Monitor). Its durable state is the raw block
	// history, replayed on resume.
	KindMonitor Kind = "monitor"
)

// Spec is the durable configuration of a namespace: everything needed to
// re-create its miner on restart. It is written as namespace.json next to
// the namespace's store directory when the namespace is created and read
// back when the server reopens the root.
type Spec struct {
	// Name identifies the namespace in URLs and under the server root. It
	// must be non-empty and use only lower-case letters, digits, '-', '_'
	// and '.', so it is safe as a directory name.
	Name string `json:"name"`
	// Kind selects the model class: itemset, window, cluster, or monitor.
	Kind Kind `json:"kind"`
	// MinSupport is the fractional threshold κ of the itemset kinds and the
	// per-block mining threshold of the monitor kind.
	MinSupport float64 `json:"min_support,omitempty"`
	// Strategy selects the BORDERS counting strategy of the itemset kinds:
	// ptscan (default), hashtree, ecut, or ecutplus.
	Strategy string `json:"strategy,omitempty"`
	// WindowSize is the w of the window kind.
	WindowSize int `json:"window_size,omitempty"`
	// WindowRelBSS optionally restricts the window kind with a
	// window-relative bit string ("10110"); its length fixes the window.
	WindowRelBSS string `json:"window_rel_bss,omitempty"`
	// Every/Offset optionally install a periodic window-independent BSS
	// ("every 7th block starting at 1") on the itemset and cluster kinds.
	Every  int `json:"every,omitempty"`
	Offset int `json:"offset,omitempty"`
	// K is the cluster count of the cluster kind.
	K int `json:"k,omitempty"`
	// Alpha is the similarity significance level of the monitor kind.
	Alpha float64 `json:"alpha,omitempty"`
	// Workers is the per-namespace parallel-ingestion knob (0 = serial; the
	// maintained model and the stored bytes are identical for every value).
	Workers int `json:"workers,omitempty"`
	// CheckpointEvery auto-checkpoints every N applied blocks, atomically
	// with the block itself; the server also checkpoints on drain and on
	// request, so 0 (off) is a fine default.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// QueueDepth bounds this namespace's ingest queue; 0 selects the server
	// default.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Store selects the namespace's storage backend: "file" (one file per
	// key) or "kvfile" (single-file KV engine). Empty defers to the server's
	// default backend. The choice is durable — it is persisted with the spec
	// and honored on resume regardless of the server's later default.
	Store string `json:"store,omitempty"`
	// CacheBytes tops the store with an LRU read cache of this budget
	// (0 = no cache).
	CacheBytes int64 `json:"cache_bytes,omitempty"`
}

// nameOK reports whether a namespace name is safe as a directory name.
func nameOK(name string) bool {
	if name == "" || len(name) > 128 || strings.HasPrefix(name, ".") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// txKind reports whether the namespace ingests transaction blocks (as
// opposed to point blocks).
func (s Spec) txKind() bool { return s.Kind != KindCluster }

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if !nameOK(s.Name) {
		return fmt.Errorf("serve: invalid namespace name %q (want lower-case letters, digits, '-', '_', '.')", s.Name)
	}
	switch s.Kind {
	case KindItemset, KindWindow, KindMonitor:
		if s.MinSupport <= 0 || s.MinSupport >= 1 {
			return fmt.Errorf("serve: namespace %s: min_support %v outside (0, 1)", s.Name, s.MinSupport)
		}
	case KindCluster:
		if s.K < 1 {
			return fmt.Errorf("serve: namespace %s: cluster kind needs k >= 1", s.Name)
		}
	default:
		return fmt.Errorf("serve: namespace %s: unknown kind %q (want itemset, window, cluster, or monitor)", s.Name, s.Kind)
	}
	if s.Kind == KindWindow && s.WindowSize < 1 && s.WindowRelBSS == "" {
		return fmt.Errorf("serve: namespace %s: window kind needs window_size or window_rel_bss", s.Name)
	}
	if s.Kind != KindWindow && (s.WindowSize != 0 || s.WindowRelBSS != "") {
		return fmt.Errorf("serve: namespace %s: window_size/window_rel_bss require the window kind", s.Name)
	}
	if s.Kind == KindMonitor && s.Alpha <= 0 {
		return fmt.Errorf("serve: namespace %s: monitor kind needs alpha > 0", s.Name)
	}
	if s.Strategy != "" {
		if _, err := parseStrategy(s.Strategy); err != nil {
			return fmt.Errorf("serve: namespace %s: %w", s.Name, err)
		}
	}
	if s.Every < 0 || s.QueueDepth < 0 || s.CheckpointEvery < 0 {
		return fmt.Errorf("serve: namespace %s: negative every/queue_depth/checkpoint_every", s.Name)
	}
	switch s.Store {
	case "", "file", "kvfile":
	default:
		return fmt.Errorf("serve: namespace %s: unknown store backend %q (want file or kvfile)", s.Name, s.Store)
	}
	if s.CacheBytes < 0 {
		return fmt.Errorf("serve: namespace %s: negative cache_bytes", s.Name)
	}
	return nil
}

// storeURL resolves the namespace's store URL under dir, applying the
// server's default backend when the spec leaves the choice open.
func (s Spec) storeURL(dir, defaultBackend string) (string, error) {
	backend := s.Store
	if backend == "" {
		backend = defaultBackend
	}
	url, err := demon.DirStoreURL(backend, filepath.Join(dir, "store"))
	if err != nil {
		return "", fmt.Errorf("serve: namespace %s: %w", s.Name, err)
	}
	if s.CacheBytes > 0 {
		url += fmt.Sprintf("?cache=%d", s.CacheBytes)
	}
	return url, nil
}

func parseStrategy(s string) (demon.CountingStrategy, error) {
	switch s {
	case "", "ptscan":
		return demon.PTScan, nil
	case "hashtree":
		return demon.HashTree, nil
	case "ecut":
		return demon.ECUT, nil
	case "ecutplus":
		return demon.ECUTPlus, nil
	default:
		return 0, fmt.Errorf("unknown counting strategy %q", s)
	}
}

func (s Spec) bss() demon.BSS {
	if s.Every > 0 {
		return demon.EveryNth(s.Every, s.Offset)
	}
	return nil
}

const specFile = "namespace.json"

// writeSpec persists the spec atomically (temp file + rename) so a crash
// during namespace creation never leaves a half-written spec the next start
// would choke on.
func writeSpec(dir string, s Spec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, specFile+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, specFile))
}

// readSpec loads and re-validates a persisted spec.
func readSpec(dir string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("serve: parsing %s: %w", filepath.Join(dir, specFile), err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}
