package serve

// Crash-at-every-op sweeps of the serving layer's durability surfaces,
// mirroring the repository's top-level fault-sweep harness (picked up by
// `make faultsweep` via the CrashSweep name): for every operation index of a
// fault-free golden run, a fresh run is crashed at exactly that op with
// torn-write injection, reopened over the surviving bytes, re-fed what the
// recovered position says is missing, and compared byte-for-byte against the
// golden store. Two surfaces are swept:
//
//   - the monitor namespace's raw-block replay path (blocks + position meta
//     + seq record, one transaction per block, replayed on resume), and
//   - a sequenced itemset model, proving the (seq, t) record written by the
//     TxnHook stays exactly as durable as the block it describes.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

// sweepBlocks builds the deterministic workload both sweeps feed.
func sweepBlocks(n int) [][][]itemset.Item {
	out := make([][][]itemset.Item, n)
	for b := range out {
		out[b] = txRows(8, b)
	}
	return out
}

// dumpStore snapshots every key/value of a store for exact comparison.
func dumpStore(t *testing.T, s demon.Store) map[string]string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatalf("dumping store: %v", err)
	}
	dump := make(map[string]string, len(keys))
	for _, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("dumping store key %s: %v", k, err)
		}
		dump[k] = string(v)
	}
	return dump
}

// diffStores describes how two dumps differ, for failure messages.
func diffStores(got, want map[string]string) string {
	var lines []string
	for k := range want {
		if _, ok := got[k]; !ok {
			lines = append(lines, "missing key "+k)
		}
	}
	for k, v := range got {
		w, ok := want[k]
		switch {
		case !ok:
			lines = append(lines, "extra key "+k)
		case v != w:
			lines = append(lines, fmt.Sprintf("key %s differs (%d vs %d bytes)", k, len(v), len(w)))
		}
	}
	sort.Strings(lines)
	if len(lines) > 12 {
		lines = append(lines[:12], fmt.Sprintf("... and %d more", len(lines)-12))
	}
	return strings.Join(lines, "\n")
}

// runServeCrashSweep drives the sweep: feed must create-or-resume its model
// over the store, work out what is missing from the recovered position, feed
// it, and leave the store at the stream's end state. The same function serves
// as golden run, crash victim, and recovery — resume-from-what-survived is
// the property under test.
func runServeCrashSweep(t *testing.T, feed func(demon.Store) error) {
	t.Helper()

	goldenBase := diskio.NewMemStore()
	if err := feed(diskio.NewChecksumStore(goldenBase)); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	golden := dumpStore(t, goldenBase)

	countFS := diskio.NewFaultStore(diskio.NewMemStore())
	if err := feed(diskio.NewChecksumStore(countFS)); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := int(countFS.Ops())
	if total == 0 {
		t.Fatal("workload performed no store operations")
	}

	stride := 1
	if testing.Short() {
		stride = total/30 + 1
	}
	t.Logf("sweeping %d operation indices (stride %d)", total, stride)

	for k := 0; k < total; k += stride {
		base := diskio.NewMemStore()
		fs := diskio.NewFaultStore(base)
		fs.TornWrite = true
		fs.CrashAfter(k)
		if err := feed(diskio.NewChecksumStore(fs)); err == nil {
			t.Fatalf("k=%d: workload succeeded despite crash injection", k)
		}
		if !fs.Dead() {
			t.Fatalf("k=%d: workload failed before the crash fired", k)
		}

		clean := diskio.NewChecksumStore(base)
		if err := feed(clean); err != nil {
			t.Fatalf("k=%d: recovery run: %v", k, err)
		}
		got := dumpStore(t, base)
		if d := diffStores(got, golden); d != "" {
			t.Fatalf("k=%d: recovered store diverges from golden run:\n%s", k, d)
		}
		rep, err := clean.Scrub("")
		if err != nil {
			t.Fatalf("k=%d: scrub: %v", k, err)
		}
		if len(rep.Quarantined) != 0 {
			t.Fatalf("k=%d: scrub quarantined %v after recovery", k, rep.Quarantined)
		}
	}
}

// TestCrashSweepMonitorReplay sweeps the monitor namespace's ingest path: a
// crash at any operation of any block transaction must leave a store that
// resumeMonitor replays into exactly the fault-free history — with the seq
// record agreeing with the replayed position at every restart, since the
// monitor's restore point is always its full history.
func TestCrashSweepMonitorReplay(t *testing.T) {
	spec := Spec{Name: "mon", Kind: KindMonitor, MinSupport: 0.3, Alpha: 0.05}
	workload := sweepBlocks(6)

	runServeCrashSweep(t, func(store demon.Store) error {
		m, err := resumeMonitor(store, spec)
		if err != nil {
			return err
		}
		hw, err := recoverSeq(store, m.T())
		if err != nil {
			return err
		}
		if hw != uint64(m.T()) {
			return fmt.Errorf("recovered highwater %d does not match replayed position %d", hw, m.T())
		}
		var seq uint64
		m.txnHook = func(st demon.Store, id demon.BlockID) error {
			return putSeqMeta(st, seq, id)
		}
		for i := int(m.T()); i < len(workload); i++ {
			seq = uint64(i + 1)
			if err := m.AddBlock(workload[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestCrashSweepSequencedItemset sweeps a sequenced itemset model through
// openModel: the seq record rides inside every block transaction and must
// reconcile with whatever checkpoint the crash left behind — never claiming
// a block the model lost (drop) nor forgetting one it kept (double count).
func TestCrashSweepSequencedItemset(t *testing.T) {
	spec := Spec{Name: "seq", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}
	workload := sweepBlocks(4)

	runServeCrashSweep(t, func(store demon.Store) error {
		h := &seqHarness{}
		m, hw, err := openModel(store, spec, h.hook)
		if err != nil {
			return err
		}
		if hw != uint64(m.T()) {
			return fmt.Errorf("recovered highwater %d does not match restored position %d", hw, m.T())
		}
		for i := int(hw); i < len(workload); i++ {
			if err := h.apply(m, uint64(i+1), workload[i]); err != nil {
				return err
			}
			// Mid-stream checkpoint at T=2, so the sweep crosses restarts
			// both with and without rolled-out sequenced blocks.
			if m.T() == 2 {
				if err := m.checkpoint(); err != nil {
					return err
				}
			}
		}
		return m.checkpoint()
	})
}
