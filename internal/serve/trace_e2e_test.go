package serve

// ISSUE 7 acceptance: one block ingested over HTTP with a client-supplied
// X-Demon-Trace-Id must yield a /tracez trace whose spans cover the whole
// path — HTTP handler, queue wait, miner AddBlock, and the diskio transaction
// commit — all under the client's trace ID. Block application is
// asynchronous (the ingest queue hop), so the test polls /tracez until the
// late spans land.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/obs"
)

// withTracedRegistry installs an enabled process-global registry carrying a
// tracer, restoring the previous one when the test ends. The miners and
// diskio record through obs.Default(), so the e2e path needs the global
// swapped, not just Config.Registry.
func withTracedRegistry(t *testing.T, sample float64) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetTracer(obs.NewTracer(obs.DefaultTraceCapacity, sample))
	prev := obs.SetDefault(reg)
	t.Cleanup(func() { obs.SetDefault(prev) })
	return reg
}

func getTrace(t *testing.T, ts *httptest.Server, id string) (obs.TraceSnapshot, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/tracez?id=" + id)
	if err != nil {
		t.Fatalf("GET /tracez: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return obs.TraceSnapshot{}, false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/tracez Content-Type = %q", ct)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return snap, true
}

func TestE2ETracePropagation(t *testing.T) {
	withTracedRegistry(t, 0) // sampling off: only the explicit ID must trace

	s := mustServer(t, t.TempDir())
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "e2e-trace-7"
	var body strings.Builder
	if err := blockio.NewEncoder(&body).Encode(blockio.TxBlock(txRows(40, 0))); err != nil {
		t.Fatalf("encode: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/namespaces/tx/blocks", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(obs.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// The trace ID round-trips on the response so clients can follow up.
	if got := resp.Header.Get(obs.TraceIDHeader); got != traceID {
		t.Fatalf("response %s = %q, want %q", obs.TraceIDHeader, got, traceID)
	}

	// The block applies asynchronously behind the queue hop; poll until every
	// stage of the path has recorded its span.
	want := []string{
		"serve.http.request.ns",
		"serve.queue.wait.ns",
		"miner.itemset.addblock.ns",
		"diskio.txn.commit.ns",
	}
	var snap obs.TraceSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ok bool
		snap, ok = getTrace(t, ts, traceID)
		if ok {
			have := map[string]bool{}
			for _, sp := range snap.Spans {
				have[sp.Name] = true
			}
			missing := false
			for _, name := range want {
				if !have[name] {
					missing = true
				}
			}
			if !missing {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace incomplete after 10s: %+v", snap.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if snap.ID != traceID {
		t.Errorf("trace ID = %q", snap.ID)
	}
	byName := map[string]obs.TraceSpan{}
	for _, sp := range snap.Spans {
		if sp.SpanID == 0 {
			t.Errorf("span %s has zero ID", sp.Name)
		}
		byName[sp.Name] = sp
	}
	// The queue wait and the handler span share the request as parent: the
	// wait is a child of the HTTP span the block was enqueued under.
	httpSpan := byName["serve.http.request.ns"]
	if httpSpan.ParentID != 0 {
		t.Errorf("HTTP span has parent %d", httpSpan.ParentID)
	}
	if got := byName["serve.queue.wait.ns"].ParentID; got != httpSpan.SpanID {
		t.Errorf("queue wait parent = %d, want %d", got, httpSpan.SpanID)
	}
	if got := byName["miner.itemset.addblock.ns"].ParentID; got != httpSpan.SpanID {
		t.Errorf("addblock parent = %d, want %d", got, httpSpan.SpanID)
	}
	// The commit nests under the miner's AddBlock span.
	if got := byName["diskio.txn.commit.ns"].ParentID; got != byName["miner.itemset.addblock.ns"].SpanID {
		t.Errorf("commit parent = %d, want %d", got, byName["miner.itemset.addblock.ns"].SpanID)
	}
	if len(snap.Slowest) == 0 {
		t.Error("snapshot has no slowest-span summary")
	}

	// An un-ID'd request with sampling off must stay untraced: no header, and
	// the ring still holds only the explicit trace.
	resp2, err := http.Get(ts.URL + "/v1/namespaces/tx/itemsets?top=3")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceIDHeader); got != "" {
		t.Errorf("unsampled response carries trace ID %q", got)
	}

	// The aggregate view saw the same spans: the timer histograms moved.
	snapAll := obs.Default().Snapshot()
	for _, name := range want {
		if snapAll.Timers[name].Count == 0 {
			t.Errorf("timer %s never recorded", name)
		}
	}
}

// TestReadyz covers the readiness surface: ready while healthy, 503 with the
// failing namespace named once a namespace sticks, and 503 while draining.
func TestReadyz(t *testing.T) {
	withTracedRegistry(t, 0)

	s := mustServer(t, t.TempDir())
	if _, err := s.Create(Spec{Name: "tx", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type nsReady struct {
		Name       string `json:"name"`
		Ready      bool   `json:"ready"`
		QueueDepth int    `json:"queue_depth"`
		Error      string `json:"error,omitempty"`
	}
	type readiness struct {
		Ready      bool      `json:"ready"`
		Draining   bool      `json:"draining"`
		Namespaces []nsReady `json:"namespaces"`
	}
	fetch := func() (int, readiness) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("/readyz Content-Type = %q", ct)
		}
		var rep readiness
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("decode /readyz: %v", err)
		}
		return resp.StatusCode, rep
	}

	code, rep := fetch()
	if code != http.StatusOK || !rep.Ready || rep.Draining {
		t.Fatalf("healthy readyz = %d %+v", code, rep)
	}
	if len(rep.Namespaces) != 1 || rep.Namespaces[0].Name != "tx" || !rep.Namespaces[0].Ready {
		t.Fatalf("namespace report: %+v", rep.Namespaces)
	}
}
