package serve

// Unit tests of the sequencing layer: the (seq, t) meta codec, the
// recovery-time reconciliation between the persisted sequence record and the
// position the model actually restored to, and openModel's behaviour across
// crash/restart cycles — including the rolled-out-blocks case where the seq
// record runs ahead of the restored checkpoint.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
)

func TestSeqMetaRoundTrip(t *testing.T) {
	store := diskio.NewMemStore()

	if _, _, err := getSeqMeta(store); !errors.Is(err, diskio.ErrNotFound) {
		t.Fatalf("empty store: got %v, want ErrNotFound", err)
	}
	if err := putSeqMeta(store, 42, 17); err != nil {
		t.Fatalf("putSeqMeta: %v", err)
	}
	seq, ts, err := getSeqMeta(store)
	if err != nil {
		t.Fatalf("getSeqMeta: %v", err)
	}
	if seq != 42 || ts != 17 {
		t.Fatalf("round-trip got (%d, %d), want (42, 17)", seq, ts)
	}

	// Trailing garbage after the pair is corruption, not tolerated silence.
	raw, err := store.Get(seqMetaKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(seqMetaKey, append(append([]byte(nil), raw...), 0x01)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := getSeqMeta(store); !errors.Is(err, diskio.ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

func TestRecoverSeqReconciliation(t *testing.T) {
	cases := []struct {
		name      string
		seq       uint64
		ts        demon.BlockID
		restoredT demon.BlockID
		want      uint64
		wantErr   bool
	}{
		{name: "record matches restore point", seq: 5, ts: 5, restoredT: 5, want: 5},
		{name: "two blocks rolled out", seq: 5, ts: 7, restoredT: 5, want: 3},
		{name: "restore predates sequencing", seq: 2, ts: 10, restoredT: 3, want: 0},
		{name: "all sequenced blocks rolled out", seq: 3, ts: 3, restoredT: 0, want: 0},
		{name: "record behind restored model", seq: 5, ts: 4, restoredT: 6, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := diskio.NewMemStore()
			if err := putSeqMeta(store, tc.seq, tc.ts); err != nil {
				t.Fatal(err)
			}
			got, err := recoverSeq(store, tc.restoredT)
			if tc.wantErr {
				if !errors.Is(err, diskio.ErrCorrupt) {
					t.Fatalf("got %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("recoverSeq: %v", err)
			}
			if got != tc.want {
				t.Fatalf("recoverSeq(seq=%d, ts=%d, restored=%d) = %d, want %d",
					tc.seq, tc.ts, tc.restoredT, got, tc.want)
			}
		})
	}

	store := diskio.NewMemStore()
	if hw, err := recoverSeq(store, 3); err != nil || hw != 0 {
		t.Fatalf("never-sequenced store: got (%d, %v), want (0, nil)", hw, err)
	}
}

// seqHarness stands in for the Namespace worker when driving openModel
// directly: it carries the in-flight block's sequence number to the TxnHook
// the same way Namespace.pendingSeq does.
type seqHarness struct {
	pending atomic.Uint64
}

func (h *seqHarness) hook(store demon.Store, id demon.BlockID) error {
	if s := h.pending.Load(); s != 0 {
		return putSeqMeta(store, s, id)
	}
	return nil
}

func (h *seqHarness) apply(m *model, seq uint64, rows [][]itemset.Item) error {
	h.pending.Store(seq)
	defer h.pending.Store(0)
	return m.apply(context.Background(), blockio.TxBlock(rows))
}

// TestSeqRecoveryAcrossRestarts drives the exact scenario the ISSUE's
// tentpole describes: blocks applied after the last checkpoint roll out of
// the model on restart while their seq record stays ahead, and the recovered
// high-water mark must come back to the restored position so the client's
// re-sends are accepted — not rejected as duplicates (dropped blocks) nor
// beyond the model (double counts).
func TestSeqRecoveryAcrossRestarts(t *testing.T) {
	spec := Spec{Name: "seq", Kind: KindItemset, MinSupport: 0.2, Strategy: "ecut"}
	store := diskio.NewChecksumStore(diskio.NewMemStore())
	blocks := [][][]itemset.Item{txRows(8, 0), txRows(8, 1), txRows(8, 2), txRows(8, 3)}

	h := &seqHarness{}
	m, hw, err := openModel(store, spec, h.hook)
	if err != nil {
		t.Fatalf("openModel: %v", err)
	}
	if hw != 0 {
		t.Fatalf("fresh store highwater %d, want 0", hw)
	}

	// Blocks 1, 2 sequenced and checkpoint-covered; 3, 4 committed but
	// post-checkpoint — durable as raw transactions, rolled out of the model
	// on restart.
	for i, rows := range blocks {
		if err := h.apply(m, uint64(i+1), rows); err != nil {
			t.Fatalf("apply block %d: %v", i+1, err)
		}
		if i == 1 {
			if err := m.checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	if seq, ts, err := getSeqMeta(store); err != nil || seq != 4 || ts != 4 {
		t.Fatalf("seq meta after stream: (%d, %d, %v), want (4, 4, nil)", seq, ts, err)
	}

	// "Crash": reopen over the same store. The model restores to the
	// checkpoint at T=2; the seq record at (4, 4) ran two blocks ahead.
	m2, hw2, err := openModel(store, spec, h.hook)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if m2.T() != 2 {
		t.Fatalf("restored model at T=%d, want 2 (the checkpoint)", m2.T())
	}
	if hw2 != 2 {
		t.Fatalf("recovered highwater %d, want 2 — blocks 3, 4 rolled out and must be re-sent", hw2)
	}

	// The client re-sends from highwater+1; re-application converges.
	for i := int(hw2); i < len(blocks); i++ {
		if err := h.apply(m2, uint64(i+1), blocks[i]); err != nil {
			t.Fatalf("re-apply block %d: %v", i+1, err)
		}
	}
	if err := m2.checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}

	// Now nothing is rolled out: a further restart recovers the full mark.
	m3, hw3, err := openModel(store, spec, h.hook)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if m3.T() != 4 || hw3 != 4 {
		t.Fatalf("after checkpointed stream: T=%d highwater=%d, want 4/4", m3.T(), hw3)
	}
}
