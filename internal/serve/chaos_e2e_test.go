package serve

// The headline resilience test of ISSUE 8: the full exactly-once pipeline —
// demon-feed's client, the chaos proxy, and the hardened server — driven
// through every fault class the proxy injects (reset, torn close, stall,
// latency) plus a server drain/restart fired in the middle of a retry storm.
// The store the chaotic run leaves behind must be SHA-256-identical to the
// store of a fault-free run over the same blocks: no dropped block, no
// double-ingested block, no torn bytes.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/chaos"
	"github.com/demon-mining/demon/internal/client"
	"github.com/demon-mining/demon/internal/itemset"
)

// chaosSpec is the namespace both runs feed.
func chaosSpec() Spec {
	return Spec{Name: "tx", Kind: KindItemset, MinSupport: e2eMinSupport,
		Strategy: "ecut", Workers: e2eWorkers, QueueDepth: 4}
}

// feedAll streams every block through f, then flushes and checkpoints.
func feedAll(ctx context.Context, t *testing.T, f *client.Feeder, blocks [][][]itemset.Item) {
	t.Helper()
	for i, rows := range blocks {
		if err := f.Send(ctx, blockio.TxBlock(rows)); err != nil {
			t.Fatalf("send block %d: %v", i+1, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := f.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
}

// chaosReferenceDigest is the fault-free run: the same feeder against a
// direct listener, no proxy, no faults, no restart.
func chaosReferenceDigest(ctx context.Context, t *testing.T, blocks [][][]itemset.Item) string {
	t.Helper()
	s := mustServer(t, t.TempDir())
	if _, err := s.Create(chaosSpec()); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	f, err := client.New(client.Config{BaseURL: ts.URL, Namespace: "tx", BatchSize: 2})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	feedAll(ctx, t, f, blocks)
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	n, _ := s.Namespace("tx")
	if int(n.T()) != len(blocks) {
		t.Fatalf("reference run ended at T=%d, want %d", n.T(), len(blocks))
	}
	return storeDigest(t, n.Store())
}

func TestChaosExactlyOnceDigest(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	blocks := e2eTxData(t)
	want := chaosReferenceDigest(ctx, t, blocks)

	root := t.TempDir()
	s := mustServer(t, root)
	if _, err := s.Create(chaosSpec()); err != nil {
		t.Fatalf("create: %v", err)
	}
	ts := httptest.NewServer(s.Handler())

	proxy, err := chaos.New("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatalf("chaos proxy: %v", err)
	}
	defer proxy.Close()

	// Mid-retry drain/restart: armed before one of the reset faults, it runs
	// inside the feeder's backoff sleep — exactly the window where the client
	// is unsure whether its last batch landed. The drained server checkpoints
	// what it accepted; the restarted one recovers the sequence marks from
	// the store; the proxy is repointed at the new listener; the client's
	// retry then gets duplicates acked for whatever had landed and ingests
	// the rest. Nothing dropped, nothing double-counted.
	var restartArmed atomic.Bool
	restart := func() {
		if err := s.Drain(ctx); err != nil {
			t.Errorf("mid-retry drain: %v", err)
		}
		ts.Close()
		s = mustServer(t, root)
		n, ok := s.Namespace("tx")
		if !ok {
			t.Error("restart lost the namespace")
		} else if n.T() == 0 {
			t.Error("restart lost all drained blocks")
		}
		ts = httptest.NewServer(s.Handler())
		proxy.SetUpstream(strings.TrimPrefix(ts.URL, "http://"))
	}

	f, err := client.New(client.Config{
		BaseURL:   "http://" + proxy.Addr(),
		Namespace: "tx",
		// Fresh connection per request, so each attempt picks up the toxics
		// armed for it — the proxy snapshots toxics at accept time.
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		BatchSize:      2,
		MaxAttempts:    12,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
		// The breaker is exercised by the client package's own tests; here it
		// would only slow the deterministic heal-on-backoff cycle down.
		BreakerThreshold: -1,
		Rand:             func() float64 { return 1 },
		// Every backoff heals the proxy (and fires the one armed restart), so
		// each injected fault breaks exactly the in-flight attempt and the
		// retry path gets to prove it converges.
		Sleep: func(ctx context.Context, d time.Duration) error {
			if restartArmed.CompareAndSwap(true, false) {
				restart()
			}
			proxy.Set(chaos.Toxics{})
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("initial sync: %v", err)
	}

	// Fault schedule, keyed by 1-based block index and armed just before the
	// send that triggers the flush of that block's batch (BatchSize 2 flushes
	// on even sends). Byte offsets land inside the request headers or the
	// NDJSON body, so the fault tears a real ingest POST.
	faults := map[int]chaos.Toxics{
		2:  {ResetAfter: 256},
		4:  {CloseAfter: 700},
		6:  {StallAfter: 400, StallFor: 25 * time.Millisecond},
		8:  {ResetAfter: 128},
		10: {Latency: 2 * time.Millisecond},
	}
	for i, rows := range blocks {
		if tox, ok := faults[i+1]; ok {
			proxy.Set(tox)
			if i+1 == 8 {
				restartArmed.Store(true)
			}
		}
		if err := f.Send(ctx, blockio.TxBlock(rows)); err != nil {
			t.Fatalf("send block %d: %v", i+1, err)
		}
		if i+1 == 10 {
			// A checkpoint through the proxy: trims the replay buffer to the
			// durable mark while faults are still in rotation.
			if err := f.Checkpoint(ctx); err != nil {
				t.Fatalf("mid-stream checkpoint: %v", err)
			}
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if err := f.Checkpoint(ctx); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	ts.Close()

	n, _ := s.Namespace("tx")
	if int(n.T()) != len(blocks) {
		t.Fatalf("chaotic run ended at T=%d, want %d", n.T(), len(blocks))
	}
	if acc, app, dur := n.Seq(); int(acc) != len(blocks) || int(app) != len(blocks) || int(dur) != len(blocks) {
		t.Fatalf("seq marks (%d, %d, %d), want all %d", acc, app, dur, len(blocks))
	}
	if got := storeDigest(t, n.Store()); got != want {
		t.Errorf("chaotic store diverges from the fault-free run:\n got %s\nwant %s", got, want)
	}

	// The run must actually have been chaotic: faults fired, retries happened.
	resets, closes, stalls := proxy.Injected()
	if resets == 0 || closes == 0 {
		t.Errorf("proxy injected resets=%d closes=%d stalls=%d — the fault schedule never fired", resets, closes, stalls)
	}
	if st := f.Stats(); st.Retries == 0 {
		t.Errorf("feeder never retried (%+v) — the chaos run was not chaotic", st)
	} else {
		t.Logf("chaos stats: feeder %+v; proxy resets=%d closes=%d stalls=%d", st, resets, closes, stalls)
	}
}
