// Package perf is the repeatable performance-trajectory harness behind
// cmd/demon-perf (ROADMAP item 3): a pinned suite of DEMON hot-path
// scenarios — counting strategies over a Quest environment, the four miners
// at workers {1, GOMAXPROCS}, the proxysim trace through the window miner,
// and a served end-to-end ingest through internal/client — each run N times
// under one process, measured for wall time, allocations, ingest
// throughput, peak RSS, GC pauses and obs-registry deltas, and emitted as a
// schema-versioned BENCH_<n>.json artifact stamped with the build identity.
//
// Optionally each entry captures a CPU profile (and the run a heap
// profile) via runtime/pprof; the harness parses the profiles itself (see
// pprofparse.go) into top-N hotspot tables embedded in the artifact, so a
// regression flagged by the comparator points at a function, not just a
// number.
//
// The suite is deliberately deterministic where the code is: fixed seeds,
// fixed datasets, fresh model state per iteration. What the machine adds —
// scheduling, frequency scaling, disk — the comparator absorbs with
// benchstat-style min/median dual gating (see compare.go).
package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/version"
)

// Config parameterizes one suite run. The zero value selects the pinned
// defaults; Short shrinks datasets and iterations to CI size.
type Config struct {
	// Scale multiplies dataset sizes (default 1.0 = the suite's pinned
	// laptop-scale sizes).
	Scale float64
	// Short selects the CI-sized datasets and iteration count.
	Short bool
	// Iterations is how many times each entry's op runs (default 5, 3 in
	// short mode). More iterations tighten the comparator's min/median.
	Iterations int
	// Seed fixes all data generation (default 1).
	Seed int64
	// TopN bounds the hotspot tables (default 5).
	TopN int
	// Number stamps the artifact's trajectory point (the <n> of
	// BENCH_<n>.json); 0 for ad-hoc runs.
	Number int
	// ProfileDir, when non-empty, enables per-entry CPU profiles and a
	// run-wide heap profile, written there and parsed into the artifact's
	// hotspot tables. The directory is created if missing.
	ProfileDir string
	// Select restricts the suite to the named entries (every worker variant
	// of a selected name runs); nil or empty runs everything.
	Select map[string]bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Iterations <= 0 {
		if c.Short {
			c.Iterations = 3
		} else {
			c.Iterations = 5
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TopN <= 0 {
		c.TopN = 5
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Prepared is one entry's ready-to-run state: Setup has generated the
// datasets, so Run times nothing but the scenario itself.
type Prepared struct {
	// Blocks and Tx are the work units one Run call processes.
	Blocks, Tx int64
	// Run executes one op over fresh model state. It must do the same work
	// every call.
	Run func() error
	// Cleanup optionally releases setup state after the last iteration.
	Cleanup func()
	// ThresholdScale widens the comparator's time threshold for this entry
	// (0 or 1 = normal). End-to-end entries that cross a real network stack
	// and filesystem set it > 1 and are gated on time only.
	ThresholdScale float64
}

// Entry is one suite member.
type Entry struct {
	// Name groups the entry ("miner/ecut"); Workers is the parallelism the
	// entry runs at (0 when the knob does not apply).
	Name    string
	Workers int
	// Setup builds the entry's datasets and returns its op.
	Setup func(cfg Config) (*Prepared, error)
}

// Key is the entry's identity in artifacts and the comparator.
func (e Entry) Key() string {
	if e.Workers > 0 {
		return fmt.Sprintf("%s/w%d", e.Name, e.Workers)
	}
	return e.Name
}

// Run executes the pinned suite under cfg and returns the artifact.
func Run(cfg Config) (*Artifact, error) {
	return RunEntries(cfg, Suite(cfg))
}

// RunEntries executes the given entries under cfg. Tests inject synthetic
// entries here; demon-perf always runs the pinned Suite.
func RunEntries(cfg Config, entries []Entry) (*Artifact, error) {
	cfg = cfg.withDefaults()
	reg := obs.Enable()
	obs.RegisterRuntimeCollector(reg)

	if len(cfg.Select) > 0 {
		kept := entries[:0:0]
		for _, e := range entries {
			if cfg.Select[e.Name] || cfg.Select[e.Key()] {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("perf: no suite entry matches the selection (see demon-perf list)")
		}
		entries = kept
	}
	if cfg.ProfileDir != "" {
		if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
			return nil, err
		}
	}

	art := &Artifact{
		Schema:     SchemaVersion,
		Number:     cfg.Number,
		Build:      version.Get(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		Short:      cfg.Short,
		Iterations: cfg.Iterations,
	}
	for _, e := range entries {
		res, err := runEntry(cfg, reg, e)
		if err != nil {
			return nil, fmt.Errorf("perf: entry %s: %w", e.Key(), err)
		}
		art.Entries = append(art.Entries, res)
	}

	if cfg.ProfileDir != "" {
		if err := writeHeapTop(cfg, art); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// runEntry measures one entry: Iterations ops with per-iteration wall time,
// allocation deltas and GC pauses, a peak-RSS sampler and an obs-registry
// delta across the whole entry, plus an optional CPU profile spanning all
// iterations.
func runEntry(cfg Config, reg *obs.Registry, e Entry) (EntryResult, error) {
	key := e.Key()
	cfg.Logf("perf: setup %s", key)
	prep, err := e.Setup(cfg)
	if err != nil {
		return EntryResult{}, err
	}
	if prep.Cleanup != nil {
		defer prep.Cleanup()
	}
	res := EntryResult{
		Name:           e.Name,
		Workers:        e.Workers,
		Blocks:         prep.Blocks,
		Tx:             prep.Tx,
		ThresholdScale: prep.ThresholdScale,
	}

	var cpuFile *os.File
	if cfg.ProfileDir != "" {
		name := strings.ReplaceAll(key, "/", "_") + ".cpu.pb.gz"
		cpuFile, err = os.Create(filepath.Join(cfg.ProfileDir, name))
		if err != nil {
			return res, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return res, fmt.Errorf("start cpu profile: %w", err)
		}
		res.CPUProfile = name
	}

	before := reg.Snapshot()
	sampler := startRSSSampler(10 * time.Millisecond)
	iterTimer := reg.Timer("perf.iteration.ns")
	iterCount := reg.Counter("perf.iterations")

	var allocs, bytes, pauses []int64
	runErr := func() error {
		for i := 0; i < cfg.Iterations; i++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			if err := prep.Run(); err != nil {
				return fmt.Errorf("iteration %d: %w", i+1, err)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			sampler.Sample()
			iterTimer.Record(elapsed)
			iterCount.Inc()
			res.IterNs = append(res.IterNs, int64(elapsed))
			allocs = append(allocs, int64(m1.Mallocs-m0.Mallocs))
			bytes = append(bytes, int64(m1.TotalAlloc-m0.TotalAlloc))
			res.GCCycles += int64(m1.NumGC - m0.NumGC)
			// Pauses of the cycles that completed during this iteration,
			// read from the 256-entry ring (cycle c lands at (c+255)%256).
			first := m0.NumGC + 1
			if m1.NumGC > first+255 {
				first = m1.NumGC - 255
			}
			for c := first; c <= m1.NumGC; c++ {
				pauses = append(pauses, int64(m1.PauseNs[(c+255)%256]))
			}
			cfg.Logf("perf: %s iter %d/%d: %v", key, i+1, cfg.Iterations, elapsed)
		}
		return nil
	}()

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); runErr == nil && cerr != nil {
			runErr = cerr
		}
	}
	res.PeakRSSBytes = sampler.Stop()
	reg.Gauge("perf.rss.peak.bytes").Set(res.PeakRSSBytes)
	if runErr != nil {
		return res, runErr
	}

	delta := reg.Snapshot().Delta(before)
	res.Metrics = &delta
	res.NsPerOp = median(res.IterNs)
	res.MinNs = minOf(res.IterNs)
	res.AllocsPerOp = median(allocs)
	res.BytesPerOp = median(bytes)
	if res.NsPerOp > 0 {
		res.BlocksPerSec = float64(res.Blocks) / (float64(res.NsPerOp) / 1e9)
		res.TxPerSec = float64(res.Tx) / (float64(res.NsPerOp) / 1e9)
	}
	res.GCPauseP50Ns = percentile(pauses, 0.50)
	res.GCPauseP99Ns = percentile(pauses, 0.99)
	if len(pauses) > 0 {
		sorted := append([]int64(nil), pauses...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.GCPauseMaxNs = sorted[len(sorted)-1]
	}

	if res.CPUProfile != "" {
		data, err := os.ReadFile(filepath.Join(cfg.ProfileDir, res.CPUProfile))
		if err != nil {
			return res, err
		}
		spots, err := TopHotspots(data, "cpu", cfg.TopN)
		if err != nil {
			return res, fmt.Errorf("parse cpu profile: %w", err)
		}
		res.Hotspots = spots
	}
	return res, nil
}

// writeHeapTop writes the run-wide heap profile and parses its alloc_space
// attribution into the artifact.
func writeHeapTop(cfg Config, art *Artifact) error {
	path := filepath.Join(cfg.ProfileDir, "heap.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush the most recent allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spots, err := TopHotspots(data, "alloc_space", cfg.TopN)
	if err != nil {
		return fmt.Errorf("perf: parse heap profile: %w", err)
	}
	art.HeapTop = spots
	return nil
}
