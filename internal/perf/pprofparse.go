package perf

// Minimal reader for the pprof protobuf profile format that runtime/pprof
// emits: just enough of the proto3 wire format to resolve each sample's
// value to its leaf function name, so the harness can embed a top-N hotspot
// attribution table in the BENCH artifact without depending on
// github.com/google/pprof. Unknown fields are skipped, so profiles from
// newer toolchains still parse.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Hotspot is one row of a profile attribution table: the flat (self) value
// a function accumulated and its share of the profile total.
type Hotspot struct {
	// Func is the fully qualified function name the samples resolve to
	// (an address literal when the profile carries no symbol for it).
	Func string `json:"func"`
	// Flat is the function's self value in Unit (nanoseconds for CPU
	// profiles, bytes for alloc_space).
	Flat int64 `json:"flat"`
	// Pct is Flat as a percentage of the profile total.
	Pct float64 `json:"pct"`
	// Unit is the sample type's unit as recorded in the profile.
	Unit string `json:"unit"`
}

// TopHotspots parses a (possibly gzip-compressed) pprof profile and returns
// the top-n functions by flat self value of the named sample type ("cpu",
// "alloc_space", ...). An empty sampleType selects the profile's last value
// column, which is the conventional default (cpu nanoseconds, alloc bytes).
func TopHotspots(data []byte, sampleType string, n int) ([]Hotspot, error) {
	p, err := parseProfile(data)
	if err != nil {
		return nil, err
	}
	idx := len(p.sampleTypes) - 1
	if sampleType != "" {
		idx = -1
		for i, st := range p.sampleTypes {
			if st.Type == sampleType {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("perf: profile has no sample type %q", sampleType)
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("perf: profile carries no sample types")
	}
	return p.topFlat(idx, n), nil
}

type profValueType struct{ Type, Unit string }

type profSample struct {
	locs []uint64
	vals []int64
}

type profLocation struct {
	funcID uint64
	addr   uint64
}

type profile struct {
	sampleTypes []profValueType
	samples     []profSample
	locations   map[uint64]profLocation
	funcNames   map[uint64]string
}

// topFlat aggregates the chosen value column by leaf function.
func (p *profile) topFlat(valueIndex, n int) []Hotspot {
	unit := ""
	if valueIndex < len(p.sampleTypes) {
		unit = p.sampleTypes[valueIndex].Unit
	}
	agg := make(map[string]int64)
	var total int64
	for _, s := range p.samples {
		if valueIndex >= len(s.vals) || len(s.locs) == 0 {
			continue
		}
		v := s.vals[valueIndex]
		if v == 0 {
			continue
		}
		agg[p.leafName(s.locs[0])] += v
		total += v
	}
	spots := make([]Hotspot, 0, len(agg))
	for fn, v := range agg {
		spots = append(spots, Hotspot{Func: fn, Flat: v, Unit: unit})
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Flat != spots[j].Flat {
			return spots[i].Flat > spots[j].Flat
		}
		return spots[i].Func < spots[j].Func
	})
	if n > 0 && len(spots) > n {
		spots = spots[:n]
	}
	for i := range spots {
		if total > 0 {
			spots[i].Pct = 100 * float64(spots[i].Flat) / float64(total)
		}
	}
	return spots
}

// leafName resolves a location ID to its innermost function name.
func (p *profile) leafName(locID uint64) string {
	loc, ok := p.locations[locID]
	if !ok {
		return fmt.Sprintf("location#%d", locID)
	}
	if name, ok := p.funcNames[loc.funcID]; ok && name != "" {
		return name
	}
	return fmt.Sprintf("0x%x", loc.addr)
}

// --- proto3 wire-format plumbing ---

type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) done() bool { return r.off >= len(r.b) }

func (r *wireReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.off >= len(r.b) {
			return 0, io.ErrUnexpectedEOF
		}
		c := r.b[r.off]
		r.off++
		if shift >= 64 {
			return 0, fmt.Errorf("perf: varint overflows uint64")
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// tag reads one field tag, returning the field number and wire type.
func (r *wireReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads a length-delimited field body.
func (r *wireReader) bytesField() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, io.ErrUnexpectedEOF
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

// skip discards one field body of the given wire type.
func (r *wireReader) skip(wireType int) error {
	switch wireType {
	case 0: // varint
		_, err := r.varint()
		return err
	case 1: // fixed64
		if len(r.b)-r.off < 8 {
			return io.ErrUnexpectedEOF
		}
		r.off += 8
		return nil
	case 2: // length-delimited
		_, err := r.bytesField()
		return err
	case 5: // fixed32
		if len(r.b)-r.off < 4 {
			return io.ErrUnexpectedEOF
		}
		r.off += 4
		return nil
	default:
		return fmt.Errorf("perf: unsupported wire type %d", wireType)
	}
}

// repeatedUint64 reads a repeated uint64 field body that may be packed
// (wire type 2) or a single scalar (wire type 0).
func repeatedUint64(r *wireReader, wireType int, into []uint64) ([]uint64, error) {
	if wireType == 0 {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	body, err := r.bytesField()
	if err != nil {
		return nil, err
	}
	pr := &wireReader{b: body}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

func parseProfile(data []byte) (*profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("perf: gunzip profile: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("perf: gunzip profile: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("perf: gunzip profile: %w", err)
		}
	}

	p := &profile{
		locations: make(map[uint64]profLocation),
		funcNames: make(map[uint64]string),
	}
	var strtab []string
	// String indices are resolved after the full pass: the string table may
	// appear anywhere in the message.
	type vtIdx struct{ typ, unit uint64 }
	type fnIdx struct{ id, name uint64 }
	var vts []vtIdx
	var fns []fnIdx

	r := &wireReader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type: ValueType{type=1, unit=2}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var vt vtIdx
			vr := &wireReader{b: body}
			for !vr.done() {
				f, w, err := vr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if vt.typ, err = vr.varint(); err != nil {
						return nil, err
					}
				case 2:
					if vt.unit, err = vr.varint(); err != nil {
						return nil, err
					}
				default:
					if err := vr.skip(w); err != nil {
						return nil, err
					}
				}
			}
			vts = append(vts, vt)
		case 2: // sample: Sample{location_id=1 repeated, value=2 repeated}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var s profSample
			sr := &wireReader{b: body}
			for !sr.done() {
				f, w, err := sr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if s.locs, err = repeatedUint64(sr, w, s.locs); err != nil {
						return nil, err
					}
				case 2:
					var vals []uint64
					if vals, err = repeatedUint64(sr, w, nil); err != nil {
						return nil, err
					}
					for _, v := range vals {
						s.vals = append(s.vals, int64(v))
					}
				default:
					if err := sr.skip(w); err != nil {
						return nil, err
					}
				}
			}
			p.samples = append(p.samples, s)
		case 4: // location: Location{id=1, address=3, line=4 (Line{function_id=1})}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var id uint64
			var loc profLocation
			lr := &wireReader{b: body}
			for !lr.done() {
				f, w, err := lr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if id, err = lr.varint(); err != nil {
						return nil, err
					}
				case 3:
					if loc.addr, err = lr.varint(); err != nil {
						return nil, err
					}
				case 4:
					line, err := lr.bytesField()
					if err != nil {
						return nil, err
					}
					// The first Line of a location is its innermost frame.
					if loc.funcID == 0 {
						nr := &wireReader{b: line}
						for !nr.done() {
							lf, lw, err := nr.tag()
							if err != nil {
								return nil, err
							}
							if lf == 1 {
								if loc.funcID, err = nr.varint(); err != nil {
									return nil, err
								}
							} else if err := nr.skip(lw); err != nil {
								return nil, err
							}
						}
					}
				default:
					if err := lr.skip(w); err != nil {
						return nil, err
					}
				}
			}
			p.locations[id] = loc
		case 5: // function: Function{id=1, name=2}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var fn fnIdx
			fr := &wireReader{b: body}
			for !fr.done() {
				f, w, err := fr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if fn.id, err = fr.varint(); err != nil {
						return nil, err
					}
				case 2:
					if fn.name, err = fr.varint(); err != nil {
						return nil, err
					}
				default:
					if err := fr.skip(w); err != nil {
						return nil, err
					}
				}
			}
			fns = append(fns, fn)
		case 6: // string_table entry
			s, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		default:
			if err := r.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range vts {
		p.sampleTypes = append(p.sampleTypes, profValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	for _, fn := range fns {
		p.funcNames[fn.id] = str(fn.name)
	}
	return p, nil
}
