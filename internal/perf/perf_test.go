package perf

// Driver tests run synthetic entries (cheap, deterministic work) through
// the full measurement pipeline — timing, allocation deltas, RSS sampling,
// profiling, artifact round-trip — without paying for the real suite.
// Timing assertions are deliberately loose: mechanics, not stability, are
// under test here (self-stability is demon-perf's own acceptance check).

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/obs"
)

func syntheticEntries(busy time.Duration, allocMiB int) []Entry {
	setup := func(Config) (*Prepared, error) {
		return &Prepared{
			Blocks: 4,
			Tx:     4000,
			Run: func() error {
				burnCPU(busy)
				hold := make([][]byte, allocMiB)
				for i := range hold {
					hold[i] = make([]byte, 1<<20)
				}
				burnSink += uint64(len(hold))
				return nil
			},
		}, nil
	}
	return []Entry{{Name: "synthetic/busy", Workers: 1, Setup: setup}}
}

func TestRunEntriesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("burns CPU for profile samples")
	}
	prev := obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	dir := t.TempDir()
	cfg := Config{Iterations: 2, Number: 99, ProfileDir: dir, TopN: 3, Logf: t.Logf}
	art, err := RunEntries(cfg, syntheticEntries(150*time.Millisecond, 8))
	if err != nil {
		t.Fatalf("RunEntries: %v", err)
	}

	if art.Schema != SchemaVersion || art.Number != 99 || art.Iterations != 2 {
		t.Errorf("artifact header wrong: %+v", art)
	}
	if art.Build.Go == "" {
		t.Errorf("artifact lacks build identity")
	}
	if len(art.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(art.Entries))
	}
	e := art.Entries[0]
	if e.Key() != "synthetic/busy/w1" {
		t.Errorf("key = %q", e.Key())
	}
	if len(e.IterNs) != 2 {
		t.Fatalf("iterations recorded = %d", len(e.IterNs))
	}
	if e.NsPerOp < int64(100*time.Millisecond) {
		t.Errorf("ns/op = %v, want >= 100ms of busy work", time.Duration(e.NsPerOp))
	}
	if e.MinNs > e.NsPerOp {
		t.Errorf("min %d > median %d", e.MinNs, e.NsPerOp)
	}
	// 8 MiB allocated per op must show in the allocation delta.
	if e.BytesPerOp < 8<<20 {
		t.Errorf("bytes/op = %d, want >= 8MiB", e.BytesPerOp)
	}
	if e.BlocksPerSec <= 0 || e.TxPerSec <= 0 {
		t.Errorf("throughput not derived: %v blocks/s %v tx/s", e.BlocksPerSec, e.TxPerSec)
	}
	if e.PeakRSSBytes <= 0 && obs.ReadRSSBytes() > 0 {
		t.Errorf("peak RSS not sampled on a platform that reports RSS")
	}
	if e.Metrics == nil {
		t.Fatalf("metrics delta absent")
	}
	if tm, ok := e.Metrics.Timers["perf.iteration.ns"]; !ok || tm.Count != 2 {
		t.Errorf("perf.iteration.ns delta = %+v, want count 2", e.Metrics.Timers)
	}
	if e.CPUProfile == "" {
		t.Fatalf("cpu profile not recorded")
	}
	if _, err := os.Stat(filepath.Join(dir, e.CPUProfile)); err != nil {
		t.Errorf("cpu profile file: %v", err)
	}
	if len(e.Hotspots) == 0 {
		t.Errorf("hotspot table empty for a 300ms-busy entry")
	}
	if len(art.HeapTop) == 0 {
		t.Errorf("run-wide heap attribution empty")
	}

	// Round-trip through the file format the comparator reads.
	path := filepath.Join(dir, "BENCH_test.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if back.Entries[0].NsPerOp != e.NsPerOp || back.Entries[0].Key() != e.Key() {
		t.Errorf("round-trip mutated the artifact")
	}

	// A run is comparable against itself.
	c, err := Compare(art, back, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("artifact does not self-compare clean: %+v", c.Regressions)
	}
}

func TestRunEntriesSelect(t *testing.T) {
	prev := obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	entries := []Entry{
		{Name: "a", Setup: func(Config) (*Prepared, error) {
			return &Prepared{Blocks: 1, Tx: 1, Run: func() error { return nil }}, nil
		}},
		{Name: "b", Setup: func(Config) (*Prepared, error) {
			t.Fatal("unselected entry ran")
			return nil, nil
		}},
	}
	art, err := RunEntries(Config{Iterations: 1, Select: map[string]bool{"a": true}}, entries)
	if err != nil {
		t.Fatalf("RunEntries: %v", err)
	}
	if len(art.Entries) != 1 || art.Entries[0].Name != "a" {
		t.Errorf("selection failed: %+v", art.Entries)
	}
	if _, err := RunEntries(Config{Iterations: 1, Select: map[string]bool{"nope": true}}, entries); err == nil {
		t.Errorf("empty selection did not error")
	}
}

func TestSuiteShape(t *testing.T) {
	cfg := Config{Short: true}.withDefaults()
	entries := Suite(cfg)
	seen := make(map[string]bool)
	var haveServe, haveCount, haveProxy bool
	for _, e := range entries {
		if seen[e.Key()] {
			t.Errorf("duplicate suite key %s", e.Key())
		}
		seen[e.Key()] = true
		switch e.Name {
		case "serve/ingest":
			haveServe = true
		case "count/ecut", "count/ecutplus":
			haveCount = true
		case "proxysim/window":
			haveProxy = true
		}
	}
	if !haveServe || !haveCount || !haveProxy {
		t.Errorf("suite misses a pinned scenario: serve=%v count=%v proxy=%v", haveServe, haveCount, haveProxy)
	}
	for _, name := range []string{"miner/ecut", "miner/ecutplus", "miner/window", "miner/cluster"} {
		if !seen[name+"/w1"] {
			t.Errorf("suite misses %s/w1", name)
		}
	}
}

// TestSuiteEntriesExecute runs one iteration of a few real suite entries at
// tiny scale — the wiring against the miners, the bench env and the serving
// stack must hold together, whatever the timings are.
func TestSuiteEntriesExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real miners")
	}
	prev := obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	cfg := Config{Short: true, Scale: 0.2, Iterations: 1, Logf: t.Logf,
		Select: map[string]bool{"miner/ecut": true, "count/ecut": true, "serve/ingest": true}}
	art, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(art.Entries) < 3 {
		t.Fatalf("entries = %d, want >= 3 (both worker variants of miner/ecut may collapse on 1 CPU)", len(art.Entries))
	}
	for _, e := range art.Entries {
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %d", e.Key(), e.NsPerOp)
		}
		if e.Blocks <= 0 || e.Tx <= 0 {
			t.Errorf("%s: work units missing (%d blocks, %d tx)", e.Key(), e.Blocks, e.Tx)
		}
		if e.Metrics == nil {
			t.Errorf("%s: no metrics delta", e.Key())
		}
	}
}
