package perf

// Comparator mechanics are fully deterministic: artifacts are constructed
// by hand, including the synthetically inflated hot path the acceptance
// criteria call for.

import (
	"bytes"
	"strings"
	"testing"
)

func mkArtifact(entries ...EntryResult) *Artifact {
	return &Artifact{Schema: SchemaVersion, Seed: 1, Scale: 1.0, Iterations: 3, Entries: entries}
}

func mkEntry(name string, workers int, iterNs []int64) EntryResult {
	e := EntryResult{
		Name:        name,
		Workers:     workers,
		Blocks:      8,
		Tx:          8000,
		IterNs:      iterNs,
		NsPerOp:     median(iterNs),
		MinNs:       minOf(iterNs),
		AllocsPerOp: 50_000,
		BytesPerOp:  4 << 20,
	}
	return e
}

func TestCompareSelfIsClean(t *testing.T) {
	a := mkArtifact(
		mkEntry("miner/ecut", 1, []int64{100e6, 103e6, 101e6}),
		mkEntry("serve/ingest", 0, []int64{500e6, 520e6, 510e6}),
	)
	c, err := Compare(a, a, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Fatalf("self-comparison regressed: %+v", c.Regressions)
	}
	for _, r := range c.Rows {
		if r.Verdict != "ok" || r.Delta != 0 {
			t.Errorf("self row %s %s: verdict %q delta %v", r.Entry, r.Metric, r.Verdict, r.Delta)
		}
	}
}

func TestCompareFlagsInflatedHotPath(t *testing.T) {
	old := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6, 103e6, 101e6}))
	inflated := mkArtifact(mkEntry("miner/ecut", 1, []int64{200e6, 207e6, 202e6}))

	c, err := Compare(old, inflated, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if c.OK() {
		t.Fatalf("2x inflated time passed the gate: %+v", c.Rows)
	}
	if got := c.Regressions[0]; got != "miner/ecut/w1 time/op" {
		t.Errorf("regression = %q, want miner/ecut/w1 time/op", got)
	}

	var buf bytes.Buffer
	if err := c.WriteText(&buf, EntriesByKey(inflated)); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("text output lacks FAIL:\n%s", buf.String())
	}
}

func TestCompareVarianceAwareness(t *testing.T) {
	// Median above threshold but minimum inside it: the new run matched the
	// old best at least once, so the slowdown is noise, not a regression.
	old := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6, 100e6, 100e6}))
	noisy := mkArtifact(mkEntry("miner/ecut", 1, []int64{104e6, 400e6, 400e6}))
	c, err := Compare(old, noisy, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("noisy-but-min-stable run regressed: %+v", c.Regressions)
	}

	// Minimum above threshold but median inside it: one slow baseline
	// iteration must not fail a steady run either.
	steady := mkArtifact(mkEntry("miner/ecut", 1, []int64{130e6, 90e6, 95e6}))
	c, err = Compare(old, steady, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("median-stable run regressed: %+v", c.Regressions)
	}
}

func TestCompareAllocGates(t *testing.T) {
	old := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6, 100e6, 100e6}))
	worse := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6, 100e6, 100e6}))
	worse.Entries[0].AllocsPerOp = old.Entries[0].AllocsPerOp * 2
	worse.Entries[0].BytesPerOp = old.Entries[0].BytesPerOp * 2

	c, err := Compare(old, worse, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(c.Regressions) != 2 {
		t.Fatalf("regressions = %v, want allocs/op and bytes/op", c.Regressions)
	}

	// Entries below the absolute floors never gate on allocation metrics.
	tiny := mkArtifact(mkEntry("count/ecut", 0, []int64{1e6, 1e6, 1e6}))
	tiny.Entries[0].AllocsPerOp = 10
	tiny.Entries[0].BytesPerOp = 100
	tinyWorse := mkArtifact(mkEntry("count/ecut", 0, []int64{1e6, 1e6, 1e6}))
	tinyWorse.Entries[0].AllocsPerOp = 100
	tinyWorse.Entries[0].BytesPerOp = 1000
	c, err = Compare(tiny, tinyWorse, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("sub-floor alloc growth regressed: %+v", c.Regressions)
	}
}

func TestCompareThresholdScale(t *testing.T) {
	// An end-to-end entry with ThresholdScale 2 tolerates up to 50% time
	// growth at the default 25% threshold, and never gates on allocations.
	old := mkArtifact(mkEntry("serve/ingest", 0, []int64{100e6, 100e6, 100e6}))
	old.Entries[0].ThresholdScale = 2.0
	within := mkArtifact(mkEntry("serve/ingest", 0, []int64{140e6, 145e6, 142e6}))
	within.Entries[0].AllocsPerOp = old.Entries[0].AllocsPerOp * 10

	c, err := Compare(old, within, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("scaled-threshold entry regressed at +42%%: %+v", c.Regressions)
	}
	for _, r := range c.Rows {
		if r.Metric != "time/op" {
			t.Errorf("end-to-end entry gated on %s", r.Metric)
		}
	}

	beyond := mkArtifact(mkEntry("serve/ingest", 0, []int64{160e6, 165e6, 162e6}))
	c, err = Compare(old, beyond, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if c.OK() {
		t.Errorf("+60%% on a 2x-scaled entry passed the gate")
	}
}

func TestCompareEntryDriftAndIncomparable(t *testing.T) {
	old := mkArtifact(
		mkEntry("miner/ecut", 1, []int64{100e6}),
		mkEntry("gone/entry", 0, []int64{100e6}),
	)
	niu := mkArtifact(
		mkEntry("miner/ecut", 1, []int64{100e6}),
		mkEntry("fresh/entry", 0, []int64{100e6}),
	)
	c, err := Compare(old, niu, DefaultThresholds())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Errorf("entry drift failed the gate: %+v", c.Regressions)
	}
	if len(c.MissingInNew) != 1 || c.MissingInNew[0] != "gone/entry" {
		t.Errorf("MissingInNew = %v", c.MissingInNew)
	}
	if len(c.AddedInNew) != 1 || c.AddedInNew[0] != "fresh/entry" {
		t.Errorf("AddedInNew = %v", c.AddedInNew)
	}

	otherSeed := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6}))
	otherSeed.Seed = 2
	if _, err := Compare(old, otherSeed, DefaultThresholds()); err == nil {
		t.Errorf("seed mismatch did not error")
	}
	otherSchema := mkArtifact(mkEntry("miner/ecut", 1, []int64{100e6}))
	otherSchema.Schema = SchemaVersion + 1
	if _, err := Compare(old, otherSchema, DefaultThresholds()); err == nil {
		t.Errorf("schema mismatch did not error")
	}
}
