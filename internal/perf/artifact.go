package perf

// The BENCH_<n>.json artifact: the schema-versioned, machine-readable
// record of one suite run that demon-perf emits, CI uploads, and the
// comparator judges regressions against. Everything a future reader needs
// to interpret a number — build identity, seed, scale, iteration count,
// per-iteration raw timings — rides inside the artifact, so two artifacts
// from different PRs are comparable (or detectably incomparable) on their
// own.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/version"
)

// SchemaVersion identifies the artifact layout. The comparator refuses to
// judge artifacts with mismatched schemas.
const SchemaVersion = 1

// Artifact is one complete suite run.
type Artifact struct {
	// Schema is the artifact layout version (SchemaVersion).
	Schema int `json:"schema"`
	// Number is the trajectory point this artifact represents (the <n> of
	// BENCH_<n>.json); 0 for ad-hoc runs.
	Number int `json:"number,omitempty"`
	// Build is the identity of the binary that produced the artifact.
	Build version.Info `json:"build"`
	// GoMaxProcs and NumCPU describe the machine the suite ran on.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Seed, Scale and Short are the effective suite parameters; the
	// comparator only compares artifacts whose parameters match.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	Short bool    `json:"short,omitempty"`
	// Iterations is how many times each entry's op ran.
	Iterations int `json:"iterations"`
	// Entries holds one result per suite entry, in suite order.
	Entries []EntryResult `json:"entries"`
	// HeapTop is the run-wide top-N allocation attribution (alloc_space),
	// present when profiling was enabled.
	HeapTop []Hotspot `json:"heap_top,omitempty"`
}

// EntryResult is one suite entry's measurements.
type EntryResult struct {
	// Name is the entry name ("miner/ecut"); Workers the worker count the
	// entry ran at (0 when the knob does not apply).
	Name    string `json:"name"`
	Workers int    `json:"workers,omitempty"`
	// Blocks and Tx are the work units one op processes (Tx counts
	// transactions, points, or requests depending on the entry).
	Blocks int64 `json:"blocks"`
	Tx     int64 `json:"tx"`
	// IterNs are the raw per-iteration wall times, in run order — the
	// comparator's variance awareness reads these, not just the summary.
	IterNs []int64 `json:"iter_ns"`
	// NsPerOp is the median iteration time; MinNs the fastest iteration.
	NsPerOp int64 `json:"ns_per_op"`
	MinNs   int64 `json:"min_ns"`
	// AllocsPerOp and BytesPerOp are median per-iteration heap allocation
	// counts and bytes.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// BlocksPerSec and TxPerSec are ingest throughput at the median time.
	BlocksPerSec float64 `json:"blocks_per_sec"`
	TxPerSec     float64 `json:"tx_per_sec"`
	// PeakRSSBytes is the peak resident set sampled while the entry ran
	// (0 where /proc is unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// GC pause distribution over the entry's iterations, and the number of
	// cycles that completed during them.
	GCPauseP50Ns int64 `json:"gc_pause_p50_ns,omitempty"`
	GCPauseP99Ns int64 `json:"gc_pause_p99_ns,omitempty"`
	GCPauseMaxNs int64 `json:"gc_pause_max_ns,omitempty"`
	GCCycles     int64 `json:"gc_cycles,omitempty"`
	// ThresholdScale widens the comparator's time threshold for inherently
	// noisy end-to-end entries (1 when absent). Entries with a scale > 1
	// gate on time only, never on allocation counts.
	ThresholdScale float64 `json:"threshold_scale,omitempty"`
	// Metrics is the obs-registry delta the entry produced across all its
	// iterations (per-phase timers, per-strategy byte counters).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Hotspots is the entry's top-N CPU attribution, present when profiling
	// was enabled and the entry ran long enough to collect samples;
	// CPUProfile is the profile's file name inside the profile directory.
	Hotspots   []Hotspot `json:"hotspots,omitempty"`
	CPUProfile string    `json:"cpu_profile,omitempty"`
}

// Key is the comparator's entry identity: name plus the worker count.
func (e EntryResult) Key() string {
	if e.Workers > 0 {
		return fmt.Sprintf("%s/w%d", e.Name, e.Workers)
	}
	return e.Name
}

// WriteJSON renders the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadArtifact loads an artifact from path and checks its schema.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: artifact schema %d, this binary reads %d", path, a.Schema, SchemaVersion)
	}
	return &a, nil
}

// WriteText renders the artifact as a human summary table, one entry per
// line, followed by each entry's hotspot attribution when present.
func (a *Artifact) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("perf suite: schema %d", a.Schema)
	if a.Number > 0 {
		p("  point BENCH_%d", a.Number)
	}
	p("  seed %d  scale %g  iters %d  gomaxprocs %d", a.Seed, a.Scale, a.Iterations, a.GoMaxProcs)
	if a.Short {
		p("  (short)")
	}
	p("\nbuild: %s\n\n", a.Build)
	p("%-24s %12s %12s %10s %12s %10s %10s %10s\n",
		"entry", "ns/op", "min", "allocs/op", "bytes/op", "blocks/s", "tx/s", "peak-rss")
	for _, e := range a.Entries {
		p("%-24s %12s %12s %10d %12d %10.1f %10.0f %10s\n",
			e.Key(), time.Duration(e.NsPerOp).String(), time.Duration(e.MinNs).String(),
			e.AllocsPerOp, e.BytesPerOp, e.BlocksPerSec, e.TxPerSec, sizeString(e.PeakRSSBytes))
	}
	for _, e := range a.Entries {
		if len(e.Hotspots) == 0 {
			continue
		}
		p("\nhotspots %s (cpu):\n", e.Key())
		for _, h := range e.Hotspots {
			p("  %6.1f%% %12s  %s\n", h.Pct, time.Duration(h.Flat).String(), h.Func)
		}
	}
	if len(a.HeapTop) > 0 {
		p("\nheap (alloc_space, whole run):\n")
		for _, h := range a.HeapTop {
			p("  %6.1f%% %12s  %s\n", h.Pct, sizeString(h.Flat), h.Func)
		}
	}
	return err
}

// sizeString renders a byte count with a binary unit suffix.
func sizeString(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	}
}
