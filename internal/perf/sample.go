package perf

// Process-level measurement helpers for the driver: a background peak-RSS
// sampler and small order statistics over iteration measurements.

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/demon-mining/demon/internal/obs"
)

// rssSampler tracks the peak resident set size while an entry runs. It
// samples on a coarse ticker plus explicitly after every iteration, so even
// sub-tick iterations get at least one reading.
type rssSampler struct {
	peak atomic.Int64
	stop chan struct{}
	done chan struct{}
}

func startRSSSampler(interval time.Duration) *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.Sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Sample takes one RSS reading now.
func (s *rssSampler) Sample() {
	rss := obs.ReadRSSBytes()
	for {
		cur := s.peak.Load()
		if rss <= cur || s.peak.CompareAndSwap(cur, rss) {
			return
		}
	}
}

// Stop ends the sampler and returns the peak observed (0 when RSS is
// unavailable on this platform).
func (s *rssSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// median returns the middle value of xs (mean of the middle two for even
// lengths); 0 for an empty slice. xs is not modified.
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// minOf returns the smallest value of xs; 0 for an empty slice.
func minOf(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// percentile returns the q-quantile (0 ≤ q ≤ 1) of xs by nearest-rank; 0
// for an empty slice. xs is not modified.
func percentile(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
