package perf

// The regression gate: `demon-perf compare OLD.json NEW.json` judges a new
// artifact against a committed baseline with per-metric thresholds and
// benchstat-style variance awareness. Wall time is inherently noisy, so a
// time regression is only called when BOTH the minimum and the median of
// the new run's iterations exceed the old run's by the threshold — the
// minimum filters scheduler interference out of the new run, the median
// filters a lucky old minimum. Allocation counts and bytes are
// deterministic for the library entries, so they gate at tighter
// thresholds; end-to-end entries (ThresholdScale > 1) gate on time only.

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Thresholds are the fractional per-metric regression bounds (0.25 = a 25%
// slowdown fails).
type Thresholds struct {
	// Time bounds ns/op growth (scaled per entry by its ThresholdScale).
	Time float64
	// Allocs bounds allocs/op growth; Bytes bounds bytes/op growth.
	Allocs float64
	Bytes  float64
}

// DefaultThresholds returns the gate's defaults: 25% time, 10% allocs, 15%
// bytes.
func DefaultThresholds() Thresholds {
	return Thresholds{Time: 0.25, Allocs: 0.10, Bytes: 0.15}
}

// Comparison floors: entries whose old value is below these are too small
// to judge on that metric (a few allocations of jitter would dominate).
const (
	minGatedAllocs = 1000
	minGatedBytes  = 64 << 10
)

// CompareRow is one metric comparison of one entry.
type CompareRow struct {
	// Entry is the EntryResult key; Metric is "time/op", "allocs/op" or
	// "bytes/op".
	Entry  string `json:"entry"`
	Metric string `json:"metric"`
	// Old and New are the compared summary values (median ns, allocs,
	// bytes).
	Old int64 `json:"old"`
	New int64 `json:"new"`
	// Delta is fractional change (+0.10 = 10% worse).
	Delta float64 `json:"delta"`
	// Verdict is "ok", "regression" or "improvement".
	Verdict string `json:"verdict"`
}

// Comparison is the gate's full judgement.
type Comparison struct {
	Rows []CompareRow `json:"rows"`
	// Regressions lists every failing "entry metric" pair; the gate exits
	// nonzero when it is non-empty.
	Regressions []string `json:"regressions,omitempty"`
	// MissingInNew / AddedInNew are entries present in only one artifact
	// (suite drift; reported, not failed).
	MissingInNew []string `json:"missing_in_new,omitempty"`
	AddedInNew   []string `json:"added_in_new,omitempty"`
}

// OK reports whether the gate passes.
func (c *Comparison) OK() bool { return len(c.Regressions) == 0 }

// Compare judges newA against oldA. It errors when the artifacts are not
// comparable at all (schema, seed, scale or mode mismatch); entry drift is
// reported in the result instead.
func Compare(oldA, newA *Artifact, th Thresholds) (*Comparison, error) {
	if oldA.Schema != newA.Schema {
		return nil, fmt.Errorf("perf: artifact schemas differ (%d vs %d)", oldA.Schema, newA.Schema)
	}
	if oldA.Seed != newA.Seed || oldA.Scale != newA.Scale || oldA.Short != newA.Short {
		return nil, fmt.Errorf("perf: artifacts are incomparable: old ran seed=%d scale=%g short=%v, new ran seed=%d scale=%g short=%v",
			oldA.Seed, oldA.Scale, oldA.Short, newA.Seed, newA.Scale, newA.Short)
	}
	newByKey := make(map[string]EntryResult, len(newA.Entries))
	for _, e := range newA.Entries {
		newByKey[e.Key()] = e
	}
	oldKeys := make(map[string]bool, len(oldA.Entries))

	c := &Comparison{}
	for _, oldE := range oldA.Entries {
		key := oldE.Key()
		oldKeys[key] = true
		newE, ok := newByKey[key]
		if !ok {
			c.MissingInNew = append(c.MissingInNew, key)
			continue
		}
		compareEntry(c, key, oldE, newE, th)
	}
	for _, e := range newA.Entries {
		if !oldKeys[e.Key()] {
			c.AddedInNew = append(c.AddedInNew, e.Key())
		}
	}
	sort.Strings(c.MissingInNew)
	sort.Strings(c.AddedInNew)
	return c, nil
}

func compareEntry(c *Comparison, key string, oldE, newE EntryResult, th Thresholds) {
	scale := oldE.ThresholdScale
	if scale < 1 {
		scale = 1
	}

	// Time: dual min/median gate.
	oldMin, newMin := minOf(oldE.IterNs), minOf(newE.IterNs)
	oldMed, newMed := median(oldE.IterNs), median(newE.IterNs)
	timeBound := 1 + th.Time*scale
	row := CompareRow{Entry: key, Metric: "time/op", Old: oldMed, New: newMed, Delta: frac(oldMed, newMed), Verdict: "ok"}
	switch {
	case oldMin > 0 && oldMed > 0 &&
		float64(newMin) > float64(oldMin)*timeBound &&
		float64(newMed) > float64(oldMed)*timeBound:
		row.Verdict = "regression"
	case oldMed > 0 && float64(newMed) < float64(oldMed)*(1-th.Time):
		row.Verdict = "improvement"
	}
	c.addRow(row)

	// Allocation metrics: deterministic entries only.
	if scale > 1 {
		return
	}
	allocRow := CompareRow{Entry: key, Metric: "allocs/op", Old: oldE.AllocsPerOp, New: newE.AllocsPerOp,
		Delta: frac(oldE.AllocsPerOp, newE.AllocsPerOp), Verdict: "ok"}
	switch {
	case oldE.AllocsPerOp >= minGatedAllocs && float64(newE.AllocsPerOp) > float64(oldE.AllocsPerOp)*(1+th.Allocs):
		allocRow.Verdict = "regression"
	case oldE.AllocsPerOp >= minGatedAllocs && float64(newE.AllocsPerOp) < float64(oldE.AllocsPerOp)*(1-th.Allocs):
		allocRow.Verdict = "improvement"
	}
	c.addRow(allocRow)

	byteRow := CompareRow{Entry: key, Metric: "bytes/op", Old: oldE.BytesPerOp, New: newE.BytesPerOp,
		Delta: frac(oldE.BytesPerOp, newE.BytesPerOp), Verdict: "ok"}
	switch {
	case oldE.BytesPerOp >= minGatedBytes && float64(newE.BytesPerOp) > float64(oldE.BytesPerOp)*(1+th.Bytes):
		byteRow.Verdict = "regression"
	case oldE.BytesPerOp >= minGatedBytes && float64(newE.BytesPerOp) < float64(oldE.BytesPerOp)*(1-th.Bytes):
		byteRow.Verdict = "improvement"
	}
	c.addRow(byteRow)
}

func (c *Comparison) addRow(row CompareRow) {
	c.Rows = append(c.Rows, row)
	if row.Verdict == "regression" {
		c.Regressions = append(c.Regressions, row.Entry+" "+row.Metric)
	}
}

// frac returns the fractional change old → new (0 when old is 0).
func frac(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return float64(new-old) / float64(old)
}

// WriteText renders the comparison as an aligned verdict table plus a
// one-line summary.
func (c *Comparison) WriteText(w io.Writer, newE map[string]EntryResult) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("%-24s %-10s %14s %14s %8s  %s\n", "entry", "metric", "old", "new", "delta", "verdict")
	for _, r := range c.Rows {
		oldS, newS := fmt.Sprintf("%d", r.Old), fmt.Sprintf("%d", r.New)
		if r.Metric == "time/op" {
			oldS, newS = time.Duration(r.Old).String(), time.Duration(r.New).String()
		}
		p("%-24s %-10s %14s %14s %+7.1f%%  %s\n", r.Entry, r.Metric, oldS, newS, 100*r.Delta, r.Verdict)
	}
	for _, k := range c.MissingInNew {
		p("note: entry %s is missing from the new artifact\n", k)
	}
	for _, k := range c.AddedInNew {
		p("note: entry %s is new (no baseline)\n", k)
	}
	if c.OK() {
		p("demon-perf compare: PASS (no regression across %d comparisons)\n", len(c.Rows))
	} else {
		p("demon-perf compare: FAIL (%d regression(s): %v)\n", len(c.Regressions), c.Regressions)
		// Point the reader at the functions, not just the numbers: show the
		// regressed entries' new hotspot tables when present.
		shown := make(map[string]bool)
		for _, reg := range c.Regressions {
			var key string
			fmt.Sscanf(reg, "%s", &key)
			e, ok := newE[key]
			if !ok || shown[key] || len(e.Hotspots) == 0 {
				continue
			}
			shown[key] = true
			p("hotspots %s (new run):\n", key)
			for _, h := range e.Hotspots {
				p("  %6.1f%% %12s  %s\n", h.Pct, time.Duration(h.Flat).String(), h.Func)
			}
		}
	}
	return err
}

// EntriesByKey indexes an artifact's entries for WriteText.
func EntriesByKey(a *Artifact) map[string]EntryResult {
	m := make(map[string]EntryResult, len(a.Entries))
	for _, e := range a.Entries {
		m[e.Key()] = e
	}
	return m
}
