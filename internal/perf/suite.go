package perf

// The pinned suite: every entry fixes its dataset spec, seed and sizes so
// that two runs of the same binary do identical work, and two binaries from
// different PRs do comparable work. Entries deliberately span the layers a
// raw-speed PR can touch — counting strategies in isolation, whole miners
// (where Workers matters), the proxysim monitoring workload, and the full
// served ingest path through HTTP, queues and the durable store.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/bench"
	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/client"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pointgen"
	"github.com/demon-mining/demon/internal/proxysim"
	"github.com/demon-mining/demon/internal/quest"
	"github.com/demon-mining/demon/internal/serve"
)

// Pinned suite datasets.
const (
	suiteQuestSpec = "1M.10L.1I.2pats.4plen" // the paper's T10-style workload
	suitePointSpec = "1M.3c.4d"              // AGGR98-style Gaussian clusters
	suiteMinSup    = 0.01
)

// sizes are the per-entry workload sizes, already resolved for Short mode
// and multiplied by Config.Scale.
type sizes struct {
	minerBlocks, minerTx   int
	windowBlocks, windowTx int
	windowSize             int
	clusterBlocks, clusterPts,
	clusterK int
	countEnvScale        float64
	countSetSize         int
	proxyReqPerHr        int
	proxyBlockCap        int
	serveBlocks, serveTx int
	storeKeys, storeValBytes,
	storeReadRounds int
}

func (c Config) sizes() sizes {
	s := sizes{
		minerBlocks: 6, minerTx: 2000,
		windowBlocks: 8, windowTx: 1200, windowSize: 4,
		clusterBlocks: 6, clusterPts: 1500, clusterK: 3,
		countEnvScale: 0.01, countSetSize: 512,
		proxyReqPerHr: 400, proxyBlockCap: 0,
		serveBlocks: 24, serveTx: 150,
		storeKeys: 400, storeValBytes: 2048, storeReadRounds: 6,
	}
	if c.Short {
		s = sizes{
			minerBlocks: 4, minerTx: 600,
			windowBlocks: 6, windowTx: 400, windowSize: 4,
			clusterBlocks: 4, clusterPts: 500, clusterK: 3,
			countEnvScale: 0.005, countSetSize: 128,
			proxyReqPerHr: 120, proxyBlockCap: 10,
			serveBlocks: 10, serveTx: 100,
			storeKeys: 120, storeValBytes: 1024, storeReadRounds: 4,
		}
	}
	// Block-size floors keep the fractional MinSupport thresholds
	// meaningful: scaling a block below them would make near-singleton
	// itemsets frequent and explode the lattice.
	scaleInt := func(n, floor int) int {
		v := int(float64(n) * c.Scale)
		if v < floor {
			v = floor
		}
		return v
	}
	s.minerTx = scaleInt(s.minerTx, 200)
	s.windowTx = scaleInt(s.windowTx, 200)
	s.clusterPts = scaleInt(s.clusterPts, 100)
	s.serveTx = scaleInt(s.serveTx, 60)
	s.countEnvScale *= c.Scale
	return s
}

// Suite returns the pinned entries for cfg. Worker-sweep entries run at
// {1, GOMAXPROCS} (deduplicated on single-CPU machines).
func Suite(cfg Config) []Entry {
	workerSet := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerSet = append(workerSet, n)
	}
	var es []Entry
	for _, w := range workerSet {
		w := w
		es = append(es,
			Entry{Name: "miner/ecut", Workers: w, Setup: minerSetup(demon.ECUT, w)},
			Entry{Name: "miner/ecutplus", Workers: w, Setup: minerSetup(demon.ECUTPlus, w)},
			Entry{Name: "miner/window", Workers: w, Setup: windowSetup(w)},
			Entry{Name: "miner/cluster", Workers: w, Setup: clusterSetup(w)},
		)
	}
	es = append(es,
		Entry{Name: "count/ecut", Setup: countSetup("ECUT")},
		Entry{Name: "count/ecutplus", Setup: countSetup("ECUT+")},
		Entry{Name: "proxysim/window", Setup: proxysimSetup()},
		Entry{Name: "serve/ingest", Setup: serveSetup()},
		Entry{Name: "store/file", Setup: storeSetup("file")},
		Entry{Name: "store/kvfile", Setup: storeSetup("kvfile")},
		Entry{Name: "store/kvfile-cache", Setup: storeSetup("kvfile-cache")},
	)
	return es
}

// questRows pre-generates a block stream of transaction rows.
func questRows(seed int64, nBlocks, perBlock int) ([][][]itemset.Item, error) {
	qc, err := quest.ParseSpec(suiteQuestSpec)
	if err != nil {
		return nil, err
	}
	qc.Seed = seed
	gen, err := quest.New(qc)
	if err != nil {
		return nil, err
	}
	blocks := make([][][]itemset.Item, nBlocks)
	for i := range blocks {
		blk := gen.Block(blockseq.ID(i+1), perBlock)
		rows := make([][]itemset.Item, len(blk.Txs))
		for j, tx := range blk.Txs {
			rows[j] = tx.Items
		}
		blocks[i] = rows
	}
	return blocks, nil
}

// minerSetup ingests the Quest stream into a fresh ItemsetMiner per op.
func minerSetup(strategy demon.CountingStrategy, workers int) func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		blocks, err := questRows(cfg.Seed, sz.minerBlocks, sz.minerTx)
		if err != nil {
			return nil, err
		}
		run := func() error {
			m, err := demon.NewItemsetMiner(demon.ItemsetMinerConfig{
				MinSupport: suiteMinSup,
				Strategy:   strategy,
				Store:      demon.NewMemStore(),
				Workers:    workers,
			})
			if err != nil {
				return err
			}
			for _, rows := range blocks {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			_ = m.FrequentItemsets()
			return nil
		}
		return &Prepared{
			Blocks: int64(len(blocks)),
			Tx:     int64(len(blocks) * sz.minerTx),
			Run:    run,
		}, nil
	}
}

// windowSetup slides the Quest stream through a fresh ItemsetWindowMiner.
func windowSetup(workers int) func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		blocks, err := questRows(cfg.Seed+1, sz.windowBlocks, sz.windowTx)
		if err != nil {
			return nil, err
		}
		run := func() error {
			m, err := demon.NewItemsetWindowMiner(demon.ItemsetWindowMinerConfig{
				MinSupport: suiteMinSup,
				Strategy:   demon.ECUT,
				Store:      demon.NewMemStore(),
				WindowSize: sz.windowSize,
				Workers:    workers,
			})
			if err != nil {
				return err
			}
			for _, rows := range blocks {
				if _, err := m.AddBlock(rows); err != nil {
					return err
				}
			}
			_ = m.FrequentItemsets()
			return nil
		}
		return &Prepared{
			Blocks: int64(len(blocks)),
			Tx:     int64(len(blocks) * sz.windowTx),
			Run:    run,
		}, nil
	}
}

// clusterSetup ingests AGGR98-style points into a fresh ClusterMiner and
// runs the phase-2 refinement (where Workers applies) once per op.
func clusterSetup(workers int) func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		pc, err := pointgen.ParseSpec(suitePointSpec)
		if err != nil {
			return nil, err
		}
		pc.Seed = cfg.Seed
		gen, err := pointgen.New(pc)
		if err != nil {
			return nil, err
		}
		blocks := make([][]demon.Point, sz.clusterBlocks)
		for i := range blocks {
			blocks[i] = gen.Block(blockseq.ID(i+1), sz.clusterPts).Points
		}
		run := func() error {
			m, err := demon.NewClusterMiner(demon.ClusterMinerConfig{
				K:       sz.clusterK,
				Store:   demon.NewMemStore(),
				Workers: workers,
			})
			if err != nil {
				return err
			}
			for _, pts := range blocks {
				if _, err := m.AddBlock(pts); err != nil {
					return err
				}
			}
			_, err = m.Clusters()
			return err
		}
		return &Prepared{
			Blocks: int64(len(blocks)),
			Tx:     int64(len(blocks) * sz.clusterPts),
			Run:    run,
		}, nil
	}
}

// countSetup reuses the bench counting environment (Experiment 1): one
// materialized Quest block, a shuffled negative-border candidate set, and
// the named counting strategy running read-only — so the op isolates pure
// counting cost from maintenance.
func countSetup(counterName string) func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		env, err := bench.NewCountEnv(suiteQuestSpec, sz.countEnvScale, suiteMinSup, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ctr, err := env.CounterByName(counterName)
		if err != nil {
			return nil, err
		}
		sets := env.CandidateSet(sz.countSetSize)
		if len(sets) == 0 {
			return nil, fmt.Errorf("empty candidate set for %s", counterName)
		}
		run := func() error {
			_, err := ctr.Count(sets, env.BlockIDs)
			return err
		}
		return &Prepared{
			Blocks: int64(len(env.BlockIDs)),
			Tx:     int64(env.NumTx),
			Run:    run,
		}, nil
	}
}

// proxysimSetup runs the webproxy monitoring workload: the pinned proxysim
// trace segmented at daily granularity, maintained by the window miner.
func proxysimSetup() func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		tr := proxysim.Generate(proxysim.Config{RequestsPerHour: sz.proxyReqPerHr, Seed: cfg.Seed})
		blocks, _, err := tr.Segment(24)
		if err != nil {
			return nil, err
		}
		if sz.proxyBlockCap > 0 && len(blocks) > sz.proxyBlockCap {
			blocks = blocks[:sz.proxyBlockCap]
		}
		var tx int64
		rows := make([][][]itemset.Item, len(blocks))
		for i, blk := range blocks {
			rows[i] = make([][]itemset.Item, len(blk.Txs))
			for j, t := range blk.Txs {
				rows[i][j] = t.Items
			}
			tx += int64(len(blk.Txs))
		}
		run := func() error {
			m, err := demon.NewItemsetWindowMiner(demon.ItemsetWindowMinerConfig{
				MinSupport: 0.02,
				Strategy:   demon.ECUT,
				Store:      demon.NewMemStore(),
				WindowSize: 7,
				Workers:    1,
			})
			if err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := m.AddBlock(r); err != nil {
					return err
				}
			}
			_ = m.FrequentItemsets()
			return nil
		}
		return &Prepared{Blocks: int64(len(rows)), Tx: tx, Run: run}, nil
	}
}

// storeSetup measures one storage backend under a deterministic hot-read
// workload: N keys written, read over several rounds (the cached variant
// serves repeats from memory), half overwritten, re-read, a quarter deleted.
// One op is a complete store lifetime including open and close, so kvfile's
// index rebuild and commit protocol are inside the measurement. Filesystem
// latency varies more than CPU time, so the entries gate on a widened
// threshold and time only.
func storeSetup(backend string) func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		keys := make([]string, sz.storeKeys)
		vals := make([][]byte, sz.storeKeys)
		rnd := uint64(cfg.Seed)*2862933555777941757 + 3037000493
		for i := range keys {
			keys[i] = fmt.Sprintf("blocks/%06d", i)
			v := make([]byte, sz.storeValBytes)
			for j := range v {
				rnd = rnd*2862933555777941757 + 3037000493
				v[j] = byte(rnd >> 56)
			}
			vals[i] = v
		}
		urlFor := func(dir string) string {
			switch backend {
			case "file":
				return "file:" + dir + "/store"
			case "kvfile":
				return "kvfile:" + dir + "/store.kv"
			default: // kvfile-cache
				return "kvfile:" + dir + "/store.kv?cache=1mb"
			}
		}
		run := func() error {
			dir, err := os.MkdirTemp("", "demon-perf-store-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			s, err := demon.OpenStore(urlFor(dir))
			if err != nil {
				return err
			}
			defer demon.CloseStore(s)
			for i, k := range keys {
				if err := s.Put(k, vals[i]); err != nil {
					return err
				}
			}
			for r := 0; r < sz.storeReadRounds; r++ {
				for _, k := range keys {
					if _, err := s.Get(k); err != nil {
						return err
					}
				}
			}
			for i := 0; i < len(keys); i += 2 {
				if err := s.Put(keys[i], vals[(i+1)%len(vals)]); err != nil {
					return err
				}
			}
			for r := 0; r < sz.storeReadRounds; r++ {
				for _, k := range keys {
					if _, err := s.Get(k); err != nil {
						return err
					}
				}
			}
			for i := 0; i < len(keys); i += 4 {
				if err := s.Delete(keys[i]); err != nil {
					return err
				}
			}
			return nil
		}
		return &Prepared{
			Blocks:         int64(sz.storeKeys),
			Tx:             int64(sz.storeKeys * (2*sz.storeReadRounds + 2)),
			Run:            run,
			ThresholdScale: 2.0,
		}, nil
	}
}

// serveSetup measures the full served ingest path end to end: a fresh
// demon-serve instance over a durable on-disk store, fed over real HTTP by
// the resilient internal/client feeder, flushed, checkpointed and drained —
// one op is a complete server lifetime. It crosses the network stack and
// the filesystem, so it carries a widened comparator threshold and gates on
// time only.
func serveSetup() func(Config) (*Prepared, error) {
	return func(cfg Config) (*Prepared, error) {
		sz := cfg.sizes()
		rows, err := questRows(cfg.Seed+2, sz.serveBlocks, sz.serveTx)
		if err != nil {
			return nil, err
		}
		blocks := make([]blockio.Block, len(rows))
		for i, r := range rows {
			blocks[i] = blockio.TxBlock(r)
		}
		run := func() error {
			dir, err := os.MkdirTemp("", "demon-perf-serve-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			s, err := serve.New(serve.Config{Root: dir})
			if err != nil {
				return err
			}
			if _, err := s.Create(serve.Spec{
				Name:       "perf",
				Kind:       serve.KindItemset,
				MinSupport: 0.05,
				Strategy:   "ecut",
				Workers:    2,
				QueueDepth: 16,
			}); err != nil {
				return err
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			f, err := client.New(client.Config{
				BaseURL:        ts.URL,
				Namespace:      "perf",
				BatchSize:      8,
				RequestTimeout: 30 * time.Second,
			})
			if err != nil {
				return err
			}
			for _, b := range blocks {
				if err := f.Send(ctx, b); err != nil {
					return err
				}
			}
			if err := f.Checkpoint(ctx); err != nil {
				return err
			}
			return s.Drain(ctx)
		}
		return &Prepared{
			Blocks:         int64(len(blocks)),
			Tx:             int64(len(blocks) * sz.serveTx),
			Run:            run,
			ThresholdScale: 2.0,
		}, nil
	}
}
