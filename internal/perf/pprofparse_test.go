package perf

// The pprof parser is validated against real profiles emitted by this
// process's runtime/pprof — the exact producer the harness consumes — plus
// hostile inputs.

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// burnCPU spins computing something the compiler cannot elide, long enough
// for the 100 Hz profiler to collect samples.
var burnSink uint64

//go:noinline
func burnCPU(d time.Duration) {
	deadline := time.Now().Add(d)
	v := uint64(88172645463325252)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			v ^= v << 13
			v ^= v >> 7
			v ^= v << 17
		}
		burnSink = v
	}
}

func TestTopHotspotsCPUProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("burns 300ms of CPU")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	burnCPU(300 * time.Millisecond)
	pprof.StopCPUProfile()

	spots, err := TopHotspots(buf.Bytes(), "cpu", 10)
	if err != nil {
		t.Fatalf("TopHotspots: %v", err)
	}
	if len(spots) == 0 {
		t.Fatalf("no hotspots parsed from a 300ms CPU profile")
	}
	found := false
	var total float64
	for _, h := range spots {
		if h.Flat <= 0 {
			t.Errorf("hotspot %q has non-positive flat %d", h.Func, h.Flat)
		}
		if h.Unit != "nanoseconds" {
			t.Errorf("hotspot %q unit = %q, want nanoseconds", h.Func, h.Unit)
		}
		total += h.Pct
		if strings.Contains(h.Func, "burnCPU") {
			found = true
		}
	}
	if !found {
		t.Errorf("burnCPU not attributed in hotspots: %+v", spots)
	}
	if total > 100.5 {
		t.Errorf("hotspot percentages sum to %.1f > 100", total)
	}
	// Rows must arrive hottest-first.
	for i := 1; i < len(spots); i++ {
		if spots[i].Flat > spots[i-1].Flat {
			t.Errorf("hotspots not sorted: %d before %d", spots[i-1].Flat, spots[i].Flat)
		}
	}
}

func TestTopHotspotsHeapProfile(t *testing.T) {
	// Allocate something attributable.
	hold := make([][]byte, 64)
	for i := range hold {
		hold[i] = make([]byte, 64<<10)
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	runtime.KeepAlive(hold)

	spots, err := TopHotspots(buf.Bytes(), "alloc_space", 5)
	if err != nil {
		t.Fatalf("TopHotspots(alloc_space): %v", err)
	}
	if len(spots) == 0 {
		t.Fatalf("no alloc_space hotspots in heap profile")
	}
	if spots[0].Unit != "bytes" {
		t.Errorf("alloc_space unit = %q, want bytes", spots[0].Unit)
	}

	if _, err := TopHotspots(buf.Bytes(), "no_such_sample_type", 5); err == nil {
		t.Errorf("unknown sample type did not error")
	}
}

func TestTopHotspotsRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"truncated gzip": {0x1f, 0x8b, 0x01},
		"varint overrun": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for name, data := range cases {
		if _, err := TopHotspots(data, "", 5); err == nil {
			// Empty input parses to an empty profile with no sample types —
			// that must error too (no value column to choose).
			t.Errorf("%s: expected an error", name)
		}
	}
}
