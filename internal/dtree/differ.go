package dtree

import (
	"fmt"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/focus"
)

// LabeledBlock is one block of labelled records in a systematically
// evolving classification database.
type LabeledBlock struct {
	ID         blockseq.ID
	Records    []Record
	NumClasses int
}

// Differ instantiates FOCUS with decision-tree models: a tree is induced
// from each block, the greatest common refinement of the two structural
// components is the overlay of the two leaf partitions (computed implicitly
// as leaf-id pairs), and the measure of each overlay region is the per-class
// record distribution. Overlay regions are disjoint, so significance is an
// exact two-sample chi-square homogeneity test over (region × class) cells.
type Differ struct {
	// Tree parameterizes the per-block tree induction.
	Tree Config
}

// Deviation implements focus.Differ[*LabeledBlock].
func (d Differ) Deviation(a, b *LabeledBlock) (focus.Deviation, error) {
	if len(a.Records) == 0 || len(b.Records) == 0 {
		return focus.Deviation{}, fmt.Errorf("dtree: cannot compare empty blocks (%d, %d records)",
			len(a.Records), len(b.Records))
	}
	if a.NumClasses != b.NumClasses {
		return focus.Deviation{}, fmt.Errorf("dtree: class arities differ (%d vs %d)", a.NumClasses, b.NumClasses)
	}
	ta, err := Build(a.Records, a.NumClasses, d.Tree)
	if err != nil {
		return focus.Deviation{}, err
	}
	tb, err := Build(b.Records, b.NumClasses, d.Tree)
	if err != nil {
		return focus.Deviation{}, err
	}

	// The overlay region of a record is (leaf in ta, leaf in tb); cells are
	// (region, class).
	cells := ta.NumLeaves() * tb.NumLeaves() * a.NumClasses
	ha := make([]int, cells)
	hb := make([]int, cells)
	fill := func(recs []Record, h []int) error {
		for _, r := range recs {
			la, err := ta.Leaf(r.X)
			if err != nil {
				return err
			}
			lb, err := tb.Leaf(r.X)
			if err != nil {
				return err
			}
			h[(la*tb.NumLeaves()+lb)*a.NumClasses+r.Y]++
		}
		return nil
	}
	if err := fill(a.Records, ha); err != nil {
		return focus.Deviation{}, err
	}
	if err := fill(b.Records, hb); err != nil {
		return focus.Deviation{}, err
	}

	// Total variation distance over the (region × class) measures.
	var score float64
	regions := 0
	na, nb := float64(len(a.Records)), float64(len(b.Records))
	for i := range ha {
		if ha[i] == 0 && hb[i] == 0 {
			continue
		}
		regions++
		pa := float64(ha[i]) / na
		pb := float64(hb[i]) / nb
		if pa > pb {
			score += pa - pb
		} else {
			score += pb - pa
		}
	}
	score /= 2

	stat, df, err := focus.TwoSampleChiSquare(ha, hb)
	if err != nil {
		return focus.Deviation{}, err
	}
	p, err := focus.ChiSquareSurvival(stat, df)
	if err != nil {
		return focus.Deviation{}, err
	}
	return focus.Deviation{Score: score, PValue: p, Regions: regions}, nil
}
