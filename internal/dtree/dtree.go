// Package dtree implements a binary decision-tree classifier over numeric
// attributes — the third model class the FOCUS deviation framework of the
// DEMON paper can be instantiated with ("frequent itemsets, decision tree
// classifiers, and clusters", Section 4). The tree's structural component is
// its leaf partition of the attribute space; the measure component is the
// per-class record distribution in each region. The greatest common
// refinement of two trees is the overlay of their partitions, computed
// implicitly by descending both trees per record.
package dtree

import (
	"fmt"
	"math"
	"sort"
)

// Record is one labelled training example.
type Record struct {
	// X holds the numeric attribute values.
	X []float64
	// Y is the class label in [0, NumClasses).
	Y int
}

// Config parameterizes tree construction.
type Config struct {
	// MaxDepth bounds the tree height (root has depth 0). Defaults to 8.
	MaxDepth int
	// MinLeaf is the minimum number of records per leaf. Defaults to 5.
	MinLeaf int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 5
	}
	return c
}

func (c Config) validate() error {
	if c.MaxDepth < 1 {
		return fmt.Errorf("dtree: max depth %d < 1", c.MaxDepth)
	}
	if c.MinLeaf < 1 {
		return fmt.Errorf("dtree: min leaf %d < 1", c.MinLeaf)
	}
	return nil
}

// Tree is a trained classifier.
type Tree struct {
	root       *node
	dim        int
	numClasses int
	numLeaves  int
}

type node struct {
	// attr/threshold define the split "x[attr] <= threshold"; leaf nodes
	// have attr == -1.
	attr      int
	threshold float64
	left      *node
	right     *node
	// leafID numbers leaves densely; class is the majority label.
	leafID int
	class  int
	counts []int
}

// Build trains a tree by greedy Gini-impurity splits.
func Build(records []Record, numClasses int, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dtree: no training records")
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("dtree: %d classes < 2", numClasses)
	}
	dim := len(records[0].X)
	for i, r := range records {
		if len(r.X) != dim {
			return nil, fmt.Errorf("dtree: record %d has %d attributes, want %d", i, len(r.X), dim)
		}
		if r.Y < 0 || r.Y >= numClasses {
			return nil, fmt.Errorf("dtree: record %d has label %d outside [0, %d)", i, r.Y, numClasses)
		}
	}
	t := &Tree{dim: dim, numClasses: numClasses}
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(records, idx, 0, cfg)
	t.assignLeafIDs()
	return t, nil
}

func classCounts(records []Record, idx []int, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, i := range idx {
		counts[records[i].Y]++
	}
	return counts
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func majority(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func (t *Tree) build(records []Record, idx []int, depth int, cfg Config) *node {
	counts := classCounts(records, idx, t.numClasses)
	leaf := &node{attr: -1, class: majority(counts), counts: counts}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pure(counts) {
		return leaf
	}

	// Take the best candidate split even when it does not reduce impurity:
	// problems like XOR have zero first-split gain, and the purity /
	// MinLeaf / MaxDepth guards still bound growth.
	bestAttr, bestThr := -1, 0.0
	bestScore := math.Inf(1)
	for attr := 0; attr < t.dim; attr++ {
		// Sort indices by the attribute; scan split points between
		// distinct values.
		order := make([]int, len(idx))
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return records[order[a]].X[attr] < records[order[b]].X[attr]
		})
		leftCounts := make([]int, t.numClasses)
		for pos := 0; pos < len(order)-1; pos++ {
			leftCounts[records[order[pos]].Y]++
			nl := pos + 1
			nr := len(order) - nl
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			v, next := records[order[pos]].X[attr], records[order[pos+1]].X[attr]
			if v == next {
				continue
			}
			rightCounts := make([]int, t.numClasses)
			for c := range rightCounts {
				rightCounts[c] = counts[c] - leftCounts[c]
			}
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(order))
			if score < bestScore-1e-12 {
				bestAttr, bestThr, bestScore = attr, (v+next)/2, score
			}
		}
	}
	if bestAttr < 0 {
		return leaf
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if records[i].X[bestAttr] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &node{
		attr:      bestAttr,
		threshold: bestThr,
		left:      t.build(records, leftIdx, depth+1, cfg),
		right:     t.build(records, rightIdx, depth+1, cfg),
		counts:    counts,
	}
}

func (t *Tree) assignLeafIDs() {
	id := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.attr < 0 {
			n.leafID = id
			id++
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	t.numLeaves = id
}

// NumLeaves returns the number of leaf regions.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// NumClasses returns the label arity the tree was trained with.
func (t *Tree) NumClasses() int { return t.numClasses }

// Leaf returns the leaf region id the point falls into.
func (t *Tree) Leaf(x []float64) (int, error) {
	if len(x) != t.dim {
		return 0, fmt.Errorf("dtree: point dimension %d, tree dimension %d", len(x), t.dim)
	}
	n := t.root
	for n.attr >= 0 {
		if x[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafID, nil
}

// Predict returns the majority class of the point's leaf.
func (t *Tree) Predict(x []float64) (int, error) {
	if len(x) != t.dim {
		return 0, fmt.Errorf("dtree: point dimension %d, tree dimension %d", len(x), t.dim)
	}
	n := t.root
	for n.attr >= 0 {
		if x[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class, nil
}

// Accuracy returns the fraction of records the tree classifies correctly.
func (t *Tree) Accuracy(records []Record) (float64, error) {
	if len(records) == 0 {
		return 0, fmt.Errorf("dtree: no records")
	}
	hits := 0
	for _, r := range records {
		c, err := t.Predict(r.X)
		if err != nil {
			return 0, err
		}
		if c == r.Y {
			hits++
		}
	}
	return float64(hits) / float64(len(records)), nil
}
