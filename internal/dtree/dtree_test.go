package dtree

import (
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/focus"
)

// twoBlobs generates a linearly separable two-class problem.
func twoBlobs(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		if i%2 == 0 {
			recs[i] = Record{X: []float64{rng.NormFloat64() + 3, rng.NormFloat64()}, Y: 0}
		} else {
			recs[i] = Record{X: []float64{rng.NormFloat64() - 3, rng.NormFloat64()}, Y: 1}
		}
	}
	return recs
}

// xorData generates the classic XOR problem: requires depth ≥ 2.
func xorData(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		label := 0
		if (x > 0) != (y > 0) {
			label = 1
		}
		recs[i] = Record{X: []float64{x, y}, Y: label}
	}
	return recs
}

func TestBuildSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := twoBlobs(rng, 400)
	tree, err := Build(recs, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(recs)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("training accuracy %v on separable data", acc)
	}
	// Generalization.
	test := twoBlobs(rng, 200)
	acc, err = tree.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("test accuracy %v on separable data", acc)
	}
}

func TestBuildXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := xorData(rng, 800)
	tree, err := Build(recs, 2, Config{MaxDepth: 6, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(recs)
	if err != nil {
		t.Fatal(err)
	}
	// XOR has zero first-split gain; the tree must keep splitting through
	// the plateau (a noisy first cut costs a couple of extra levels).
	if acc < 0.95 {
		t.Fatalf("XOR accuracy %v at depth 6", acc)
	}
	if tree.NumLeaves() < 4 {
		t.Fatalf("XOR tree has %d leaves, want ≥ 4", tree.NumLeaves())
	}
}

func TestPureDataSingleLeaf(t *testing.T) {
	recs := []Record{
		{X: []float64{0}, Y: 1},
		{X: []float64{1}, Y: 1},
		{X: []float64{2}, Y: 1},
	}
	tree, err := Build(recs, 2, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("pure data produced %d leaves", tree.NumLeaves())
	}
	c, err := tree.Predict([]float64{5})
	if err != nil || c != 1 {
		t.Fatalf("Predict = %d, %v", c, err)
	}
}

func TestLeafPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := twoBlobs(rng, 300)
	tree, err := Build(recs, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Every record lands in exactly one leaf with a valid dense id.
	seen := make(map[int]bool)
	for _, r := range recs {
		id, err := tree.Leaf(r.X)
		if err != nil {
			t.Fatal(err)
		}
		if id < 0 || id >= tree.NumLeaves() {
			t.Fatalf("leaf id %d outside [0, %d)", id, tree.NumLeaves())
		}
		seen[id] = true
	}
	if len(seen) == 0 {
		t.Fatal("no leaves used")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 2, Config{}); err == nil {
		t.Error("accepted empty training set")
	}
	recs := []Record{{X: []float64{1}, Y: 0}}
	if _, err := Build(recs, 1, Config{}); err == nil {
		t.Error("accepted single-class problem")
	}
	if _, err := Build([]Record{{X: []float64{1}, Y: 5}}, 2, Config{}); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := Build([]Record{{X: []float64{1}, Y: 0}, {X: []float64{1, 2}, Y: 1}}, 2, Config{}); err == nil {
		t.Error("accepted ragged attributes")
	}
	if _, err := Build(recs, 2, Config{MaxDepth: -1}); err == nil {
		t.Error("accepted negative depth")
	}
	tree, err := Build([]Record{{X: []float64{0}, Y: 0}, {X: []float64{1}, Y: 1}}, 2, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1, 2}); err == nil {
		t.Error("Predict accepted wrong dimension")
	}
	if _, err := tree.Leaf([]float64{1, 2}); err == nil {
		t.Error("Leaf accepted wrong dimension")
	}
	if _, err := tree.Accuracy(nil); err == nil {
		t.Error("Accuracy accepted empty set")
	}
}

func TestDifferSameProcessSimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := &LabeledBlock{ID: 1, Records: twoBlobs(rng, 600), NumClasses: 2}
	b := &LabeledBlock{ID: 2, Records: twoBlobs(rng, 600), NumClasses: 2}
	d := Differ{}
	sim, dev, err := focus.Similar[*LabeledBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !sim {
		t.Fatalf("same-process blocks dissimilar: %+v", dev)
	}
	if dev.Score > 0.15 {
		t.Fatalf("same-process score %v too large", dev.Score)
	}
}

func TestDifferDifferentProcessDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := &LabeledBlock{ID: 1, Records: twoBlobs(rng, 600), NumClasses: 2}
	// Flip the labels: same marginal distribution of X, opposite concept.
	flipped := twoBlobs(rng, 600)
	for i := range flipped {
		flipped[i].Y = 1 - flipped[i].Y
	}
	b := &LabeledBlock{ID: 2, Records: flipped, NumClasses: 2}
	d := Differ{}
	sim, dev, err := focus.Similar[*LabeledBlock](d, a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sim {
		t.Fatalf("concept-flipped blocks similar: %+v", dev)
	}
	if dev.PValue > 1e-6 {
		t.Fatalf("concept-flipped p = %v", dev.PValue)
	}
	if dev.Score < 0.5 {
		t.Fatalf("concept-flipped score = %v, want large", dev.Score)
	}
}

func TestDifferValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := &LabeledBlock{ID: 1, Records: twoBlobs(rng, 100), NumClasses: 2}
	empty := &LabeledBlock{ID: 2, NumClasses: 2}
	d := Differ{}
	if _, err := d.Deviation(a, empty); err == nil {
		t.Error("accepted empty block")
	}
	mismatch := &LabeledBlock{ID: 3, Records: twoBlobs(rng, 100), NumClasses: 3}
	if _, err := d.Deviation(a, mismatch); err == nil {
		t.Error("accepted class arity mismatch")
	}
}

func TestDifferSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := &LabeledBlock{ID: 1, Records: twoBlobs(rng, 300), NumClasses: 2}
	b := &LabeledBlock{ID: 2, Records: xorData(rng, 300), NumClasses: 2}
	d := Differ{}
	ab, err := d.Deviation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := d.Deviation(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ab.Score - ba.Score; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("score asymmetric: %v vs %v", ab.Score, ba.Score)
	}
}
