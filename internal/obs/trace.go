package obs

// Request-scoped tracing. A Trace is one unit of externally observable work
// — an HTTP request into demon-serve, one ingested block in a batch CLI —
// identified by a trace ID that crosses process boundaries in the
// X-Demon-Trace-Id header. Spans opened through the ctx-aware timer entry
// points (Timer.StartCtx, Timer.StartSpan) record into both their metric
// histogram and the trace's bounded ring of events, so /tracez can show the
// exact span tree — HTTP handler, queue wait, miner AddBlock, transaction
// commit — behind any one request while /metricsz keeps the aggregates.
//
// The contract mirrors the rest of the package: tracing rides the metrics
// registry, so a disabled registry records no spans, a nil Trace (an
// unsampled request) degrades every operation to a no-op, and starting or
// ending an untraced span allocates nothing.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceIDHeader is the HTTP header demon-serve reads an incoming trace ID
// from and stamps on every traced response, so traces cross process
// boundaries (a coordinator in front of partitioned miners forwards it).
const TraceIDHeader = "X-Demon-Trace-Id"

const (
	// DefaultTraceCapacity is the default number of recent traces a Tracer
	// retains for /tracez.
	DefaultTraceCapacity = 128
	// maxSpansPerTrace bounds each trace's span ring; once full, the oldest
	// events are overwritten and counted as dropped.
	maxSpansPerTrace = 512
	// maxTraceIDLen bounds accepted client-supplied trace IDs.
	maxTraceIDLen = 64
)

// TraceSpan is one finished span inside a trace. StartNs is the offset from
// the trace's start, so equal traces render identically regardless of wall
// clock.
type TraceSpan struct {
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	StartNs  int64  `json:"start_ns"`
	DurNs    int64  `json:"duration_ns"`
}

// Trace is one request-scoped trace: an ID, a label ("POST /v1/..."), and a
// bounded ring of finished spans. All methods are nil-receiver-safe; a nil
// Trace is an unsampled request and records nothing.
type Trace struct {
	id    string
	label string
	start time.Time

	nextSpan atomic.Uint64

	mu      sync.Mutex
	spans   []TraceSpan
	next    int // ring write position once len(spans) == maxSpansPerTrace
	dropped int64
}

// ID returns the trace identifier ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Label returns the trace's display label.
func (tr *Trace) Label() string {
	if tr == nil {
		return ""
	}
	return tr.label
}

// Start returns the trace's start time.
func (tr *Trace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// newSpanID allocates the next span identifier (1-based; 0 means "root").
func (tr *Trace) newSpanID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.nextSpan.Add(1)
}

// record appends one finished span to the ring.
func (tr *Trace) record(name string, spanID, parentID uint64, start time.Time, d time.Duration) {
	if tr == nil {
		return
	}
	ev := TraceSpan{
		SpanID:   spanID,
		ParentID: parentID,
		Name:     name,
		StartNs:  start.Sub(tr.start).Nanoseconds(),
		DurNs:    d.Nanoseconds(),
	}
	tr.mu.Lock()
	if len(tr.spans) < maxSpansPerTrace {
		tr.spans = append(tr.spans, ev)
	} else {
		tr.spans[tr.next] = ev
		tr.next = (tr.next + 1) % maxSpansPerTrace
		tr.dropped++
	}
	tr.mu.Unlock()
}

// TraceSnapshot is the frozen, JSON-renderable state of a trace. Spans are
// in recording order; Slowest lists the longest spans for at-a-glance
// latency debugging.
type TraceSnapshot struct {
	ID      string      `json:"id"`
	Label   string      `json:"label,omitempty"`
	Start   time.Time   `json:"start"`
	Spans   []TraceSpan `json:"spans,omitempty"`
	Dropped int64       `json:"dropped_spans,omitempty"`
	Slowest []TraceSpan `json:"slowest,omitempty"`
}

// slowestCount is how many top-duration spans a snapshot summarizes.
const slowestCount = 3

// Snapshot freezes the trace.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	spans := make([]TraceSpan, 0, len(tr.spans))
	if len(tr.spans) < maxSpansPerTrace {
		spans = append(spans, tr.spans...)
	} else {
		spans = append(spans, tr.spans[tr.next:]...)
		spans = append(spans, tr.spans[:tr.next]...)
	}
	s := TraceSnapshot{ID: tr.id, Label: tr.label, Start: tr.start, Spans: spans, Dropped: tr.dropped}
	tr.mu.Unlock()

	slow := make([]TraceSpan, len(s.Spans))
	copy(slow, s.Spans)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].DurNs > slow[j].DurNs })
	if len(slow) > slowestCount {
		slow = slow[:slowestCount]
	}
	s.Slowest = slow
	return s
}

// SpanContext is the propagation unit carried through context.Context and
// the serve ingest queue: the trace plus the identifier of the span any new
// child parents under. The zero value is "untraced" and every operation on
// it is a no-op.
type SpanContext struct {
	tr     *Trace
	spanID uint64
}

// Traced reports whether the context belongs to a sampled trace.
func (sc SpanContext) Traced() bool { return sc.tr != nil }

// Trace returns the underlying trace (nil when untraced).
func (sc SpanContext) Trace() *Trace { return sc.tr }

// TraceID returns the trace identifier ("" when untraced).
func (sc SpanContext) TraceID() string { return sc.tr.ID() }

// RecordSpan records an externally timed phase — a queue wait measured from
// an enqueue timestamp, for example — as a finished child span of sc.
func (sc SpanContext) RecordSpan(name string, start time.Time, d time.Duration) {
	if sc.tr == nil {
		return
	}
	sc.tr.record(name, sc.tr.newSpanID(), sc.spanID, start, d)
}

// Context installs sc into ctx so ctx-aware spans opened below it attach to
// the trace.
func (sc SpanContext) Context(ctx context.Context) context.Context {
	if sc.tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

type spanCtxKey struct{}

// ContextWithTrace returns ctx carrying tr as the root span context.
// A nil trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return SpanContext{tr: tr}.Context(ctx)
}

// SpanContextFrom extracts the span context from ctx (the zero, untraced
// SpanContext when absent or ctx is nil).
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// Tracer retains the most recent traces in a bounded ring for /tracez and
// decides which requests are traced. All methods are nil-receiver-safe.
type Tracer struct {
	sample float64
	cap    int

	seq atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer returns a tracer keeping up to capacity recent traces
// (DefaultTraceCapacity when <= 0) and sampling the given fraction of
// unlabeled requests (clamped to [0, 1]). Requests arriving with an explicit
// trace ID are always traced regardless of the sampling rate.
func NewTracer(capacity int, sample float64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &Tracer{sample: sample, cap: capacity}
}

// SampleRate returns the configured sampling fraction.
func (tc *Tracer) SampleRate() float64 {
	if tc == nil {
		return 0
	}
	return tc.sample
}

// sanitizeTraceID keeps the ID alphabet header-and-log safe: letters,
// digits, '-', '_' and '.', truncated to maxTraceIDLen. Everything else is
// dropped; an ID that sanitizes to "" counts as absent.
func sanitizeTraceID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(out) < maxTraceIDLen; i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		}
	}
	return string(out)
}

// newTraceID generates a random 16-hex-digit trace identifier.
func (tc *Tracer) newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The platform's randomness failing is vanishingly rare; fall back to
		// a process-unique counter so tracing keeps working.
		n := tc.seq.Load()
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// StartTrace begins a trace and registers it in the ring so /tracez shows it
// immediately — spans recorded after the originating request finished (queue
// waits, asynchronous block application) still land in it. A request with an
// explicit id is always traced; without one the sampler decides, returning
// nil (untraced) for the rest. A nil tracer never traces.
func (tc *Tracer) StartTrace(id, label string) *Trace {
	if tc == nil {
		return nil
	}
	id = sanitizeTraceID(id)
	n := tc.seq.Add(1)
	if id == "" {
		// Deterministic stride sampling: no clock, no global rand, and an
		// exact long-run fraction.
		if tc.sample <= 0 || float64((n-1)%1000) >= tc.sample*1000 {
			return nil
		}
		id = tc.newTraceID()
	}
	tr := &Trace{id: id, label: label, start: time.Now()}
	tc.mu.Lock()
	if len(tc.ring) < tc.cap {
		tc.ring = append(tc.ring, tr)
	} else {
		tc.ring[tc.next] = tr
		tc.next = (tc.next + 1) % tc.cap
	}
	tc.mu.Unlock()
	return tr
}

// Lookup returns the retained trace with the given ID, or nil.
func (tc *Tracer) Lookup(id string) *Trace {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, tr := range tc.ring {
		if tr.ID() == id {
			return tr
		}
	}
	return nil
}

// Snapshot freezes up to limit retained traces, newest first (limit <= 0
// means all).
func (tc *Tracer) Snapshot(limit int) []TraceSnapshot {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	ordered := make([]*Trace, 0, len(tc.ring))
	if len(tc.ring) < tc.cap {
		ordered = append(ordered, tc.ring...)
	} else {
		ordered = append(ordered, tc.ring[tc.next:]...)
		ordered = append(ordered, tc.ring[:tc.next]...)
	}
	tc.mu.Unlock()

	if limit <= 0 || limit > len(ordered) {
		limit = len(ordered)
	}
	out := make([]TraceSnapshot, 0, limit)
	for i := len(ordered) - 1; i >= len(ordered)-limit; i-- {
		out = append(out, ordered[i].Snapshot())
	}
	return out
}
