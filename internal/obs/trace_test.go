package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestSanitizeTraceID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123_x.y":     "abc-123_x.y",
		"has spaces\nand": "hasspacesand",
		"héllo":           "hllo",
		"\"quoted\"":      "quoted",
		"":                "",
	} {
		if got := sanitizeTraceID(in); got != want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'a'
	}
	if got := sanitizeTraceID(string(long)); len(got) != maxTraceIDLen {
		t.Errorf("long ID truncated to %d, want %d", len(got), maxTraceIDLen)
	}
}

func TestTracerExplicitIDAlwaysTraced(t *testing.T) {
	tc := NewTracer(4, 0) // sampling off
	if tr := tc.StartTrace("", "GET /x"); tr != nil {
		t.Fatalf("unlabeled request traced at sample=0")
	}
	tr := tc.StartTrace("client-id-1", "POST /y")
	if tr == nil {
		t.Fatal("explicit ID not traced")
	}
	if tr.ID() != "client-id-1" {
		t.Errorf("ID = %q", tr.ID())
	}
	if got := tc.Lookup("client-id-1"); got != tr {
		t.Errorf("Lookup returned %v", got)
	}
}

func TestTracerStrideSampling(t *testing.T) {
	tc := NewTracer(2000, 0.1)
	traced := 0
	for i := 0; i < 1000; i++ {
		if tc.StartTrace("", "GET /z") != nil {
			traced++
		}
	}
	if traced != 100 {
		t.Errorf("sample=0.1 traced %d of 1000", traced)
	}
	if tc := NewTracer(10, 1.0); tc.StartTrace("", "x") == nil {
		t.Error("sample=1 did not trace")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tc := NewTracer(3, 0)
	for i := 0; i < 5; i++ {
		tc.StartTrace(fmt.Sprintf("id-%d", i), "")
	}
	if tc.Lookup("id-0") != nil || tc.Lookup("id-1") != nil {
		t.Error("evicted traces still retained")
	}
	snaps := tc.Snapshot(0)
	if len(snaps) != 3 {
		t.Fatalf("retained %d traces, want 3", len(snaps))
	}
	// Newest first.
	if snaps[0].ID != "id-4" || snaps[2].ID != "id-2" {
		t.Errorf("snapshot order: %s, %s, %s", snaps[0].ID, snaps[1].ID, snaps[2].ID)
	}
	if got := tc.Snapshot(1); len(got) != 1 || got[0].ID != "id-4" {
		t.Errorf("limit=1 snapshot: %v", got)
	}
}

func TestTraceSpanRingWrap(t *testing.T) {
	tr := &Trace{id: "x", start: time.Now()}
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.record(fmt.Sprintf("s%d", i), tr.newSpanID(), 0, time.Now(), time.Millisecond)
	}
	s := tr.Snapshot()
	if len(s.Spans) != maxSpansPerTrace {
		t.Fatalf("ring holds %d spans, want %d", len(s.Spans), maxSpansPerTrace)
	}
	if s.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", s.Dropped)
	}
	// The oldest surviving span is the 11th recorded.
	if s.Spans[0].Name != "s10" {
		t.Errorf("oldest span = %s", s.Spans[0].Name)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	reg := NewRegistry()
	tc := NewTracer(8, 0)
	reg.SetTracer(tc)
	tr := tc.StartTrace("prop-1", "test")

	ctx := ContextWithTrace(context.Background(), tr)
	parent := reg.Timer("outer.ns").StartCtx(ctx)
	child := reg.Timer("inner.ns").StartCtx(parent.Ctx(ctx))
	child.End()
	parent.End()

	// An externally timed phase recorded through the SpanContext.
	sc := SpanContextFrom(parent.Ctx(ctx))
	sc.RecordSpan("queue.wait.ns", time.Now(), 5*time.Millisecond)

	s := tr.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %v", s.Spans)
	}
	byName := map[string]TraceSpan{}
	for _, sp := range s.Spans {
		byName[sp.Name] = sp
	}
	outer, inner, wait := byName["outer.ns"], byName["inner.ns"], byName["queue.wait.ns"]
	if outer.ParentID != 0 {
		t.Errorf("outer span has parent %d", outer.ParentID)
	}
	if inner.ParentID != outer.SpanID {
		t.Errorf("inner parent %d, want %d", inner.ParentID, outer.SpanID)
	}
	if wait.ParentID != outer.SpanID {
		t.Errorf("wait parent %d, want %d", wait.ParentID, outer.SpanID)
	}
	if wait.DurNs != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("wait duration %d", wait.DurNs)
	}

	// The spans also landed in the timers.
	snap := reg.Snapshot()
	if snap.Timers["outer.ns"].Count != 1 || snap.Timers["inner.ns"].Count != 1 {
		t.Errorf("timer counts: %+v", snap.Timers)
	}

	if s.Slowest[0].DurNs < s.Slowest[len(s.Slowest)-1].DurNs {
		t.Errorf("slowest not sorted: %v", s.Slowest)
	}
}

func TestUntracedIsNoop(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.newSpanID() != 0 {
		t.Error("nil trace not inert")
	}
	tr.record("x", 1, 0, time.Now(), time.Second)
	if s := tr.Snapshot(); len(s.Spans) != 0 {
		t.Error("nil trace recorded")
	}

	var sc SpanContext
	if sc.Traced() || sc.TraceID() != "" {
		t.Error("zero SpanContext claims traced")
	}
	sc.RecordSpan("x", time.Now(), time.Second)
	ctx := sc.Context(context.Background())
	if SpanContextFrom(ctx).Traced() {
		t.Error("zero SpanContext installed into ctx")
	}
	if SpanContextFrom(nil).Traced() {
		t.Error("nil ctx traced")
	}

	var tc *Tracer
	if tc.StartTrace("id", "x") != nil || tc.Lookup("id") != nil || tc.Snapshot(0) != nil || tc.SampleRate() != 0 {
		t.Error("nil tracer not inert")
	}
}

// TestStartCtxDisabledRegistryAllocatesNothing extends the package's
// zero-cost contract to the ctx-aware entry points: a disabled registry's
// StartCtx/End pair on an untraced context must not allocate.
func TestStartCtxDisabledRegistryAllocatesNothing(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(false)
	tm := reg.Timer("cold.ns")
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(100, func() {
		s := tm.StartCtx(ctx)
		s.End()
	}); allocs != 0 {
		t.Errorf("disabled StartCtx allocates %v per op", allocs)
	}
}
