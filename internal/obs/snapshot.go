package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// BucketCount is one occupied histogram bucket: Le is the bucket's inclusive
// upper bound and Count the number of observations that landed in it.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the frozen state of a Histogram. Only occupied buckets
// are listed, in increasing Le order.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// TimerSnapshot is the frozen state of a Timer; all values are nanoseconds.
type TimerSnapshot struct {
	Count   int64         `json:"count"`
	TotalNs int64         `json:"total_ns"`
	MinNs   int64         `json:"min_ns"`
	MaxNs   int64         `json:"max_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a Registry. Maps
// marshal with sorted keys, so the JSON and text renderings of equal
// snapshots are byte-identical (snapshots carry no wall-clock timestamp for
// exactly this reason).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
}

func histSnapshot(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketUpperBound(i), Count: c})
		}
	}
	return s
}

// Snapshot runs the registered collectors, then freezes every instrument.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	collectors := make([]func(*Registry), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn(r)
	}

	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = histSnapshot(h)
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for name, t := range r.timers {
			hs := histSnapshot(t.hist)
			s.Timers[name] = TimerSnapshot{
				Count: hs.Count, TotalNs: hs.Sum, MinNs: hs.Min, MaxNs: hs.Max, Buckets: hs.Buckets,
			}
		}
	}
	return s
}

// Delta returns this snapshot minus prev: counters, histogram and timer
// tallies are subtracted (bucket-wise), gauges keep their current value.
// Instruments absent from prev pass through unchanged; instruments that did
// not move are dropped.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] = d
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		if d, moved := h.delta(prev.Histograms[name]); moved {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[name] = d
		}
	}
	for name, t := range s.Timers {
		ph := prev.Timers[name]
		d, moved := HistogramSnapshot{Count: t.Count, Sum: t.TotalNs, Min: t.MinNs, Max: t.MaxNs, Buckets: t.Buckets}.
			delta(HistogramSnapshot{Count: ph.Count, Sum: ph.TotalNs, Min: ph.MinNs, Max: ph.MaxNs, Buckets: ph.Buckets})
		if moved {
			if out.Timers == nil {
				out.Timers = make(map[string]TimerSnapshot)
			}
			out.Timers[name] = TimerSnapshot{Count: d.Count, TotalNs: d.Sum, MinNs: d.Min, MaxNs: d.Max, Buckets: d.Buckets}
		}
	}
	return out
}

// delta subtracts prev bucket-wise. Min and Max describe the whole interval,
// not the delta window, so they are carried over as-is.
func (h HistogramSnapshot) delta(prev HistogramSnapshot) (HistogramSnapshot, bool) {
	if h.Count == prev.Count {
		return HistogramSnapshot{}, false
	}
	out := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum, Min: h.Min, Max: h.Max}
	prevByLe := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByLe[b.Le] = b.Count
	}
	for _, b := range h.Buckets {
		if d := b.Count - prevByLe[b.Le]; d != 0 {
			out.Buckets = append(out.Buckets, BucketCount{Le: b.Le, Count: d})
		}
	}
	return out, true
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as aligned name/value lines, grouped by
// instrument kind and sorted by name. Timers print totals in seconds with
// counts and mean latencies.
func (s Snapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("counter   %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("gauge     %-40s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		p("histogram %-40s count=%d sum=%d min=%d max=%d mean=%.1f\n",
			name, h.Count, h.Sum, h.Min, h.Max, mean)
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		mean := time.Duration(0)
		if t.Count > 0 {
			mean = time.Duration(t.TotalNs / t.Count)
		}
		p("timer     %-40s count=%d total=%v mean=%v max=%v\n",
			name, t.Count, time.Duration(t.TotalNs), mean, time.Duration(t.MaxNs))
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
