package obs

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// TestDisabledPathAllocatesNothing is the contract that lets the maintainers
// instrument unconditionally: with the registry disabled, every hot-path
// instrument operation is an atomic load plus a branch — zero allocations.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.counter")
	g := r.Gauge("x.gauge")
	h := r.Histogram("x.hist")
	tm := r.Timer("x.timer")
	r.SetEnabled(false)

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter.add", func() { c.Add(7) }},
		{"gauge.set", func() { g.Set(7) }},
		{"histogram.observe", func() { h.Observe(7) }},
		{"timer.span", func() { s := tm.Start(); s.End() }},
		{"timer.child", func() { s := tm.Child(Span{}); s.End() }},
		{"timer.record", func() { tm.Record(7 * time.Millisecond) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on disabled registry, want 0", tc.name, allocs)
		}
	}

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Error("disabled instruments recorded values")
	}
}

// TestEnabledHotPathAllocatesNothing: recording itself must not allocate
// either — only instrument creation may.
func TestEnabledHotPathAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.counter")
	h := r.Histogram("x.hist")
	tm := r.Timer("x.timer")

	for name, fn := range map[string]func(){
		"counter.add":       func() { c.Add(7) },
		"histogram.observe": func() { h.Observe(7) },
		"timer.span":        func() { s := tm.Start(); s.End() },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on enabled registry, want 0", name, allocs)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	r.SetEnabled(true)
	r.Reset()
	r.OnSpan(nil)
	r.AddCollector(nil)
	c := r.Counter("c")
	c.Add(1)
	c.Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	tm := r.Timer("t")
	tm.Record(time.Second)
	s := tm.Start()
	if d := s.End(); d != 0 {
		t.Errorf("nil-timer span measured %v, want 0", d)
	}
	s.EndObserving(c, 5)
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v     int64
		index int
		le    int64
	}{
		{-5, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 3, 7},
		{7, 3, 7},
		{8, 4, 15},
		{1023, 10, 1023},
		{1024, 11, 2047},
		{math.MaxInt64, 63, math.MaxInt64},
	}
	for _, tc := range cases {
		if got := BucketIndex(tc.v); got != tc.index {
			t.Errorf("BucketIndex(%d) = %d, want %d", tc.v, got, tc.index)
		}
		if got := BucketUpperBound(tc.index); got != tc.le {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", tc.index, got, tc.le)
		}
	}

	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	want := []BucketCount{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2}, {Le: 7, Count: 2}, {Le: 15, Count: 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
	if snap.Count != 7 || snap.Sum != 25 || snap.Min != 0 || snap.Max != 8 {
		t.Errorf("summary = count=%d sum=%d min=%d max=%d, want 7/25/0/8",
			snap.Count, snap.Sum, snap.Min, snap.Max)
	}
}

// TestSnapshotDeterminism: equal registry states must render to byte-identical
// JSON and text, so artifact diffs are meaningful.
func TestSnapshotDeterminism(t *testing.T) {
	fill := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"z.last", "a.first", "m.middle"} {
			r.Counter(n).Add(3)
			r.Gauge(n).Set(4)
			r.Histogram(n).Observe(100)
			r.Timer(n).Record(time.Millisecond)
		}
		return r
	}
	r1, r2 := fill(), fill()

	var j1, j2, t1, t2 bytes.Buffer
	if err := r1.Snapshot().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Errorf("JSON renderings differ:\n%s\n---\n%s", j1.Bytes(), j2.Bytes())
	}
	if err := r1.Snapshot().WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot().WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Errorf("text renderings differ:\n%s\n---\n%s", t1.Bytes(), t2.Bytes())
	}

	// Repeated marshals of the same live registry are also byte-identical.
	var j3 bytes.Buffer
	if err := r1.Snapshot().WriteJSON(&j3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j3.Bytes()) {
		t.Error("re-marshalling the same registry changed the JSON output")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(10)
	r.Counter("still").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(3)
	r.Timer("t").Record(100)
	before := r.Snapshot()

	r.Counter("c").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(3)
	r.Histogram("h").Observe(1000)
	r.Timer("t").Record(200)
	d := r.Snapshot().Delta(before)

	if d.Counters["c"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["c"])
	}
	if _, ok := d.Counters["still"]; ok {
		t.Error("unmoved counter kept in delta")
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("gauge in delta = %d, want current value 9", d.Gauges["g"])
	}
	h := d.Histograms["h"]
	if h.Count != 2 || h.Sum != 1003 {
		t.Errorf("histogram delta count=%d sum=%d, want 2/1003", h.Count, h.Sum)
	}
	if tm := d.Timers["t"]; tm.Count != 1 || tm.TotalNs != 200 {
		t.Errorf("timer delta count=%d total=%d, want 1/200", tm.Count, tm.TotalNs)
	}
}

func TestSpanNestingAndHook(t *testing.T) {
	r := NewRegistry()
	var events []SpanEvent
	r.OnSpan(func(e SpanEvent) { events = append(events, e) })

	parent := r.Timer("outer").Start()
	child := r.Timer("inner").Child(parent)
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Errorf("child span measured %v", d)
	}
	parent.End()

	if len(events) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(events))
	}
	if events[0].Name != "inner" || events[0].Parent != "outer" {
		t.Errorf("child event = %+v, want inner under outer", events[0])
	}
	if events[1].Name != "outer" || events[1].Parent != "" {
		t.Errorf("parent event = %+v, want outer at root", events[1])
	}
	if events[0].Duration < time.Millisecond {
		t.Errorf("child duration %v < slept 1ms", events[0].Duration)
	}

	r.OnSpan(nil)
	r.Timer("outer").Start().End()
	if len(events) != 2 {
		t.Error("hook fired after uninstall")
	}
}

func TestEndObserving(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("units")
	s := r.Timer("phase").Start()
	s.EndObserving(c, 42)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if r.Timer("phase").Count() != 1 {
		t.Error("span not recorded")
	}
}

func TestSetDefaultSwapRestore(t *testing.T) {
	orig := Default()
	mine := NewRegistry()
	prev := SetDefault(mine)
	if prev != orig {
		t.Error("SetDefault did not return the previous registry")
	}
	if Default() != mine {
		t.Error("Default is not the installed registry")
	}
	Default().Counter("test.only").Inc()
	if mine.Counter("test.only").Value() != 1 {
		t.Error("recorded against the wrong registry")
	}
	SetDefault(prev)
	if Default() != orig {
		t.Error("restore failed")
	}
	if got := SetDefault(nil); got != orig {
		t.Error("SetDefault(nil) did not return previous")
	}
	if Default() == nil {
		t.Error("SetDefault(nil) installed a nil registry")
	}
	SetDefault(orig)
}

func TestResetKeepsHandlesLive(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	tm := r.Timer("t")
	c.Add(5)
	h.Observe(5)
	tm.Record(5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Error("Reset did not zero instruments")
	}
	c.Add(2)
	if r.Counter("c").Value() != 2 {
		t.Error("handle went dead after Reset")
	}
	snap := r.Snapshot()
	if _, ok := snap.Counters["c"]; !ok {
		t.Error("Reset dropped the registration")
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	var calls int
	r.AddCollector(func(reg *Registry) {
		calls++
		reg.Gauge("bridged").Set(123)
	})
	snap := r.Snapshot()
	if calls != 1 {
		t.Errorf("collector ran %d times, want 1", calls)
	}
	if snap.Gauges["bridged"] != 123 {
		t.Errorf("bridged gauge = %d, want 123", snap.Gauges["bridged"])
	}
}

func TestLabel(t *testing.T) {
	for in, want := range map[string]string{
		"PT-Scan":   "ptscan",
		"ECUT":      "ecut",
		"ECUT+":     "ecutplus",
		"Hash Tree": "hashtree",
		"a_b.c":     "abc",
	} {
		if got := Label(in); got != want {
			t.Errorf("Label(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("shared.h").Observe(int64(j))
				s := r.Timer("shared.t").Start()
				s.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared.h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	snap := r.Snapshot()
	if snap.Histograms["shared.h"].Min != 0 || snap.Histograms["shared.h"].Max != 999 {
		t.Errorf("min/max = %d/%d, want 0/999",
			snap.Histograms["shared.h"].Min, snap.Histograms["shared.h"].Max)
	}
}
