package obs

// Process runtime collector: Go memory/GC/scheduler health mirrored into
// registry gauges at Snapshot time through the AddCollector hook, so every
// scrape of /metricsz (either format) reflects the current process state
// without a background goroutine.

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// RegisterRuntimeCollector installs a collector that refreshes process
// runtime gauges on every Snapshot:
//
//	runtime.goroutines          live goroutine count
//	runtime.heap.alloc.bytes    bytes of allocated heap objects
//	runtime.heap.sys.bytes      heap memory obtained from the OS
//	runtime.rss.bytes           resident set size (0 where unavailable)
//	runtime.gc.count            completed GC cycles
//	runtime.gc.pause.total.ns   cumulative stop-the-world pause
//	runtime.gc.pause.last.ns    most recent stop-the-world pause
//
// Safe to call more than once; only the first registration per registry
// installs the collector.
func RegisterRuntimeCollector(r *Registry) {
	if r == nil || !r.runtimeCollector.CompareAndSwap(false, true) {
		return
	}
	r.AddCollector(collectRuntime)
}

func collectRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("runtime.heap.alloc.bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("runtime.heap.sys.bytes").Set(int64(ms.HeapSys))
	r.Gauge("runtime.rss.bytes").Set(ReadRSSBytes())
	r.Gauge("runtime.gc.count").Set(int64(ms.NumGC))
	r.Gauge("runtime.gc.pause.total.ns").Set(int64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		r.Gauge("runtime.gc.pause.last.ns").Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// ReadRSSBytes reads the process RSS from /proc/self/statm (field 2,
// pages). Returns 0 on platforms or sandboxes where that is unavailable —
// the gauge then reads as unknown rather than failing the snapshot. The
// perf harness samples it directly for peak-RSS tracking.
func ReadRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
